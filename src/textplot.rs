//! Tiny terminal plotting helpers used by the examples: horizontal bars
//! for figure-style comparisons and sparklines for temperature traces.

/// Renders `value` as a horizontal bar scaled so `max` fills `width`
/// characters, e.g. `bar(3.0, 6.0, 10)` → `"█████     "`.
///
/// Values below zero render as an empty bar; values above `max` are
/// clamped to the full width. A zero or negative `max` renders empty.
///
/// # Examples
///
/// ```
/// use therm3d_repro::bar;
///
/// assert_eq!(bar(5.0, 10.0, 10), "█████     ");
/// assert_eq!(bar(99.0, 10.0, 4), "████");
/// ```
#[must_use]
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if width == 0 {
        return String::new();
    }
    let frac = if max > 0.0 { (value / max).clamp(0.0, 1.0) } else { 0.0 };
    let filled = (frac * width as f64).round() as usize;
    let mut s = "█".repeat(filled.min(width));
    s.push_str(&" ".repeat(width - filled.min(width)));
    s
}

/// Renders a numeric series as a unicode sparkline (8 levels), scaling to
/// the series' own min/max.
///
/// Empty input produces an empty string; a constant series renders at the
/// lowest level.
///
/// # Examples
///
/// ```
/// use therm3d_repro::sparkline;
///
/// let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
/// assert_eq!(s.chars().count(), 4);
/// ```
#[must_use]
pub fn sparkline(series: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    series
        .iter()
        .map(|&v| {
            let idx = if span > 0.0 { (((v - lo) / span) * 7.0).round() as usize } else { 0 };
            LEVELS[idx.min(7)]
        })
        .collect()
}

/// Downsamples `series` to at most `max_points` by averaging fixed-size
/// chunks — handy before sparkline-plotting long temperature traces.
///
/// # Examples
///
/// ```
/// use therm3d_repro::textplot::downsample;
///
/// let d = downsample(&[1.0, 3.0, 5.0, 7.0], 2);
/// assert_eq!(d, vec![2.0, 6.0]);
/// ```
#[must_use]
pub fn downsample(series: &[f64], max_points: usize) -> Vec<f64> {
    if max_points == 0 || series.is_empty() {
        return Vec::new();
    }
    if series.len() <= max_points {
        return series.to_vec();
    }
    let chunk = series.len().div_ceil(max_points);
    series.chunks(chunk).map(|c| c.iter().sum::<f64>() / c.len() as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(0.0, 10.0, 5), "     ");
        assert_eq!(bar(10.0, 10.0, 5), "█████");
        assert_eq!(bar(-3.0, 10.0, 5), "     ");
        assert_eq!(bar(30.0, 10.0, 5), "█████");
        assert_eq!(bar(1.0, 0.0, 5), "     ", "degenerate max renders empty");
        assert_eq!(bar(1.0, 1.0, 0), "");
    }

    #[test]
    fn sparkline_levels() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0]), "▁▁", "constant series at lowest level");
        let s = sparkline(&[0.0, 7.0]);
        assert_eq!(s, "▁█");
    }

    #[test]
    fn downsample_preserves_short_series() {
        let xs = [1.0, 2.0];
        assert_eq!(downsample(&xs, 10), vec![1.0, 2.0]);
        assert_eq!(downsample(&xs, 0), Vec::<f64>::new());
    }

    #[test]
    fn downsample_averages_chunks() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let d = downsample(&xs, 10);
        assert_eq!(d.len(), 10);
        assert!((d[0] - 4.5).abs() < 1e-12);
        assert!(d.windows(2).all(|w| w[0] < w[1]), "monotone input stays monotone");
    }
}
