//! Shared helpers for the integration tests and examples of the
//! `therm3d` reproduction of "Dynamic Thermal Management in 3D Multicore
//! Architectures" (Coskun et al., DATE 2009).
//!
//! The heavy lifting lives in the workspace crates re-exported by
//! [`therm3d`]; this thin facade adds the conveniences the runnable
//! examples and the cross-crate test suite share: a one-call experiment
//! runner, a per-tick temperature recorder, and small text plotting
//! utilities.
//!
//! # Examples
//!
//! ```
//! use therm3d_repro::quick_run;
//! use therm3d_floorplan::Experiment;
//! use therm3d_policies::PolicyKind;
//! use therm3d_workload::Benchmark;
//!
//! let r = quick_run(Experiment::Exp1, PolicyKind::Adapt3d, Benchmark::Gcc, 5.0, false);
//! assert!(r.perf.completed > 0);
//! ```

pub mod recorder;
pub mod textplot;

pub use recorder::{CycleHistogram, TempHistory};
pub use textplot::{bar, sparkline};

use therm3d::{RunResult, SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_workload::{Benchmark, TraceConfig};

/// Runs one (experiment, policy, benchmark) cell with the fast (4×4 grid)
/// configuration and fixed seeds — the workhorse of the test suite.
///
/// The run is exactly reproducible: same arguments, same result.
#[must_use]
pub fn quick_run(
    experiment: Experiment,
    kind: PolicyKind,
    benchmark: Benchmark,
    sim_seconds: f64,
    dpm: bool,
) -> RunResult {
    let stack = experiment.stack();
    let policy = kind.build_with_dpm(&stack, 0xACE1, dpm);
    let trace =
        TraceConfig::new(benchmark, stack.num_cores(), sim_seconds).with_seed(2009).generate();
    let mut sim = Simulator::new(SimConfig::fast(experiment), policy);
    sim.run(&trace, sim_seconds)
}

/// Runs one cell while recording the per-tick temperature history.
#[must_use]
pub fn quick_run_recorded(
    experiment: Experiment,
    kind: PolicyKind,
    benchmark: Benchmark,
    sim_seconds: f64,
    dpm: bool,
) -> (RunResult, TempHistory) {
    let stack = experiment.stack();
    let policy = kind.build_with_dpm(&stack, 0xACE1, dpm);
    let trace =
        TraceConfig::new(benchmark, stack.num_cores(), sim_seconds).with_seed(2009).generate();
    let mut sim = Simulator::new(SimConfig::fast(experiment), policy);
    let mut history = TempHistory::new(stack.num_cores());
    let result = sim.run_with_observer(&trace, sim_seconds, |s| history.record(s));
    (result, history)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_reproducible() {
        let a = quick_run(Experiment::Exp1, PolicyKind::Default, Benchmark::Gzip, 4.0, false);
        let b = quick_run(Experiment::Exp1, PolicyKind::Default, Benchmark::Gzip, 4.0, false);
        assert_eq!(a, b);
    }

    #[test]
    fn recorded_run_matches_plain_run() {
        let (r, h) = quick_run_recorded(
            Experiment::Exp2,
            PolicyKind::Adapt3d,
            Benchmark::WebMed,
            4.0,
            false,
        );
        let plain = quick_run(Experiment::Exp2, PolicyKind::Adapt3d, Benchmark::WebMed, 4.0, false);
        assert_eq!(r, plain, "the observer must not perturb the simulation");
        assert!(h.len() >= 40, "4 s at 100 ms ticks records ≥40 samples");
    }
}
