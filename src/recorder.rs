//! Per-tick recording of simulator state: temperature histories, power
//! traces and thermal-cycle histograms, built on the
//! [`therm3d::TickSample`] observer hook.

use therm3d::TickSample;

/// A per-core temperature (and chip power) history sampled every tick.
///
/// # Examples
///
/// ```
/// use therm3d_repro::quick_run_recorded;
/// use therm3d_floorplan::Experiment;
/// use therm3d_policies::PolicyKind;
/// use therm3d_workload::Benchmark;
///
/// let (_r, history) =
///     quick_run_recorded(Experiment::Exp1, PolicyKind::Default, Benchmark::Gcc, 3.0, false);
/// assert!(history.peak_c() > history.mean_c());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TempHistory {
    n_cores: usize,
    times_s: Vec<f64>,
    /// Row-major `[sample][core]` temperatures, °C.
    temps_c: Vec<f64>,
    power_w: Vec<f64>,
}

impl TempHistory {
    /// An empty history for `n_cores` cores.
    #[must_use]
    pub fn new(n_cores: usize) -> Self {
        Self { n_cores, times_s: Vec::new(), temps_c: Vec::new(), power_w: Vec::new() }
    }

    /// Appends one tick sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample's core count differs from the recorder's.
    pub fn record(&mut self, sample: &TickSample<'_>) {
        assert_eq!(sample.core_temps_c.len(), self.n_cores, "core count mismatch");
        self.times_s.push(sample.now_s);
        self.temps_c.extend_from_slice(sample.core_temps_c);
        self.power_w.push(sample.chip_power_w);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times_s.len()
    }

    /// `true` when nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times_s.is_empty()
    }

    /// Number of cores per sample.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Sample timestamps, seconds.
    #[must_use]
    pub fn times_s(&self) -> &[f64] {
        &self.times_s
    }

    /// The temperatures of sample `i`, one entry per core.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn sample(&self, i: usize) -> &[f64] {
        &self.temps_c[i * self.n_cores..(i + 1) * self.n_cores]
    }

    /// The temperature series of one core across all samples, °C.
    ///
    /// # Panics
    ///
    /// Panics if `core >= n_cores()`.
    #[must_use]
    pub fn core_series(&self, core: usize) -> Vec<f64> {
        assert!(core < self.n_cores, "core {core} out of range");
        (0..self.len()).map(|i| self.sample(i)[core]).collect()
    }

    /// Chip power series, W.
    #[must_use]
    pub fn power_series_w(&self) -> &[f64] {
        &self.power_w
    }

    /// The series of the hottest core temperature at each sample, °C.
    #[must_use]
    pub fn max_series(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.sample(i).iter().copied().fold(f64::NEG_INFINITY, f64::max))
            .collect()
    }

    /// Hottest temperature ever recorded, °C (`-inf` when empty).
    #[must_use]
    pub fn peak_c(&self) -> f64 {
        self.temps_c.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean of all recorded core temperatures, °C (NaN when empty).
    #[must_use]
    pub fn mean_c(&self) -> f64 {
        let n = self.temps_c.len();
        self.temps_c.iter().sum::<f64>() / n as f64
    }

    /// Largest core-to-core spread within a single sample, °C.
    #[must_use]
    pub fn peak_spread_c(&self) -> f64 {
        (0..self.len())
            .map(|i| {
                let s = self.sample(i);
                let hi = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let lo = s.iter().copied().fold(f64::INFINITY, f64::min);
                hi - lo
            })
            .fold(0.0, f64::max)
    }

    /// Serializes the history as CSV (`time_s,core0,...,coreN,power_w`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("time_s");
        for c in 0..self.n_cores {
            let _ = write!(out, ",core{c}");
        }
        out.push_str(",power_w\n");
        for i in 0..self.len() {
            let _ = write!(out, "{:.3}", self.times_s[i]);
            for &t in self.sample(i) {
                let _ = write!(out, ",{t:.3}");
            }
            let _ = writeln!(out, ",{:.3}", self.power_w[i]);
        }
        out
    }
}

/// A histogram of per-core temperature swings (ΔT over a sliding window),
/// the quantity whose tail drives thermal-cycling failures (JEDEC's
/// Coffin–Manson exponent makes 20 °C swings ~16× as damaging as 10 °C
/// ones).
#[derive(Debug, Clone)]
pub struct CycleHistogram {
    bin_width_c: f64,
    window: usize,
    /// Per-core ring buffers of the last `window` temperatures.
    recent: Vec<Vec<f64>>,
    counts: Vec<u64>,
    total: u64,
}

impl CycleHistogram {
    /// A histogram with `bin_width_c`-wide bins over a `window`-sample
    /// sliding window for `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width_c` is not positive or `window` is zero.
    #[must_use]
    pub fn new(bin_width_c: f64, window: usize, n_cores: usize) -> Self {
        assert!(bin_width_c > 0.0, "bin width must be positive");
        assert!(window > 0, "window must be non-empty");
        Self {
            bin_width_c,
            window,
            recent: vec![Vec::new(); n_cores],
            counts: Vec::new(),
            total: 0,
        }
    }

    /// Appends one tick sample; once a core's window is full, the window
    /// ΔT (max − min) is binned.
    pub fn record(&mut self, sample: &TickSample<'_>) {
        for (core, &t) in sample.core_temps_c.iter().enumerate() {
            let buf = &mut self.recent[core];
            buf.push(t);
            if buf.len() > self.window {
                buf.remove(0);
            }
            if buf.len() == self.window {
                let hi = buf.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let lo = buf.iter().copied().fold(f64::INFINITY, f64::min);
                let bin = ((hi - lo) / self.bin_width_c).floor() as usize;
                if bin >= self.counts.len() {
                    self.counts.resize(bin + 1, 0);
                }
                self.counts[bin] += 1;
                self.total += 1;
            }
        }
    }

    /// The bin counts; bin `i` covers `[i·w, (i+1)·w)` °C.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of binned ΔT observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations with ΔT at or above `threshold_c`.
    #[must_use]
    pub fn tail_fraction(&self, threshold_c: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let first_bin = (threshold_c / self.bin_width_c).floor() as usize;
        let tail: u64 = self.counts.iter().skip(first_bin).sum();
        tail as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample<'a>(
        now: f64,
        temps: &'a [f64],
        layers: &'a [usize],
        util: &'a [f64],
    ) -> TickSample<'a> {
        TickSample {
            now_s: now,
            tick_s: 0.1,
            core_temps_c: temps,
            block_temps_c: temps,
            layer_of_block: layers,
            utilization: util,
            chip_power_w: 10.0,
            vf_index: &[0, 0],
            asleep: &[false, false],
        }
    }

    #[test]
    fn history_accumulates_and_summarizes() {
        let mut h = TempHistory::new(2);
        let layers = [0usize, 0];
        let util = [1.0, 0.5];
        h.record(&sample(0.0, &[50.0, 60.0], &layers, &util));
        h.record(&sample(0.1, &[55.0, 70.0], &layers, &util));
        assert_eq!(h.len(), 2);
        assert_eq!(h.n_cores(), 2);
        assert_eq!(h.peak_c(), 70.0);
        assert_eq!(h.core_series(1), vec![60.0, 70.0]);
        assert_eq!(h.max_series(), vec![60.0, 70.0]);
        assert!((h.mean_c() - 58.75).abs() < 1e-12);
        assert_eq!(h.peak_spread_c(), 15.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut h = TempHistory::new(1);
        h.record(&sample(0.0, &[42.0], &[0], &[1.0]));
        let csv = h.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_s,core0,power_w"));
        assert_eq!(lines.next(), Some("0.000,42.000,10.000"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn histogram_bins_window_deltas() {
        let mut hist = CycleHistogram::new(5.0, 2, 1);
        let layers = [0usize];
        let util = [1.0];
        hist.record(&sample(0.0, &[50.0], &layers, &util)); // window not full
        hist.record(&sample(0.1, &[57.0], &layers, &util)); // ΔT = 7 → bin 1
        hist.record(&sample(0.2, &[57.0], &layers, &util)); // ΔT = 0 → bin 0
        assert_eq!(hist.total(), 2);
        assert_eq!(hist.counts(), &[1, 1]);
        assert!((hist.tail_fraction(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(hist.tail_fraction(10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_bin_width_rejected() {
        let _ = CycleHistogram::new(0.0, 2, 1);
    }

    #[test]
    fn empty_history_is_empty() {
        let h = TempHistory::new(4);
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.power_series_w().len(), 0);
    }
}
