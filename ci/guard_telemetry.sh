#!/usr/bin/env bash
# Guard the observability invariant: with every telemetry sink enabled
# (--progress to stderr, --trace-out and --metrics-out to sidecar
# files), the stdout CSV must stay byte-identical to a plain run, the
# event stream must parse as JSONL covering all 16 cells with
# cell_start strictly before cell_finish, and the metrics snapshot must
# carry one record per cell.
set -euo pipefail
BIN="${THERM3D_BIN:-target/release/therm3d}"
OUT="${TMPDIR:-/tmp}/therm3d-ci-telemetry"
rm -rf "$OUT" && mkdir -p "$OUT"

"$BIN" sweep examples/sweep_scenarios.toml --format csv > "$OUT/plain.csv"
"$BIN" sweep examples/sweep_scenarios.toml --format csv \
    --progress --trace-out "$OUT/events.jsonl" \
    --metrics-out "$OUT/metrics.json" \
    > "$OUT/telemetered.csv" 2> "$OUT/progress.err"
diff "$OUT/plain.csv" "$OUT/telemetered.csv"
grep -q 'cells' "$OUT/progress.err"
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
events = [json.loads(l) for l in open(f"{out}/events.jsonl")]
by_cell = {}
for ev in events:
    by_cell.setdefault(ev["cell"], []).append(ev["ev"])
assert len(by_cell) == 16, sorted(by_cell)
for cell, tags in by_cell.items():
    assert tags[0] == "cell_start" and tags[-1] == "cell_finish", (cell, tags)
snap = json.load(open(f"{out}/metrics.json"))
assert snap["counters"]["sweep.cells_total"] == 16
assert len(snap["cells"]) == 16
for cell in snap["cells"]:
    assert cell["counters"]["factor_numeric"] >= 1, cell
assert "thermal.factor_numeric_us" in snap["histograms"]
# Run-level solver totals are share-deduplicated: the 16-cell
# scenario matrix resolves to 4 thermal models (2 stack orders
# x 2 TSV variants; sensors and policies never change the RC
# network), each analyzed exactly once, and adopted factors +
# computed factors account for every cell's ensured pair.
c = snap["counters"]
assert c["sweep.thermal_models"] == 4, c
assert c["thermal.symbolic_analyses"] == 4, c
per_cell = sum(cell["counters"]["factor_numeric"] for cell in snap["cells"])
assert c["sweep.factor_share_hits"] + c["thermal.factor_numeric"] == per_cell, c
print("telemetry guard ok: 16 cells traced, 4 shared thermal models")
EOF
# shard-plan prints one runnable line per shard for the same spec.
"$BIN" shard-plan examples/sweep_scenarios.toml --count 4 > "$OUT/plan.txt"
test "$(grep -c '^therm3d sweep' "$OUT/plan.txt")" = 4
