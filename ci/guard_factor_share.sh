#!/usr/bin/env bash
# Guard cross-cell factor sharing: the 6-cell single-model spec
# (policies and DPM never touch the RC network) must resolve to exactly
# ONE thermal model — one symbolic analysis and one factor set for the
# whole campaign — and `check` must preflight the same count without
# simulating.
set -euo pipefail
BIN="${THERM3D_BIN:-target/release/therm3d}"
OUT="${TMPDIR:-/tmp}/therm3d-ci-share"
rm -rf "$OUT" && mkdir -p "$OUT"

"$BIN" check examples/sweep_shared_model.toml > "$OUT/check.out"
grep -F 'thermal models: 1 distinct across 6 cell(s)' "$OUT/check.out"
"$BIN" sweep examples/sweep_shared_model.toml --format csv \
    --metrics-out "$OUT/metrics.json" > "$OUT/report.csv"
python3 - "$OUT" <<'EOF'
import json, sys
c = json.load(open(f"{sys.argv[1]}/metrics.json"))["counters"]
assert c["sweep.thermal_models"] == 1, c
assert c["thermal.symbolic_analyses"] == 1, c
assert c["sweep.factor_share_hits"] >= 5, c
print("factor-share guard ok: 6 cells, 1 model, 1 analysis")
EOF
