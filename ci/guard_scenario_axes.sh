#!/usr/bin/env bash
# Cache guard over the scenario axes (stack order x TSV variant x
# sensor fidelity): noisy sensor cells must be cacheable too, and
# `cache compact` must keep the warm store warm.
set -euo pipefail
BIN="${THERM3D_BIN:-target/release/therm3d}"
OUT="${TMPDIR:-/tmp}/therm3d-ci-scenario-guard"
CACHE="$OUT/cache"
rm -rf "$OUT" && mkdir -p "$OUT"

"$BIN" sweep examples/sweep_scenarios.toml --format csv \
    --cache-dir "$CACHE" --cache-stats > "$OUT/sfirst.out" 2> "$OUT/sfirst.err"
"$BIN" cache compact --cache-dir "$CACHE"
"$BIN" sweep examples/sweep_scenarios.toml --format csv \
    --cache-dir "$CACHE" --cache-stats > "$OUT/ssecond.out" 2> "$OUT/ssecond.err"
grep -E '^cache(\[[0-9]+/[0-9]+\])?: 0 hits, 16 misses, 16 inserted' "$OUT/sfirst.err"
grep -E '^cache(\[[0-9]+/[0-9]+\])?: 16 hits, 0 misses, 0 inserted' "$OUT/ssecond.err"
diff "$OUT/sfirst.out" "$OUT/ssecond.out"
echo "scenario-axes cache guard ok"
