#!/usr/bin/env bash
# Guard the campaign service end-to-end: a coordinator on loopback with
# three throttled workers — one of which is SIGKILLed mid-campaign —
# must re-issue the dead worker's lease, finish all 16 scenario cells,
# and write the byte-identical CSV of a single-process run. The
# coordinator owns the one cache, so a warm re-run afterwards serves
# every cell with 0 misses.
set -euo pipefail
BIN="${THERM3D_BIN:-target/release/therm3d}"
OUT="${TMPDIR:-/tmp}/therm3d-ci-coord"
rm -rf "$OUT" && mkdir -p "$OUT"

"$BIN" sweep examples/sweep_scenarios.toml --format csv > "$OUT/single.csv"

# --listen :0 picks a free port; --port-file publishes it. The lease
# timeout is far beyond the guard's runtime so only the EOF-abandon
# path (connection death) can re-issue — which is exactly what the
# SIGKILL below must trigger.
"$BIN" serve examples/sweep_scenarios.toml --listen 127.0.0.1:0 \
    --port-file "$OUT/port" --lease 2 --lease-timeout 60 \
    --cache-dir "$OUT/cache" --format csv \
    > "$OUT/served.csv" 2> "$OUT/serve.err" &
SERVE=$!
for _ in $(seq 1 100); do
  [ -s "$OUT/port" ] && break
  sleep 0.1
done
[ -s "$OUT/port" ] || { echo "coordinator never published its port" >&2; exit 1; }
ADDR="$(cat "$OUT/port")"

# A throttled worker sleeps 800 ms between the two cells of each lease,
# so it holds a live lease almost its entire runtime (the leaseless
# window between batch-ack and next grant is sub-millisecond) and the
# whole campaign needs well over 2 s of wall clock — the kill below at
# 1.5 s is guaranteed to land mid-campaign, on a lease holder.
"$BIN" work --connect "$ADDR" --throttle-ms 800 2> "$OUT/w1.err" & W1=$!
"$BIN" work --connect "$ADDR" --throttle-ms 800 2> "$OUT/w2.err" & W2=$!
"$BIN" work --connect "$ADDR" --throttle-ms 800 2> "$OUT/w3.err" & W3=$!
sleep 1.5
kill -9 "$W2"
wait "$W2" 2>/dev/null || true

wait "$SERVE"
wait "$W1" "$W3"
grep -F 're-issued' "$OUT/serve.err"
grep -F 'campaign complete' "$OUT/serve.err"
diff "$OUT/single.csv" "$OUT/served.csv"

# The coordinator populated its cache as results streamed in: a plain
# warm sweep over the same dir must simulate nothing.
"$BIN" sweep examples/sweep_scenarios.toml --format csv \
    --cache-dir "$OUT/cache" --cache-stats \
    > "$OUT/warm.csv" 2> "$OUT/warm.err"
grep -E '^cache: 16 hits, 0 misses, 0 inserted' "$OUT/warm.err"
diff "$OUT/single.csv" "$OUT/warm.csv"
echo "coordinator guard ok: lease re-issued after worker death, CSV byte-identical"
