#!/usr/bin/env bash
# Guard distributed sweeps: the 16-cell scenario campaign run as 3
# shards (separate cache dirs, as 3 machines would) must merge —
# reports and caches — back to exactly the single-process run: the
# merged CSV is byte-identical, and a warm full run over the union of
# the shard caches serves all 16 cells with 0 misses.
set -euo pipefail
BIN="${THERM3D_BIN:-target/release/therm3d}"
OUT="${TMPDIR:-/tmp}/therm3d-ci-shard"
rm -rf "$OUT" && mkdir -p "$OUT"

"$BIN" sweep examples/sweep_scenarios.toml --format csv > "$OUT/full.csv"
for K in 0 1 2; do
  "$BIN" sweep examples/sweep_scenarios.toml --format csv --shard "$K/3" \
      --cache-dir "$OUT/cache-$K" --cache-stats \
      > "$OUT/shard-$K.csv" 2> "$OUT/shard-$K.err"
  grep -E "^cache\[$K/3\]: 0 hits, [1-9][0-9]* misses" "$OUT/shard-$K.err"
done
"$BIN" merge "$OUT/merged.csv" \
    "$OUT/shard-0.csv" "$OUT/shard-1.csv" "$OUT/shard-2.csv"
diff "$OUT/full.csv" "$OUT/merged.csv"
"$BIN" cache merge --cache-dir "$OUT/cache-all" \
    "$OUT/cache-0" "$OUT/cache-1" "$OUT/cache-2"
"$BIN" cache compact --cache-dir "$OUT/cache-all"
"$BIN" sweep examples/sweep_scenarios.toml --format csv \
    --cache-dir "$OUT/cache-all" --cache-stats \
    > "$OUT/warm.csv" 2> "$OUT/warm.err"
grep -E '^cache: 16 hits, 0 misses, 0 inserted' "$OUT/warm.err"
diff "$OUT/full.csv" "$OUT/warm.csv"
echo "sharded sweep guard ok"
