#!/usr/bin/env bash
# Guard the result cache: the second run of an identical sweep must
# simulate nothing (0 misses, everything served from --cache-dir) and
# render a byte-identical report. The counters line is `cache:` for
# unsharded runs and `cache[K/N]:` for shards — the greps accept both.
set -euo pipefail
BIN="${THERM3D_BIN:-target/release/therm3d}"
OUT="${TMPDIR:-/tmp}/therm3d-ci-cache-guard"
CACHE="$OUT/cache"
rm -rf "$OUT" && mkdir -p "$OUT"

"$BIN" sweep examples/sweep_quick.toml --format csv \
    --cache-dir "$CACHE" --cache-stats > "$OUT/first.out" 2> "$OUT/first.err"
"$BIN" sweep examples/sweep_quick.toml --format csv \
    --cache-dir "$CACHE" --cache-stats > "$OUT/second.out" 2> "$OUT/second.err"
grep -E '^cache(\[[0-9]+/[0-9]+\])?: 0 hits, [1-9][0-9]* misses' "$OUT/first.err"
grep -E '^cache(\[[0-9]+/[0-9]+\])?: [1-9][0-9]* hits, 0 misses, 0 inserted' "$OUT/second.err"
diff "$OUT/first.out" "$OUT/second.out"

# Preflight agrees with what the warm run just observed.
"$BIN" check examples/sweep_quick.toml --cache-dir "$CACHE" > "$OUT/check.out"
grep -E '12 warm, 0 cold' "$OUT/check.out"
grep -F 'memory model: materialized' "$OUT/check.out"

# Streaming is an execution detail, not a scenario axis: a --streaming
# run shares the materialized cache (same cell keys, all hits) and
# renders the byte-identical report.
"$BIN" sweep examples/sweep_quick.toml --format csv --streaming \
    --cache-dir "$CACHE" --cache-stats > "$OUT/stream.out" 2> "$OUT/stream.err"
grep -E '^cache(\[[0-9]+/[0-9]+\])?: [1-9][0-9]* hits, 0 misses, 0 inserted' "$OUT/stream.err"
diff "$OUT/first.out" "$OUT/stream.out"
echo "sweep cache guard ok"
