//! Ablation: the Adapt3D dispatcher's backlog-cutoff guard trades thermal
//! steering strength against queueing delay. Sweeps the cutoff on the
//! 4-layer systems and prints hot-spot residency and mean turnaround so
//! the knee of the curve can be chosen (DESIGN.md documents the default).

use therm3d::{SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::{AdaptiveConfig, AdaptivePolicy};
use therm3d_workload::{generate_mix, Benchmark};

fn main() {
    let sim_seconds = therm3d_bench::sim_seconds_or_die(160.0);
    for exp in [Experiment::Exp3, Experiment::Exp4] {
        println!("{exp} (Adapt3D, backlog-cutoff sweep, {sim_seconds:.0} s):");
        let stack = exp.stack();
        let trace = generate_mix(&Benchmark::ALL, exp.num_cores(), sim_seconds, 2009);
        for cutoff in [0.5, 1.0, 2.0, 4.0, 8.0, f64::INFINITY] {
            let cfg =
                AdaptiveConfig { backlog_cutoff_s: cutoff, ..AdaptiveConfig::paper_default() };
            let policy = Box::new(AdaptivePolicy::adapt3d_with_config(
                stack.default_thermal_indices(),
                cfg,
                0xACE1,
            ));
            let r = Simulator::new(SimConfig::paper_default(exp), policy).run(&trace, sim_seconds);
            println!(
                "  cutoff {cutoff:>4.1}s: hot={:5.2}%  turn={:5.2}s  peak={:5.1}  unfin={}",
                r.hotspot_pct, r.perf.mean_turnaround_s, r.peak_temp_c, r.unfinished
            );
        }
    }
}
