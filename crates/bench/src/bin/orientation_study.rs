//! Ablation: which die bonds to the heat spreader in the split
//! (core/cache) configurations? The paper's Figure 1 is ambiguous; this
//! study quantifies the choice that DESIGN.md documents.
//!
//! The dynamic comparison is one declarative sweep over the engine's
//! `stack_orders` axis (experiments × orientations), executed in
//! parallel and memoized under `THERM3D_CACHE_DIR` like the figure
//! binaries — the hand-rolled per-orientation loop is gone.

use therm3d_floorplan::{Experiment, StackOrder};
use therm3d_policies::PolicyKind;
use therm3d_power::{CorePowerInput, PowerModel, PowerParams, VfTable};
use therm3d_sweep::SweepSpec;
use therm3d_thermal::{ThermalConfig, ThermalModel};

fn busy_peak(exp: Experiment, order: StackOrder) -> f64 {
    let stack = exp.stack_with_order(order);
    let mut model = ThermalModel::new(&stack, ThermalConfig::paper_default());
    let power = PowerModel::new(&stack, PowerParams::paper_default(), VfTable::paper_default());
    let busy = vec![CorePowerInput::busy(); stack.num_cores()];
    let mut temps = vec![45.0; stack.num_blocks()];
    for _ in 0..4 {
        let p = power.block_powers(&busy, &temps);
        temps = model.initialize_steady_state(&p);
    }
    stack.core_ids().map(|c| temps[stack.core_block_index(c)]).fold(f64::NEG_INFINITY, f64::max)
}

fn main() {
    let sim_seconds = therm3d_bench::sim_seconds_or_die(120.0);
    println!("stack-orientation study: which die touches the spreader?\n");
    println!("all-cores-busy steady peak core temperature, °C:");
    println!("{:>8} {:>16} {:>16} {:>8}", "config", "cores far (dflt)", "cores near sink", "delta");
    for exp in [Experiment::Exp1, Experiment::Exp3] {
        let far = busy_peak(exp, StackOrder::CoresFarFromSink);
        let near = busy_peak(exp, StackOrder::CoresNearSink);
        println!("{:>8} {far:>16.1} {near:>16.1} {:>8.1}", exp.to_string(), far - near);
    }

    // Dynamic comparison: one sweep, the orientation as an axis. The
    // cells, seeds and numbers match the old hand-rolled loop exactly
    // (paper defaults: trace seed 2009, policy seed 0xACE1, 8×8 grid,
    // full Table I rotation).
    let spec = SweepSpec::new("orientation-study")
        .with_experiments(&[Experiment::Exp1, Experiment::Exp3])
        .with_stack_orders(&StackOrder::ALL)
        .with_policies(&[PolicyKind::Default])
        .with_sim_seconds(sim_seconds);
    let report = therm3d_bench::run_sweep_cached_or_die(&spec);

    println!("\ndynamic comparison (Default policy, Table I rotation):");
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>12}",
        "config", "orientation", "hot%", "peak°C", "vert_peak°C"
    );
    for row in &report.rows {
        let label = match row.cell.stack_order {
            StackOrder::CoresFarFromSink => "far",
            StackOrder::CoresNearSink => "near",
        };
        println!(
            "{:>8} {label:>12} {:>10.2} {:>10.1} {:>12.1}",
            row.cell.experiment.to_string(),
            row.result.hotspot_pct,
            row.result.peak_temp_c,
            row.result.vertical_peak_c
        );
    }

    println!(
        "\nreading: bonding the logic die to the spreader buys several degrees on \
         the cores — the trade-off a 3D floorplanner weighs against the memory \
         die's testability and wire-length constraints (Section IV-A)."
    );
}
