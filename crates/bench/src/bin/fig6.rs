//! Regenerates Figure 6: thermal cycles (% of sliding-window ΔT samples
//! above 20 °C) with DPM, all 11 policies on EXP-1 and EXP-3 (the two
//! systems the paper's Figure 6 shows).
//!
//! The 22-cell grid executes as one parallel sweep.

use therm3d_bench::{format_figure, run_figure};
use therm3d_floorplan::Experiment;

fn main() {
    let cfg = therm3d_bench::figure_config_or_die();
    let experiments = [Experiment::Exp1, Experiment::Exp3];
    eprintln!("running {} experiments with DPM in parallel…", experiments.len());
    let results = run_figure(&cfg, &experiments, true);
    print!(
        "{}",
        format_figure(
            "FIGURE 6. THERMAL CYCLES - WITH DPM",
            "% of sliding-window ΔT samples above 20 °C",
            |r| r.cycle_pct,
            &results,
            false,
        )
    );
}
