//! Regenerates Figure 6: thermal cycles (% of sliding-window ΔT samples
//! above 20 °C) with DPM, all 11 policies on EXP-1 and EXP-3 (the two
//! systems the paper's Figure 6 shows).

use therm3d_bench::{format_figure, run_experiment, FigureConfig};
use therm3d_floorplan::Experiment;

fn main() {
    let cfg = FigureConfig::paper_default();
    let results: Vec<_> = [Experiment::Exp1, Experiment::Exp3]
        .iter()
        .map(|&exp| {
            eprintln!("running {exp} with DPM…");
            (exp, run_experiment(&cfg, exp, true))
        })
        .collect();
    print!(
        "{}",
        format_figure(
            "FIGURE 6. THERMAL CYCLES - WITH DPM",
            "% of sliding-window ΔT samples above 20 °C",
            |r| r.cycle_pct,
            &results,
            false,
        )
    );
}
