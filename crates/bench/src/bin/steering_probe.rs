//! Diagnostic (not a paper figure): does the adaptive allocation actually
//! steer work between layers? Prints per-core mean utilization and mean
//! temperature for Default vs Adapt3D on EXP-2.

use therm3d::{SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_workload::{generate_mix, Benchmark};

fn main() {
    let exp = Experiment::Exp2;
    let sim_seconds = 60.0;
    let stack = exp.stack();
    let n = stack.num_cores();
    println!("alphas: {:?}", stack.default_thermal_indices());
    for kind in [PolicyKind::Default, PolicyKind::Adapt3d] {
        let mut cfg = SimConfig::paper_default(exp);
        cfg.thermal.ambient_c = 60.0;
        cfg.power.other_w = 3.0;
        let policy = kind.build(&stack, 0xACE1);
        let trace = generate_mix(&[Benchmark::WebMed, Benchmark::WebDb], n, sim_seconds, 2009);
        let mut util_sum = vec![0.0; n];
        let mut temp_sum = vec![0.0; n];
        let mut ticks = 0usize;
        let mut sim = Simulator::new(cfg, policy);
        let r = sim.run_with_observer(&trace, sim_seconds, |s| {
            for c in 0..n {
                util_sum[c] += s.utilization[c];
                temp_sum[c] += s.core_temps_c[c];
            }
            ticks += 1;
        });
        println!("\n{} hot%={:.1} peak={:.1}", kind.label(), r.hotspot_pct, r.peak_temp_c);
        for c in 0..n {
            println!(
                "  core {c} (layer {}): util {:.2}  temp {:.1}",
                stack.core_layer(therm3d_floorplan::CoreId(c)),
                util_sum[c] / ticks as f64,
                temp_sum[c] / ticks as f64
            );
        }
    }
}
