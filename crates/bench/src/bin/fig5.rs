//! Regenerates Figure 5: spatial gradients (% of time the worst per-layer
//! gradient exceeds 15 °C) with DPM, all 11 policies on EXP-1..4.

use therm3d_bench::{format_figure, run_experiment, FigureConfig};
use therm3d_floorplan::Experiment;

fn main() {
    let cfg = FigureConfig::paper_default();
    let results: Vec<_> = Experiment::ALL
        .iter()
        .map(|&exp| {
            eprintln!("running {exp} with DPM…");
            (exp, run_experiment(&cfg, exp, true))
        })
        .collect();
    print!(
        "{}",
        format_figure(
            "FIGURE 5. SPATIAL GRADIENTS - WITH DPM",
            "% of intervals with max per-layer gradient above 15 °C",
            |r| r.gradient_pct,
            &results,
            false,
        )
    );
}
