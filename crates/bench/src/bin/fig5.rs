//! Regenerates Figure 5: spatial gradients (% of time the worst per-layer
//! gradient exceeds 15 °C) with DPM, all 11 policies on EXP-1..4.
//!
//! The 44-cell grid executes as one parallel sweep.

use therm3d_bench::{format_figure, run_figure};
use therm3d_floorplan::Experiment;

fn main() {
    let cfg = therm3d_bench::figure_config_or_die();
    eprintln!("running {} experiments with DPM in parallel…", Experiment::ALL.len());
    let results = run_figure(&cfg, &Experiment::ALL, true);
    print!(
        "{}",
        format_figure(
            "FIGURE 5. SPATIAL GRADIENTS - WITH DPM",
            "% of intervals with max per-layer gradient above 15 °C",
            |r| r.gradient_pct,
            &results,
            false,
        )
    );
}
