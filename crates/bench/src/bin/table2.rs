//! Regenerates Table II: thermal model and floorplan parameters as
//! configured in this reproduction.

use therm3d_floorplan::niagara;
use therm3d_thermal::ThermalConfig;

fn main() {
    let cfg = ThermalConfig::paper_default();
    println!("TABLE II. THERMAL MODEL AND FLOORPLAN PARAMETERS");
    let rows: Vec<(&str, String)> = vec![
        ("Die Thickness (one stack)", format!("{:.2} mm", cfg.die_thickness_m * 1e3)),
        ("Area per Core", format!("{:.0} mm²", niagara::CORE_AREA_MM2)),
        ("Area per L2 Cache", format!("{:.0} mm²", niagara::L2_AREA_MM2)),
        (
            "Total Area of Each Layer",
            format!("{:.0} mm²", niagara::LAYER_WIDTH_MM * niagara::LAYER_HEIGHT_MM),
        ),
        ("Convection Capacitance", format!("{:.0} J/K", cfg.convection_capacitance_jk)),
        ("Convection Resistance", format!("{:.1} K/W", cfg.convection_resistance_kw)),
        (
            "Interlayer Material Thickness (3D)",
            format!("{:.2} mm", cfg.interlayer_thickness_m * 1e3),
        ),
        (
            "Interlayer Material Resistivity (joint, 1024 TSVs)",
            format!("{:.3} m·K/W", cfg.interlayer.resistivity()),
        ),
        ("Thermal grid", format!("{}x{} per layer", cfg.grid_rows, cfg.grid_cols)),
        ("Ambient", format!("{:.0} °C", cfg.ambient_c)),
    ];
    for (name, value) in rows {
        println!("{name:<50} {value}");
    }
}
