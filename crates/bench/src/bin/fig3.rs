//! Regenerates Figure 3: thermal hot spots (% of time above 85 °C)
//! WITHOUT dynamic power management, for all 11 policies on EXP-1..4,
//! plus the performance line (normalized to Default).
//!
//! The 44-cell grid executes as one parallel sweep.

use therm3d_bench::{format_figure, run_figure};
use therm3d_floorplan::Experiment;

fn main() {
    let cfg = therm3d_bench::figure_config_or_die();
    eprintln!(
        "running {} experiments x {} policies in parallel…",
        Experiment::ALL.len(),
        therm3d_policies::PolicyKind::ALL.len()
    );
    let results = run_figure(&cfg, &Experiment::ALL, false);
    print!(
        "{}",
        format_figure(
            "FIGURE 3. THERMAL HOT SPOTS (WITHOUT DPM) AND PERFORMANCE",
            "% of core-time above 85 °C; perf columns: throughput normalized to Default",
            |r| r.hotspot_pct,
            &results,
            true,
        )
    );
}
