//! Regenerates Figure 2: joint resistivity of the interface material as a
//! function of TSV area overhead (via ⌀10 µm, 10 µm spacing, 115 mm²
//! layer).

use therm3d_thermal::tsv::{joint_resistivity_for_overhead, TsvSpec};

fn main() {
    println!("FIGURE 2. EFFECT OF VIAS ON THE RESISTIVITY OF THE INTERFACE MATERIAL");
    println!("{:>10} {:>10} {:>16}", "d_TSV %", "#vias", "rho m·K/W");
    for i in 0..=20 {
        let d = i as f64 * 0.001; // 0 .. 2.0 %
        let spec = TsvSpec::paper_default().with_overhead(d);
        println!(
            "{:>10.2} {:>10} {:>16.4}",
            d * 100.0,
            spec.count,
            joint_resistivity_for_overhead(d)
        );
    }
    let paper = TsvSpec::paper_default();
    println!(
        "\npaper operating point: {} vias, overhead {:.2} %, joint resistivity {:.3} m·K/W",
        paper.count,
        paper.area_overhead_fraction() * 100.0,
        paper.joint_resistivity()
    );
}
