//! Package calibration search (diagnostic; not a paper figure).
//!
//! The paper fixes the Table II parameters (die/interlayer geometry,
//! convection R/C) but not the remaining package and power unknowns:
//! ambient at the sink, non-core logic power, spreader→sink constriction,
//! die-attach TIM thickness. This tool grid-searches those four free
//! parameters for the all-cores-busy steady-state peak that best matches
//! the operating regime the paper reports (2-layer systems borderline at
//! the 85 °C threshold, 4-layer clearly above it), printing the best fit
//! to paste into the `paper_default` constructors.

use therm3d_floorplan::Experiment;
use therm3d_power::{CorePowerInput, PowerModel, PowerParams, VfTable};
use therm3d_thermal::{ThermalConfig, ThermalModel};

/// All-busy steady-state peak block temperature for one configuration.
fn busy_peak(exp: Experiment, thermal: &ThermalConfig, power: &PowerParams) -> f64 {
    let stack = exp.stack();
    let mut model = ThermalModel::new(&stack, thermal.clone());
    let pm = PowerModel::new(&stack, power.clone(), VfTable::paper_default());
    let busy = vec![CorePowerInput::busy(); stack.num_cores()];
    let mut temps = vec![thermal.ambient_c; stack.num_blocks()];
    for _ in 0..4 {
        let p = pm.block_powers(&busy, &temps);
        temps = model.initialize_steady_state(&p);
    }
    temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

fn main() {
    // Operating-regime targets (°C, all-busy peak): EXP-1/2 borderline at
    // the 85 °C emergency threshold, EXP-3 well above it, EXP-4 worst.
    let targets = [88.0, 88.0, 100.0, 104.0];
    let weights = [2.0, 2.0, 1.0, 1.0];

    let ambients = [62.0];
    let others = [3.0];
    let s2s = [0.2, 0.25];
    // (thickness m, conductivity W/(m·K)); the first entry is HotSpot
    // v4.2's default interface material (20 µm, k = 4).
    let tims = [(20.0e-6, 2.0)];

    // (ambient °C, other-block W, spreader-to-sink K/W, (TIM m, TIM W/(m·K)))
    type Candidate = (f64, f64, f64, (f64, f64));
    let mut best: Option<(f64, [f64; 4], Candidate)> = None;
    for &ambient in &ambients {
        for &other_w in &others {
            for &r in &s2s {
                for &tim in &tims {
                    let mut tc = ThermalConfig::paper_default();
                    tc.ambient_c = ambient;
                    tc.spreader_to_sink_resistance_kw = r;
                    tc.tim_thickness_m = tim.0;
                    tc.tim = therm3d_thermal::Material::new(tim.1, 4.0e6);
                    tc = tc.with_grid(8, 8);
                    let mut pp = PowerParams::paper_default();
                    pp.other_w = other_w;
                    let peaks = [
                        busy_peak(Experiment::Exp1, &tc, &pp),
                        busy_peak(Experiment::Exp2, &tc, &pp),
                        busy_peak(Experiment::Exp3, &tc, &pp),
                        busy_peak(Experiment::Exp4, &tc, &pp),
                    ];
                    let err: f64 = peaks
                        .iter()
                        .zip(&targets)
                        .zip(&weights)
                        .map(|((p, t), w)| w * (p - t) * (p - t))
                        .sum();
                    if true {
                        if best.as_ref().is_none_or(|(e, _, _)| err < *e) {
                            best = Some((err, peaks, (ambient, other_w, r, tim)));
                        }
                        println!(
                            "err {err:8.1}  peaks {:5.1} {:5.1} {:5.1} {:5.1}  ambient={ambient} other_w={other_w} r_s2s={r} tim={:.0}µm k={}",
                            peaks[0], peaks[1], peaks[2], peaks[3], tim.0 * 1e6, tim.1
                        );
                    }
                }
            }
        }
    }
    let (err, peaks, (a, o, r, t)) = best.expect("grid is non-empty");
    println!("\nbest: err {err:.1}");
    println!(
        "  peaks: EXP1 {:.1}  EXP2 {:.1}  EXP3 {:.1}  EXP4 {:.1}",
        peaks[0], peaks[1], peaks[2], peaks[3]
    );
    println!("  ambient_c = {a}");
    println!("  other_w = {o}");
    println!("  spreader_to_sink_resistance_kw = {r}");
    println!("  tim = {:.0} µm, k = {} W/(m·K)", t.0 * 1e6, t.1);

    // Phase 2: dynamic validation of hand-picked candidates.
    use therm3d::{SimConfig, Simulator};
    use therm3d_policies::PolicyKind;
    use therm3d_workload::{generate_mix, Benchmark};

    let candidates: [(f64, f64, f64, (f64, f64)); 1] = [(45.0, 3.0, 0.2, (20.0e-6, 2.0))];
    let sim_seconds = 160.0;
    let benches = Benchmark::ALL;
    for (amb, ow, rr, tim) in candidates {
        println!(
            "\n=== dynamic: ambient={amb} other_w={ow} r_s2s={rr} tim={:.0}µm k={} ===",
            tim.0 * 1e6,
            tim.1
        );
        for exp in [Experiment::Exp3, Experiment::Exp4] {
            println!("  {exp}:");
            for kind in [
                PolicyKind::Default,
                PolicyKind::Migr,
                PolicyKind::AdaptRand,
                PolicyKind::Adapt3d,
                PolicyKind::DvfsTt,
                PolicyKind::Adapt3dDvfsTt,
            ] {
                let stack = exp.stack();
                let mut cfg = SimConfig::paper_default(exp);
                cfg.thermal.ambient_c = amb;
                cfg.thermal.spreader_to_sink_resistance_kw = rr;
                cfg.thermal.tim_thickness_m = tim.0;
                cfg.thermal.tim = therm3d_thermal::Material::new(tim.1, 4.0e6);
                cfg.power.other_w = ow;
                let policy = kind.build_with_dpm(&stack, 0xACE1, true);
                let trace = generate_mix(&benches, exp.num_cores(), sim_seconds, 2009);
                let r = Simulator::new(cfg, policy).run(&trace, sim_seconds);
                println!("    {:<18} hot={:5.1}% grad={:5.1}% cyc={:5.1}% pk={:5.1} turn={:5.2}s migr={} unfin={}", kind.label(), r.hotspot_pct, r.gradient_pct, r.cycle_pct, r.peak_temp_c, r.perf.mean_turnaround_s, r.migrations, r.unfinished);
            }
            println!();
        }
    }
}

// ---------------------------------------------------------------------
// Phase 2 (appended by the calibration workflow): dynamic validation of
// candidate operating points — measured hot-spot residency under the
// figure workload for the policies whose ordering the paper reports.
