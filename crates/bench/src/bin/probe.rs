//! Quick thermal-regime probe (not a paper figure): prints hot-spot and
//! peak statistics for Default/Adapt3D on EXP-1 and EXP-3.

use therm3d_bench::run_cell;
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;

fn main() {
    let mut cfg = therm3d_bench::figure_config_or_die();
    cfg.sim_seconds = therm3d_bench::sim_seconds_or_die(120.0);
    for exp in [Experiment::Exp1, Experiment::Exp3] {
        for kind in [PolicyKind::Default, PolicyKind::Adapt3d, PolicyKind::DvfsTt] {
            let t0 = std::time::Instant::now();
            let r = run_cell(&cfg, exp, kind, false);
            println!(
                "{exp} {kind:18} hot%={:6.2} peak={:5.1}C grad%={:5.2} cyc%={:5.2} turn={:.3}s power={:.1}W migr={} unfin={} [{:.1}s wall]",
                r.hotspot_pct, r.peak_temp_c, r.gradient_pct, r.cycle_pct,
                r.perf.mean_turnaround_s, r.mean_power_w, r.migrations, r.unfinished,
                t0.elapsed().as_secs_f64()
            );
        }
    }
}
