//! Ablation: DTM-policy robustness to thermal-sensor imperfection.
//!
//! The paper assumes perfect per-core sensors at a 100 ms sampling
//! interval. This study sweeps the engine's `sensors` axis — Gaussian
//! noise, quantization and calibration offset injected into the
//! readings the policies see (metrics always use true temperatures) —
//! and reports how gracefully each control style degrades: threshold-
//! triggered policies (DVFS_TT) react to single noisy samples, while the
//! history-averaged adaptive allocator filters noise by construction.
//!
//! The looping is entirely the sweep engine's (policies × sensor
//! profiles on EXP-3, parallel, memoized under `THERM3D_CACHE_DIR`);
//! noisy profiles seed their stream from the per-cell trace seed, so
//! every number here reproduces bit-identically — cached or not.

use therm3d::SensorProfile;
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_sweep::SweepSpec;

fn label(profile: SensorProfile) -> &'static str {
    match profile {
        SensorProfile::Ideal => "ideal",
        SensorProfile::Noisy1C => "σ=1°C noise",
        SensorProfile::Noisy3C => "σ=3°C noise",
        SensorProfile::Quantized1C => "1°C quantization",
        SensorProfile::NoisyQuantized => "σ=2°C + 1°C quant",
        SensorProfile::OffsetCool3C => "−3°C offset (reads cool)",
    }
}

fn main() {
    let sim_seconds = therm3d_bench::sim_seconds_or_die(160.0);
    let policies = [PolicyKind::DvfsTt, PolicyKind::Adapt3d, PolicyKind::Adapt3dDvfsTt];
    let spec = SweepSpec::new("sensor-noise-study")
        .with_experiments(&[Experiment::Exp3])
        .with_sensors(&SensorProfile::ALL)
        .with_policies(&policies)
        .with_sim_seconds(sim_seconds);
    let report = therm3d_bench::run_sweep_cached_or_die(&spec);

    println!("sensor-imperfection study on EXP-3 ({sim_seconds:.0} s per cell)\n");
    println!("{:<18} {:<26} {:>7} {:>8} {:>8}", "policy", "sensor", "hot%", "peak°C", "turn_s");
    for kind in policies {
        for profile in SensorProfile::ALL {
            let row = report
                .rows
                .iter()
                .find(|r| r.cell.policy == kind && r.cell.sensor == profile)
                .expect("every (policy, sensor) cell is in the sweep");
            println!(
                "{:<18} {:<26} {:>7.2} {:>8.1} {:>8.2}",
                kind.label(),
                label(profile),
                row.result.hotspot_pct,
                row.result.peak_temp_c,
                row.result.perf.mean_turnaround_s
            );
        }
        println!();
    }
    println!(
        "reading: a sensor that under-reports (negative offset) is the dangerous \
         failure mode — threshold policies stop reacting below the real 85 °C."
    );
}
