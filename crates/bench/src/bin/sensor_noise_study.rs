//! Ablation: DTM-policy robustness to thermal-sensor imperfection.
//!
//! The paper assumes perfect per-core sensors at a 100 ms sampling
//! interval. This study injects Gaussian noise and quantization into the
//! readings the policies see (metrics always use true temperatures) and
//! reports how gracefully each control style degrades: threshold-
//! triggered policies (DVFS_TT) react to single noisy samples, while the
//! history-averaged adaptive allocator filters noise by construction.

use therm3d::{SensorModel, SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_workload::{generate_mix, Benchmark};

fn run(kind: PolicyKind, sensor: SensorModel, sim_seconds: f64) -> therm3d::RunResult {
    let exp = Experiment::Exp3;
    let stack = exp.stack();
    let policy = kind.build(&stack, 0xACE1);
    let trace = generate_mix(&Benchmark::ALL, exp.num_cores(), sim_seconds, 2009);
    let mut cfg = SimConfig::paper_default(exp);
    cfg.sensor = sensor;
    Simulator::new(cfg, policy).run(&trace, sim_seconds)
}

fn main() {
    let sim_seconds = therm3d_bench::sim_seconds_or_die(160.0);
    println!("sensor-imperfection study on EXP-3 ({sim_seconds:.0} s per cell)\n");
    println!("{:<18} {:<26} {:>7} {:>8} {:>8}", "policy", "sensor", "hot%", "peak°C", "turn_s");

    let sensors: Vec<(&str, SensorModel)> = vec![
        ("ideal", SensorModel::ideal()),
        ("σ=1°C noise", SensorModel::ideal().with_noise(1.0, 7)),
        ("σ=3°C noise", SensorModel::ideal().with_noise(3.0, 7)),
        ("1°C quantization", SensorModel::ideal().with_quantization(1.0)),
        ("σ=2°C + 1°C quant", SensorModel::ideal().with_noise(2.0, 7).with_quantization(1.0)),
        ("−3°C offset (reads cool)", SensorModel::ideal().with_offset(-3.0)),
    ];

    for kind in [PolicyKind::DvfsTt, PolicyKind::Adapt3d, PolicyKind::Adapt3dDvfsTt] {
        for (label, sensor) in &sensors {
            let r = run(kind, sensor.clone(), sim_seconds);
            println!(
                "{:<18} {:<26} {:>7.2} {:>8.1} {:>8.2}",
                kind.label(),
                label,
                r.hotspot_pct,
                r.peak_temp_c,
                r.perf.mean_turnaround_s
            );
        }
        println!();
    }
    println!(
        "reading: a sensor that under-reports (negative offset) is the dangerous \
         failure mode — threshold policies stop reacting below the real 85 °C."
    );
}
