//! Regenerates Figure 4: thermal hot spots (% of time above 85 °C) WITH
//! dynamic power management (fixed-timeout sleep), all 11 policies on
//! EXP-1..4.

use therm3d_bench::{format_figure, run_experiment, FigureConfig};
use therm3d_floorplan::Experiment;

fn main() {
    let cfg = FigureConfig::paper_default();
    let results: Vec<_> = Experiment::ALL
        .iter()
        .map(|&exp| {
            eprintln!("running {exp} with DPM…");
            (exp, run_experiment(&cfg, exp, true))
        })
        .collect();
    print!(
        "{}",
        format_figure(
            "FIGURE 4. THERMAL HOT SPOTS - WITH DPM",
            "% of core-time above 85 °C",
            |r| r.hotspot_pct,
            &results,
            false,
        )
    );
}
