//! Regenerates Figure 4: thermal hot spots (% of time above 85 °C) WITH
//! dynamic power management (fixed-timeout sleep), all 11 policies on
//! EXP-1..4.
//!
//! The 44-cell grid executes as one parallel sweep.

use therm3d_bench::{format_figure, run_figure};
use therm3d_floorplan::Experiment;

fn main() {
    let cfg = therm3d_bench::figure_config_or_die();
    eprintln!("running {} experiments with DPM in parallel…", Experiment::ALL.len());
    let results = run_figure(&cfg, &Experiment::ALL, true);
    print!(
        "{}",
        format_figure(
            "FIGURE 4. THERMAL HOT SPOTS - WITH DPM",
            "% of core-time above 85 °C",
            |r| r.hotspot_pct,
            &results,
            false,
        )
    );
}
