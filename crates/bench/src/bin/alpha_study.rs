//! Ablation: static (offline) vs runtime-calibrated vs uniform thermal
//! indices for Adapt3D — the experiment behind the paper's remark that
//! "we experimented with both static and dynamic selection, and set the
//! αi values offline, as the results were very similar for both options"
//! (Section III-B).

use therm3d::{SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::{AdaptivePolicy, Policy};
use therm3d_workload::{generate_mix, Benchmark};

fn main() {
    let sim_seconds = therm3d_bench::sim_seconds_or_die(240.0);
    println!("Adapt3D thermal-index ablation ({sim_seconds:.0} s per cell)\n");
    println!(
        "{:<8} {:<22} {:>7} {:>7} {:>7} {:>8}",
        "config", "alpha source", "hot%", "grad%", "cyc%", "turn_s"
    );

    for exp in [Experiment::Exp3, Experiment::Exp4] {
        let stack = exp.stack();
        let trace = generate_mix(&Benchmark::ALL, exp.num_cores(), sim_seconds, 2009);
        let variants: Vec<(&str, Box<dyn Policy>)> = vec![
            (
                "offline (geometry)",
                Box::new(AdaptivePolicy::adapt3d(stack.default_thermal_indices(), 0xACE1)),
            ),
            (
                "runtime (measured)",
                // Recalibrate every minute of simulated time (600 ticks).
                Box::new(AdaptivePolicy::adapt3d_runtime_alpha(stack.num_cores(), 600, 0xACE1)),
            ),
            (
                "uniform (ablated)",
                Box::new(AdaptivePolicy::adapt3d(vec![0.5; stack.num_cores()], 0xACE1)),
            ),
        ];
        for (label, policy) in variants {
            let mut sim = Simulator::new(SimConfig::paper_default(exp), policy);
            let r = sim.run(&trace, sim_seconds);
            println!(
                "{:<8} {:<22} {:>7.2} {:>7.2} {:>7.2} {:>8.2}",
                exp.to_string(),
                label,
                r.hotspot_pct,
                r.gradient_pct,
                r.cycle_pct,
                r.perf.mean_turnaround_s
            );
        }
    }
    println!(
        "\nexpectation (paper): offline and runtime indices land close together; \
         the uniform ablation shows what the location awareness contributes."
    );
}
