//! Sweep-engine throughput bench emitting a `BENCH_sweep.json`
//! trajectory file (not a paper figure).
//!
//! Times the three phases a campaign spends its wall-clock in — matrix
//! expansion, parallel execution, report rendering — over a fixed
//! 4-cell spec, and writes the result as a
//! [`therm3d_telemetry::MetricsSnapshot`]: per-iteration timings land
//! in `bench.<phase>_us` histograms (the trajectory), medians in
//! `<phase>.median_us` gauges, and the context (`name`, `smoke`,
//! `engine` = the cache salt [`therm3d_sweep::ENGINE_VERSION`],
//! `samples`) in `meta`. CI archives the file per commit, so regressions
//! show up as a step in the gauge series under a stable schema.
//!
//! A second axis tracks solver scaling: the per-100 ms-tick cost of
//! the implicit and explicit-RK4 integrators on the two-die stack at
//! grid resolutions 8×8 → 64×64 lands in `grid{G}.implicit_tick_us` /
//! `grid{G}.rk4_tick_us` gauges (medians; per-sample timings in
//! `bench.grid{G}_*_us` histograms). CI asserts the ≥10× implicit
//! advantage at 64×64 from these gauges.
//!
//! Usage: `bench_sweep [OUT.json]` (default `BENCH_sweep.json`);
//! `THERM3D_BENCH_SMOKE` shrinks the run to 3 samples, recorded in the
//! `smoke` meta key so smoke and full trajectories are never conflated.

use std::time::Instant;

use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_sweep::{SweepSpec, ENGINE_VERSION};
use therm3d_telemetry::{elapsed_us, Registry};
use therm3d_thermal::{Integrator, ThermalConfig, ThermalModel};
use therm3d_workload::Benchmark;

fn bench_spec() -> SweepSpec {
    SweepSpec::new("bench-sweep")
        .with_experiments(&[Experiment::Exp1])
        .with_policies(&[PolicyKind::Default, PolicyKind::Adapt3d])
        .with_benchmarks(&[Benchmark::Gzip])
        .with_dpm(&[false, true])
        .with_sim_seconds(2.0)
        .with_grid(4, 4)
        .with_threads(2)
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The solver-scaling axis: median per-tick cost of each integrator at
/// grid resolutions up to the 10⁴-node regime, on the two-die EXP-2
/// stack under the bench power pattern.
fn grid_axis(registry: &Registry, samples: usize) {
    let stack = Experiment::Exp2.stack();
    let powers: Vec<f64> = stack
        .sites()
        .iter()
        .map(|s| match s.kind {
            therm3d_floorplan::UnitKind::Core => 3.0,
            therm3d_floorplan::UnitKind::L2Cache => 1.28,
            _ => 2.0,
        })
        .collect();
    for g in [8usize, 16, 32, 64] {
        for (integ, label) in
            [(Integrator::ImplicitCn, "implicit"), (Integrator::ExplicitRk4, "rk4")]
        {
            let cfg = ThermalConfig::paper_default().with_grid(g, g).with_integrator(integ);
            let mut model = ThermalModel::new(&stack, cfg);
            model.set_block_powers(&powers);
            // Warm up: the implicit path analyzes and factors on first use.
            model.step(0.1);
            let mut tick_us = Vec::with_capacity(samples);
            for _ in 0..samples {
                let t0 = Instant::now();
                model.step(0.1);
                tick_us.push(elapsed_us(t0));
            }
            for &us in &tick_us {
                registry.histogram_us(&format!("bench.grid{g}_{label}_us")).record(us);
            }
            let med = median(&mut tick_us);
            #[allow(clippy::cast_precision_loss)]
            registry.gauge(&format!("grid{g}.{label}_tick_us")).set(med as f64);
            println!("bench_sweep/grid{g}.{label}: median {med} us ({samples} samples)");
        }
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sweep.json".into());
    let smoke = std::env::var_os("THERM3D_BENCH_SMOKE").is_some();
    let samples = therm3d_bench::smoke_samples(15);
    let spec = bench_spec();
    let registry = Registry::new(true);

    let mut expand_us = Vec::with_capacity(samples);
    let mut run_us = Vec::with_capacity(samples);
    let mut render_us = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let cells = therm3d_sweep::expand(&spec);
        expand_us.push(elapsed_us(t0));
        assert_eq!(cells.len(), 4, "the bench matrix is fixed");

        let t0 = Instant::now();
        let report = therm3d_sweep::run(&spec).unwrap_or_else(|e| {
            eprintln!("error: bench sweep failed: {e}");
            std::process::exit(1);
        });
        run_us.push(elapsed_us(t0));

        let t0 = Instant::now();
        let csv = report.csv();
        render_us.push(elapsed_us(t0));
        assert_eq!(csv.lines().count(), 1 + 4, "header plus one row per cell");
    }

    registry.set_meta("name", "sweep");
    registry.set_meta("smoke", if smoke { "true" } else { "false" });
    registry.set_meta("engine", ENGINE_VERSION);
    registry.set_meta("samples", &samples.to_string());
    for (phase, timings) in
        [("expand", &mut expand_us), ("run", &mut run_us), ("render", &mut render_us)]
    {
        for &us in timings.iter() {
            registry.histogram_us(&format!("bench.{phase}_us")).record(us);
        }
        let med = median(timings);
        #[allow(clippy::cast_precision_loss)]
        registry.gauge(&format!("{phase}.median_us")).set(med as f64);
        println!("bench_sweep/{phase}: median {med} us ({samples} samples)");
    }

    grid_axis(&registry, samples);

    let snapshot = registry.snapshot();
    if let Err(e) = std::fs::write(&out_path, snapshot.to_json()) {
        eprintln!("error: cannot write `{out_path}`: {e}");
        std::process::exit(1);
    }
    println!("bench_sweep: wrote {out_path}");
}
