//! Sweep-engine throughput bench emitting a `BENCH_sweep.json`
//! trajectory file (not a paper figure).
//!
//! Times the three phases a campaign spends its wall-clock in — matrix
//! expansion, parallel execution, report rendering — over a fixed
//! 4-cell spec, and writes the result as a
//! [`therm3d_telemetry::MetricsSnapshot`]: per-iteration timings land
//! in `bench.<phase>_us` histograms (the trajectory), medians in
//! `<phase>.median_us` gauges, and the context (`name`, `smoke`,
//! `engine` = the cache salt [`therm3d_sweep::ENGINE_VERSION`],
//! `samples`) in `meta`. CI archives the file per commit, so regressions
//! show up as a step in the gauge series under a stable schema.
//!
//! A second axis tracks solver scaling: the per-100 ms-tick cost of
//! the implicit and explicit-RK4 integrators on the two-die stack at
//! grid resolutions 8×8 → 64×64 lands in `grid{G}.implicit_tick_us` /
//! `grid{G}.rk4_tick_us` gauges (medians; per-sample timings in
//! `bench.grid{G}_*_us` histograms). CI asserts the ≥10× implicit
//! advantage at 64×64 from these gauges.
//!
//! A third axis measures throughput mode: one streaming cell at a
//! short and a long simulated duration under the installed
//! [`CountingAllocator`], recording wall-us-per-simulated-second and
//! the heap high-water mark of each (`throughput.*` gauges). Because
//! streamed traces never materialize and metrics fold online, the
//! high-water ratio stays ≈1 however long the simulation runs — CI
//! asserts `throughput.heap_hw_ratio ≤ 1.25`.
//!
//! A fourth axis profiles allocations the way alligator-style fuzzing
//! harnesses do: seeded-random small workload configs, with the
//! allocation *count* of each phase (materialized generation, stream
//! setup, stream drain, simulation) recorded as a distribution. The
//! tripwire is `alloc.stream_drain_max`: draining a job stream after
//! setup must allocate exactly nothing (the `job-advance` lint region's
//! claim, enforced at runtime), so CI fails the bench if it ever rises
//! above zero.
//!
//! Usage: `bench_sweep [OUT.json]` (default `BENCH_sweep.json`);
//! `THERM3D_BENCH_SMOKE` shrinks the run to 3 samples, recorded in the
//! `smoke` meta key so smoke and full trajectories are never conflated.

use std::time::Instant;

use rand::{Rng, SeedableRng};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_sweep::{SweepSpec, ENGINE_VERSION};
use therm3d_telemetry::{elapsed_us, CountingAllocator, Registry};
use therm3d_thermal::{Integrator, ThermalConfig, ThermalModel};
use therm3d_workload::{Benchmark, JobSource, TraceConfig};

// The whole point of this binary's memory axes: every reading below
// comes from the process's own allocator.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn bench_spec() -> SweepSpec {
    SweepSpec::new("bench-sweep")
        .with_experiments(&[Experiment::Exp1])
        .with_policies(&[PolicyKind::Default, PolicyKind::Adapt3d])
        .with_benchmarks(&[Benchmark::Gzip])
        .with_dpm(&[false, true])
        .with_sim_seconds(2.0)
        .with_grid(4, 4)
        .with_threads(2)
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The solver-scaling axis: median per-tick cost of each integrator at
/// grid resolutions up to the 10⁴-node regime, on the two-die EXP-2
/// stack under the bench power pattern.
fn grid_axis(registry: &Registry, samples: usize) {
    let stack = Experiment::Exp2.stack();
    let powers: Vec<f64> = stack
        .sites()
        .iter()
        .map(|s| match s.kind {
            therm3d_floorplan::UnitKind::Core => 3.0,
            therm3d_floorplan::UnitKind::L2Cache => 1.28,
            _ => 2.0,
        })
        .collect();
    for g in [8usize, 16, 32, 64] {
        for (integ, label) in
            [(Integrator::ImplicitCn, "implicit"), (Integrator::ExplicitRk4, "rk4")]
        {
            let cfg = ThermalConfig::paper_default().with_grid(g, g).with_integrator(integ);
            let mut model = ThermalModel::new(&stack, cfg);
            model.set_block_powers(&powers);
            // Warm up: the implicit path analyzes and factors on first use.
            model.step(0.1);
            let mut tick_us = Vec::with_capacity(samples);
            for _ in 0..samples {
                let t0 = Instant::now();
                model.step(0.1);
                tick_us.push(elapsed_us(t0));
            }
            for &us in &tick_us {
                registry.histogram_us(&format!("bench.grid{g}_{label}_us")).record(us);
            }
            let med = median(&mut tick_us);
            #[allow(clippy::cast_precision_loss)]
            registry.gauge(&format!("grid{g}.{label}_tick_us")).set(med as f64);
            println!("bench_sweep/grid{g}.{label}: median {med} us ({samples} samples)");
        }
    }
}

/// The throughput axis: one streaming cell at a short and a long
/// simulated duration, measuring wall time per simulated second and the
/// heap high-water mark of each run. Traces stream and metrics fold
/// online, so the long run's high-water mark must match the short
/// run's; the `throughput.heap_hw_ratio` gauge is CI's tripwire.
fn throughput_axis(registry: &Registry, smoke: bool) {
    let (short_s, long_s) = if smoke { (5.0, 50.0) } else { (60.0, 3600.0) };
    let mut readings: Vec<(f64, usize, usize)> = Vec::new();
    for (label, sim_s) in [("short", short_s), ("long", long_s)] {
        let spec = bench_spec().with_sim_seconds(sim_s).with_streaming(true);
        let cell = therm3d_sweep::expand(&spec).remove(0);
        let base = therm3d_telemetry::alloc::reset_high_water();
        let allocs0 = therm3d_telemetry::alloc::allocation_count();
        let t0 = Instant::now();
        let result = therm3d_sweep::run_cell(&spec, &cell);
        let wall_us = elapsed_us(t0);
        let hw = therm3d_telemetry::alloc::high_water_bytes().saturating_sub(base);
        let allocs = therm3d_telemetry::alloc::allocation_count() - allocs0;
        assert!(result.perf.completed > 0, "the streaming cell must simulate work");
        #[allow(clippy::cast_precision_loss)]
        {
            registry.gauge(&format!("throughput.{label}_heap_hw_bytes")).set(hw as f64);
            registry.gauge(&format!("throughput.{label}_allocs")).set(allocs as f64);
            registry.gauge(&format!("throughput.{label}_us_per_sim_s")).set(wall_us as f64 / sim_s);
        }
        println!(
            "bench_sweep/throughput.{label}: {sim_s} sim-s, heap high-water {hw} B, \
             {allocs} allocs, {:.0} us/sim-s",
            wall_us as f64 / sim_s
        );
        readings.push((sim_s, hw, allocs));
    }
    let (short, long) = (readings[0], readings[1]);
    #[allow(clippy::cast_precision_loss)]
    let ratio = long.1 as f64 / short.1.max(1) as f64;
    registry.gauge("throughput.heap_hw_ratio").set(ratio);
    // Allocations the extra simulated seconds cost: with an
    // allocation-free tick loop this is amortized queue growth only,
    // far below one allocation per tick (10 ticks per simulated second).
    #[allow(clippy::cast_precision_loss)]
    let allocs_per_sim_s = (long.2 as f64 - short.2 as f64) / (long.0 - short.0);
    registry.gauge("throughput.allocs_per_sim_s").set(allocs_per_sim_s);
    println!(
        "bench_sweep/throughput: heap ratio {ratio:.3} ({} sim-s vs {} sim-s), \
         {allocs_per_sim_s:.2} allocs/sim-s",
        long.0, short.0
    );
}

/// The alloc-profile axis: seeded-random small workload configs, each
/// phase's allocation count recorded as a distribution. Streams must
/// drain without a single allocation (the `job-advance` alloc-free
/// region, enforced here at runtime on randomized inputs, not just on
/// the lint's static token scan).
fn alloc_profile_axis(registry: &Registry, samples: usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA110_CA7E);
    let mut drain_max = 0usize;
    let mut gen_counts = Vec::with_capacity(samples);
    for _ in 0..samples {
        let bench = Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())];
        let cores = rng.gen_range(2usize..16);
        let seconds = rng.gen_range(2.0f64..8.0);
        let seed = rng.gen_range(0u64..1 << 48);
        let cfg = TraceConfig::new(bench, cores, seconds).with_seed(seed);

        let a0 = therm3d_telemetry::alloc::allocation_count();
        let trace = cfg.generate();
        let gen_allocs = therm3d_telemetry::alloc::allocation_count() - a0;

        let a0 = therm3d_telemetry::alloc::allocation_count();
        let mut stream = cfg.stream();
        let setup_allocs = therm3d_telemetry::alloc::allocation_count() - a0;

        let a0 = therm3d_telemetry::alloc::allocation_count();
        let mut jobs = 0usize;
        while let Some(job) = stream.next_job() {
            jobs += 1;
            std::hint::black_box(job);
        }
        let drain_allocs = therm3d_telemetry::alloc::allocation_count() - a0;

        assert_eq!(jobs, trace.len(), "stream and materialized job counts agree");
        drain_max = drain_max.max(drain_allocs);
        gen_counts.push(gen_allocs as u64);
        registry.histogram_us("alloc.gen_allocs").record(gen_allocs as u64);
        registry.histogram_us("alloc.stream_setup_allocs").record(setup_allocs as u64);
        registry.histogram_us("alloc.stream_drain_allocs").record(drain_allocs as u64);
    }
    #[allow(clippy::cast_precision_loss)]
    registry.gauge("alloc.stream_drain_max").set(drain_max as f64);
    let med = median(&mut gen_counts);
    #[allow(clippy::cast_precision_loss)]
    registry.gauge("alloc.gen_allocs_median").set(med as f64);
    println!(
        "bench_sweep/alloc: gen median {med} allocs, stream drain max {drain_max} allocs \
         ({samples} samples)"
    );
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sweep.json".into());
    let smoke = std::env::var_os("THERM3D_BENCH_SMOKE").is_some();
    let samples = therm3d_bench::smoke_samples(15);
    let spec = bench_spec();
    let registry = Registry::new(true);

    let mut expand_us = Vec::with_capacity(samples);
    let mut run_us = Vec::with_capacity(samples);
    let mut render_us = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let cells = therm3d_sweep::expand(&spec);
        expand_us.push(elapsed_us(t0));
        assert_eq!(cells.len(), 4, "the bench matrix is fixed");

        let t0 = Instant::now();
        let report = therm3d_sweep::run(&spec).unwrap_or_else(|e| {
            eprintln!("error: bench sweep failed: {e}");
            std::process::exit(1);
        });
        run_us.push(elapsed_us(t0));

        let t0 = Instant::now();
        let csv = report.csv();
        render_us.push(elapsed_us(t0));
        assert_eq!(csv.lines().count(), 1 + 4, "header plus one row per cell");
    }

    registry.set_meta("name", "sweep");
    registry.set_meta("smoke", if smoke { "true" } else { "false" });
    registry.set_meta("engine", ENGINE_VERSION);
    registry.set_meta("samples", &samples.to_string());
    for (phase, timings) in
        [("expand", &mut expand_us), ("run", &mut run_us), ("render", &mut render_us)]
    {
        for &us in timings.iter() {
            registry.histogram_us(&format!("bench.{phase}_us")).record(us);
        }
        let med = median(timings);
        #[allow(clippy::cast_precision_loss)]
        registry.gauge(&format!("{phase}.median_us")).set(med as f64);
        println!("bench_sweep/{phase}: median {med} us ({samples} samples)");
    }

    grid_axis(&registry, samples);
    throughput_axis(&registry, smoke);
    alloc_profile_axis(&registry, samples);

    let snapshot = registry.snapshot();
    if let Err(e) = std::fs::write(&out_path, snapshot.to_json()) {
        eprintln!("error: cannot write `{out_path}`: {e}");
        std::process::exit(1);
    }
    println!("bench_sweep: wrote {out_path}");
}
