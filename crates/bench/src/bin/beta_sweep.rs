//! Ablation: sensitivity of Adapt3D to its β constants and history
//! window. The paper fixes β_inc = 0.01, β_dec = 0.1 and a 10-sample
//! window but notes "other β and history window length values can be
//! set, depending on the system and applications" — this sweep shows how
//! flat the neighbourhood is.

use therm3d::{SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::{AdaptiveConfig, AdaptivePolicy};
use therm3d_workload::{generate_mix, Benchmark};

fn run(exp: Experiment, cfg: AdaptiveConfig, sim_seconds: f64) -> therm3d::RunResult {
    let stack = exp.stack();
    let policy =
        Box::new(AdaptivePolicy::adapt3d_with_config(stack.default_thermal_indices(), cfg, 0xACE1));
    let trace = generate_mix(&Benchmark::ALL, exp.num_cores(), sim_seconds, 2009);
    Simulator::new(SimConfig::paper_default(exp), policy).run(&trace, sim_seconds)
}

fn main() {
    let sim_seconds = therm3d_bench::sim_seconds_or_die(160.0);
    let exp = Experiment::Exp3;
    println!("Adapt3D β / history-window sweep on {exp} ({sim_seconds:.0} s per cell)\n");

    println!("β sweep (history window fixed at the paper's 10 samples):");
    println!("{:>8} {:>8} {:>7} {:>7} {:>8}", "β_inc", "β_dec", "hot%", "grad%", "turn_s");
    for (bi, bd) in [(0.005, 0.05), (0.01, 0.1), (0.02, 0.2), (0.05, 0.5), (0.1, 0.1)] {
        let cfg = AdaptiveConfig { beta_inc: bi, beta_dec: bd, ..AdaptiveConfig::paper_default() };
        let r = run(exp, cfg, sim_seconds);
        println!(
            "{bi:>8.3} {bd:>8.3} {:>7.2} {:>7.2} {:>8.2}",
            r.hotspot_pct, r.gradient_pct, r.perf.mean_turnaround_s
        );
    }

    println!("\nhistory-window sweep (β at the paper's 0.01/0.1):");
    println!("{:>8} {:>7} {:>7} {:>8}", "window", "hot%", "grad%", "turn_s");
    for window in [1usize, 5, 10, 20, 50] {
        let cfg = AdaptiveConfig { history_window: window, ..AdaptiveConfig::paper_default() };
        let r = run(exp, cfg, sim_seconds);
        println!(
            "{window:>8} {:>7.2} {:>7.2} {:>8.2}",
            r.hotspot_pct, r.gradient_pct, r.perf.mean_turnaround_s
        );
    }
}
