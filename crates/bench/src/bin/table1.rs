//! Regenerates Table I: workload characteristics of the eight benchmarks,
//! plus the offered load the synthetic generator achieves for each.

use therm3d_workload::{Benchmark, TraceConfig};

fn main() {
    println!("TABLE I. WORKLOAD CHARACTERISTICS");
    println!(
        "{:<3} {:<12} {:>9} {:>9} {:>9} {:>8} {:>12}",
        "#", "Benchmark", "AvgUtil%", "L2-IMiss", "L2-DMiss", "FPinstr", "gen-offered%"
    );
    for b in Benchmark::ALL {
        let s = b.stats();
        // Verify the synthetic generator reproduces the measured average
        // utilization (600 s, 8 cores, fixed seed).
        let trace = TraceConfig::new(b, 8, 600.0).with_seed(2009).generate();
        let offered = trace.offered_utilization(8, 600.0) * 100.0;
        println!(
            "{:<3} {:<12} {:>9.2} {:>9.1} {:>9.1} {:>8.1} {:>12.2}",
            b.table_index(),
            b.name(),
            s.avg_utilization * 100.0,
            s.l2_imiss_per_100k,
            s.l2_dmiss_per_100k,
            s.fp_per_100k,
            offered
        );
    }
}
