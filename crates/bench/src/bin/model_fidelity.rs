//! Ablation: block-level vs grid thermal model — accuracy and cost.
//!
//! The paper uses HotSpot's grid model (Section IV-C); HotSpot also
//! offers a block-granularity model. This study quantifies what the grid
//! resolution buys: per-block steady-state disagreement and wall-clock
//! cost per transient step, across grid resolutions.

use std::time::Instant;

use therm3d_floorplan::{Experiment, UnitKind};
use therm3d_thermal::{BlockThermalModel, ThermalConfig, ThermalModel};

fn block_powers(exp: Experiment) -> Vec<f64> {
    exp.stack()
        .sites()
        .iter()
        .map(|s| match s.kind {
            UnitKind::Core => 3.0,
            UnitKind::L2Cache => 1.28,
            UnitKind::Crossbar => 1.0,
            UnitKind::Other => 3.0,
        })
        .collect()
}

fn main() {
    for exp in [Experiment::Exp1, Experiment::Exp3] {
        let stack = exp.stack();
        let powers = block_powers(exp);
        println!("── {exp} ({} blocks) ──", stack.num_blocks());

        // Reference: 16×16 grid.
        let mut reference =
            ThermalModel::new(&stack, ThermalConfig::paper_default().with_grid(16, 16));
        let t_ref = reference.initialize_steady_state(&powers);
        let peak_ref = t_ref.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        println!(
            "{:<14} {:>7} {:>9} {:>10} {:>12}",
            "model", "nodes", "peak °C", "maxerr °C", "µs per step"
        );
        for grid in [4usize, 8, 12] {
            let cfg = ThermalConfig::paper_default().with_grid(grid, grid);
            let mut m = ThermalModel::new(&stack, cfg);
            let t = m.initialize_steady_state(&powers);
            let peak = t.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let maxerr = t.iter().zip(&t_ref).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            m.set_block_powers(&powers);
            let t0 = Instant::now();
            for _ in 0..200 {
                m.step(0.1);
            }
            let us = t0.elapsed().as_micros() as f64 / 200.0;
            println!(
                "{:<14} {:>7} {:>9.1} {:>10.2} {:>12.1}",
                format!("grid {grid}x{grid}"),
                m.network().node_count(),
                peak,
                maxerr,
                us
            );
        }

        let mut b = BlockThermalModel::new(&stack, ThermalConfig::paper_default());
        let t = b.initialize_steady_state(&powers);
        let peak = t.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let maxerr = t.iter().zip(&t_ref).map(|(a, c)| (a - c).abs()).fold(0.0, f64::max);
        b.set_block_powers(&powers);
        let t0 = Instant::now();
        for _ in 0..200 {
            b.step(0.1);
        }
        let us = t0.elapsed().as_micros() as f64 / 200.0;
        println!(
            "{:<14} {:>7} {:>9.1} {:>10.2} {:>12.1}",
            "block-level",
            b.node_count(),
            peak,
            maxerr,
            us
        );
        println!("  (reference peak {peak_ref:.1} °C at 16x16)\n");
    }
}
