//! Bounded-memory assertions for throughput mode: a long streaming
//! simulation's heap high-water mark must match a short one's, because
//! streamed traces never materialize and the recorder folds metrics
//! online instead of accumulating histories.
//!
//! The test binary installs [`CountingAllocator`] process-wide, so
//! everything lives in ONE `#[test]` — a second concurrent test would
//! pollute the counters. Debug builds shrink the durations (the memory
//! claim is duration-independent, so it holds in any profile); CI runs
//! this file under `--release` with the real 60 s vs 3600 s split.

use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_sweep::{SweepCell, SweepSpec};
use therm3d_telemetry::alloc::{allocation_count, high_water_bytes, reset_high_water};
use therm3d_telemetry::CountingAllocator;
use therm3d_workload::Benchmark;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const RELEASE: bool = !cfg!(debug_assertions);

fn durations() -> (f64, f64) {
    if RELEASE {
        (60.0, 3600.0)
    } else {
        (5.0, 50.0)
    }
}

fn spec(sim_seconds: f64, streaming: bool) -> SweepSpec {
    SweepSpec::new("throughput-scale")
        .with_experiments(&[Experiment::Exp1])
        .with_policies(&[PolicyKind::Adapt3d])
        .with_benchmarks(&[Benchmark::Gzip])
        .with_sim_seconds(sim_seconds)
        .with_grid(4, 4)
        .with_threads(1)
        .with_streaming(streaming)
}

fn cell(spec: &SweepSpec) -> SweepCell {
    therm3d_sweep::expand(spec).remove(0)
}

/// Runs one streaming cell and returns (heap high-water delta, allocs).
fn measure(sim_seconds: f64) -> (usize, usize, therm3d::RunResult) {
    let spec = spec(sim_seconds, true);
    let cell = cell(&spec);
    let base = reset_high_water();
    let allocs0 = allocation_count();
    let result = therm3d_sweep::run_cell(&spec, &cell);
    let hw = high_water_bytes().saturating_sub(base);
    (hw, allocation_count() - allocs0, result)
}

#[test]
fn streaming_heap_high_water_is_duration_independent() {
    let (short_s, long_s) = durations();

    // Parity first (also warms allocator pools and factor caches so the
    // measured runs see steady-state heap behavior): the streamed short
    // cell is bit-identical to the materialized one.
    let streaming = spec(short_s, true);
    let materialized = spec(short_s, false);
    let streamed_result = therm3d_sweep::run_cell(&streaming, &cell(&streaming));
    let materialized_result = therm3d_sweep::run_cell(&materialized, &cell(&materialized));
    assert_eq!(streamed_result, materialized_result, "streaming must be bit-identical");

    let (hw_short, allocs_short, short_result) = measure(short_s);
    let (hw_long, allocs_long, long_result) = measure(long_s);
    assert!(short_result.perf.completed > 0, "short run must simulate work");
    assert!(
        long_result.perf.completed > short_result.perf.completed,
        "the long run simulates more jobs ({} vs {})",
        long_result.perf.completed,
        short_result.perf.completed
    );

    // The acceptance bound: simulating 60x the duration may not grow
    // the heap high-water mark beyond 25%. With streamed traces and
    // online metric folds the usual reading is a ratio of exactly 1.
    #[allow(clippy::cast_precision_loss)]
    let ratio = hw_long as f64 / hw_short.max(1) as f64;
    assert!(
        ratio <= 1.25,
        "heap high-water must be duration-independent: \
         {hw_short} B at {short_s} sim-s vs {hw_long} B at {long_s} sim-s (ratio {ratio:.3})"
    );

    // Allocation-count sanity: the tick loop is allocation-free, so the
    // extra simulated seconds cost far less than one allocation per
    // tick (10 ticks per simulated second).
    #[allow(clippy::cast_precision_loss)]
    let allocs_per_sim_s = (allocs_long as f64 - allocs_short as f64) / (long_s - short_s);
    assert!(
        allocs_per_sim_s < 1000.0,
        "tick-loop allocations regressed: {allocs_per_sim_s:.1} allocs per simulated second \
         ({allocs_short} at {short_s} s, {allocs_long} at {long_s} s)"
    );
}
