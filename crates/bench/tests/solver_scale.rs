//! Release-profile scaling assertions for the solver past 10⁴ nodes:
//! the blocked (supernodal) factorization plus level-set parallel
//! solves beat the scalar reference path at 64×64, and the implicit
//! integrator holds a ≥10× per-tick advantage over explicit RK4 at the
//! same resolution.
//!
//! Wall-clock assertions only mean something with optimizations on, so
//! debug builds (the default `cargo test`) shrink the grid and keep the
//! *correctness* halves of each test while skipping the speed asserts;
//! CI runs this file under `--release` for the real numbers.

use std::time::Instant;

use therm3d_floorplan::Experiment;
use therm3d_thermal::sparse::factor::{analyze, analyze_with_perm};
use therm3d_thermal::sparse::level::{LevelSchedule, LevelScratch};
use therm3d_thermal::sparse::CsrMatrix;
use therm3d_thermal::{Integrator, RcNetwork, ThermalConfig, ThermalModel};

/// Release asserts the paper-scale grid; debug only exercises the
/// machinery (wall-clock comparisons are meaningless unoptimized).
const RELEASE: bool = !cfg!(debug_assertions);

fn grid_side() -> usize {
    if RELEASE {
        64
    } else {
        16
    }
}

fn big_network() -> RcNetwork {
    let g = grid_side();
    let stack = Experiment::Exp2.stack();
    RcNetwork::build(&stack, &ThermalConfig::paper_default().with_grid(g, g))
}

fn uniform_rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + ((i * 13) % 7) as f64 * 0.25).collect()
}

fn solver_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).clamp(1, 8)
}

/// The pre-PR scalar pipeline: minimum-degree ordering (the quadratic
/// scaling wall past 10⁴ nodes), up-looking column factorization and
/// serial triangular solves.
fn time_scalar(a: &CsrMatrix, b: &[f64], solves: usize) -> (f64, Vec<f64>) {
    let t0 = Instant::now();
    let symbolic = analyze(a);
    let factor = symbolic.factor_numeric(a).unwrap();
    let mut x = vec![0.0; a.dim()];
    let mut scratch = vec![0.0; a.dim()];
    for _ in 0..solves {
        factor.solve_into(b, &mut scratch, &mut x);
    }
    (t0.elapsed().as_secs_f64(), x)
}

/// The new pipeline this PR adds for big grids: geometric nested
/// dissection (linear-time, no quadratic ordering pass), supernodal
/// panels for the numeric phase, level-set scheduling across `threads`
/// for every triangular solve.
fn time_blocked(
    a: &CsrMatrix,
    perm: &[usize],
    b: &[f64],
    solves: usize,
    threads: usize,
) -> (f64, Vec<f64>) {
    let t0 = Instant::now();
    let symbolic = analyze_with_perm(a, perm.to_vec());
    let plan = symbolic.supernodal_plan(a);
    let factor = symbolic.factor_numeric_blocked(a, &plan).unwrap();
    let schedule = LevelSchedule::new(&factor);
    let mut x = vec![0.0; a.dim()];
    let mut scratch = LevelScratch::new();
    for _ in 0..solves {
        schedule.solve_into(&factor, b, &mut scratch, &mut x, threads);
    }
    (t0.elapsed().as_secs_f64(), x)
}

#[test]
fn blocked_factor_and_level_set_solves_beat_scalar_at_scale() {
    let net = big_network();
    let a = net.conductance();
    let n = a.dim();
    if RELEASE {
        assert!(n > 8000, "64x64 on the two-die stack passes 10^4/2 nodes: {n}");
    }
    let perm = net.nested_dissection_perm();
    let b = uniform_rhs(n);
    // A sweep tick does 4 triangular solves (two TR-BDF2 stages of a
    // forward+backward pair); 40 solves ≈ a 10-tick working set.
    let solves = 40;
    let threads = solver_threads();
    // Warm-up round so the new path pays no first-touch costs; the
    // scalar pipeline is dominated by its deterministic ordering pass,
    // which a warm-up would only run twice.
    let _ = time_blocked(a, &perm, &b, 1, threads);
    let (scalar_s, xs) = time_scalar(a, &b, solves);
    let (blocked_s, xb) = time_blocked(a, &perm, &b, solves, threads);

    // Correctness in every profile: both are factorizations of A (under
    // different orderings, so only the solutions can be compared).
    for (i, (s, p)) in xs.iter().zip(&xb).enumerate() {
        let scale = s.abs().max(p.abs()).max(1.0);
        assert!((s - p).abs() <= 1e-7 * scale, "x[{i}]: scalar {s} vs blocked {p}");
    }
    println!(
        "solver_scale: n={n} scalar pipeline {scalar_s:.3}s vs nd+blocked+leveled {blocked_s:.3}s \
         ({threads} threads, {solves} solves)"
    );
    if RELEASE {
        assert!(
            blocked_s < scalar_s,
            "nd+blocked+level-set ({blocked_s:.3}s) must beat the scalar pipeline \
             ({scalar_s:.3}s) at {n} nodes"
        );
    }
}

#[test]
fn implicit_tick_holds_a_10x_advantage_over_rk4_at_scale() {
    let g = grid_side();
    let stack = Experiment::Exp2.stack();
    let powers: Vec<f64> = stack
        .sites()
        .iter()
        .map(|s| match s.kind {
            therm3d_floorplan::UnitKind::Core => 3.0,
            therm3d_floorplan::UnitKind::L2Cache => 1.28,
            _ => 2.0,
        })
        .collect();
    let cfg = ThermalConfig::paper_default().with_grid(g, g);
    let mut implicit =
        ThermalModel::new(&stack, cfg.clone().with_integrator(Integrator::ImplicitCn));
    let mut rk4 = ThermalModel::new(&stack, cfg.with_integrator(Integrator::ExplicitRk4));
    implicit.set_block_powers(&powers);
    rk4.set_block_powers(&powers);

    // Warm the implicit path (symbolic analysis + factors happen on the
    // first tick) and let the explicit path touch its buffers once with
    // a deliberately tiny step — a full warm-up tick would double the
    // most expensive measurement in the test.
    implicit.step(0.1);
    rk4.step(rk4.stable_dt());

    let ticks = if RELEASE { 10 } else { 2 };
    let t0 = Instant::now();
    for _ in 0..ticks {
        implicit.step(0.1);
    }
    let implicit_tick_s = t0.elapsed().as_secs_f64() / ticks as f64;

    // One full 100 ms RK4 tick: thousands of stability-bounded substeps
    // at this resolution, so one is plenty to time.
    let t0 = Instant::now();
    rk4.step(0.1);
    let rk4_tick_s = t0.elapsed().as_secs_f64();

    println!(
        "solver_scale: {g}x{g} implicit tick {:.1} us vs rk4 tick {:.1} us ({}x)",
        implicit_tick_s * 1e6,
        rk4_tick_s * 1e6,
        rk4_tick_s / implicit_tick_s
    );
    // Both transients are physically sane (the integrators advanced
    // different simulated spans here, so agreement is asserted by the
    // thermal crate's own tests, not this timing harness).
    for temps in [implicit.block_temperatures_c(), rk4.block_temperatures_c()] {
        for (i, t) in temps.iter().enumerate() {
            assert!(t.is_finite() && *t > 40.0 && *t < 150.0, "block {i}: {t}");
        }
    }
    if RELEASE {
        assert!(
            rk4_tick_s >= 10.0 * implicit_tick_s,
            "implicit must hold a >=10x per-tick advantage at {g}x{g}: \
             implicit {implicit_tick_s:.4}s vs rk4 {rk4_tick_s:.4}s"
        );
    }
}

#[test]
#[ignore]
fn phase_probe() {
    let net = big_network();
    let a = net.conductance();
    let n = a.dim();
    let perm = net.nested_dissection_perm();
    let b = uniform_rhs(n);
    let t0 = Instant::now();
    let symbolic = analyze_with_perm(a, perm.clone());
    println!("symbolic: {:?}", t0.elapsed());
    let t0 = Instant::now();
    let plan = symbolic.supernodal_plan(a);
    println!("plan: {:?} (supernodes {})", t0.elapsed(), plan.supernode_count());
    let t0 = Instant::now();
    let fs = symbolic.factor_numeric(a).unwrap();
    println!("scalar numeric: {:?}", t0.elapsed());
    let t0 = Instant::now();
    let fb = symbolic.factor_numeric_blocked(a, &plan).unwrap();
    println!("blocked numeric: {:?}", t0.elapsed());
    let t0 = Instant::now();
    let schedule = LevelSchedule::new(&fb);
    println!("schedule build: {:?}", t0.elapsed());
    let mut x = vec![0.0; n];
    let mut scr = vec![0.0; n];
    let t0 = Instant::now();
    for _ in 0..40 {
        fs.solve_into(&b, &mut scr, &mut x);
    }
    println!("40 serial solves: {:?}", t0.elapsed());
    let mut lscr = LevelScratch::new();
    for threads in [1usize, 2] {
        let t0 = Instant::now();
        for _ in 0..40 {
            schedule.solve_into(&fb, &b, &mut lscr, &mut x, threads);
        }
        println!("40 leveled solves t={threads}: {:?}", t0.elapsed());
    }
}

#[test]
#[ignore]
fn min_degree_probe() {
    use therm3d_thermal::sparse::factor::analyze;
    let net = big_network();
    let a = net.conductance();
    let t0 = Instant::now();
    let sym = analyze(a);
    println!("min_degree analyze: {:?} (nnz_l {})", t0.elapsed(), sym.nnz_l());
    let t0 = Instant::now();
    let f = sym.factor_numeric(a).unwrap();
    println!("min_degree numeric: {:?}", t0.elapsed());
    let b = uniform_rhs(a.dim());
    let mut x = vec![0.0; a.dim()];
    let mut scr = vec![0.0; a.dim()];
    let t0 = Instant::now();
    for _ in 0..40 {
        f.solve_into(&b, &mut scr, &mut x);
    }
    println!("40 serial solves (md order): {:?}", t0.elapsed());
    let perm = net.nested_dissection_perm();
    let symnd = analyze_with_perm(a, perm);
    println!("nd nnz_l {}", symnd.nnz_l());
}
