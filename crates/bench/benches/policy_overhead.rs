//! Criterion benches for the per-tick cost of every DTM policy — the
//! quantitative backing for the paper's claim that the adaptive
//! allocators are "extremely light-weight" (Section V-A): one control
//! decision plus one job placement on a 16-core system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use therm3d_floorplan::Experiment;
use therm3d_policies::{Observation, Policy, PolicyKind, QueueHint};
use therm3d_workload::{Benchmark, Job};

fn observation<'a>(
    temps: &'a [f64],
    util: &'a [f64],
    qlen: &'a [usize],
    qwork: &'a [f64],
    idle: &'a [f64],
) -> Observation<'a> {
    Observation {
        now_s: 100.0,
        tick_s: 0.1,
        core_temps_c: temps,
        utilization: util,
        queue_len: qlen,
        queued_work_s: qwork,
        idle_time_s: idle,
    }
}

fn bench_control_tick(c: &mut Criterion) {
    let stack = Experiment::Exp3.stack();
    let n = stack.num_cores();
    let temps: Vec<f64> = (0..n).map(|i| 70.0 + (i % 7) as f64 * 2.5).collect();
    let util: Vec<f64> = (0..n).map(|i| 0.3 + (i % 5) as f64 * 0.15).collect();
    let qlen = vec![1usize; n];
    let qwork: Vec<f64> = (0..n).map(|i| 0.2 * (i % 3) as f64).collect();
    let idle = vec![0.0f64; n];

    let mut group = c.benchmark_group("control_tick_16_cores");
    group.sample_size(therm3d_bench::smoke_samples(30));
    for kind in PolicyKind::ALL {
        let mut policy = kind.build(&stack, 0xACE1);
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, _| {
            b.iter(|| {
                let obs = observation(&temps, &util, &qlen, &qwork, &idle);
                policy.control(&obs)
            });
        });
    }
    group.finish();
}

fn bench_place_job(c: &mut Criterion) {
    let stack = Experiment::Exp3.stack();
    let n = stack.num_cores();
    let temps: Vec<f64> = (0..n).map(|i| 70.0 + (i % 7) as f64 * 2.5).collect();
    let util = vec![0.5f64; n];
    let qlen = vec![1usize; n];
    let qwork: Vec<f64> = (0..n).map(|i| 0.2 * (i % 3) as f64).collect();
    let idle = vec![0.0f64; n];
    let job = Job::new(1, 100.0, 0.5, 0.4, Benchmark::WebMed);

    let mut group = c.benchmark_group("place_job_16_cores");
    group.sample_size(therm3d_bench::smoke_samples(30));
    for kind in [
        PolicyKind::Default,
        PolicyKind::Migr,
        PolicyKind::AdaptRand,
        PolicyKind::Adapt3d,
        PolicyKind::Adapt3dDvfsTt,
    ] {
        let mut policy = kind.build(&stack, 0xACE1);
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, _| {
            b.iter(|| {
                let obs = observation(&temps, &util, &qlen, &qwork, &idle);
                let hint = QueueHint { queued_work_s: &qwork, queue_len: &qlen };
                policy.place_job(&job, &obs, &hint)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_control_tick, bench_place_job);
criterion_main!(benches);
