//! Criterion benches for the end-to-end experiment harness: simulated
//! seconds per wall-clock second for each 3D system, and the cost of one
//! full figure cell at reduced duration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use therm3d::{SimConfig, Simulator};
use therm3d_bench::{run_cell, FigureConfig};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_workload::{generate_mix, Benchmark};

fn bench_simulated_second(c: &mut Criterion) {
    // One simulated second (10 ticks) of the coupled loop per experiment,
    // paper-default 8×8 grid, Adapt3D under a server mix.
    let mut group = c.benchmark_group("simulate_one_second");
    group.sample_size(therm3d_bench::smoke_samples(20));
    for exp in Experiment::ALL {
        let stack = exp.stack();
        let trace = generate_mix(&Benchmark::ALL, exp.num_cores(), 1.0, 2009);
        group.bench_with_input(BenchmarkId::from_parameter(exp), &exp, |b, _| {
            b.iter_batched(
                || {
                    Simulator::new(
                        SimConfig::paper_default(exp),
                        PolicyKind::Adapt3d.build(&stack, 0xACE1),
                    )
                },
                |mut sim| sim.run(&trace, 1.0),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_figure_cell(c: &mut Criterion) {
    // One full (experiment, policy) figure cell at the quick duration —
    // the unit of work behind every bar of Figures 3–6.
    let mut group = c.benchmark_group("figure_cell_quick");
    group.sample_size(therm3d_bench::smoke_samples(10));
    let cfg = FigureConfig::quick();
    for kind in [PolicyKind::Default, PolicyKind::Adapt3d, PolicyKind::Adapt3dDvfsTt] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| run_cell(&cfg, Experiment::Exp2, k, false));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulated_second, bench_figure_cell);
criterion_main!(benches);
