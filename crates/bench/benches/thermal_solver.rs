//! Criterion benches for the RC thermal solver: steady-state conjugate
//! gradients and transient RK4 stepping across the four experiment
//! stacks and across grid resolutions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use therm3d_floorplan::Experiment;
use therm3d_thermal::{ThermalConfig, ThermalModel};

fn block_powers(exp: Experiment) -> Vec<f64> {
    let stack = exp.stack();
    stack
        .sites()
        .iter()
        .map(|s| match s.kind {
            therm3d_floorplan::UnitKind::Core => 3.0,
            therm3d_floorplan::UnitKind::L2Cache => 1.28,
            therm3d_floorplan::UnitKind::Crossbar => 1.0,
            therm3d_floorplan::UnitKind::Other => 3.0,
        })
        .collect()
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state");
    for exp in Experiment::ALL {
        let stack = exp.stack();
        let powers = block_powers(exp);
        group.bench_with_input(BenchmarkId::from_parameter(exp), &exp, |b, _| {
            b.iter_batched(
                || ThermalModel::new(&stack, ThermalConfig::paper_default()),
                |mut model| model.initialize_steady_state(&powers),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_transient_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_100ms_step");
    for exp in Experiment::ALL {
        let stack = exp.stack();
        let powers = block_powers(exp);
        let mut model = ThermalModel::new(&stack, ThermalConfig::paper_default());
        model.set_block_powers(&powers);
        group.bench_with_input(BenchmarkId::from_parameter(exp), &exp, |b, _| {
            b.iter(|| model.step(0.1));
        });
    }
    group.finish();
}

fn bench_grid_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_step_grid");
    let exp = Experiment::Exp3;
    let stack = exp.stack();
    let powers = block_powers(exp);
    for grid in [4usize, 8, 16] {
        let mut model =
            ThermalModel::new(&stack, ThermalConfig::paper_default().with_grid(grid, grid));
        model.set_block_powers(&powers);
        group.bench_with_input(BenchmarkId::from_parameter(grid), &grid, |b, _| {
            b.iter(|| model.step(0.1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steady_state, bench_transient_step, bench_grid_scaling);
criterion_main!(benches);
