//! Criterion benches for the RC thermal solver: steady-state
//! initialization (direct LDLᵀ solve) and the transient 100 ms tick
//! under both integrators — the pre-factored implicit default and the
//! explicit RK4 golden reference — across the four experiment stacks
//! and across grid resolutions.
//!
//! These are the ROADMAP's regression tripwire for the hot path: CI
//! runs them in smoke mode (`THERM3D_BENCH_SMOKE=1`, fewer samples) and
//! archives the timing lines as a build artifact, so a per-tick
//! regression shows up as a diff between artifacts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use therm3d_floorplan::Experiment;
use therm3d_thermal::{Integrator, ThermalConfig, ThermalModel};

fn block_powers(exp: Experiment) -> Vec<f64> {
    let stack = exp.stack();
    stack
        .sites()
        .iter()
        .map(|s| match s.kind {
            therm3d_floorplan::UnitKind::Core => 3.0,
            therm3d_floorplan::UnitKind::L2Cache => 1.28,
            therm3d_floorplan::UnitKind::Crossbar => 1.0,
            therm3d_floorplan::UnitKind::Other => 3.0,
        })
        .collect()
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state");
    group.sample_size(therm3d_bench::smoke_samples(30));
    for exp in Experiment::ALL {
        let stack = exp.stack();
        let powers = block_powers(exp);
        group.bench_with_input(BenchmarkId::from_parameter(exp), &exp, |b, _| {
            b.iter_batched(
                || ThermalModel::new(&stack, ThermalConfig::paper_default()),
                |mut model| model.initialize_steady_state(&powers),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// One 100 ms tick, per experiment and integrator — the acceptance
/// comparison for the implicit solver (expect ≥10× vs RK4 everywhere).
fn bench_transient_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_100ms_step");
    group.sample_size(therm3d_bench::smoke_samples(30));
    for exp in Experiment::ALL {
        let stack = exp.stack();
        let powers = block_powers(exp);
        for integ in Integrator::ALL {
            let mut model =
                ThermalModel::new(&stack, ThermalConfig::paper_default().with_integrator(integ));
            model.set_block_powers(&powers);
            // Warm up: the implicit path factors once on first use.
            model.step(0.1);
            group.bench_with_input(BenchmarkId::new(&format!("{exp}"), integ), &exp, |b, _| {
                b.iter(|| model.step(0.1));
            });
        }
    }
    group.finish();
}

fn bench_grid_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_step_grid");
    group.sample_size(therm3d_bench::smoke_samples(20));
    let exp = Experiment::Exp3;
    let stack = exp.stack();
    let powers = block_powers(exp);
    // 32×32 and up cross into the blocked/level-set regime on the
    // four-die stack (≥ 4096 cell nodes); 64×64 is the 10⁴-node case
    // the ROADMAP's scaling item targets.
    for grid in [4usize, 8, 16, 32, 64] {
        for integ in Integrator::ALL {
            let cfg = ThermalConfig::paper_default().with_grid(grid, grid).with_integrator(integ);
            let mut model = ThermalModel::new(&stack, cfg);
            model.set_block_powers(&powers);
            model.step(0.1);
            group.bench_with_input(
                BenchmarkId::new(&format!("{grid}x{grid}"), integ),
                &grid,
                |b, _| {
                    b.iter(|| model.step(0.1));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_steady_state, bench_transient_step, bench_grid_scaling);
criterion_main!(benches);
