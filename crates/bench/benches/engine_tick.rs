//! Criterion bench for a full coupled engine tick: workload → policy →
//! scheduler → power (leakage feedback) → thermal → sensors → metrics.
//!
//! Each iteration simulates ten seconds (one hundred 100 ms ticks) of
//! the EXP-2 system under the Adapt3D policy on the fast 4×4 grid,
//! under both transient integrators — long enough to amortize the
//! implicit path's one-time factorization exactly as a real campaign
//! does. Divide the printed per-iteration time by one hundred for the
//! per-tick cost. Part of the CI smoke-bench regression tripwire
//! (`THERM3D_BENCH_SMOKE=1`).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use therm3d::{SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_thermal::Integrator;
use therm3d_workload::{Benchmark, TraceConfig};

fn bench_engine_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_10s_100ticks");
    group.sample_size(therm3d_bench::smoke_samples(8));
    let exp = Experiment::Exp2;
    let stack = exp.stack();
    let trace = TraceConfig::new(Benchmark::WebMed, stack.num_cores(), 10.0).generate();
    for integ in Integrator::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(integ), &integ, |b, &integ| {
            b.iter_batched(
                || {
                    let cfg = SimConfig::fast(exp).with_integrator(integ);
                    Simulator::new(cfg, PolicyKind::Adapt3d.build(&stack, 7))
                },
                |mut sim| sim.run(&trace, 10.0),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_second);
criterion_main!(benches);
