//! Floorplan geometry and 3D stack construction for the `therm3d` dynamic
//! thermal management simulator.
//!
//! This crate models the *spatial* side of the DATE 2009 paper
//! "Dynamic Thermal Management in 3D Multicore Architectures"
//! (Coskun et al.): rectangles, named functional blocks, validated
//! single-layer floorplans, stacked 3D systems, and the four experimental
//! configurations (EXP-1..EXP-4) derived from the UltraSPARC T1.
//!
//! # Quick start
//!
//! ```
//! use therm3d_floorplan::Experiment;
//!
//! let stack = Experiment::Exp1.stack();
//! assert_eq!(stack.num_cores(), 8);
//! for site in stack.sites() {
//!     println!("{} is a {:?} of {:.1} mm²", site.global_name, site.kind, site.area_mm2);
//! }
//! ```
//!
//! Lengths are millimetres throughout (matching the paper's Table II); the
//! thermal crate converts to SI units internally.

pub mod block;
pub mod experiment;
pub mod floorplan;
pub mod geom;
pub mod niagara;
pub mod stack;

pub use block::{Block, UnitKind};
pub use experiment::{Experiment, ParseExperimentError, StackOrder};
pub use floorplan::{BuildFloorplanError, Floorplan};
pub use geom::Rect;
pub use stack::{BlockSite, CoreId, Stack3d};
