//! Floorplan blocks: named functional units with a footprint.

use std::fmt;

use crate::geom::Rect;

/// The functional role of a floorplan block.
///
/// The role determines how the power model drives the block (cores consume
/// state-dependent dynamic power, caches a constant access-scaled power,
/// the crossbar traffic-scaled power) and which blocks the scheduler can
/// target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnitKind {
    /// A SPARC processing core — schedulable, DVFS-capable.
    Core,
    /// An L2 data cache bank (`scdata` in the UltraSPARC T1 floorplan).
    L2Cache,
    /// The cores↔caches crossbar interconnect.
    Crossbar,
    /// Everything else: I/O pads, FPU, DRAM controllers, unused silicon.
    Other,
}

impl UnitKind {
    /// Returns `true` for blocks the scheduler can assign threads to.
    #[must_use]
    pub fn is_schedulable(self) -> bool {
        matches!(self, UnitKind::Core)
    }
}

impl fmt::Display for UnitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnitKind::Core => "core",
            UnitKind::L2Cache => "l2",
            UnitKind::Crossbar => "crossbar",
            UnitKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// A named functional unit occupying a rectangle of a die layer.
///
/// # Examples
///
/// ```
/// use therm3d_floorplan::{Block, UnitKind, geom::Rect};
///
/// let b = Block::new("core0", UnitKind::Core, Rect::new(0.0, 0.0, 2.5, 4.0));
/// assert_eq!(b.name(), "core0");
/// assert!((b.area() - 10.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    name: String,
    kind: UnitKind,
    rect: Rect,
}

impl Block {
    /// Creates a block.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty; block names key power traces and results
    /// tables, so they must be non-empty and should be unique per layer
    /// (uniqueness is enforced by [`crate::Floorplan`]).
    #[must_use]
    pub fn new(name: impl Into<String>, kind: UnitKind, rect: Rect) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "block name must not be empty");
        Self { name, kind, rect }
    }

    /// The block's name, unique within its floorplan.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functional role of the block.
    #[must_use]
    pub fn kind(&self) -> UnitKind {
        self.kind
    }

    /// The block footprint.
    #[must_use]
    pub fn rect(&self) -> &Rect {
        &self.rect
    }

    /// Footprint area in mm².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.rect.area()
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}) {}", self.name, self.kind, self.rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_accessors() {
        let b = Block::new("xbar", UnitKind::Crossbar, Rect::new(0.0, 0.0, 5.0, 2.0));
        assert_eq!(b.name(), "xbar");
        assert_eq!(b.kind(), UnitKind::Crossbar);
        assert!((b.area() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "name must not be empty")]
    fn empty_name_rejected() {
        let _ = Block::new("", UnitKind::Core, Rect::new(0.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn only_cores_schedulable() {
        assert!(UnitKind::Core.is_schedulable());
        assert!(!UnitKind::L2Cache.is_schedulable());
        assert!(!UnitKind::Crossbar.is_schedulable());
        assert!(!UnitKind::Other.is_schedulable());
    }

    #[test]
    fn display_formats() {
        let b = Block::new("core0", UnitKind::Core, Rect::new(0.0, 0.0, 1.0, 1.0));
        let s = format!("{b}");
        assert!(s.contains("core0") && s.contains("core"));
    }
}
