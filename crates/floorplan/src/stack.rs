//! 3D die stacks: ordered layers of floorplans plus global block/core
//! indexing.

use std::collections::BTreeMap;
use std::fmt;

use crate::block::UnitKind;
use crate::floorplan::Floorplan;

/// Identifier of a processing core within a [`Stack3d`], dense in
/// `0..num_cores()`.
///
/// Core ids are assigned layer by layer starting from the layer nearest the
/// heat sink, in floorplan block order, so they are stable and reproducible
/// for a given stack construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Location of one block within the stack, with a globally unique name of
/// the form `L{layer}.{block-name}`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSite {
    /// Layer index; 0 is the layer adjacent to the heat spreader/sink.
    pub layer: usize,
    /// Block index within that layer's floorplan.
    pub block: usize,
    /// Globally unique name, e.g. `L1.core3`.
    pub global_name: String,
    /// The block's functional role.
    pub kind: UnitKind,
    /// Block area in mm².
    pub area_mm2: f64,
}

/// A stack of die layers forming a 3D multicore system.
///
/// Layer 0 is the silicon layer **closest to the heat spreader and sink**;
/// higher indices are further away and therefore cool less efficiently —
/// the asymmetry that motivates the paper's Adapt3D policy.
///
/// # Examples
///
/// ```
/// use therm3d_floorplan::{niagara, Stack3d};
///
/// let stack = Stack3d::new(vec![
///     ("cores".to_owned(), niagara::core_layer()),
///     ("caches".to_owned(), niagara::cache_layer()),
/// ]);
/// assert_eq!(stack.layer_count(), 2);
/// assert_eq!(stack.num_cores(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct Stack3d {
    layers: Vec<Floorplan>,
    layer_names: Vec<String>,
    sites: Vec<BlockSite>,
    /// Global site index for each `(layer, block)` pair. Ordered so
    /// any future iteration over it is deterministic (stack summaries
    /// feed sweep CSV output).
    site_by_loc: BTreeMap<(usize, usize), usize>,
    /// Global site index of each core, ordered by `CoreId`.
    core_sites: Vec<usize>,
}

impl Stack3d {
    /// Assembles a stack from named layers, ordered bottom (heat-sink side)
    /// to top.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or if two layers have different die
    /// outlines (3D stacking requires congruent dies).
    #[must_use]
    pub fn new(layers: Vec<(String, Floorplan)>) -> Self {
        assert!(!layers.is_empty(), "a stack needs at least one layer");
        let outline = *layers[0].1.outline();
        for (name, fp) in &layers {
            assert!(
                (fp.outline().width - outline.width).abs() < 1e-9
                    && (fp.outline().height - outline.height).abs() < 1e-9,
                "layer `{name}` outline differs from the first layer"
            );
        }
        let (layer_names, layers): (Vec<_>, Vec<_>) = layers.into_iter().unzip();
        let mut sites = Vec::new();
        let mut site_by_loc = BTreeMap::new();
        let mut core_sites = Vec::new();
        for (li, fp) in layers.iter().enumerate() {
            for (bi, b) in fp.blocks().iter().enumerate() {
                let idx = sites.len();
                sites.push(BlockSite {
                    layer: li,
                    block: bi,
                    global_name: format!("L{li}.{}", b.name()),
                    kind: b.kind(),
                    area_mm2: b.area(),
                });
                site_by_loc.insert((li, bi), idx);
                if b.kind() == UnitKind::Core {
                    core_sites.push(idx);
                }
            }
        }
        Self { layers, layer_names, sites, site_by_loc, core_sites }
    }

    /// Number of silicon layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The floorplan of layer `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= layer_count()`.
    #[must_use]
    pub fn layer(&self, layer: usize) -> &Floorplan {
        &self.layers[layer]
    }

    /// The name given to layer `layer` at construction.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= layer_count()`.
    #[must_use]
    pub fn layer_name(&self, layer: usize) -> &str {
        &self.layer_names[layer]
    }

    /// All layers, bottom first.
    #[must_use]
    pub fn layers(&self) -> &[Floorplan] {
        &self.layers
    }

    /// Every block in the stack with its global index equal to the slice
    /// position.
    #[must_use]
    pub fn sites(&self) -> &[BlockSite] {
        &self.sites
    }

    /// Total number of blocks across all layers.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.sites.len()
    }

    /// Global site index of the block at `(layer, block)`.
    #[must_use]
    pub fn site_index(&self, layer: usize, block: usize) -> Option<usize> {
        self.site_by_loc.get(&(layer, block)).copied()
    }

    /// Number of processing cores in the stack.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.core_sites.len()
    }

    /// Iterates over core ids.
    pub fn core_ids(&self) -> impl Iterator<Item = CoreId> {
        (0..self.num_cores()).map(CoreId)
    }

    /// Global site index of core `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_site(&self, core: CoreId) -> &BlockSite {
        &self.sites[self.core_sites[core.0]]
    }

    /// Global block index of core `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_block_index(&self, core: CoreId) -> usize {
        self.core_sites[core.0]
    }

    /// The layer a core sits on.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_layer(&self, core: CoreId) -> usize {
        self.core_site(core).layer
    }

    /// Pairs of global block indices that overlap in plan view on
    /// **adjacent layers** — the vertically coupled block pairs whose
    /// temperature difference stresses the TSVs between them (the
    /// quantity Section V-C of the paper investigates).
    ///
    /// Pairs are ordered `(lower, upper)` and each pair appears once.
    ///
    /// # Examples
    ///
    /// ```
    /// use therm3d_floorplan::Experiment;
    ///
    /// let stack = Experiment::Exp1.stack();
    /// let pairs = stack.vertical_adjacency();
    /// assert!(!pairs.is_empty());
    /// for (lo, hi) in pairs {
    ///     assert_eq!(stack.sites()[hi].layer, stack.sites()[lo].layer + 1);
    /// }
    /// ```
    #[must_use]
    pub fn vertical_adjacency(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for upper in 1..self.layer_count() {
            let lower = upper - 1;
            for (bi_lo, b_lo) in self.layers[lower].blocks().iter().enumerate() {
                for (bi_hi, b_hi) in self.layers[upper].blocks().iter().enumerate() {
                    if b_lo.rect().intersection_area(b_hi.rect()) > 1e-9 {
                        let lo = self.site_by_loc[&(lower, bi_lo)];
                        let hi = self.site_by_loc[&(upper, bi_hi)];
                        pairs.push((lo, hi));
                    }
                }
            }
        }
        pairs
    }

    /// Default per-core thermal indices `α_i ∈ (0, 1)` for the Adapt3D
    /// policy: higher means more prone to hot spots.
    ///
    /// The paper sets the indices offline from the steady-state temperatures
    /// of cores under typical workloads, which are determined by (a) the
    /// layer's distance from the heat sink and (b) the core's centrality
    /// within its layer. This helper scores exactly those two factors:
    ///
    /// ```text
    /// score_i = 0.15 + 0.60 · layer/(L−1) + 0.20 · centrality
    /// ```
    ///
    /// (with the layer term zero for single-layer stacks), then normalizes
    /// the scores so their **mean is 0.5**, clamped to `[0.05, 0.95]`.
    /// Normalization keeps the Adapt3D increase/decrease dynamics balanced
    /// regardless of where the cores happen to sit — on a stack whose
    /// cores all share one layer (EXP-1), the index degenerates to a
    /// centrality ranking around 0.5, which is why the paper observes
    /// Adapt3D ≈ Adaptive-Random there. Callers calibrating against a
    /// specific thermal model can instead measure steady-state
    /// temperatures and pass their own indices to the policy.
    #[must_use]
    pub fn default_thermal_indices(&self) -> Vec<f64> {
        let denom = (self.layer_count().saturating_sub(1)).max(1) as f64;
        let scores: Vec<f64> = self
            .core_ids()
            .map(|c| {
                let site = self.core_site(c);
                let layer_frac =
                    if self.layer_count() > 1 { site.layer as f64 / denom } else { 0.0 };
                let centrality = self.layers[site.layer].centrality(site.block);
                0.15 + 0.60 * layer_frac + 0.20 * centrality
            })
            .collect();
        let mean: f64 = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
        scores.iter().map(|s| (0.5 * s / mean).clamp(0.05, 0.95)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::niagara;

    fn two_layer() -> Stack3d {
        Stack3d::new(vec![
            ("cores".to_owned(), niagara::core_layer()),
            ("caches".to_owned(), niagara::cache_layer()),
        ])
    }

    #[test]
    fn global_indexing_is_dense_and_consistent() {
        let s = two_layer();
        assert_eq!(s.num_blocks(), s.layer(0).len() + s.layer(1).len());
        for (i, site) in s.sites().iter().enumerate() {
            assert_eq!(s.site_index(site.layer, site.block), Some(i));
        }
    }

    #[test]
    fn core_enumeration() {
        let s = two_layer();
        assert_eq!(s.num_cores(), 8);
        for c in s.core_ids() {
            assert_eq!(s.core_site(c).kind, UnitKind::Core);
            assert_eq!(s.core_layer(c), 0, "all cores are on layer 0 in EXP-1");
        }
    }

    #[test]
    fn global_names_are_unique() {
        let s = Stack3d::new(vec![
            ("a".to_owned(), niagara::mixed_layer()),
            ("b".to_owned(), niagara::mixed_layer()),
        ]);
        let mut names: Vec<_> = s.sites().iter().map(|x| x.global_name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.num_blocks());
    }

    #[test]
    fn thermal_indices_increase_with_layer() {
        let s = Stack3d::new(vec![
            ("a".to_owned(), niagara::mixed_layer()),
            ("b".to_owned(), niagara::mixed_layer()),
        ]);
        let alpha = s.default_thermal_indices();
        assert_eq!(alpha.len(), 8);
        // Cores 0..4 on layer 0, 4..8 on layer 1; layer-1 cores hotter.
        for i in 0..4 {
            assert!(
                alpha[i + 4] > alpha[i],
                "core {} on upper layer should have larger α ({} vs {})",
                i + 4,
                alpha[i + 4],
                alpha[i]
            );
        }
        for a in alpha {
            assert!(a > 0.0 && a < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_stack_rejected() {
        let _ = Stack3d::new(vec![]);
    }

    #[test]
    fn layer_accessors() {
        let s = two_layer();
        assert_eq!(s.layer_name(0), "cores");
        assert_eq!(s.layer_name(1), "caches");
        assert_eq!(s.layers().len(), 2);
        assert_eq!(s.layer(1).cores().count(), 0);
    }
}
