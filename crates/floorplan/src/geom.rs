//! Planar geometry primitives used by floorplans.
//!
//! All lengths are in **millimetres** and all areas in **mm²**; the thermal
//! crate converts to SI units when building the RC network. Millimetres are
//! used here because every dimension in the paper (Table II) is quoted in
//! millimetres, which keeps the floorplan definitions literally comparable
//! with the publication.

use std::fmt;

/// An axis-aligned rectangle, the footprint of a floorplan block.
///
/// The rectangle is anchored at its lower-left corner `(x, y)` and extends
/// `width` to the right and `height` upwards.
///
/// # Examples
///
/// ```
/// use therm3d_floorplan::geom::Rect;
///
/// let core = Rect::new(0.0, 0.0, 2.875, 3.478_260_869_565_217_3);
/// assert!((core.area() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// X coordinate of the lower-left corner, in mm.
    pub x: f64,
    /// Y coordinate of the lower-left corner, in mm.
    pub y: f64,
    /// Horizontal extent, in mm. Always positive for a valid rectangle.
    pub width: f64,
    /// Vertical extent, in mm. Always positive for a valid rectangle.
    pub height: f64,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and extents.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is not strictly positive or not finite,
    /// or if `x`/`y` are not finite. Floorplan geometry is static input data,
    /// so malformed values are programming errors rather than recoverable
    /// conditions.
    #[must_use]
    pub fn new(x: f64, y: f64, width: f64, height: f64) -> Self {
        assert!(x.is_finite() && y.is_finite(), "rect origin must be finite");
        assert!(
            width.is_finite() && width > 0.0,
            "rect width must be positive and finite, got {width}"
        );
        assert!(
            height.is_finite() && height > 0.0,
            "rect height must be positive and finite, got {height}"
        );
        Self { x, y, width, height }
    }

    /// The area of the rectangle in mm².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// X coordinate of the right edge.
    #[must_use]
    pub fn right(&self) -> f64 {
        self.x + self.width
    }

    /// Y coordinate of the top edge.
    #[must_use]
    pub fn top(&self) -> f64 {
        self.y + self.height
    }

    /// Coordinates of the geometric centre `(cx, cy)`.
    #[must_use]
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// Returns `true` if `self` and `other` overlap with positive area.
    ///
    /// Rectangles that merely share an edge or a corner do **not** overlap.
    /// A small tolerance absorbs floating-point noise from floorplan
    /// construction arithmetic.
    #[must_use]
    pub fn overlaps(&self, other: &Rect) -> bool {
        const EPS: f64 = 1e-9;
        self.x + EPS < other.right()
            && other.x + EPS < self.right()
            && self.y + EPS < other.top()
            && other.y + EPS < self.top()
    }

    /// Area of the intersection of `self` and `other`, in mm² (zero if
    /// disjoint).
    #[must_use]
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = self.right().min(other.right()) - self.x.max(other.x);
        let h = self.top().min(other.top()) - self.y.max(other.y);
        if w > 0.0 && h > 0.0 {
            w * h
        } else {
            0.0
        }
    }

    /// Returns `true` if `self` lies entirely within `outer` (edges may
    /// touch).
    #[must_use]
    pub fn contained_in(&self, outer: &Rect) -> bool {
        const EPS: f64 = 1e-9;
        self.x >= outer.x - EPS
            && self.y >= outer.y - EPS
            && self.right() <= outer.right() + EPS
            && self.top() <= outer.top() + EPS
    }

    /// Returns `true` if the point `(px, py)` lies inside the rectangle.
    ///
    /// Points on the lower/left edges are inside, points on the upper/right
    /// edges are outside; this half-open convention lets a set of tiling
    /// rectangles partition the plane without double counting.
    #[must_use]
    pub fn contains_point(&self, px: f64, py: f64) -> bool {
        px >= self.x && px < self.right() && py >= self.y && py < self.top()
    }

    /// Length of the shared boundary between two non-overlapping rectangles,
    /// in mm. Zero if they are not edge-adjacent.
    ///
    /// This is the contact length used for lateral thermal conductance
    /// between neighbouring blocks.
    #[must_use]
    pub fn shared_edge_length(&self, other: &Rect) -> f64 {
        const EPS: f64 = 1e-9;
        // Vertical contact: right edge of one touches left edge of the other.
        if (self.right() - other.x).abs() < EPS || (other.right() - self.x).abs() < EPS {
            let lo = self.y.max(other.y);
            let hi = self.top().min(other.top());
            return (hi - lo).max(0.0);
        }
        // Horizontal contact: top edge of one touches bottom edge of the other.
        if (self.top() - other.y).abs() < EPS || (other.top() - self.y).abs() < EPS {
            let lo = self.x.max(other.x);
            let hi = self.right().min(other.right());
            return (hi - lo).max(0.0);
        }
        0.0
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3},{:.3} {:.3}x{:.3} mm]", self.x, self.y, self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_edges() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert!((r.area() - 12.0).abs() < 1e-12);
        assert!((r.right() - 4.0).abs() < 1e-12);
        assert!((r.top() - 6.0).abs() < 1e-12);
        assert_eq!(r.center(), (2.5, 4.0));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = Rect::new(0.0, 0.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "height must be positive")]
    fn negative_height_rejected() {
        let _ = Rect::new(0.0, 0.0, 1.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "origin must be finite")]
    fn nan_origin_rejected() {
        let _ = Rect::new(f64::NAN, 0.0, 1.0, 1.0);
    }

    #[test]
    fn overlap_detection() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        let c = Rect::new(2.0, 0.0, 2.0, 2.0); // shares an edge with a
        let d = Rect::new(5.0, 5.0, 1.0, 1.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "edge contact is not overlap");
        assert!(!a.overlaps(&d));
    }

    #[test]
    fn intersection_area_values() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert!((a.intersection_area(&b) - 1.0).abs() < 1e-12);
        let c = Rect::new(3.0, 3.0, 1.0, 1.0);
        assert_eq!(a.intersection_area(&c), 0.0);
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(inner.contained_in(&outer));
        let out = Rect::new(5.0, 5.0, 6.0, 1.0);
        assert!(!out.contained_in(&outer));
    }

    #[test]
    fn half_open_point_membership() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains_point(0.0, 0.0));
        assert!(!r.contains_point(1.0, 0.5));
        assert!(!r.contains_point(0.5, 1.0));
        assert!(r.contains_point(0.999_999, 0.999_999));
    }

    #[test]
    fn shared_edges() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(2.0, 1.0, 2.0, 2.0); // vertical contact y in [1,2]
        assert!((a.shared_edge_length(&b) - 1.0).abs() < 1e-12);
        let c = Rect::new(0.5, 2.0, 1.0, 1.0); // horizontal contact x in [0.5,1.5]
        assert!((a.shared_edge_length(&c) - 1.0).abs() < 1e-12);
        let d = Rect::new(10.0, 10.0, 1.0, 1.0);
        assert_eq!(a.shared_edge_length(&d), 0.0);
    }
}
