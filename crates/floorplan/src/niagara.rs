//! UltraSPARC T1 (Niagara-1) derived layer floorplans.
//!
//! The paper's 3D systems are built from three layer templates, all with the
//! Table II areas: 10 mm² per SPARC core, 19 mm² per L2 data bank
//! (`scdata`), 115 mm² per layer:
//!
//! - **core layer** — 8 cores in two rows of four, with the crossbar and
//!   miscellaneous logic in the middle band (used by EXP-1/EXP-3),
//! - **cache layer** — 4 `scdata` banks plus miscellaneous logic (EXP-1/3),
//! - **mixed layer** — 4 cores, their 2 shared L2 banks and miscellaneous
//!   logic (EXP-2/EXP-4).
//!
//! Block naming: cores are `core{N}`, caches `scdata{N}` with `N` local to
//! the layer; the 3D stack prefixes layer indices to keep names unique.

use crate::block::{Block, UnitKind};
use crate::floorplan::Floorplan;
use crate::geom::Rect;

/// Die outline width in mm. `LAYER_WIDTH_MM * LAYER_HEIGHT_MM` = 115 mm²,
/// the Table II per-layer area.
pub const LAYER_WIDTH_MM: f64 = 11.5;
/// Die outline height in mm.
pub const LAYER_HEIGHT_MM: f64 = 10.0;
/// Area of one SPARC core in mm² (Table II).
pub const CORE_AREA_MM2: f64 = 10.0;
/// Area of one L2 data bank in mm² (Table II).
pub const L2_AREA_MM2: f64 = 19.0;
/// Number of cores on a full core layer (UltraSPARC T1 has 8).
pub const CORES_PER_CORE_LAYER: usize = 8;
/// Number of L2 banks on a cache layer (one per two cores).
pub const L2_PER_CACHE_LAYER: usize = 4;

const CORE_W: f64 = LAYER_WIDTH_MM / 4.0; // 2.875 mm
const CORE_H: f64 = CORE_AREA_MM2 / CORE_W; // 3.47826… mm, area exactly 10

/// The die outline shared by all layer templates.
#[must_use]
pub fn layer_outline() -> Rect {
    Rect::new(0.0, 0.0, LAYER_WIDTH_MM, LAYER_HEIGHT_MM)
}

/// Builds the 8-core logic layer of the UltraSPARC T1.
///
/// Layout: cores `core0..core3` along the bottom edge, `core4..core7` along
/// the top edge, and a middle band holding the crossbar (centre) flanked by
/// two `other` blocks. The layout mirrors the published T1 die photo at the
/// granularity the thermal grid needs: two core rows separated by the
/// crossbar, total area 115 mm².
///
/// # Examples
///
/// ```
/// let fp = therm3d_floorplan::niagara::core_layer();
/// assert_eq!(fp.cores().count(), 8);
/// assert!((fp.coverage() - 1.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn core_layer() -> Floorplan {
    let mut blocks = Vec::with_capacity(11);
    for i in 0..4 {
        blocks.push(Block::new(
            format!("core{i}"),
            UnitKind::Core,
            Rect::new(i as f64 * CORE_W, 0.0, CORE_W, CORE_H),
        ));
    }
    let band_y = CORE_H;
    let band_h = LAYER_HEIGHT_MM - 2.0 * CORE_H;
    blocks.push(Block::new("other_l", UnitKind::Other, Rect::new(0.0, band_y, CORE_W, band_h)));
    blocks.push(Block::new(
        "xbar",
        UnitKind::Crossbar,
        Rect::new(CORE_W, band_y, 2.0 * CORE_W, band_h),
    ));
    blocks.push(Block::new(
        "other_r",
        UnitKind::Other,
        Rect::new(3.0 * CORE_W, band_y, CORE_W, band_h),
    ));
    for i in 0..4 {
        blocks.push(Block::new(
            format!("core{}", i + 4),
            UnitKind::Core,
            Rect::new(i as f64 * CORE_W, LAYER_HEIGHT_MM - CORE_H, CORE_W, CORE_H),
        ));
    }
    Floorplan::new(layer_outline(), blocks).expect("core layer template is valid by construction")
}

/// Builds the memory-only layer: four 19 mm² `scdata` L2 banks across the
/// top and an `other` strip (tag arrays, buffers, I/O) along the bottom.
///
/// # Examples
///
/// ```
/// use therm3d_floorplan::UnitKind;
/// let fp = therm3d_floorplan::niagara::cache_layer();
/// let l2 = fp.blocks().iter().filter(|b| b.kind() == UnitKind::L2Cache).count();
/// assert_eq!(l2, 4);
/// ```
#[must_use]
pub fn cache_layer() -> Floorplan {
    let l2_w = LAYER_WIDTH_MM / 4.0;
    let l2_h = L2_AREA_MM2 / l2_w; // 6.6087 mm, area exactly 19
    let mut blocks = Vec::with_capacity(5);
    for i in 0..L2_PER_CACHE_LAYER {
        blocks.push(Block::new(
            format!("scdata{i}"),
            UnitKind::L2Cache,
            Rect::new(i as f64 * l2_w, LAYER_HEIGHT_MM - l2_h, l2_w, l2_h),
        ));
    }
    blocks.push(Block::new(
        "other",
        UnitKind::Other,
        Rect::new(0.0, 0.0, LAYER_WIDTH_MM, LAYER_HEIGHT_MM - l2_h),
    ));
    Floorplan::new(layer_outline(), blocks).expect("cache layer template is valid by construction")
}

/// Builds the mixed layer used by EXP-2/EXP-4: four cores along the top,
/// their two shared L2 banks in the middle, and an `other` strip at the
/// bottom.
///
/// # Examples
///
/// ```
/// let fp = therm3d_floorplan::niagara::mixed_layer();
/// assert_eq!(fp.cores().count(), 4);
/// assert!((fp.coverage() - 1.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn mixed_layer() -> Floorplan {
    let l2_h = 2.0 * L2_AREA_MM2 / LAYER_WIDTH_MM; // 3.3043 mm, 19 mm² each half
    let other_h = LAYER_HEIGHT_MM - CORE_H - l2_h;
    let mut blocks = Vec::with_capacity(7);
    for i in 0..4 {
        blocks.push(Block::new(
            format!("core{i}"),
            UnitKind::Core,
            Rect::new(i as f64 * CORE_W, LAYER_HEIGHT_MM - CORE_H, CORE_W, CORE_H),
        ));
    }
    for i in 0..2 {
        blocks.push(Block::new(
            format!("scdata{i}"),
            UnitKind::L2Cache,
            Rect::new(i as f64 * (LAYER_WIDTH_MM / 2.0), other_h, LAYER_WIDTH_MM / 2.0, l2_h),
        ));
    }
    blocks.push(Block::new("other", UnitKind::Other, Rect::new(0.0, 0.0, LAYER_WIDTH_MM, other_h)));
    Floorplan::new(layer_outline(), blocks).expect("mixed layer template is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_layer_areas_match_table_ii() {
        let fp = core_layer();
        for (_, core) in fp.cores() {
            assert!(
                (core.area() - CORE_AREA_MM2).abs() < 1e-9,
                "core area {} != 10 mm²",
                core.area()
            );
        }
        assert!((fp.outline().area() - 115.0).abs() < 1e-9);
        assert!((fp.covered_area() - 115.0).abs() < 1e-9, "core layer tiles the die");
    }

    #[test]
    fn cache_layer_areas_match_table_ii() {
        let fp = cache_layer();
        let l2s: Vec<_> = fp.blocks().iter().filter(|b| b.kind() == UnitKind::L2Cache).collect();
        assert_eq!(l2s.len(), 4);
        for b in l2s {
            assert!((b.area() - L2_AREA_MM2).abs() < 1e-9);
        }
        assert!((fp.covered_area() - 115.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_layer_composition() {
        let fp = mixed_layer();
        assert_eq!(fp.cores().count(), 4);
        let l2_area: f64 =
            fp.blocks().iter().filter(|b| b.kind() == UnitKind::L2Cache).map(Block::area).sum();
        assert!((l2_area - 2.0 * L2_AREA_MM2).abs() < 1e-9);
        assert!((fp.covered_area() - 115.0).abs() < 1e-9);
    }

    #[test]
    fn core_names_are_sequential() {
        let fp = core_layer();
        for i in 0..8 {
            assert!(fp.block(&format!("core{i}")).is_some(), "missing core{i}");
        }
    }

    #[test]
    fn crossbar_present_only_on_core_layer() {
        assert!(core_layer().blocks().iter().any(|b| b.kind() == UnitKind::Crossbar));
        assert!(!cache_layer().blocks().iter().any(|b| b.kind() == UnitKind::Crossbar));
        assert!(!mixed_layer().blocks().iter().any(|b| b.kind() == UnitKind::Crossbar));
    }
}
