//! The four 3D system configurations evaluated in the paper (Figure 1).

use std::fmt;
use std::str::FromStr;

use crate::niagara;
use crate::stack::Stack3d;

/// Vertical orientation of the split (core/cache) configurations: which
/// die bonds to the heat-spreader side of the stack.
///
/// The paper's Figure 1 does not disambiguate the orientation. The
/// default, [`CoresFarFromSink`](StackOrder::CoresFarFromSink), bonds the
/// memory die to the package — the arrangement whose thermal stress
/// matches the evaluation the paper reports (hot spots on every
/// configuration) — while [`CoresNearSink`](StackOrder::CoresNearSink)
/// gives the logic the best cooling path and is provided for
/// design-space exploration.
///
/// Orders have canonical names (`cores-far`, `cores-near`) accepted by
/// [`FromStr`] and written by sweep specs, so the orientation is a
/// first-class sweep axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum StackOrder {
    /// Cache layers bond to the spreader; core layers stack above
    /// (the default; see [`Experiment::stack`]).
    #[default]
    CoresFarFromSink,
    /// Core layers bond to the spreader; cache layers stack above.
    CoresNearSink,
}

impl StackOrder {
    /// Both orientations, default first.
    pub const ALL: [StackOrder; 2] = [StackOrder::CoresFarFromSink, StackOrder::CoresNearSink];

    /// Canonical name, as accepted by [`FromStr`] and written by sweep
    /// specs (`cores-far`, `cores-near`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StackOrder::CoresFarFromSink => "cores-far",
            StackOrder::CoresNearSink => "cores-near",
        }
    }
}

impl fmt::Display for StackOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for StackOrder {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cores-far" | "far" | "cores-far-from-sink" => Ok(StackOrder::CoresFarFromSink),
            "cores-near" | "near" | "cores-near-sink" => Ok(StackOrder::CoresNearSink),
            other => {
                Err(format!("unknown stack order `{other}` (expected cores-far or cores-near)"))
            }
        }
    }
}

/// One of the paper's four experimental 3D configurations.
///
/// | Config | Layers | Cores | Arrangement |
/// |---|---|---|---|
/// | `Exp1` | 2 | 8 | core layer + cache layer (logic/memory split) |
/// | `Exp2` | 2 | 8 | two mixed layers (4 cores + 2 L2 each) |
/// | `Exp3` | 4 | 16 | EXP-1 duplicated: alternating core/cache layers |
/// | `Exp4` | 4 | 16 | EXP-2 duplicated: four mixed layers |
///
/// Layer 0 is always adjacent to the heat spreader/sink. For the split
/// configurations the default [`StackOrder`] places the **cache layers
/// nearer the sink** (cores at layers 1, 3); use
/// [`stack_with_order`](Self::stack_with_order) for the other bonding.
///
/// # Examples
///
/// ```
/// use therm3d_floorplan::Experiment;
///
/// let stack = Experiment::Exp3.stack();
/// assert_eq!(stack.layer_count(), 4);
/// assert_eq!(stack.num_cores(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Experiment {
    /// Two layers: 8-core logic layer plus cache layer.
    Exp1,
    /// Two homogeneous layers with 4 cores + 2 L2 banks each.
    Exp2,
    /// Four layers: EXP-1 duplicated (16 cores).
    Exp3,
    /// Four layers: EXP-2 duplicated (16 cores).
    Exp4,
}

impl Experiment {
    /// All four configurations in paper order.
    pub const ALL: [Experiment; 4] =
        [Experiment::Exp1, Experiment::Exp2, Experiment::Exp3, Experiment::Exp4];

    /// Builds the 3D stack for this configuration with the default
    /// [`StackOrder`].
    #[must_use]
    pub fn stack(self) -> Stack3d {
        self.stack_with_order(StackOrder::default())
    }

    /// Builds the 3D stack with an explicit vertical orientation for the
    /// split (EXP-1/EXP-3) configurations; EXP-2/EXP-4 are unaffected by
    /// `order` since every layer holds the same mixed floorplan.
    ///
    /// For the mixed configurations, odd layers are bonded
    /// **anti-aligned** ([`Floorplan::mirrored_y`]): the cores of one
    /// layer sit above the cache/`other` bands of the next, matching the
    /// A-B / B-A letter alternation of the paper's Figure 1 and avoiding
    /// core-over-core thermal columns.
    ///
    /// [`Floorplan::mirrored_y`]: crate::Floorplan::mirrored_y
    #[must_use]
    pub fn stack_with_order(self, order: StackOrder) -> Stack3d {
        let core = || niagara::core_layer();
        let cache = || niagara::cache_layer();
        let mixed = |layer: usize| {
            let fp = niagara::mixed_layer();
            if layer % 2 == 1 {
                fp.mirrored_y()
            } else {
                fp
            }
        };
        let split_pair = |idx: &str| match order {
            StackOrder::CoresFarFromSink => {
                vec![(format!("caches{idx}"), cache()), (format!("cores{idx}"), core())]
            }
            StackOrder::CoresNearSink => {
                vec![(format!("cores{idx}"), core()), (format!("caches{idx}"), cache())]
            }
        };
        match self {
            Experiment::Exp1 => Stack3d::new(split_pair("")),
            Experiment::Exp2 => {
                Stack3d::new(vec![("mixed0".to_owned(), mixed(0)), ("mixed1".to_owned(), mixed(1))])
            }
            Experiment::Exp3 => {
                let mut layers = split_pair("0");
                layers.extend(split_pair("1"));
                Stack3d::new(layers)
            }
            Experiment::Exp4 => Stack3d::new(vec![
                ("mixed0".to_owned(), mixed(0)),
                ("mixed1".to_owned(), mixed(1)),
                ("mixed2".to_owned(), mixed(2)),
                ("mixed3".to_owned(), mixed(3)),
            ]),
        }
    }

    /// Number of silicon layers in this configuration.
    #[must_use]
    pub fn layer_count(self) -> usize {
        match self {
            Experiment::Exp1 | Experiment::Exp2 => 2,
            Experiment::Exp3 | Experiment::Exp4 => 4,
        }
    }

    /// Number of schedulable cores in this configuration.
    #[must_use]
    pub fn num_cores(self) -> usize {
        match self {
            Experiment::Exp1 | Experiment::Exp2 => 8,
            Experiment::Exp3 | Experiment::Exp4 => 16,
        }
    }

    /// `true` for the configurations that separate logic and memory layers.
    #[must_use]
    pub fn has_split_layers(self) -> bool {
        matches!(self, Experiment::Exp1 | Experiment::Exp3)
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Experiment::Exp1 => "EXP-1",
            Experiment::Exp2 => "EXP-2",
            Experiment::Exp3 => "EXP-3",
            Experiment::Exp4 => "EXP-4",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing an [`Experiment`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExperimentError(String);

impl fmt::Display for ParseExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown experiment `{}` (expected exp1..exp4)", self.0)
    }
}

impl std::error::Error for ParseExperimentError {}

impl FromStr for Experiment {
    type Err = ParseExperimentError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace('-', "").as_str() {
            "exp1" | "1" => Ok(Experiment::Exp1),
            "exp2" | "2" => Ok(Experiment::Exp2),
            "exp3" | "3" => Ok(Experiment::Exp3),
            "exp4" | "4" => Ok(Experiment::Exp4),
            _ => Err(ParseExperimentError(s.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::UnitKind;

    #[test]
    fn stacks_match_metadata() {
        for exp in Experiment::ALL {
            let s = exp.stack();
            assert_eq!(s.layer_count(), exp.layer_count(), "{exp}");
            assert_eq!(s.num_cores(), exp.num_cores(), "{exp}");
        }
    }

    #[test]
    fn exp1_default_order_puts_cores_away_from_sink() {
        let s = Experiment::Exp1.stack();
        assert_eq!(s.layer(0).cores().count(), 0);
        assert_eq!(s.layer(1).cores().count(), 8);
    }

    #[test]
    fn exp1_near_sink_order_flips_the_pair() {
        let s = Experiment::Exp1.stack_with_order(StackOrder::CoresNearSink);
        assert_eq!(s.layer(0).cores().count(), 8);
        assert_eq!(s.layer(1).cores().count(), 0);
    }

    #[test]
    fn exp3_alternates_core_and_cache_layers() {
        let s = Experiment::Exp3.stack();
        assert_eq!(s.layer(0).cores().count(), 0);
        assert_eq!(s.layer(1).cores().count(), 8);
        assert_eq!(s.layer(2).cores().count(), 0);
        assert_eq!(s.layer(3).cores().count(), 8);
        let near = Experiment::Exp3.stack_with_order(StackOrder::CoresNearSink);
        assert_eq!(near.layer(0).cores().count(), 8);
        assert_eq!(near.layer(1).cores().count(), 0);
    }

    #[test]
    fn order_does_not_affect_mixed_configs() {
        for exp in [Experiment::Exp2, Experiment::Exp4] {
            let far = exp.stack_with_order(StackOrder::CoresFarFromSink);
            let near = exp.stack_with_order(StackOrder::CoresNearSink);
            for l in 0..far.layer_count() {
                assert_eq!(far.layer(l).cores().count(), near.layer(l).cores().count());
            }
        }
    }

    #[test]
    fn mixed_layers_stack_anti_aligned() {
        // Odd layers are mirrored, so no core of layer 1 may overlap (in
        // plan view) a core of layer 0.
        for exp in [Experiment::Exp2, Experiment::Exp4] {
            let s = exp.stack();
            for upper in 1..s.layer_count() {
                let lower = upper - 1;
                for (_, cu) in s.layer(upper).cores() {
                    for (_, cl) in s.layer(lower).cores() {
                        assert!(
                            cu.rect().intersection_area(cl.rect()) < 1e-9,
                            "{exp}: core column L{lower}/{} under L{upper}/{}",
                            cl.name(),
                            cu.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exp4_has_cores_on_every_layer() {
        let s = Experiment::Exp4.stack();
        for l in 0..4 {
            assert_eq!(s.layer(l).cores().count(), 4, "layer {l}");
        }
    }

    #[test]
    fn total_l2_area_constant_across_configs() {
        // All configs implement the same logical system (per 8 cores: 4 L2
        // banks), so L2 area per 8 cores is identical.
        for exp in Experiment::ALL {
            let s = exp.stack();
            let l2: f64 =
                s.sites().iter().filter(|b| b.kind == UnitKind::L2Cache).map(|b| b.area_mm2).sum();
            let per8 = l2 / (s.num_cores() as f64 / 8.0);
            assert!((per8 - 76.0).abs() < 1e-9, "{exp}: {per8}");
        }
    }

    #[test]
    fn parse_round_trip() {
        for exp in Experiment::ALL {
            let parsed: Experiment = exp.to_string().parse().unwrap();
            assert_eq!(parsed, exp);
        }
        assert!("exp9".parse::<Experiment>().is_err());
    }

    #[test]
    fn stack_order_names_round_trip() {
        for order in StackOrder::ALL {
            assert_eq!(order.name().parse::<StackOrder>(), Ok(order));
            assert_eq!(order.to_string(), order.name());
        }
        assert_eq!("near".parse::<StackOrder>(), Ok(StackOrder::CoresNearSink));
        assert_eq!("FAR".parse::<StackOrder>(), Ok(StackOrder::CoresFarFromSink));
        assert!("sideways".parse::<StackOrder>().unwrap_err().contains("sideways"));
    }

    #[test]
    fn split_layer_flag() {
        assert!(Experiment::Exp1.has_split_layers());
        assert!(!Experiment::Exp2.has_split_layers());
        assert!(Experiment::Exp3.has_split_layers());
        assert!(!Experiment::Exp4.has_split_layers());
    }
}
