//! A single-layer floorplan: a validated set of non-overlapping blocks.

use std::collections::HashMap;
use std::fmt;

use crate::block::{Block, UnitKind};
use crate::geom::Rect;

/// Error produced when assembling a [`Floorplan`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildFloorplanError {
    /// Two blocks have the same name.
    DuplicateName(String),
    /// Two blocks overlap with positive area.
    Overlap {
        /// Name of the first overlapping block.
        first: String,
        /// Name of the second overlapping block.
        second: String,
        /// Overlap area in mm².
        area: f64,
    },
    /// A block extends beyond the die outline.
    OutOfBounds {
        /// Name of the offending block.
        name: String,
    },
    /// The floorplan has no blocks.
    Empty,
}

impl fmt::Display for BuildFloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildFloorplanError::DuplicateName(n) => {
                write!(f, "duplicate block name `{n}`")
            }
            BuildFloorplanError::Overlap { first, second, area } => {
                write!(f, "blocks `{first}` and `{second}` overlap by {area:.4} mm²")
            }
            BuildFloorplanError::OutOfBounds { name } => {
                write!(f, "block `{name}` extends beyond the die outline")
            }
            BuildFloorplanError::Empty => f.write_str("floorplan has no blocks"),
        }
    }
}

impl std::error::Error for BuildFloorplanError {}

/// A validated planar floorplan for one die layer.
///
/// Invariants enforced at construction:
/// - at least one block,
/// - unique block names,
/// - no two blocks overlap,
/// - every block lies within the die outline.
///
/// Blocks need not tile the outline completely; uncovered silicon behaves
/// like [`UnitKind::Other`] with zero power in the thermal model.
///
/// # Examples
///
/// ```
/// use therm3d_floorplan::{Block, Floorplan, UnitKind, geom::Rect};
///
/// # fn main() -> Result<(), therm3d_floorplan::BuildFloorplanError> {
/// let fp = Floorplan::new(
///     Rect::new(0.0, 0.0, 10.0, 10.0),
///     vec![
///         Block::new("core0", UnitKind::Core, Rect::new(0.0, 0.0, 5.0, 10.0)),
///         Block::new("l2_0", UnitKind::L2Cache, Rect::new(5.0, 0.0, 5.0, 10.0)),
///     ],
/// )?;
/// assert_eq!(fp.cores().count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    outline: Rect,
    blocks: Vec<Block>,
    by_name: HashMap<String, usize>,
}

impl Floorplan {
    /// Builds and validates a floorplan.
    ///
    /// # Errors
    ///
    /// Returns [`BuildFloorplanError`] if the block list is empty, contains
    /// duplicate names, overlapping blocks, or blocks outside `outline`.
    pub fn new(outline: Rect, blocks: Vec<Block>) -> Result<Self, BuildFloorplanError> {
        if blocks.is_empty() {
            return Err(BuildFloorplanError::Empty);
        }
        let mut by_name = HashMap::with_capacity(blocks.len());
        for (i, b) in blocks.iter().enumerate() {
            if by_name.insert(b.name().to_owned(), i).is_some() {
                return Err(BuildFloorplanError::DuplicateName(b.name().to_owned()));
            }
            if !b.rect().contained_in(&outline) {
                return Err(BuildFloorplanError::OutOfBounds { name: b.name().to_owned() });
            }
        }
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                if blocks[i].rect().overlaps(blocks[j].rect()) {
                    return Err(BuildFloorplanError::Overlap {
                        first: blocks[i].name().to_owned(),
                        second: blocks[j].name().to_owned(),
                        area: blocks[i].rect().intersection_area(blocks[j].rect()),
                    });
                }
            }
        }
        Ok(Self { outline, blocks, by_name })
    }

    /// The die outline.
    #[must_use]
    pub fn outline(&self) -> &Rect {
        &self.outline
    }

    /// The floorplan mirrored about the outline's horizontal midline
    /// (every block's `y` is reflected; names, kinds and areas are kept).
    ///
    /// 3D stacks bond alternate dies **anti-aligned** so that high-power
    /// blocks of one layer sit above low-power blocks of the next (the
    /// A-B / B-A letter alternation of the paper's Figure 1); this is the
    /// transform the stack builders apply to odd layers.
    #[must_use]
    pub fn mirrored_y(&self) -> Floorplan {
        let blocks = self
            .blocks
            .iter()
            .map(|b| {
                let r = b.rect();
                let y = self.outline.y + (self.outline.top() - r.top());
                Block::new(b.name(), b.kind(), Rect::new(r.x, y, r.width, r.height))
            })
            .collect();
        Floorplan::new(self.outline, blocks)
            .expect("mirroring preserves containment and disjointness")
    }

    /// All blocks, in insertion order.
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Iterates over the blocks that are processing cores.
    pub fn cores(&self) -> impl Iterator<Item = (usize, &Block)> {
        self.blocks.iter().enumerate().filter(|(_, b)| b.kind() == UnitKind::Core)
    }

    /// Looks up a block index by name.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Looks up a block by name.
    #[must_use]
    pub fn block(&self, name: &str) -> Option<&Block> {
        self.index_of(name).map(|i| &self.blocks[i])
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if the floorplan has no blocks (never true for a
    /// constructed floorplan; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total area of all blocks in mm².
    #[must_use]
    pub fn covered_area(&self) -> f64 {
        self.blocks.iter().map(Block::area).sum()
    }

    /// Fraction of the die outline covered by blocks, in `[0, 1]`.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        self.covered_area() / self.outline.area()
    }

    /// Index of the block containing the point `(x, y)`, if any.
    ///
    /// Uses the half-open membership convention of
    /// [`Rect::contains_point`], so tiling blocks partition the die.
    #[must_use]
    pub fn block_at(&self, x: f64, y: f64) -> Option<usize> {
        self.blocks.iter().position(|b| b.rect().contains_point(x, y))
    }

    /// Normalized distance of a block's centre from the die centre, in
    /// `[0, 1]` (0 = dead centre, 1 = corner).
    ///
    /// Used by floorplan-aware policies ([`DVFS_FLP`] in the paper): central
    /// blocks run hotter than peripheral ones in a 2D layer.
    ///
    /// [`DVFS_FLP`]: https://doi.org/10.1109/DATE.2009.5090721
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn centrality(&self, index: usize) -> f64 {
        let (bx, by) = self.blocks[index].rect().center();
        let (cx, cy) = self.outline.center();
        let dx = (bx - cx) / (self.outline.width / 2.0);
        let dy = (by - cy) / (self.outline.height / 2.0);
        let d = (dx * dx + dy * dy).sqrt() / std::f64::consts::SQRT_2;
        // 1.0 at centre, 0.0 at the far corner.
        1.0 - d.min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outline() -> Rect {
        Rect::new(0.0, 0.0, 10.0, 10.0)
    }

    fn core(name: &str, x: f64) -> Block {
        Block::new(name, UnitKind::Core, Rect::new(x, 0.0, 2.0, 2.0))
    }

    #[test]
    fn valid_floorplan() {
        let fp = Floorplan::new(outline(), vec![core("c0", 0.0), core("c1", 2.0)]).unwrap();
        assert_eq!(fp.len(), 2);
        assert_eq!(fp.cores().count(), 2);
        assert_eq!(fp.index_of("c1"), Some(1));
        assert!(fp.block("missing").is_none());
        assert!((fp.covered_area() - 8.0).abs() < 1e-12);
        assert!((fp.coverage() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Floorplan::new(outline(), vec![]), Err(BuildFloorplanError::Empty));
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Floorplan::new(outline(), vec![core("c0", 0.0), core("c0", 5.0)]).unwrap_err();
        assert_eq!(err, BuildFloorplanError::DuplicateName("c0".into()));
    }

    #[test]
    fn rejects_overlap() {
        let err = Floorplan::new(outline(), vec![core("c0", 0.0), core("c1", 1.0)]).unwrap_err();
        match err {
            BuildFloorplanError::Overlap { first, second, area } => {
                assert_eq!((first.as_str(), second.as_str()), ("c0", "c1"));
                assert!((area - 2.0).abs() < 1e-12);
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn rejects_out_of_bounds() {
        let err = Floorplan::new(outline(), vec![core("c0", 9.0)]).unwrap_err();
        assert_eq!(err, BuildFloorplanError::OutOfBounds { name: "c0".into() });
    }

    #[test]
    fn edge_touching_blocks_allowed() {
        let fp = Floorplan::new(outline(), vec![core("c0", 0.0), core("c1", 2.0)]);
        assert!(fp.is_ok());
    }

    #[test]
    fn block_at_point() {
        let fp = Floorplan::new(outline(), vec![core("c0", 0.0), core("c1", 2.0)]).unwrap();
        assert_eq!(fp.block_at(1.0, 1.0), Some(0));
        assert_eq!(fp.block_at(2.0, 1.0), Some(1), "boundary belongs to right block");
        assert_eq!(fp.block_at(9.0, 9.0), None);
    }

    #[test]
    fn centrality_ordering() {
        let center = Block::new("mid", UnitKind::Core, Rect::new(4.0, 4.0, 2.0, 2.0));
        let corner = Block::new("corner", UnitKind::Core, Rect::new(0.0, 0.0, 2.0, 2.0));
        let fp = Floorplan::new(outline(), vec![center, corner]).unwrap();
        assert!(fp.centrality(0) > fp.centrality(1));
        assert!((fp.centrality(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_display_strings() {
        let s = format!("{}", BuildFloorplanError::DuplicateName("x".into()));
        assert!(s.contains('x'));
        let s = format!(
            "{}",
            BuildFloorplanError::Overlap { first: "a".into(), second: "b".into(), area: 1.0 }
        );
        assert!(s.contains('a') && s.contains('b'));
    }
}
