//! Negative-bias temperature instability (NBTI): a threshold-voltage
//! drift proxy for the timing degradation the paper cites via
//! Kufluoglu et al. \[15\].
//!
//! The standard reaction–diffusion result gives a fractional-power time
//! law with an Arrhenius temperature dependence:
//!
//! ```text
//! ΔVth(t) ∝ exp(−Ea / kT) · t^n        (n ≈ 1/6 for H₂ diffusion)
//! ```
//!
//! As with the other models the crate reports **relative** degradation
//! against a reference temperature, which is what a DTM policy study
//! needs: how much faster does a hot schedule consume timing margin.

use crate::{kelvin, BOLTZMANN_EV_PER_K};

/// Reaction–diffusion NBTI model with Arrhenius temperature acceleration
/// and a `t^n` time law.
///
/// # Examples
///
/// ```
/// use therm3d_reliability::NbtiModel;
///
/// let m = NbtiModel::default_rd();
/// let rel = m.relative_shift(60.0, 95.0);
/// assert!(rel > 1.0, "hotter devices drift faster: {rel}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NbtiModel {
    /// Activation energy of the trap generation process, eV (≈ 0.1–0.2
    /// for the diffusion-limited regime).
    pub activation_energy_ev: f64,
    /// Time exponent `n` (1/6 for H₂, 1/4 for atomic H).
    pub time_exponent: f64,
}

impl NbtiModel {
    /// The H₂ reaction–diffusion parameterization: Ea = 0.12 eV,
    /// n = 1/6.
    #[must_use]
    pub fn default_rd() -> Self {
        Self { activation_energy_ev: 0.12, time_exponent: 1.0 / 6.0 }
    }

    /// A model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive.
    #[must_use]
    pub fn new(activation_energy_ev: f64, time_exponent: f64) -> Self {
        assert!(activation_energy_ev > 0.0, "activation energy must be positive");
        assert!(time_exponent > 0.0, "time exponent must be positive");
        Self { activation_energy_ev, time_exponent }
    }

    /// ΔVth at `temp_c` relative to ΔVth at `ref_temp_c` after the same
    /// stress time (>1 when hotter).
    #[must_use]
    pub fn relative_shift(&self, ref_temp_c: f64, temp_c: f64) -> f64 {
        let t_ref = kelvin(ref_temp_c);
        let t = kelvin(temp_c);
        (self.activation_energy_ev / BOLTZMANN_EV_PER_K * (1.0 / t_ref - 1.0 / t)).exp()
    }

    /// Time-to-reach a fixed ΔVth budget at `temp_c`, relative to the
    /// time needed at `ref_temp_c` (<1 when hotter: budget consumed
    /// sooner). Uses the `t^n` law: `t ∝ shift^(−1/n)`.
    #[must_use]
    pub fn relative_lifetime(&self, ref_temp_c: f64, temp_c: f64) -> f64 {
        self.relative_shift(ref_temp_c, temp_c).powf(-1.0 / self.time_exponent)
    }

    /// Mean relative shift over a temperature series (1.0 when empty).
    #[must_use]
    pub fn mean_relative_shift(&self, ref_temp_c: f64, series_c: &[f64]) -> f64 {
        if series_c.is_empty() {
            return 1.0;
        }
        series_c.iter().map(|&t| self.relative_shift(ref_temp_c, t)).sum::<f64>()
            / series_c.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_is_one_at_reference() {
        let m = NbtiModel::default_rd();
        assert!((m.relative_shift(80.0, 80.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lifetime_shrinks_fast_due_to_fractional_exponent() {
        // A modest 1.2× shift acceleration costs (1.2)^6 ≈ 3× lifetime
        // because n = 1/6.
        let m = NbtiModel::default_rd();
        let shift = m.relative_shift(60.0, 95.0);
        let life = m.relative_lifetime(60.0, 95.0);
        assert!(shift > 1.0);
        assert!((life - shift.powf(-6.0)).abs() < 1e-9);
        assert!(life < 0.8, "35 °C must cost a sizeable share of the budget: {life}");
    }

    #[test]
    fn mean_shift_bounded_by_extremes() {
        let m = NbtiModel::default_rd();
        let series = [60.0, 70.0, 80.0];
        let mean = m.mean_relative_shift(60.0, &series);
        assert!(mean >= 1.0 && mean <= m.relative_shift(60.0, 80.0));
    }

    #[test]
    #[should_panic(expected = "time exponent")]
    fn bad_exponent_rejected() {
        let _ = NbtiModel::new(0.12, 0.0);
    }
}
