//! Per-core reliability roll-up: everything the examples and ablations
//! print about one temperature series.

use crate::arrhenius::{ArrheniusModel, BlackModel};
use crate::cycling::CoffinManson;
use crate::nbti::NbtiModel;

/// Reference junction temperature all relative factors are quoted
/// against, °C. 60 °C is a comfortably cooled 2009-class server die.
pub const REFERENCE_TEMP_C: f64 = 60.0;

/// Reliability summary of one temperature series (typically one core's
/// history from a simulation run).
///
/// # Examples
///
/// ```
/// use therm3d_reliability::ReliabilityReport;
///
/// let calm: Vec<f64> = vec![65.0; 1000];
/// let hot: Vec<f64> = vec![95.0; 1000];
/// let a = ReliabilityReport::from_series(&calm, 0.1);
/// let b = ReliabilityReport::from_series(&hot, 0.1);
/// assert!(b.em_acceleration > a.em_acceleration);
/// assert!(b.nbti_relative_lifetime < a.nbti_relative_lifetime);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityReport {
    /// Mean temperature of the series, °C.
    pub mean_temp_c: f64,
    /// Peak temperature of the series, °C.
    pub peak_temp_c: f64,
    /// Electromigration aging acceleration vs the 60 °C reference
    /// (Arrhenius mean over the series; >1 = ages faster).
    pub em_acceleration: f64,
    /// Electromigration MTTF relative to the reference (<1 = dies
    /// sooner). Reciprocal of `em_acceleration` at unit current.
    pub em_relative_mttf: f64,
    /// Thermal-cycling fatigue damage per hour, in equivalent 10 °C
    /// reference cycles (Coffin–Manson q=4, rainflow-counted).
    pub cycling_damage_per_hour: f64,
    /// NBTI threshold-shift acceleration vs the reference (>1 = drifts
    /// faster).
    pub nbti_acceleration: f64,
    /// NBTI timing-margin lifetime relative to the reference (<1 =
    /// margin consumed sooner).
    pub nbti_relative_lifetime: f64,
}

impl ReliabilityReport {
    /// Assesses a temperature series sampled every `dt_s` seconds with
    /// the JEP122C-default models.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty or `dt_s` is not positive.
    #[must_use]
    pub fn from_series(series_c: &[f64], dt_s: f64) -> Self {
        assert!(!series_c.is_empty(), "need at least one sample");
        assert!(dt_s > 0.0, "sample period must be positive");
        let em = ArrheniusModel::new(BlackModel::jep122c().activation_energy_ev);
        let cm = CoffinManson::jep122c();
        let nbti = NbtiModel::default_rd();

        let mean = series_c.iter().sum::<f64>() / series_c.len() as f64;
        let peak = series_c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let em_acc = em.mean_acceleration(REFERENCE_TEMP_C, series_c);
        let nbti_acc = nbti.mean_relative_shift(REFERENCE_TEMP_C, series_c);
        Self {
            mean_temp_c: mean,
            peak_temp_c: peak,
            em_acceleration: em_acc,
            em_relative_mttf: 1.0 / em_acc,
            cycling_damage_per_hour: cm.damage_per_hour(series_c, dt_s),
            nbti_acceleration: nbti_acc,
            nbti_relative_lifetime: nbti_acc.powf(-1.0 / nbti.time_exponent),
        }
    }

    /// A fixed-width table row for the examples.
    #[must_use]
    pub fn table_row(&self, label: &str) -> String {
        format!(
            "{label:<22} {:>7.1} {:>7.1} {:>9.2} {:>10.3} {:>11.2} {:>9.3}",
            self.mean_temp_c,
            self.peak_temp_c,
            self.em_acceleration,
            self.em_relative_mttf,
            self.cycling_damage_per_hour,
            self.nbti_relative_lifetime,
        )
    }

    /// The header matching [`table_row`](Self::table_row).
    #[must_use]
    pub fn table_header() -> String {
        format!(
            "{:<22} {:>7} {:>7} {:>9} {:>10} {:>11} {:>9}",
            "series", "mean_C", "peak_C", "em_accel", "em_mttf", "cyc_dmg_h", "nbti_life"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_series_scores_near_unity() {
        let series = vec![REFERENCE_TEMP_C; 100];
        let r = ReliabilityReport::from_series(&series, 0.1);
        assert!((r.em_acceleration - 1.0).abs() < 1e-12);
        assert!((r.em_relative_mttf - 1.0).abs() < 1e-12);
        assert_eq!(r.cycling_damage_per_hour, 0.0);
        assert!((r.nbti_relative_lifetime - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycling_shows_up_in_the_report() {
        let square: Vec<f64> =
            (0..2000).map(|i| if (i / 50) % 2 == 0 { 60.0 } else { 85.0 }).collect();
        let flat = vec![72.5; 2000];
        let cycling = ReliabilityReport::from_series(&square, 0.1);
        let steady = ReliabilityReport::from_series(&flat, 0.1);
        assert!(
            cycling.cycling_damage_per_hour > 100.0 * steady.cycling_damage_per_hour.max(1e-12)
        );
        // Same mean temperature, so EM is comparable but not equal
        // (Jensen's inequality makes the cycling series age faster).
        assert!(cycling.em_acceleration > steady.em_acceleration);
    }

    #[test]
    fn table_row_alignment() {
        let r = ReliabilityReport::from_series(&[70.0, 80.0], 0.1);
        let header_cols = ReliabilityReport::table_header().split_whitespace().count();
        let row_cols = r.table_row("x").split_whitespace().count();
        assert_eq!(header_cols, row_cols);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_series_rejected() {
        let _ = ReliabilityReport::from_series(&[], 0.1);
    }
}
