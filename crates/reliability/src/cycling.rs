//! Thermal-cycling fatigue: rainflow-style cycle extraction from a
//! temperature series and Coffin–Manson damage accumulation.
//!
//! The paper quotes JEDEC JEP122C: "assuming the same frequency of
//! thermal cycles, failures happen 16× more frequently when ΔT increases
//! from 10 to 20 °C" — exactly the Coffin–Manson law with exponent
//! `q = 4` (`(20/10)⁴ = 16`), which is this module's default.

/// One extracted half-cycle: a monotone temperature excursion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfCycle {
    /// Magnitude of the excursion, °C (always positive).
    pub delta_c: f64,
    /// Mean temperature of the excursion, °C.
    pub mean_c: f64,
}

/// Extracts half-cycles from a temperature series with the three-point
/// rainflow counting rule (simplified ASTM E1049): the series is reduced
/// to its turning points, then inner ranges smaller than both neighbours
/// are paired off as full cycles and the residue contributes half-cycles.
///
/// Excursions smaller than `noise_floor_c` are ignored.
///
/// # Examples
///
/// ```
/// use therm3d_reliability::rainflow_half_cycles;
///
/// // One clean 30 °C cycle ridden by 1 °C noise.
/// let series = [60.0, 61.0, 90.0, 89.0, 90.0, 60.0];
/// let cycles = rainflow_half_cycles(&series, 2.0);
/// assert_eq!(cycles.len(), 2, "up-swing and down-swing");
/// assert!((cycles[0].delta_c - 30.0).abs() < 1.01);
/// ```
#[must_use]
pub fn rainflow_half_cycles(series_c: &[f64], noise_floor_c: f64) -> Vec<HalfCycle> {
    // 1. Reduce to turning points (local extrema), merging noise.
    let mut turning: Vec<f64> = Vec::new();
    for &t in series_c {
        if turning.len() < 2 {
            if turning.last().is_none_or(|&l| (l - t).abs() > 1e-12) {
                turning.push(t);
            }
            continue;
        }
        let n = turning.len();
        let prev = turning[n - 1];
        let before = turning[n - 2];
        // Extend a monotone run instead of creating a new turning point.
        if (prev - before).signum() == (t - prev).signum() {
            turning[n - 1] = t;
        } else if (t - prev).abs() > 1e-12 {
            turning.push(t);
        }
    }

    // 2. Three-point rainflow: repeatedly remove inner ranges that are
    // bracketed by larger neighbours (each removal = one full cycle,
    // recorded as two half-cycles).
    let mut cycles = Vec::new();
    let mut stack: Vec<f64> = Vec::new();
    let push_half = |a: f64, b: f64, out: &mut Vec<HalfCycle>| {
        let delta = (a - b).abs();
        if delta >= noise_floor_c {
            out.push(HalfCycle { delta_c: delta, mean_c: f64::midpoint(a, b) });
        }
    };
    for &t in &turning {
        stack.push(t);
        while stack.len() >= 3 {
            let n = stack.len();
            let x = (stack[n - 1] - stack[n - 2]).abs();
            let y = (stack[n - 2] - stack[n - 3]).abs();
            if y <= x {
                // The inner range y is a full cycle: two half-cycles.
                push_half(stack[n - 2], stack[n - 3], &mut cycles);
                push_half(stack[n - 2], stack[n - 3], &mut cycles);
                stack.remove(n - 2);
                stack.remove(n - 3);
            } else {
                break;
            }
        }
    }
    // 3. Residue: each adjacent pair is a half-cycle.
    for w in stack.windows(2) {
        push_half(w[0], w[1], &mut cycles);
    }
    cycles
}

/// Coffin–Manson low-cycle fatigue: cycles-to-failure scales as
/// `N_f ∝ ΔT^(−q)`, so each observed cycle of magnitude ΔT consumes
/// `(ΔT / ΔT_ref)^q` units of damage relative to a reference cycle
/// (Miner's linear accumulation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoffinManson {
    /// Fatigue exponent `q` (JEP122C: 4 for hard metal fatigue — this
    /// reproduces the paper's 16× factor between 10 and 20 °C swings).
    pub exponent: f64,
    /// Reference swing ΔT_ref in °C; damage is expressed in units of
    /// "equivalent ΔT_ref cycles".
    pub reference_delta_c: f64,
}

impl CoffinManson {
    /// The JEP122C metal-fatigue parameterization the paper quotes:
    /// `q = 4`, referenced to 10 °C swings.
    #[must_use]
    pub fn jep122c() -> Self {
        Self { exponent: 4.0, reference_delta_c: 10.0 }
    }

    /// A model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive.
    #[must_use]
    pub fn new(exponent: f64, reference_delta_c: f64) -> Self {
        assert!(exponent > 0.0, "fatigue exponent must be positive");
        assert!(reference_delta_c > 0.0, "reference swing must be positive");
        Self { exponent, reference_delta_c }
    }

    /// Damage contributed by a single full cycle of magnitude `delta_c`,
    /// in equivalent reference cycles.
    #[must_use]
    pub fn cycle_damage(&self, delta_c: f64) -> f64 {
        if delta_c <= 0.0 {
            return 0.0;
        }
        (delta_c / self.reference_delta_c).powf(self.exponent)
    }

    /// Total Miner's-rule damage of a set of half-cycles (each half-cycle
    /// contributes half a full cycle's damage).
    #[must_use]
    pub fn accumulate(&self, half_cycles: &[HalfCycle]) -> f64 {
        half_cycles.iter().map(|h| 0.5 * self.cycle_damage(h.delta_c)).sum()
    }

    /// Convenience: rainflow-count `series_c` (noise floor 1 °C) and
    /// return the accumulated damage per hour given the sample period.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive.
    #[must_use]
    pub fn damage_per_hour(&self, series_c: &[f64], dt_s: f64) -> f64 {
        assert!(dt_s > 0.0, "sample period must be positive");
        if series_c.len() < 2 {
            return 0.0;
        }
        let damage = self.accumulate(&rainflow_half_cycles(series_c, 1.0));
        let hours = (series_c.len() - 1) as f64 * dt_s / 3600.0;
        damage / hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sixteen_x_claim() {
        // The exact sentence from the paper: ΔT from 10 to 20 °C makes
        // failures 16× more frequent at the same cycle frequency.
        let cm = CoffinManson::jep122c();
        let ratio = cm.cycle_damage(20.0) / cm.cycle_damage(10.0);
        assert!((ratio - 16.0).abs() < 1e-9, "Coffin-Manson q=4: {ratio}");
    }

    #[test]
    fn single_triangle_wave_counts_correctly() {
        let series = [50.0, 80.0, 50.0];
        let cycles = rainflow_half_cycles(&series, 1.0);
        assert_eq!(cycles.len(), 2);
        for c in &cycles {
            assert!((c.delta_c - 30.0).abs() < 1e-12);
            assert!((c.mean_c - 65.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nested_small_cycle_extracted_as_full_cycle() {
        // Big swing 40→90 with a 70→60→80 wiggle inside: rainflow must
        // count the inner 10..20 °C cycle separately.
        let series = [40.0, 70.0, 60.0, 90.0, 40.0];
        let cycles = rainflow_half_cycles(&series, 1.0);
        let total: f64 = cycles.iter().map(|c| c.delta_c).sum();
        // Inner full cycle 10+10, outer half-cycles 50+50.
        assert!((total - 120.0).abs() < 1e-9, "cycles: {cycles:?}");
    }

    #[test]
    fn noise_floor_suppresses_jitter() {
        let series = [60.0, 60.4, 59.8, 60.2, 60.1, 59.9];
        assert!(rainflow_half_cycles(&series, 1.0).is_empty());
    }

    #[test]
    fn monotone_series_is_one_half_cycle() {
        let series = [40.0, 45.0, 50.0, 70.0];
        let cycles = rainflow_half_cycles(&series, 1.0);
        assert_eq!(cycles.len(), 1);
        assert!((cycles[0].delta_c - 30.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_no_cycles() {
        let series = [55.0; 20];
        assert!(rainflow_half_cycles(&series, 0.5).is_empty());
        assert_eq!(CoffinManson::jep122c().damage_per_hour(&series, 0.1), 0.0);
    }

    #[test]
    fn damage_per_hour_scales_with_frequency() {
        let cm = CoffinManson::jep122c();
        // Same waveform sampled twice as fast = cycles twice as frequent.
        let slow: Vec<f64> =
            (0..400).map(|i| if (i / 20) % 2 == 0 { 60.0 } else { 80.0 }).collect();
        let fast: Vec<f64> =
            (0..400).map(|i| if (i / 10) % 2 == 0 { 60.0 } else { 80.0 }).collect();
        let d_slow = cm.damage_per_hour(&slow, 0.1);
        let d_fast = cm.damage_per_hour(&fast, 0.1);
        assert!(
            (d_fast / d_slow - 2.0).abs() < 0.15,
            "doubling cycle frequency doubles damage: {d_slow} vs {d_fast}"
        );
    }

    #[test]
    fn bigger_swings_dominate_damage() {
        let cm = CoffinManson::jep122c();
        let small = [HalfCycle { delta_c: 5.0, mean_c: 70.0 }; 100];
        let big = [HalfCycle { delta_c: 25.0, mean_c: 70.0 }; 2];
        assert!(
            cm.accumulate(&big) > cm.accumulate(&small),
            "two 25 °C swings out-damage a hundred 5 °C ones"
        );
    }

    #[test]
    #[should_panic(expected = "fatigue exponent")]
    fn bad_exponent_rejected() {
        let _ = CoffinManson::new(0.0, 10.0);
    }
}
