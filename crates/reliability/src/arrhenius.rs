//! Arrhenius-type steady-temperature aging: the generic acceleration
//! factor and Black's electromigration equation.

use crate::{kelvin, BOLTZMANN_EV_PER_K};

/// The generic Arrhenius acceleration model: failure rates scale as
/// `exp(−Ea / kT)`, so running at temperature `T` instead of a reference
/// `T_ref` accelerates aging by `exp(Ea/k · (1/T_ref − 1/T))`.
///
/// # Examples
///
/// ```
/// use therm3d_reliability::ArrheniusModel;
///
/// let m = ArrheniusModel::new(0.7);
/// let af = m.acceleration(60.0, 85.0);
/// assert!(af > 3.0 && af < 8.0, "a 25 °C rise costs roughly 4-6× at Ea=0.7 eV");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrheniusModel {
    /// Activation energy in eV.
    pub activation_energy_ev: f64,
}

impl ArrheniusModel {
    /// A model with the given activation energy (JEP122C tables:
    /// 0.5–0.9 eV for electromigration depending on the metal system).
    ///
    /// # Panics
    ///
    /// Panics if `activation_energy_ev` is not positive.
    #[must_use]
    pub fn new(activation_energy_ev: f64) -> Self {
        assert!(activation_energy_ev > 0.0, "activation energy must be positive");
        Self { activation_energy_ev }
    }

    /// Acceleration factor of running at `temp_c` relative to
    /// `ref_temp_c` (>1 when hotter: fails sooner).
    #[must_use]
    pub fn acceleration(&self, ref_temp_c: f64, temp_c: f64) -> f64 {
        let t_ref = kelvin(ref_temp_c);
        let t = kelvin(temp_c);
        (self.activation_energy_ev / BOLTZMANN_EV_PER_K * (1.0 / t_ref - 1.0 / t)).exp()
    }

    /// Time-averaged acceleration over a temperature series: the mean of
    /// the instantaneous factors, which is the correct aggregation for a
    /// rate-type failure process.
    ///
    /// Returns 1.0 for an empty series.
    #[must_use]
    pub fn mean_acceleration(&self, ref_temp_c: f64, series_c: &[f64]) -> f64 {
        if series_c.is_empty() {
            return 1.0;
        }
        series_c.iter().map(|&t| self.acceleration(ref_temp_c, t)).sum::<f64>()
            / series_c.len() as f64
    }
}

/// Black's electromigration equation: `MTTF ∝ J^(−n) · exp(Ea / kT)`.
///
/// Current density `J` tracks switching activity; at the granularity of
/// this reproduction we expose the temperature term plus an optional
/// activity ratio.
///
/// # Examples
///
/// ```
/// use therm3d_reliability::BlackModel;
///
/// let m = BlackModel::jep122c();
/// // MTTF at 95 °C relative to 60 °C, same current density:
/// let ratio = m.mttf_ratio(60.0, 95.0, 1.0);
/// assert!(ratio < 0.2, "a 35 °C rise costs over 5× lifetime: {ratio}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlackModel {
    /// Activation energy in eV.
    pub activation_energy_ev: f64,
    /// Current-density exponent `n` (JEP122C: 1–2).
    pub current_exponent: f64,
}

impl BlackModel {
    /// JEP122C-typical aluminum/copper interconnect parameters:
    /// Ea = 0.7 eV, n = 2.
    #[must_use]
    pub fn jep122c() -> Self {
        Self { activation_energy_ev: 0.7, current_exponent: 2.0 }
    }

    /// A model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive.
    #[must_use]
    pub fn new(activation_energy_ev: f64, current_exponent: f64) -> Self {
        assert!(activation_energy_ev > 0.0, "activation energy must be positive");
        assert!(current_exponent > 0.0, "current exponent must be positive");
        Self { activation_energy_ev, current_exponent }
    }

    /// MTTF at `(temp_c, current_ratio)` relative to the MTTF at
    /// `(ref_temp_c, current ratio 1)`. Below 1 means the component dies
    /// sooner than the reference.
    ///
    /// # Panics
    ///
    /// Panics if `current_ratio` is not positive.
    #[must_use]
    pub fn mttf_ratio(&self, ref_temp_c: f64, temp_c: f64, current_ratio: f64) -> f64 {
        assert!(current_ratio > 0.0, "current ratio must be positive");
        let arrhenius = ArrheniusModel::new(self.activation_energy_ev);
        current_ratio.powf(-self.current_exponent) / arrhenius.acceleration(ref_temp_c, temp_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceleration_is_one_at_reference() {
        let m = ArrheniusModel::new(0.7);
        assert!((m.acceleration(80.0, 80.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acceleration_monotone_in_temperature() {
        let m = ArrheniusModel::new(0.7);
        let mut last = 0.0;
        for t in [50.0, 60.0, 70.0, 80.0, 90.0, 100.0] {
            let a = m.acceleration(50.0, t);
            assert!(a > last, "AF must grow with temperature");
            last = a;
        }
    }

    #[test]
    fn ten_degrees_roughly_doubles_em_rate() {
        // The classic rule of thumb near 85 °C with Ea ≈ 0.7 eV.
        let m = ArrheniusModel::new(0.7);
        let a = m.acceleration(85.0, 95.0);
        assert!(a > 1.6 && a < 2.4, "10 °C at 85 °C should be ≈2×: {a}");
    }

    #[test]
    fn mean_acceleration_between_extremes() {
        let m = ArrheniusModel::new(0.7);
        let series = [60.0, 90.0];
        let mean = m.mean_acceleration(60.0, &series);
        assert!(mean > 1.0 && mean < m.acceleration(60.0, 90.0));
        assert_eq!(m.mean_acceleration(60.0, &[]), 1.0);
    }

    #[test]
    fn mean_acceleration_is_rate_weighted_not_temp_weighted() {
        // Averaging rates ≠ rate at average temperature (Jensen): the
        // hot samples dominate.
        let m = ArrheniusModel::new(0.7);
        let series = [60.0, 100.0];
        let mean_rate = m.mean_acceleration(60.0, &series);
        let rate_of_mean = m.acceleration(60.0, 80.0);
        assert!(mean_rate > rate_of_mean);
    }

    #[test]
    fn black_mttf_falls_with_temperature_and_current() {
        let m = BlackModel::jep122c();
        assert!((m.mttf_ratio(60.0, 60.0, 1.0) - 1.0).abs() < 1e-12);
        assert!(m.mttf_ratio(60.0, 90.0, 1.0) < 1.0);
        assert!(m.mttf_ratio(60.0, 60.0, 2.0) < m.mttf_ratio(60.0, 60.0, 1.0));
        // n = 2: doubling current density quarters MTTF.
        assert!((m.mttf_ratio(60.0, 60.0, 2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "activation energy")]
    fn zero_activation_energy_rejected() {
        let _ = ArrheniusModel::new(0.0);
    }

    #[test]
    #[should_panic(expected = "current ratio")]
    fn zero_current_rejected() {
        let _ = BlackModel::jep122c().mttf_ratio(60.0, 60.0, 0.0);
    }
}
