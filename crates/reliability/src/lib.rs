//! Temperature-driven reliability models for the `therm3d` reproduction
//! of "Dynamic Thermal Management in 3D Multicore Architectures"
//! (Coskun et al., DATE 2009).
//!
//! The paper motivates dynamic thermal management with the failure
//! mechanisms of JEDEC JEP122C \[13\]: hot spots accelerate
//! **electromigration**, stress migration and dielectric breakdown;
//! temperature **cycling** fatigues metallic structures (a ΔT increase
//! from 10 °C to 20 °C makes failures 16× more frequent); and sustained
//! high temperature degrades devices through **NBTI**. The paper itself
//! stops at the thermal metrics; this crate closes the loop by turning a
//! simulated temperature history into the standard reliability figures:
//!
//! - [`ArrheniusModel`] / [`BlackModel`] — steady-temperature
//!   acceleration factors and electromigration MTTF ratios,
//! - [`rainflow_half_cycles`] + [`CoffinManson`] — cycle extraction and
//!   fatigue damage (Miner's rule) from a temperature series,
//! - [`NbtiModel`] — threshold-shift proxy for timing degradation,
//! - [`ReliabilityReport`] — the per-core roll-up the examples print.
//!
//! All models report **relative** factors against a reference operating
//! point rather than absolute lifetimes, which is how architecture-level
//! studies (RAMP \[24\]) use them.
//!
//! # Quick start
//!
//! ```
//! use therm3d_reliability::ReliabilityReport;
//!
//! // A core cycling between 60 and 90 °C every 20 samples (0.1 s each).
//! let series: Vec<f64> =
//!     (0..2000).map(|i| if (i / 20) % 2 == 0 { 60.0 } else { 90.0 }).collect();
//! let report = ReliabilityReport::from_series(&series, 0.1);
//! assert!(report.em_acceleration > 1.0, "hot core ages faster than the 60 °C reference");
//! assert!(report.cycling_damage_per_hour > 0.0);
//! ```

pub mod arrhenius;
pub mod cycling;
pub mod nbti;
pub mod report;

pub use arrhenius::{ArrheniusModel, BlackModel};
pub use cycling::{rainflow_half_cycles, CoffinManson, HalfCycle};
pub use nbti::NbtiModel;
pub use report::ReliabilityReport;

/// Boltzmann constant in eV/K, used by every Arrhenius-type model.
pub const BOLTZMANN_EV_PER_K: f64 = 8.617_333_262e-5;

/// Converts °C to kelvin.
#[must_use]
pub fn kelvin(celsius: f64) -> f64 {
    celsius + 273.15
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelvin_offset() {
        assert!((kelvin(0.0) - 273.15).abs() < 1e-12);
        assert!((kelvin(85.0) - 358.15).abs() < 1e-12);
    }
}
