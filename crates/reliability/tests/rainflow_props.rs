//! Property-based tests for the rainflow counter and fatigue models.

use proptest::prelude::*;
use therm3d_reliability::{rainflow_half_cycles, ArrheniusModel, CoffinManson, NbtiModel};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn half_cycle_magnitudes_bounded_by_series_range(
        series in prop::collection::vec(30.0f64..110.0, 2..200),
    ) {
        let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for c in rainflow_half_cycles(&series, 0.5) {
            prop_assert!(c.delta_c >= 0.5, "noise floor respected");
            prop_assert!(c.delta_c <= hi - lo + 1e-9, "no cycle exceeds the range");
            prop_assert!(c.mean_c >= lo - 1e-9 && c.mean_c <= hi + 1e-9);
        }
    }

    #[test]
    fn rainflow_total_damage_is_shift_invariant(
        series in prop::collection::vec(40.0f64..90.0, 4..100),
        offset in -20.0f64..20.0,
    ) {
        // Cycling damage depends on swings, not absolute level.
        let cm = CoffinManson::jep122c();
        let shifted: Vec<f64> = series.iter().map(|t| t + offset).collect();
        let a = cm.accumulate(&rainflow_half_cycles(&series, 1.0));
        let b = cm.accumulate(&rainflow_half_cycles(&shifted, 1.0));
        prop_assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn rainflow_insensitive_to_plateaus(
        series in prop::collection::vec(40.0f64..90.0, 3..40),
    ) {
        // Repeating each sample (holding the temperature) must not create
        // or destroy cycles.
        let doubled: Vec<f64> = series.iter().flat_map(|&t| [t, t]).collect();
        let cm = CoffinManson::jep122c();
        let a = cm.accumulate(&rainflow_half_cycles(&series, 1.0));
        let b = cm.accumulate(&rainflow_half_cycles(&doubled, 1.0));
        prop_assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn arrhenius_acceleration_composes(
        ea in 0.3f64..1.0,
        t1 in 40.0f64..70.0,
        t2 in 70.0f64..100.0,
    ) {
        // AF(a→c) = AF(a→b) · AF(b→c): the factors form a group.
        let m = ArrheniusModel::new(ea);
        let direct = m.acceleration(t1, t2);
        let via = m.acceleration(t1, 70.0) * m.acceleration(70.0, t2);
        prop_assert!((direct - via).abs() < 1e-9 * direct);
    }

    #[test]
    fn coffin_manson_is_homogeneous(
        q in 1.0f64..6.0,
        delta in 1.0f64..60.0,
        scale in 1.1f64..3.0,
    ) {
        // Damage(k·ΔT) = k^q · Damage(ΔT).
        let cm = CoffinManson::new(q, 10.0);
        let lhs = cm.cycle_damage(scale * delta);
        let rhs = scale.powf(q) * cm.cycle_damage(delta);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1e-12));
    }

    #[test]
    fn nbti_lifetime_reciprocal_consistency(
        t_a in 50.0f64..80.0,
        t_b in 80.0f64..110.0,
    ) {
        // lifetime(a→b) · lifetime(b→a) = 1.
        let m = NbtiModel::default_rd();
        let ab = m.relative_lifetime(t_a, t_b);
        let ba = m.relative_lifetime(t_b, t_a);
        prop_assert!((ab * ba - 1.0).abs() < 1e-9);
        prop_assert!(ab < 1.0, "hotter consumes margin faster");
    }
}
