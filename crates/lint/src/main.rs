//! CLI entry point: lint the workspace, print diagnostics to stderr,
//! exit 0 when clean, 1 on findings, 2 on I/O/usage errors.
//!
//! ```text
//! cargo run -p therm3d_lint [-- --root DIR] [--json PATH]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => match argv.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--json" => match argv.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => return usage("--json requires a file path"),
            },
            "--help" | "-h" => {
                eprintln!("usage: therm3d_lint [--root DIR] [--json PATH]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match therm3d_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("therm3d_lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, therm3d_lint::report_json(&report)) {
            eprintln!("therm3d_lint: cannot write `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    for diag in &report.diagnostics {
        eprintln!("{diag}");
    }
    eprintln!(
        "therm3d_lint: {} diagnostic(s) across {} file(s)",
        report.diagnostics.len(),
        report.files_scanned
    );
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("therm3d_lint: {msg}\nusage: therm3d_lint [--root DIR] [--json PATH]");
    ExitCode::from(2)
}
