//! `therm3d_lint`: workspace-specific static analysis for the therm3d
//! DATE 2009 reproduction.
//!
//! The repo's reproduction guarantees — bit-identical sweep output at
//! any thread/shard count, an allocation-free engine tick loop, and a
//! cache salt that must be bumped whenever the cell descriptor changes
//! — were previously enforced only by runtime CI greps and reviewer
//! vigilance. This crate machine-checks them: a small lexer strips
//! comments and string/char literals from every `crates/*/src/**/*.rs`
//! file (line numbers preserved), and a rule engine reports
//! deterministic [`Diagnostic`]s. Run it as `cargo run -p therm3d_lint`
//! from the workspace root; a clean tree exits 0.
//!
//! # Rule catalog
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `no-nondeterministic-iteration` | `sweep`, `metrics`, `floorplan`, `policies`, `workload` | iterating a `HashMap`/`HashSet` (output-reaching crates must use ordered containers) |
//! | `no-wall-clock` | everywhere except `telemetry`, `bench` | `Instant::now` / `SystemTime` (simulation results must be a pure function of the spec) |
//! | `alloc-free-region` | inside `region(alloc-free: …)` markers | `Vec::new`, `vec![`, `format!`, `.to_string()`, `.to_owned()`, `.collect`, `Box::new`, `String::new`, `.clone()` |
//! | `stdout-hygiene` | library crates (everywhere except `cli`, `bench`, `lint`) | `println!` / `print!` (stdout byte-identity is CI-guarded; diagnostics belong on stderr) |
//! | `no-thread-spawn` | everywhere except `crates/sweep/src/runner.rs` | `thread::spawn` / `thread::scope` (cell-level parallelism lives in the sweep runner alone, so thread count can never change simulation output or defeat run-scoped factor sharing) |
//! | `cache-salt-drift` | every [`FINGERPRINT_TARGETS`] row (the cache's cell descriptor in `crates/sweep/src/cache.rs`, the coordinator wire protocol in `crates/coord/src/wire.rs`) | editing a fingerprinted serialization region without updating its recorded fingerprint (which requires a version-salt bump, since the salt is part of the hash) |
//! | `lint-directive` | everywhere | malformed/unknown `// lint:` markers and reason-less suppressions |
//!
//! # Markers and suppressions
//!
//! Inline directives are ordinary line comments:
//!
//! * `// lint: region(<kind>: <label>) … // lint: end-region` marks a
//!   named region. Regions of kind `alloc-free` are checked by the
//!   `alloc-free-region` rule; regions of kind `fingerprint` named in
//!   [`FINGERPRINT_TARGETS`] (the cache's cell descriptor, the
//!   coordinator's wire protocol) are hashed by `cache-salt-drift`.
//! * `// lint: allow(<rule>): <reason>` suppresses `<rule>` on the same
//!   line, or — when the comment stands alone — on the next line that
//!   holds code. The reason is **mandatory**: a reason-less `allow` is
//!   itself a diagnostic, so "zero diagnostics" implies "zero
//!   unexplained suppressions".

use std::collections::BTreeMap;
use std::path::Path;

/// Forbid `HashMap`/`HashSet` iteration in output-reaching crates.
pub const RULE_NONDET_ITER: &str = "no-nondeterministic-iteration";
/// Forbid `Instant::now`/`SystemTime` outside `telemetry` and `bench`.
pub const RULE_WALL_CLOCK: &str = "no-wall-clock";
/// Forbid allocating calls inside `region(alloc-free: …)` markers.
pub const RULE_ALLOC_FREE: &str = "alloc-free-region";
/// Forbid `println!`/`print!` in library crates.
pub const RULE_STDOUT: &str = "stdout-hygiene";
/// Forbid `thread::spawn`/`thread::scope` outside the sweep runner.
pub const RULE_THREAD_SPAWN: &str = "no-thread-spawn";
/// Fail when a fingerprinted serialization region (cell descriptor,
/// wire protocol — see [`FINGERPRINT_TARGETS`]) drifts from its
/// recorded fingerprint.
pub const RULE_SALT_DRIFT: &str = "cache-salt-drift";
/// Malformed or unknown `// lint:` directives, reason-less `allow`s.
pub const RULE_DIRECTIVE: &str = "lint-directive";

/// Every suppressible rule name (what `allow(<rule>)` may name).
pub const RULES: &[&str] = &[
    RULE_NONDET_ITER,
    RULE_WALL_CLOCK,
    RULE_ALLOC_FREE,
    RULE_STDOUT,
    RULE_THREAD_SPAWN,
    RULE_SALT_DRIFT,
];

/// Crates whose output reaches CSV/JSON/cache files, where hash-order
/// iteration would make reports nondeterministic.
const OUTPUT_REACHING_CRATES: &[&str] = &["sweep", "metrics", "floorplan", "policies", "workload"];
/// Crates allowed to read the wall clock (observability and benches).
const WALL_CLOCK_CRATES: &[&str] = &["telemetry", "bench"];
/// Crates whose `src` holds binary entry points that legitimately own
/// stdout (the CLI report, bench tables, this lint's own output).
const STDOUT_CRATES: &[&str] = &["cli", "bench", "lint"];
/// The one file allowed to spawn OS threads: the sweep runner owns all
/// cell-level parallelism (its worker pool is what makes thread count
/// output-invariant and what run-scoped factor sharing is keyed to).
const THREAD_SPAWN_FILES: &[&str] = &["crates/sweep/src/runner.rs"];

/// One finding, anchored to a file and 1-indexed line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (`crates/<crate>/src/...`).
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Rule name (one of the `RULE_*` constants).
    pub rule: String,
    /// Human-readable explanation with the offending token named.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// 64-bit FNV-1a (the same stable hash the sweep cache keys use).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

/// One source line after lexing: `code` is the line with comments and
/// string/char-literal *contents* blanked (delimiters kept, line count
/// preserved); `comment` is the text of a `//` comment, if any.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Line {
    /// Code with comments and literal contents removed.
    pub code: String,
    /// Trailing `//` comment text, leading `/`/`!` and whitespace
    /// stripped (`/// docs` → `docs`).
    pub comment: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Normal,
    /// Nested block comment, with depth.
    Block(usize),
    /// Regular (possibly multi-line) string literal.
    Str,
    /// Raw string literal with this many `#`s.
    RawStr(usize),
}

/// Does `code` (the lexed line so far) end with a raw-string prefix
/// (`r`, `br`, `r#`, …)? Returns the hash count when it does.
fn raw_string_prefix(code: &str) -> Option<usize> {
    let chars: Vec<char> = code.chars().collect();
    let mut i = chars.len();
    let mut hashes = 0;
    while i > 0 && chars[i - 1] == '#' {
        hashes += 1;
        i -= 1;
    }
    if i == 0 || chars[i - 1] != 'r' {
        return None;
    }
    i -= 1;
    // `br"…"` byte raw strings.
    if i > 0 && chars[i - 1] == 'b' {
        i -= 1;
    }
    // The `r` must start an identifier, not end one (`var"` is not raw).
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    if i > 0 && is_ident(chars[i - 1]) {
        return None;
    }
    Some(hashes)
}

/// Lexes `source` into per-line code/comment views. Comments (line and
/// nested block) and the contents of string/char literals are removed
/// from `code`; directives are read from line comments only.
#[must_use]
pub fn strip(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut state = LexState::Normal;
    for raw in source.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = None;
        let mut i = 0;
        while i < chars.len() {
            match state {
                LexState::Block(depth) => {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        state =
                            if depth == 1 { LexState::Normal } else { LexState::Block(depth - 1) };
                        if state == LexState::Normal {
                            code.push(' ');
                        }
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                LexState::Str => {
                    if chars[i] == '\\' {
                        i += 2;
                    } else if chars[i] == '"' {
                        code.push('"');
                        state = LexState::Normal;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if chars[i] == '"'
                        && chars[i + 1..].iter().take_while(|c| **c == '#').count() >= hashes
                    {
                        code.push('"');
                        state = LexState::Normal;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
                LexState::Normal => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        let mut j = i + 2;
                        while j < chars.len() && (chars[j] == '/' || chars[j] == '!') {
                            j += 1;
                        }
                        comment = Some(chars[j..].iter().collect::<String>().trim().to_owned());
                        break;
                    }
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = LexState::Block(1);
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        state = match raw_string_prefix(&code) {
                            Some(hashes) => LexState::RawStr(hashes),
                            None => LexState::Str,
                        };
                        code.push('"');
                        i += 1;
                        continue;
                    }
                    if c == '\'' {
                        // Char literal vs lifetime: escaped (`'\n'`),
                        // plain (`'x'`), otherwise a lifetime tick.
                        if chars.get(i + 1) == Some(&'\\') {
                            let mut j = i + 3; // past the backslash and escaped char
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            code.push(' ');
                            i = j + 1;
                            continue;
                        }
                        if chars.get(i + 2) == Some(&'\'') {
                            code.push(' ');
                            i += 3;
                            continue;
                        }
                        code.push('\'');
                        i += 1;
                        continue;
                    }
                    code.push(c);
                    i += 1;
                }
            }
        }
        out.push(Line { code, comment });
    }
    out
}

// ---------------------------------------------------------------------
// Directives and regions
// ---------------------------------------------------------------------

/// A parsed `// lint:` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `allow(<rule>): <reason>` — suppress `rule` (reason mandatory).
    Allow {
        /// The rule being suppressed.
        rule: String,
        /// Why the suppression is sound; `None` is itself a diagnostic.
        reason: Option<String>,
    },
    /// `region(<name>)` — open a named region.
    Region {
        /// Region name with whitespace removed (`alloc-free:engine-tick`).
        name: String,
    },
    /// `end-region` — close the innermost open region.
    EndRegion,
}

/// Parses one comment as a directive: `None` for ordinary comments,
/// `Some(Err(..))` for text that starts with `lint:` but is malformed.
pub fn parse_directive(comment: &str) -> Option<Result<Directive, String>> {
    let rest = comment.trim().strip_prefix("lint:")?.trim();
    if rest == "end-region" {
        return Some(Ok(Directive::EndRegion));
    }
    if let Some(args) = rest.strip_prefix("allow(") {
        let Some((rule, tail)) = args.split_once(')') else {
            return Some(Err(format!("unclosed `allow(` in `lint: {rest}`")));
        };
        let tail = tail.trim();
        let reason =
            tail.strip_prefix(':').map(str::trim).filter(|r| !r.is_empty()).map(str::to_owned);
        if !tail.is_empty() && reason.is_none() {
            return Some(Err(format!("expected `allow({rule}): <reason>`, got `lint: {rest}`")));
        }
        return Some(Ok(Directive::Allow { rule: rule.trim().to_owned(), reason }));
    }
    if let Some(args) = rest.strip_prefix("region(") {
        let Some((name, tail)) = args.split_once(')') else {
            return Some(Err(format!("unclosed `region(` in `lint: {rest}`")));
        };
        if !tail.trim().is_empty() {
            return Some(Err(format!("trailing text after `region(...)`: `lint: {rest}`")));
        }
        let name: String = name.chars().filter(|c| !c.is_whitespace()).collect();
        if name.is_empty() {
            return Some(Err("empty region name".to_owned()));
        }
        return Some(Ok(Directive::Region { name }));
    }
    Some(Err(format!(
        "unknown lint directive `{rest}` (expected `allow(<rule>): <reason>`, \
         `region(<name>)` or `end-region`)"
    )))
}

/// A marked source region: content lines `start..end` (0-indexed, the
/// marker lines themselves excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Region {
    /// Whitespace-stripped name, e.g. `alloc-free:engine-tick`.
    name: String,
    /// First content line (0-indexed).
    start: usize,
    /// One past the last content line (0-indexed).
    end: usize,
}

impl Region {
    /// The part before the first `:` (`alloc-free`, `fingerprint`).
    fn kind(&self) -> &str {
        self.name.split(':').next().unwrap_or("")
    }
}

/// Per-file directive analysis: regions, suppression map, and the
/// diagnostics the markers themselves produce.
struct Markers {
    regions: Vec<Region>,
    /// target line (0-indexed) → rules with a *reasoned* allow there.
    allows: BTreeMap<usize, Vec<String>>,
    diags: Vec<(usize, String)>,
}

fn analyze_markers(lines: &[Line]) -> Markers {
    let mut regions = Vec::new();
    let mut allows: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut diags = Vec::new();
    let mut stack: Vec<(String, usize)> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(comment) = &line.comment else { continue };
        match parse_directive(comment) {
            None => {}
            Some(Err(msg)) => diags.push((i, msg)),
            Some(Ok(Directive::Region { name })) => stack.push((name, i)),
            Some(Ok(Directive::EndRegion)) => match stack.pop() {
                Some((name, start)) => regions.push(Region { name, start: start + 1, end: i }),
                None => diags.push((i, "`end-region` without an open region".to_owned())),
            },
            Some(Ok(Directive::Allow { rule, reason })) => {
                if !RULES.contains(&rule.as_str()) {
                    diags.push((i, format!("`allow({rule})` names an unknown rule")));
                    continue;
                }
                if reason.is_none() {
                    diags.push((
                        i,
                        format!(
                            "suppression without a reason: write \
                             `// lint: allow({rule}): <why this is sound>`"
                        ),
                    ));
                    continue;
                }
                // A stand-alone comment covers the next code line; a
                // trailing comment covers its own line.
                let target = if line.code.trim().is_empty() {
                    lines[i + 1..]
                        .iter()
                        .position(|l| !l.code.trim().is_empty())
                        .map_or(i, |off| i + 1 + off)
                } else {
                    i
                };
                allows.entry(target).or_default().push(rule);
            }
        }
    }
    for (name, start) in stack {
        diags.push((start, format!("region `{name}` is never closed (missing `end-region`)")));
    }
    Markers { regions, allows, diags }
}

// ---------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `pat` in `code` with identifier boundaries on whichever ends
/// of the pattern are identifier characters (so `println!` does not
/// match inside `eprintln!`).
fn find_token(code: &str, pat: &str) -> Option<usize> {
    let first_is_ident = pat.chars().next().is_some_and(is_ident_char);
    let last_is_ident = pat.chars().next_back().is_some_and(is_ident_char);
    let mut from = 0;
    while let Some(off) = code[from..].find(pat) {
        let start = from + off;
        let end = start + pat.len();
        let ok_before =
            !first_is_ident || !code[..start].chars().next_back().is_some_and(is_ident_char);
        let ok_after = !last_is_ident || !code[end..].chars().next().is_some_and(is_ident_char);
        if ok_before && ok_after {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

fn has_token(code: &str, pat: &str) -> bool {
    find_token(code, pat).is_some()
}

/// The identifier ending exactly at `text`'s end (empty if none).
fn trailing_ident(text: &str) -> &str {
    let start = text
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .last()
        .map_or(text.len(), |(i, _)| i);
    &text[start..]
}

// ---------------------------------------------------------------------
// Rules 1–4
// ---------------------------------------------------------------------

/// Iteration methods whose order is the hash order of the container.
const HASH_ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

/// Identifiers declared with a `HashMap`/`HashSet` type in this file
/// (fields, lets, params — a deliberately file-local approximation).
fn hash_container_idents(lines: &[Line]) -> Vec<String> {
    let mut idents = Vec::new();
    let mut track = |name: &str| {
        if !name.is_empty() && !idents.iter().any(|n| n == name) {
            idents.push(name.to_owned());
        }
    };
    for line in lines {
        let code = &line.code;
        for ty in ["HashMap", "HashSet"] {
            let Some(pos) = find_token(code, ty) else { continue };
            // `name: HashMap<...>` (field, param, typed let), with an
            // optional `std::collections::`-style path prefix.
            let mut before = code[..pos].trim_end();
            while let Some(stripped) = before.strip_suffix("::") {
                let segment = trailing_ident(stripped);
                before = stripped[..stripped.len() - segment.len()].trim_end();
            }
            if let Some(before) = before.strip_suffix(':') {
                track(trailing_ident(before.trim_end()));
            }
            // `let [mut] name = ...HashMap...` (any constructor form).
            if let Some(let_pos) = find_token(code, "let") {
                if let_pos < pos {
                    let after_let = code[let_pos + 3..].trim_start();
                    let after_let = after_let.strip_prefix("mut ").unwrap_or(after_let);
                    let name =
                        after_let.chars().take_while(|c| is_ident_char(*c)).collect::<String>();
                    if code[let_pos..pos].contains('=') {
                        track(&name);
                    }
                }
            }
        }
    }
    idents
}

fn check_nondet_iteration(lines: &[Line], out: &mut Vec<(usize, String)>) {
    let tracked = hash_container_idents(lines);
    if tracked.is_empty() {
        return;
    }
    let flag = |out: &mut Vec<(usize, String)>, i: usize, name: &str, how: &str| {
        out.push((
            i,
            format!(
                "`{name}` is a HashMap/HashSet and this crate's output reaches \
                 CSV/JSON/cache files; {how} iterates in nondeterministic hash order \
                 (use BTreeMap/BTreeSet, or collect and sort first)"
            ),
        ));
    };
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        for method in HASH_ITER_METHODS {
            let mut from = 0;
            while let Some(off) = code[from..].find(method) {
                let pos = from + off;
                let receiver = trailing_ident(&code[..pos]);
                if tracked.iter().any(|t| t == receiver) {
                    flag(out, i, receiver, &format!("`{receiver}{method}..`"));
                }
                from = pos + method.len();
            }
        }
        // `for x in [&[mut]] path.to.tracked {`
        let trimmed = code.trim_start();
        if let Some(rest) = trimmed.strip_prefix("for ") {
            if let Some((_, expr)) = rest.split_once(" in ") {
                let expr = expr.trim().trim_end_matches('{').trim_end();
                let expr = expr.trim_start_matches('&');
                let expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
                let last = trailing_ident(expr);
                if !last.is_empty() && tracked.iter().any(|t| t == last) {
                    flag(out, i, last, &format!("`for .. in {expr}`"));
                }
            }
        }
    }
}

fn check_wall_clock(lines: &[Line], out: &mut Vec<(usize, String)>) {
    for (i, line) in lines.iter().enumerate() {
        for pat in ["Instant::now", "SystemTime"] {
            if has_token(&line.code, pat) {
                out.push((
                    i,
                    format!(
                        "`{pat}` outside `telemetry`/`bench`: simulation results must be \
                         a pure function of the spec (route timing through therm3d_telemetry, \
                         or suppress with a reason if this is cost accounting)"
                    ),
                ));
            }
        }
    }
}

/// Tokens that allocate (or clone, which usually allocates) — banned
/// inside `region(alloc-free: …)` markers.
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "vec![",
    "format!",
    ".to_string()",
    ".to_owned()",
    ".collect",
    "Box::new",
    "String::new",
    ".clone()",
];

fn check_alloc_free(lines: &[Line], regions: &[Region], out: &mut Vec<(usize, String)>) {
    for region in regions.iter().filter(|r| r.kind() == "alloc-free") {
        let end = region.end.min(lines.len());
        for (i, line) in lines.iter().enumerate().take(end).skip(region.start) {
            for pat in ALLOC_TOKENS {
                if has_token(&line.code, pat) {
                    out.push((
                        i,
                        format!(
                            "`{pat}` allocates inside alloc-free region `{}` \
                             (reuse a pre-allocated buffer instead)",
                            region.name
                        ),
                    ));
                }
            }
        }
    }
}

fn check_thread_spawn(lines: &[Line], out: &mut Vec<(usize, String)>) {
    for (i, line) in lines.iter().enumerate() {
        for pat in ["thread::spawn", "thread::scope", "thread::Builder"] {
            if has_token(&line.code, pat) {
                out.push((
                    i,
                    format!(
                        "`{pat}` outside the sweep runner: all cell-level parallelism \
                         belongs to `crates/sweep/src/runner.rs`, so thread count can \
                         never change simulation output or bypass run-scoped factor \
                         sharing (route work through the runner, or suppress with a \
                         reason for an opt-in pool that never runs inside sweep cells)"
                    ),
                ));
            }
        }
    }
}

fn check_stdout_hygiene(lines: &[Line], out: &mut Vec<(usize, String)>) {
    for (i, line) in lines.iter().enumerate() {
        for pat in ["println!", "print!"] {
            if has_token(&line.code, pat) {
                out.push((
                    i,
                    format!(
                        "`{pat}` in a library crate: stdout byte-identity is CI-guarded, \
                         diagnostics belong on stderr (`eprintln!`) or a sidecar file"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-file engine
// ---------------------------------------------------------------------

/// Lints one file's source. `crate_name` decides rule scope (the
/// directory under `crates/`); `file` labels the diagnostics.
#[must_use]
pub fn lint_source(crate_name: &str, file: &str, source: &str) -> Vec<Diagnostic> {
    let lines = strip(source);
    let markers = analyze_markers(&lines);

    let mut raw: Vec<(usize, &str, String)> = Vec::new();
    let mut findings: Vec<(usize, String)> = Vec::new();
    if OUTPUT_REACHING_CRATES.contains(&crate_name) {
        check_nondet_iteration(&lines, &mut findings);
        raw.extend(findings.drain(..).map(|(i, m)| (i, RULE_NONDET_ITER, m)));
    }
    if !WALL_CLOCK_CRATES.contains(&crate_name) {
        check_wall_clock(&lines, &mut findings);
        raw.extend(findings.drain(..).map(|(i, m)| (i, RULE_WALL_CLOCK, m)));
    }
    check_alloc_free(&lines, &markers.regions, &mut findings);
    raw.extend(findings.drain(..).map(|(i, m)| (i, RULE_ALLOC_FREE, m)));
    if !STDOUT_CRATES.contains(&crate_name) {
        check_stdout_hygiene(&lines, &mut findings);
        raw.extend(findings.drain(..).map(|(i, m)| (i, RULE_STDOUT, m)));
    }
    if !THREAD_SPAWN_FILES.contains(&file) {
        check_thread_spawn(&lines, &mut findings);
        raw.extend(findings.drain(..).map(|(i, m)| (i, RULE_THREAD_SPAWN, m)));
    }

    let mut diags: Vec<Diagnostic> = markers
        .diags
        .into_iter()
        .map(|(i, message)| Diagnostic {
            file: file.to_owned(),
            line: i + 1,
            rule: RULE_DIRECTIVE.to_owned(),
            message,
        })
        .collect();
    for (i, rule, message) in raw {
        let allowed = markers.allows.get(&i).is_some_and(|rules| rules.iter().any(|r| r == rule));
        if !allowed {
            diags.push(Diagnostic {
                file: file.to_owned(),
                line: i + 1,
                rule: rule.to_owned(),
                message,
            });
        }
    }
    diags.sort();
    diags
}

// ---------------------------------------------------------------------
// Rule 5: fingerprint drift (cache salt, wire protocol, ...)
// ---------------------------------------------------------------------

/// The file the cache-descriptor fingerprint target covers.
pub const CACHE_FILE: &str = "crates/sweep/src/cache.rs";
/// The cache target's region name (whitespace-stripped).
pub const DESCRIPTOR_REGION: &str = "fingerprint:cell-descriptor";
/// The file the wire-protocol fingerprint target covers.
pub const WIRE_FILE: &str = "crates/coord/src/wire.rs";
/// The wire target's region name (whitespace-stripped).
pub const WIRE_REGION: &str = "fingerprint:wire-protocol";

/// One versioned on-disk/on-wire format the drift rule guards: a
/// `// lint: region(fingerprint: …)` block whose source text, salted
/// with a version-string constant, must hash to a recorded fingerprint
/// constant. Editing the region without bumping the version fails the
/// lint — the generalization of the original cache-salt rule, so every
/// new serialized format gets the same protection by adding a row to
/// [`FINGERPRINT_TARGETS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FingerprintTarget {
    /// Workspace-relative file the target lives in.
    pub file: &'static str,
    /// Region name as written in the marker, whitespace-stripped.
    pub region: &'static str,
    /// Identifier of the `&str` version constant (the salt).
    pub salt_ident: &'static str,
    /// Identifier of the `u64` recorded-fingerprint constant.
    pub fp_ident: &'static str,
    /// What the region serializes, for diagnostics.
    pub what: &'static str,
    /// Why unsalted drift is dangerous, for diagnostics.
    pub consequence: &'static str,
}

/// Every fingerprinted format in the workspace. Each row is checked on
/// every [`lint_workspace`] run, and a missing file is a diagnostic —
/// a target can move but never silently vanish.
pub const FINGERPRINT_TARGETS: &[FingerprintTarget] = &[
    FingerprintTarget {
        file: CACHE_FILE,
        region: DESCRIPTOR_REGION,
        salt_ident: "ENGINE_VERSION",
        fp_ident: "DESCRIPTOR_FINGERPRINT",
        what: "the cell-descriptor serialization",
        consequence: "Old cache entries would be served for new semantics",
    },
    FingerprintTarget {
        file: WIRE_FILE,
        region: WIRE_REGION,
        salt_ident: "PROTOCOL_VERSION",
        fp_ident: "WIRE_FINGERPRINT",
        what: "the coordinator wire protocol",
        consequence: "Mixed-version coordinators and workers would mis-parse each other's frames",
    },
];

/// What [`fingerprint_status`] extracted from a target's source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaltStatus {
    /// The version-constant string literal (the salt).
    pub salt: String,
    /// FNV-64 of salt + the fingerprinted region's source text.
    pub actual: u64,
    /// The checked-in fingerprint-constant value.
    pub recorded: u64,
    /// 1-indexed line the fingerprinted region starts on.
    pub region_line: usize,
}

/// Hashes `target`'s fingerprinted region in `source` and extracts the
/// checked-in expectation.
///
/// # Errors
///
/// Returns a message when the region markers, the salt constant or the
/// fingerprint constant cannot be found or parsed.
pub fn fingerprint_status(target: &FingerprintTarget, source: &str) -> Result<SaltStatus, String> {
    let lines = strip(source);
    let markers = analyze_markers(&lines);
    let region = markers
        .regions
        .iter()
        .find(|r| r.name == target.region)
        .ok_or_else(|| format!("no `lint: region({})` marker found", target.region))?;
    let raw: Vec<&str> = source.lines().collect();

    let salt_ident = target.salt_ident;
    let salt_line = lines
        .iter()
        .position(|l| has_token(&l.code, salt_ident) && l.code.contains("&str"))
        .ok_or_else(|| format!("no `{salt_ident}: &str` declaration found"))?;
    let salt_raw = raw[salt_line];
    let first =
        salt_raw.find('"').ok_or_else(|| format!("{salt_ident} value is not on its own line"))?;
    let last = salt_raw
        .rfind('"')
        .filter(|l| *l > first)
        .ok_or_else(|| format!("unterminated {salt_ident}"))?;
    let salt = salt_raw[first + 1..last].to_owned();

    let fp_ident = target.fp_ident;
    let fp_line = lines
        .iter()
        .position(|l| has_token(&l.code, fp_ident) && l.code.contains("u64"))
        .ok_or_else(|| {
            format!("no `{fp_ident}: u64` declaration found (add it next to {salt_ident})")
        })?;
    let fp_raw = raw[fp_line];
    let hex_start =
        fp_raw.find("0x").ok_or_else(|| format!("{fp_ident} must be a `0x...` literal"))?;
    let hex: String = fp_raw[hex_start + 2..]
        .chars()
        .take_while(|c| c.is_ascii_hexdigit() || *c == '_')
        .filter(|c| *c != '_')
        .collect();
    let recorded = u64::from_str_radix(&hex, 16)
        .map_err(|e| format!("cannot parse {fp_ident} hex `{hex}`: {e}"))?;

    let mut input = String::new();
    input.push_str(&salt);
    for line in &raw[region.start..region.end.min(raw.len())] {
        input.push('\n');
        input.push_str(line.trim_end());
    }
    Ok(SaltStatus {
        salt,
        actual: fnv1a64(input.as_bytes()),
        recorded,
        region_line: region.start + 1,
    })
}

/// [`fingerprint_status`] for the cache-descriptor target (the original
/// rule 5; kept as the stable entry point for the fixture corpus and
/// the live-coupling tests).
///
/// # Errors
///
/// As [`fingerprint_status`].
pub fn cache_salt_status(source: &str) -> Result<SaltStatus, String> {
    fingerprint_status(&FINGERPRINT_TARGETS[0], source)
}

/// Runs the drift rule for one fingerprint target over its source.
#[must_use]
pub fn check_fingerprint(target: &FingerprintTarget, file: &str, source: &str) -> Vec<Diagnostic> {
    match fingerprint_status(target, source) {
        Err(message) => vec![Diagnostic {
            file: file.to_owned(),
            line: 1,
            rule: RULE_SALT_DRIFT.to_owned(),
            message,
        }],
        Ok(status) if status.actual != status.recorded => {
            // Honor a reasoned allow targeting the region's first line,
            // like every other rule (e.g. for a staged two-PR migration).
            let lines = strip(source);
            let markers = analyze_markers(&lines);
            let allowed = markers
                .allows
                .get(&(status.region_line - 1))
                .is_some_and(|rules| rules.iter().any(|r| r == RULE_SALT_DRIFT));
            if allowed {
                return Vec::new();
            }
            vec![Diagnostic {
                file: file.to_owned(),
                line: status.region_line,
                rule: RULE_SALT_DRIFT.to_owned(),
                message: format!(
                    "{} changed: fingerprint {:#018x} != recorded {} {:#018x}. {} — bump {} \
                     (currently `{}`) and set {} to the new fingerprint",
                    target.what,
                    status.actual,
                    target.fp_ident,
                    status.recorded,
                    target.consequence,
                    target.salt_ident,
                    status.salt,
                    target.fp_ident
                ),
            }]
        }
        Ok(_) => Vec::new(),
    }
}

/// Runs the drift rule over `cache.rs` source text (the
/// cache-descriptor target of [`FINGERPRINT_TARGETS`]).
#[must_use]
pub fn check_cache_salt(file: &str, source: &str) -> Vec<Diagnostic> {
    check_fingerprint(&FINGERPRINT_TARGETS[0], file, source)
}

// ---------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------

/// Everything one `lint_workspace` pass produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkspaceReport {
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

fn rust_files_under(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read `{}`: {e}", dir.display()))?
        .collect::<Result<_, _>>()
        .map_err(|e| format!("cannot read `{}`: {e}", dir.display()))?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**/*.rs` file under `root` (the workspace
/// root) and runs the fingerprint-drift check over every
/// [`FINGERPRINT_TARGETS`] row.
///
/// Library sources only: `tests/`, `examples/` and `benches/` trees are
/// not shipped simulation code and stay out of scope.
///
/// # Errors
///
/// Returns a message when `root` has no `crates` directory or a source
/// file cannot be read.
pub fn lint_workspace(root: &Path) -> Result<WorkspaceReport, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "`{}` has no crates/ directory (run from the workspace root or pass --root)",
            root.display()
        ));
    }
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read `{}`: {e}", crates_dir.display()))?
        .collect::<Result<_, _>>()
        .map_err(|e| format!("cannot read `{}`: {e}", crates_dir.display()))?;
    crate_dirs.sort_by_key(std::fs::DirEntry::file_name);

    let mut diagnostics = Vec::new();
    let mut files_scanned = 0;
    for dir in crate_dirs {
        let crate_name = dir.file_name().to_string_lossy().into_owned();
        let src = dir.path().join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files_under(&src, &mut files)?;
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
            diagnostics.extend(lint_source(&crate_name, &rel, &source));
            for target in FINGERPRINT_TARGETS {
                if rel == target.file {
                    diagnostics.extend(check_fingerprint(target, &rel, &source));
                }
            }
            files_scanned += 1;
        }
    }
    // A fingerprint check must not silently vanish with its file.
    for target in FINGERPRINT_TARGETS {
        if !root.join(target.file).is_file() {
            diagnostics.push(Diagnostic {
                file: target.file.to_owned(),
                line: 1,
                rule: RULE_SALT_DRIFT.to_owned(),
                message: format!(
                    "expected fingerprinted file is missing; move the `{}` region and update \
                     therm3d_lint::FINGERPRINT_TARGETS",
                    target.region
                ),
            });
        }
    }
    diagnostics.sort();
    Ok(WorkspaceReport { diagnostics, files_scanned })
}

// ---------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a deterministic JSON report (the CI artifact).
#[must_use]
pub fn report_json(report: &WorkspaceReport) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            json_escape(&d.rule),
            json_escape(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"total\": {},\n  \"files_scanned\": {}\n}}\n",
        report.diagnostics.len(),
        report.files_scanned
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_comments_and_literals_but_keeps_lines() {
        let src = "let a = 1; // trailing\nlet s = \"HashMap.iter()\";\n/* block\nstill */ let b = 2;\nlet c = 'x';\nlet l: &'static str = r#\"raw \"quote\" here\"#;";
        let lines = strip(src);
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0].code.trim_end(), "let a = 1;");
        assert_eq!(lines[0].comment.as_deref(), Some("trailing"));
        assert!(!lines[1].code.contains("HashMap"), "{:?}", lines[1]);
        assert!(lines[2].code.trim().is_empty());
        assert_eq!(lines[3].code.trim(), "let b = 2;");
        assert!(!lines[4].code.contains('x'));
        assert!(lines[5].code.contains("&'static str"), "{:?}", lines[5]);
        assert!(!lines[5].code.contains("quote"), "{:?}", lines[5]);
    }

    #[test]
    fn lexer_handles_escaped_quotes_and_char_edge_cases() {
        let lines = strip("let q = '\\''; let s = \"a\\\"b\"; let t = \"end\"; done();");
        assert!(lines[0].code.contains("done()"), "{:?}", lines[0]);
        assert!(!lines[0].code.contains('a'), "{:?}", lines[0]);
        // Multi-line strings carry state across lines.
        let lines = strip("let s = \"line one\nprintln!(still a string)\nend\"; code();");
        assert!(lines[1].code.trim().is_empty(), "{:?}", lines[1]);
        assert!(lines[2].code.contains("code()"), "{:?}", lines[2]);
    }

    #[test]
    fn directive_parsing_covers_all_forms() {
        assert_eq!(parse_directive("ordinary comment"), None);
        assert_eq!(
            parse_directive("lint: allow(no-wall-clock): cost accounting"),
            Some(Ok(Directive::Allow {
                rule: "no-wall-clock".into(),
                reason: Some("cost accounting".into())
            }))
        );
        assert_eq!(
            parse_directive("lint: allow(no-wall-clock)"),
            Some(Ok(Directive::Allow { rule: "no-wall-clock".into(), reason: None }))
        );
        assert_eq!(
            parse_directive("lint: region(alloc-free: engine-tick)"),
            Some(Ok(Directive::Region { name: "alloc-free:engine-tick".into() }))
        );
        assert_eq!(parse_directive("lint: end-region"), Some(Ok(Directive::EndRegion)));
        assert!(matches!(parse_directive("lint: frobnicate"), Some(Err(_))));
        assert!(matches!(parse_directive("lint: allow(broken"), Some(Err(_))));
    }

    #[test]
    fn find_token_respects_identifier_boundaries() {
        assert!(has_token("println!(x)", "println!"));
        assert!(!has_token("eprintln!(x)", "println!"));
        assert!(has_token("let t = Instant::now();", "Instant::now"));
        assert!(!has_token("MyInstant::nowhere()", "Instant::now"));
    }

    #[test]
    fn json_report_is_valid_and_escaped() {
        let report = WorkspaceReport {
            diagnostics: vec![Diagnostic {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: RULE_STDOUT.into(),
                message: "say \"no\"".into(),
            }],
            files_scanned: 7,
        };
        let json = report_json(&report);
        assert!(json.contains("\"say \\\"no\\\"\""), "{json}");
        assert!(json.contains("\"total\": 1"), "{json}");
        assert!(json.contains("\"files_scanned\": 7"), "{json}");
        let empty = report_json(&WorkspaceReport { diagnostics: vec![], files_scanned: 0 });
        assert!(empty.contains("\"diagnostics\": []"), "{empty}");
    }
}
