//! Fixture corpus for every lint rule: one positive, one negative and
//! one `allow`-suppressed case per rule, plus the live-source coupling
//! tests (fingerprint matches the tree; the whole workspace is clean).

use std::path::Path;

use therm3d_lint::{
    check_cache_salt, lint_source, lint_workspace, RULE_ALLOC_FREE, RULE_DIRECTIVE,
    RULE_NONDET_ITER, RULE_SALT_DRIFT, RULE_STDOUT, RULE_THREAD_SPAWN, RULE_WALL_CLOCK,
};

/// Asserts exactly one diagnostic of `rule` at `line`.
fn assert_one(diags: &[therm3d_lint::Diagnostic], rule: &str, line: usize) {
    assert_eq!(diags.len(), 1, "expected exactly one diagnostic, got {diags:#?}");
    assert_eq!(diags[0].rule, rule, "{diags:#?}");
    assert_eq!(diags[0].line, line, "{diags:#?}");
}

// -------------------------------------------------------- rule 1

#[test]
fn nondet_iteration_positive() {
    let src = "use std::collections::HashMap;\n\
               fn summarize() {\n\
               \x20   let mut m: HashMap<String, u32> = HashMap::new();\n\
               \x20   m.insert(String::from(\"a\"), 1);\n\
               \x20   for (k, v) in m.iter() {\n\
               \x20       drop((k, v));\n\
               \x20   }\n\
               }\n";
    assert_one(&lint_source("sweep", "f.rs", src), RULE_NONDET_ITER, 5);
}

#[test]
fn nondet_iteration_flags_for_loops_and_values() {
    let src = "fn f(counts: std::collections::HashMap<u64, usize>) -> usize {\n\
               \x20   let a = counts.values().copied().max().unwrap();\n\
               \x20   let mut b = 0;\n\
               \x20   for v in counts {\n\
               \x20       b += v.1;\n\
               \x20   }\n\
               \x20   a + b\n\
               }\n";
    let diags = lint_source("workload", "f.rs", src);
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert_eq!((diags[0].line, diags[0].rule.as_str()), (2, RULE_NONDET_ITER));
    assert_eq!((diags[1].line, diags[1].rule.as_str()), (4, RULE_NONDET_ITER));
}

#[test]
fn nondet_iteration_negative() {
    // Lookup-only HashMap use, ordered iteration, and a crate outside
    // the output-reaching set are all fine.
    let lookup_only = "fn f(m: &std::collections::HashMap<u64, u64>) -> Option<&u64> {\n\
                       \x20   m.get(&7)\n\
                       }\n";
    assert!(lint_source("sweep", "f.rs", lookup_only).is_empty());
    let btree = "fn f(m: &std::collections::BTreeMap<u64, u64>) -> usize {\n\
                 \x20   m.iter().count()\n\
                 }\n";
    assert!(lint_source("sweep", "f.rs", btree).is_empty());
    let other_crate = "fn f(m: &std::collections::HashMap<u64, u64>) -> usize {\n\
                       \x20   m.iter().count()\n\
                       }\n";
    assert!(lint_source("thermal", "f.rs", other_crate).is_empty());
}

#[test]
fn nondet_iteration_allowed_with_reason() {
    let src = "fn f(m: std::collections::HashMap<u64, u64>) -> u64 {\n\
               \x20   // lint: allow(no-nondeterministic-iteration): summed, order-insensitive\n\
               \x20   m.values().sum()\n\
               }\n";
    assert!(lint_source("sweep", "f.rs", src).is_empty());
    // Without a reason the allow is itself a diagnostic and suppresses
    // nothing.
    let src = "fn f(m: std::collections::HashMap<u64, u64>) -> u64 {\n\
               \x20   // lint: allow(no-nondeterministic-iteration)\n\
               \x20   m.values().sum()\n\
               }\n";
    let diags = lint_source("sweep", "f.rs", src);
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(diags.iter().any(|d| d.rule == RULE_DIRECTIVE && d.line == 2), "{diags:#?}");
    assert!(diags.iter().any(|d| d.rule == RULE_NONDET_ITER && d.line == 3), "{diags:#?}");
}

// -------------------------------------------------------- rule 2

#[test]
fn wall_clock_positive() {
    let src = "fn f() -> std::time::Instant {\n\
               \x20   Instant::now()\n\
               }\n";
    assert_one(&lint_source("core", "f.rs", src), RULE_WALL_CLOCK, 2);
    let src = "fn f() { let _ = std::time::SystemTime::now(); }\n";
    assert_one(&lint_source("sweep", "f.rs", src), RULE_WALL_CLOCK, 1);
}

#[test]
fn wall_clock_negative() {
    let src = "fn f() { let _ = Instant::now(); let _ = SystemTime::now(); }\n";
    assert!(lint_source("telemetry", "f.rs", src).is_empty());
    assert!(lint_source("bench", "f.rs", src).is_empty());
    // Mentions in comments/strings never fire.
    let src = "// Instant::now() is banned here\nfn f() { let _ = \"Instant::now\"; }\n";
    assert!(lint_source("core", "f.rs", src).is_empty());
}

#[test]
fn wall_clock_allowed_with_reason() {
    let src = "fn f() {\n\
               \x20   // lint: allow(no-wall-clock): cost accounting only\n\
               \x20   let _ = Instant::now();\n\
               }\n";
    assert!(lint_source("sweep", "f.rs", src).is_empty());
}

// -------------------------------------------------------- rule 3

#[test]
fn alloc_free_positive() {
    let src = "fn tick() {\n\
               \x20   // lint: region(alloc-free: tick)\n\
               \x20   let label = format!(\"t={}\", 1);\n\
               \x20   // lint: end-region\n\
               \x20   drop(label);\n\
               }\n";
    assert_one(&lint_source("core", "f.rs", src), RULE_ALLOC_FREE, 3);
    // Every banned token fires inside a region.
    for tok in [
        "Vec::new()",
        "vec![0; 4]",
        "x.to_string()",
        "x.collect::<Vec<_>>()",
        "Box::new(1)",
        "x.clone()",
    ] {
        let src = format!(
            "fn f(x: i32) {{\n\
             \x20   // lint: region(alloc-free: r)\n\
             \x20   let _ = {tok};\n\
             \x20   // lint: end-region\n\
             }}\n"
        );
        let diags = lint_source("core", "f.rs", &src);
        assert_eq!(diags.len(), 1, "token {tok}: {diags:#?}");
        assert_eq!(diags[0].line, 3, "token {tok}");
    }
}

#[test]
fn alloc_free_negative() {
    // The same allocation outside any region is fine, as is buffer
    // reuse inside one.
    let src = "fn f() {\n\
               \x20   let label = format!(\"t={}\", 1);\n\
               \x20   // lint: region(alloc-free: r)\n\
               \x20   let mut v: [u8; 4] = [0; 4];\n\
               \x20   v[0] = 1;\n\
               \x20   // lint: end-region\n\
               \x20   drop(label);\n\
               }\n";
    assert!(lint_source("core", "f.rs", src).is_empty());
}

#[test]
fn alloc_free_allowed_with_reason() {
    let src = "fn f() {\n\
               \x20   // lint: region(alloc-free: r)\n\
               \x20   // lint: allow(alloc-free-region): one-time warm-up before the loop\n\
               \x20   let v = Vec::new();\n\
               \x20   // lint: end-region\n\
               \x20   drop::<Vec<u8>>(v);\n\
               }\n";
    assert!(lint_source("core", "f.rs", src).is_empty());
}

#[test]
fn alloc_free_catches_a_buffering_job_advance_regression() {
    // Throughput-mode regression fixture: a "streaming" source that
    // secretly materializes its jobs inside the job-advance region —
    // exactly the bug the alloc-free coverage of the streaming path is
    // there to catch.
    let src = "impl JobSource for BufferingStream {\n\
               \x20   fn next_job(&mut self) -> Option<Job> {\n\
               \x20       // lint: region(alloc-free: job-advance)\n\
               \x20       if self.buffered.is_none() {\n\
               \x20           self.buffered = Some(self.cfg.phases().collect::<Vec<_>>());\n\
               \x20       }\n\
               \x20       // lint: end-region\n\
               \x20       self.buffered.as_mut().and_then(|jobs| jobs.pop())\n\
               \x20   }\n\
               }\n";
    assert_one(&lint_source("workload", "f.rs", src), RULE_ALLOC_FREE, 5);
}

#[test]
fn unbalanced_regions_are_reported() {
    let open = "fn f() {\n\
                \x20   // lint: region(alloc-free: r)\n\
                }\n";
    let diags = lint_source("core", "f.rs", open);
    assert_one(&diags, RULE_DIRECTIVE, 2);
    assert!(diags[0].message.contains("never closed"), "{diags:#?}");
    let stray = "fn f() {}\n// lint: end-region\n";
    assert_one(&lint_source("core", "f.rs", stray), RULE_DIRECTIVE, 2);
}

// -------------------------------------------------------- rule 4

#[test]
fn stdout_positive() {
    let src = "fn f() {\n\
               \x20   println!(\"progress\");\n\
               }\n";
    assert_one(&lint_source("metrics", "f.rs", src), RULE_STDOUT, 2);
    let src = "fn f() { print!(\"x\"); }\n";
    assert_one(&lint_source("thermal", "f.rs", src), RULE_STDOUT, 1);
}

#[test]
fn stdout_negative() {
    // stderr is fine everywhere; stdout is fine in binary-entry crates.
    let src = "fn f() { eprintln!(\"diag\"); eprint!(\"d\"); }\n";
    assert!(lint_source("metrics", "f.rs", src).is_empty());
    let src = "fn f() { println!(\"report\"); }\n";
    assert!(lint_source("cli", "f.rs", src).is_empty());
    assert!(lint_source("bench", "f.rs", src).is_empty());
}

#[test]
fn stdout_allowed_with_reason() {
    let src = "fn f() {\n\
               \x20   // lint: allow(stdout-hygiene): doc-example helper, never linked into sweeps\n\
               \x20   println!(\"x\");\n\
               }\n";
    assert!(lint_source("metrics", "f.rs", src).is_empty());
}

// -------------------------------------------------------- rule 5

#[test]
fn thread_spawn_positive() {
    let src = "fn f() {\n\
               \x20   std::thread::spawn(|| {});\n\
               }\n";
    assert_one(&lint_source("core", "f.rs", src), RULE_THREAD_SPAWN, 2);
    // `scope` and `Builder` are spawns too, and the rule fires in every
    // crate — including `sweep` itself when the file is not the runner.
    let src = "fn f() { std::thread::scope(|s| { drop(s); }); }\n";
    assert_one(&lint_source("sweep", "crates/sweep/src/cache.rs", src), RULE_THREAD_SPAWN, 1);
    let src = "fn f() { let _ = thread::Builder::new(); }\n";
    assert_one(&lint_source("thermal", "f.rs", src), RULE_THREAD_SPAWN, 1);
}

#[test]
fn thread_spawn_negative() {
    // The sweep runner is the one sanctioned spawn site.
    let src = "fn f() {\n\
               \x20   std::thread::scope(|s| { drop(s); });\n\
               \x20   std::thread::spawn(|| {});\n\
               }\n";
    assert!(lint_source("sweep", "crates/sweep/src/runner.rs", src).is_empty());
    // Reading the core count is not spawning, and mentions in comments
    // or strings never fire.
    let src = "fn f() -> usize {\n\
               \x20   // thread::spawn is banned here\n\
               \x20   let s = \"thread::spawn\";\n\
               \x20   drop(s);\n\
               \x20   std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)\n\
               }\n";
    assert!(lint_source("core", "f.rs", src).is_empty());
}

#[test]
fn thread_spawn_allowed_with_reason() {
    let src = "fn f() {\n\
               \x20   // lint: allow(no-thread-spawn): opt-in pool, never inside sweep cells\n\
               \x20   std::thread::scope(|s| { drop(s); });\n\
               }\n";
    assert!(lint_source("thermal", "f.rs", src).is_empty());
    // A reason-less allow suppresses nothing.
    let src = "fn f() {\n\
               \x20   // lint: allow(no-thread-spawn)\n\
               \x20   std::thread::spawn(|| {});\n\
               }\n";
    let diags = lint_source("thermal", "f.rs", src);
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(diags.iter().any(|d| d.rule == RULE_DIRECTIVE && d.line == 2), "{diags:#?}");
    assert!(diags.iter().any(|d| d.rule == RULE_THREAD_SPAWN && d.line == 3), "{diags:#?}");
}

// -------------------------------------------------------- rule 6

/// A minimal stand-in for `cache.rs` with salt, fingerprint and region.
fn cache_fixture(salt: &str, fingerprint: u64, descriptor_line: &str) -> String {
    format!(
        "pub const ENGINE_VERSION: &str = \"{salt}\";\n\
         pub const DESCRIPTOR_FINGERPRINT: u64 = {fingerprint:#018x};\n\
         fn key() {{\n\
         \x20   // lint: region(fingerprint: cell-descriptor)\n\
         \x20   let descriptor = {descriptor_line};\n\
         \x20   // lint: end-region\n\
         \x20   drop(descriptor);\n\
         }}\n"
    )
}

/// The fingerprint the lint computes for `cache_fixture(salt, _, line)`.
fn fixture_fingerprint(salt: &str, descriptor_line: &str) -> u64 {
    let input = format!("{salt}\n\x20   let descriptor = {descriptor_line};");
    therm3d_lint::fnv1a64(input.as_bytes())
}

#[test]
fn salt_drift_negative_then_positive() {
    let salt = "cache/v1";
    let line = "format_cell(cell)";
    let good = cache_fixture(salt, fixture_fingerprint(salt, line), line);
    assert!(check_cache_salt("cache.rs", &good).is_empty());

    // Editing the descriptor without bumping anything: caught at the
    // region's first line.
    let drifted = cache_fixture(salt, fixture_fingerprint(salt, line), "format_cell_v2(cell)");
    let diags = check_cache_salt("cache.rs", &drifted);
    assert_one(&diags, RULE_SALT_DRIFT, 5);
    assert!(diags[0].message.contains("bump ENGINE_VERSION"), "{diags:#?}");

    // Bumping the salt without re-recording the fingerprint is drift
    // too (the salt is part of the hash), so the two constants can only
    // move together.
    let half_bumped = cache_fixture("cache/v2", fixture_fingerprint(salt, line), line);
    assert_eq!(check_cache_salt("cache.rs", &half_bumped).len(), 1);

    // A missing region marker or fingerprint constant is an error, not
    // a silent pass.
    let no_region = "pub const ENGINE_VERSION: &str = \"v\";\n";
    assert_one(&check_cache_salt("cache.rs", no_region), RULE_SALT_DRIFT, 1);
}

#[test]
fn salt_drift_allowed_with_reason() {
    let salt = "cache/v1";
    let line = "format_cell(cell)";
    let mut drifted = cache_fixture(salt, 0x1234, line);
    drifted = drifted.replace(
        "    // lint: region(fingerprint: cell-descriptor)",
        "    // lint: allow(cache-salt-drift): staged migration, re-recorded in the next commit\n\
         \x20   // lint: region(fingerprint: cell-descriptor)",
    );
    assert!(check_cache_salt("cache.rs", &drifted).is_empty());
}

// ---------------------------------------------- live-source coupling

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn live_cache_source_matches_recorded_fingerprint() {
    let path = workspace_root().join(therm3d_lint::CACHE_FILE);
    let source = std::fs::read_to_string(&path).unwrap();
    let status = therm3d_lint::cache_salt_status(&source).unwrap();
    assert_eq!(status.salt, therm3d_sweep::ENGINE_VERSION);
    assert_eq!(
        status.recorded,
        therm3d_sweep::DESCRIPTOR_FINGERPRINT,
        "lint parsed a different constant than the compiled one"
    );
    assert_eq!(
        status.actual, status.recorded,
        "cache.rs descriptor region drifted from DESCRIPTOR_FINGERPRINT — \
         bump ENGINE_VERSION and re-record (the lint error prints the new value)"
    );
}

#[test]
fn tampering_with_live_descriptor_fails_without_salt_bump() {
    let path = workspace_root().join(therm3d_lint::CACHE_FILE);
    let source = std::fs::read_to_string(&path).unwrap();
    // Simulate adding a field to the descriptor without touching the
    // salt: the in-memory edit must flip the lint to failing.
    let tampered = source.replace("trace_seed={}", "trace_seed={};extra_axis={}");
    assert_ne!(tampered, source, "descriptor pattern not found; update this test");
    let diags = check_cache_salt(therm3d_lint::CACHE_FILE, &tampered);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, RULE_SALT_DRIFT);
    assert!(diags[0].message.contains("bump ENGINE_VERSION"), "{diags:#?}");
}

#[test]
fn live_wire_source_matches_recorded_fingerprint() {
    let wire = &therm3d_lint::FINGERPRINT_TARGETS[1];
    assert_eq!(wire.file, therm3d_lint::WIRE_FILE);
    let path = workspace_root().join(wire.file);
    let source = std::fs::read_to_string(&path).unwrap();
    let status = therm3d_lint::fingerprint_status(wire, &source).unwrap();
    assert_eq!(status.salt, therm3d_coord::PROTOCOL_VERSION);
    assert_eq!(
        status.recorded,
        therm3d_coord::WIRE_FINGERPRINT,
        "lint parsed a different constant than the compiled one"
    );
    assert_eq!(
        status.actual, status.recorded,
        "wire.rs protocol region drifted from WIRE_FINGERPRINT — \
         bump PROTOCOL_VERSION and re-record (the lint error prints the new value)"
    );
}

#[test]
fn tampering_with_live_wire_descriptor_fails_without_version_bump() {
    let wire = &therm3d_lint::FINGERPRINT_TARGETS[1];
    let path = workspace_root().join(wire.file);
    let source = std::fs::read_to_string(&path).unwrap();
    // Simulate adding a message without touching the protocol version:
    // the in-memory edit must flip the lint to failing.
    let tampered = source.replace("reject:9{reason:string}", "reject:9{reason:string};cancel:10{}");
    assert_ne!(tampered, source, "wire descriptor pattern not found; update this test");
    let diags = therm3d_lint::check_fingerprint(wire, wire.file, &tampered);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, RULE_SALT_DRIFT);
    assert!(diags[0].message.contains("bump PROTOCOL_VERSION"), "{diags:#?}");
}

#[test]
fn whole_workspace_is_clean() {
    let report = lint_workspace(workspace_root()).unwrap();
    assert!(
        report.diagnostics.is_empty(),
        "workspace lint must stay clean:\n{}",
        report.diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files_scanned > 50, "walk looks truncated: {}", report.files_scanned);
}
