//! End-to-end correctness of the content-addressed result cache: cold
//! vs warm identity, grown-spec incremental reuse, corruption recovery,
//! engine-version invalidation, and determinism across thread counts
//! and hit/miss mixes.

use std::path::PathBuf;

use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_sweep::{cache, expand, run, run_with_cache, CacheStore, SweepSpec};
use therm3d_workload::Benchmark;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("therm3d_cache_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_spec(policies: &[PolicyKind], threads: usize) -> SweepSpec {
    SweepSpec::new("cache-e2e")
        .with_experiments(&[Experiment::Exp1, Experiment::Exp2])
        .with_policies(policies)
        .with_dpm(&[false, true])
        .with_benchmarks(&[Benchmark::Gzip])
        .with_sim_seconds(3.0)
        .with_grid(4, 4)
        .with_threads(threads)
}

#[test]
fn cold_run_misses_then_warm_run_hits_everything() {
    let dir = tmp_dir("hit_miss");
    let spec = small_spec(&[PolicyKind::Default, PolicyKind::Adapt3d], 2);
    let n = spec.cell_count() as u64;

    let mut store = CacheStore::open(&dir).unwrap();
    let cold = run_with_cache(&spec, Some(&mut store)).unwrap();
    let s = store.stats();
    assert_eq!((s.hits, s.misses, s.inserted), (0, n, n), "cold run simulates every cell");

    let mut store = CacheStore::open(&dir).unwrap();
    let warm = run_with_cache(&spec, Some(&mut store)).unwrap();
    let s = store.stats();
    assert_eq!((s.hits, s.misses, s.inserted), (n, 0, 0), "warm run simulates nothing");

    assert_eq!(cold.csv(), warm.csv(), "cache hits must be bit-identical");
    assert_eq!(cold.json(), warm.json());
    assert_eq!(cold.render(), warm.render());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn grown_spec_only_simulates_new_cells() {
    let dir = tmp_dir("grown");
    let seeded = small_spec(&[PolicyKind::Default, PolicyKind::Adapt3d], 2);
    let mut store = CacheStore::open(&dir).unwrap();
    run_with_cache(&seeded, Some(&mut store)).unwrap();
    let old_cells = seeded.cell_count() as u64;

    // Grow the policy axis: the old cells must all hit, only the new
    // policy's cells simulate.
    let grown = small_spec(&[PolicyKind::Default, PolicyKind::Adapt3d, PolicyKind::CGate], 2);
    let mut store = CacheStore::open(&dir).unwrap();
    let mixed = run_with_cache(&grown, Some(&mut store)).unwrap();
    let s = store.stats();
    let new_cells = grown.cell_count() as u64 - old_cells;
    assert_eq!((s.hits, s.misses, s.inserted), (old_cells, new_cells, new_cells));

    // Byte-identical to a cold full run of the grown spec.
    let cold = run(&grown).unwrap();
    assert_eq!(mixed.csv(), cold.csv(), "mixed hit/miss report must equal a cold run");
    assert_eq!(mixed.json(), cold.json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn determinism_across_cache_states_and_thread_counts() {
    let dir = tmp_dir("threads");
    let policies = [PolicyKind::Default, PolicyKind::CGate];

    // Pre-warm with a subset so the threaded runs see a hit/miss mix.
    let mut store = CacheStore::open(&dir).unwrap();
    run_with_cache(&small_spec(&policies[..1], 2), Some(&mut store)).unwrap();

    let uncached_t1 = run(&small_spec(&policies, 1)).unwrap();
    let uncached_t8 = run(&small_spec(&policies, 8)).unwrap();
    let mut store = CacheStore::open(&dir).unwrap();
    let mixed_t8 = run_with_cache(&small_spec(&policies, 8), Some(&mut store)).unwrap();
    let mut store = CacheStore::open(&dir).unwrap();
    let warm_t1 = run_with_cache(&small_spec(&policies, 1), Some(&mut store)).unwrap();
    assert_eq!(store.stats().hits, small_spec(&policies, 1).cell_count() as u64);

    let reference = uncached_t1.csv();
    for (label, report) in
        [("t8 uncached", &uncached_t8), ("t8 mixed", &mixed_t8), ("t1 warm", &warm_t1)]
    {
        assert_eq!(report.csv(), reference, "{label} diverged");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_recover_by_resimulating() {
    let dir = tmp_dir("corrupt");
    let spec = small_spec(&[PolicyKind::Default], 1);
    let n = spec.cell_count() as u64;
    let mut store = CacheStore::open(&dir).unwrap();
    let cold = run_with_cache(&spec, Some(&mut store)).unwrap();

    // Vandalize the store: truncate the first line, smash the last
    // line's delimiters, and drop the trailing newline (what a writer
    // crash mid-append leaves behind).
    let path = dir.join(cache::STORE_FILE);
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let first = lines[0].clone();
    lines[0] = first[..first.len() - 5].to_owned(); // truncated
    let last = lines.last().unwrap().clone();
    *lines.last_mut().unwrap() = last.replace('\t', " "); // delimiter smashed
    std::fs::write(&path, lines.join("\n")).unwrap();

    let mut store = CacheStore::open(&dir).unwrap();
    assert_eq!(store.stats().corrupt, 2, "both vandalized lines detected");
    let healed = run_with_cache(&spec, Some(&mut store)).unwrap();
    let s = store.stats();
    assert_eq!(s.corrupt + s.hits + s.misses, 2 + n);
    assert_eq!(s.misses, s.inserted, "every corrupted entry re-simulates and re-persists");
    assert_eq!(healed.csv(), cold.csv(), "recovery is invisible in the report");

    // And the store is whole again afterwards.
    let mut store = CacheStore::open(&dir).unwrap();
    run_with_cache(&spec, Some(&mut store)).unwrap();
    assert_eq!(store.stats().misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_version_bump_invalidates_the_whole_store() {
    let dir = tmp_dir("engine_bump");
    let spec = small_spec(&[PolicyKind::Default], 1);
    // Persist every cell under a *previous* engine version.
    let mut store = CacheStore::open(&dir).unwrap();
    let report = run(&spec).unwrap();
    for row in &report.rows {
        let old_key = cache::cell_key_salted(&spec, &row.cell, "therm3d-sweep-cache/v0");
        store.insert(&old_key, &row.result).unwrap();
    }
    // Under the current version nothing hits: stale semantics are never
    // served.
    let mut store = CacheStore::open(&dir).unwrap();
    assert_eq!(store.len(), spec.cell_count());
    run_with_cache(&spec, Some(&mut store)).unwrap();
    let s = store.stats();
    assert_eq!(s.hits, 0, "version bump must invalidate every entry");
    assert_eq!(s.misses, spec.cell_count() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v2_salted_entries_miss_under_the_v3_engine() {
    // This PR embedded the scenario axes in the cell descriptor and
    // re-seeded noisy sensors from the per-cell seed: ENGINE_VERSION
    // moved from v2 to v3, and anything a pre-bump binary persisted
    // must be dead on arrival.
    assert_eq!(cache::ENGINE_VERSION, "therm3d-sweep-cache/v3");
    let dir = tmp_dir("v2_salt");
    let spec = small_spec(&[PolicyKind::Default, PolicyKind::Adapt3d], 1);
    let report = run(&spec).unwrap();
    let mut store = CacheStore::open(&dir).unwrap();
    for row in &report.rows {
        let old_key = cache::cell_key_salted(&spec, &row.cell, "therm3d-sweep-cache/v2");
        store.insert(&old_key, &row.result).unwrap();
    }
    drop(store);

    let mut store = CacheStore::open(&dir).unwrap();
    assert_eq!(store.len(), spec.cell_count(), "old entries load intact...");
    let warm = run_with_cache(&spec, Some(&mut store)).unwrap();
    let s = store.stats();
    assert_eq!(s.hits, 0, "...but the v2 salt must never satisfy a v3 lookup");
    assert_eq!(s.misses, spec.cell_count() as u64);
    assert_eq!(s.inserted, spec.cell_count() as u64, "fresh v3 entries are written back");
    assert_eq!(warm.csv(), report.csv(), "re-simulation reproduces the uncached report");

    // A third run is fully warm under the new salt, and compaction
    // reclaims exactly the dead v2 lines.
    let mut store = CacheStore::open(&dir).unwrap();
    run_with_cache(&spec, Some(&mut store)).unwrap();
    assert_eq!(store.stats().misses, 0);
    let stats = store.compact().unwrap();
    assert_eq!(stats.kept, spec.cell_count() as u64);
    assert_eq!(stats.dropped_stale, spec.cell_count() as u64, "every v2 line is dropped");
    let mut store = CacheStore::open(&dir).unwrap();
    run_with_cache(&spec, Some(&mut store)).unwrap();
    assert_eq!(store.stats().misses, 0, "compaction keeps the live entries hot");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A spec exercising every scenario axis at once, including a noisy
/// sensor (whose stream is derived from the per-cell seed — the
/// reproducibility fix this PR makes).
fn scenario_spec(threads: usize) -> SweepSpec {
    use therm3d::SensorProfile;
    use therm3d_floorplan::StackOrder;
    use therm3d_thermal::TsvVariant;
    SweepSpec::new("scenario-cache")
        .with_experiments(&[Experiment::Exp1])
        .with_stack_orders(&StackOrder::ALL)
        .with_tsv(&[TsvVariant::Paper, TsvVariant::Dense1Pct])
        .with_sensors(&[SensorProfile::Ideal, SensorProfile::Noisy1C])
        .with_policies(&[PolicyKind::Default, PolicyKind::DvfsTt])
        .with_benchmarks(&[Benchmark::Gzip])
        .with_sim_seconds(3.0)
        .with_grid(4, 4)
        .with_threads(threads)
}

#[test]
fn scenario_axes_are_cold_warm_deterministic_across_thread_counts() {
    let dir = tmp_dir("scenario");
    let spec = scenario_spec(1);
    let n = spec.cell_count() as u64;
    assert_eq!(n, 2 * 2 * 2 * 2, "all three scenario axes in play");

    let mut store = CacheStore::open(&dir).unwrap();
    let cold_t1 = run_with_cache(&spec, Some(&mut store)).unwrap();
    let s = store.stats();
    assert_eq!((s.hits, s.misses, s.inserted), (0, n, n));

    // Warm rerun on eight threads: zero cells simulate and the report
    // is byte-identical — noisy sensor cells included, because their
    // noise stream is a pure function of the cell, not of the run.
    let mut store = CacheStore::open(&dir).unwrap();
    let warm_t8 = run_with_cache(&scenario_spec(8), Some(&mut store)).unwrap();
    let s = store.stats();
    assert_eq!((s.hits, s.misses, s.inserted), (n, 0, 0), "warm rerun simulates nothing");
    assert_eq!(cold_t1.csv(), warm_t8.csv());
    assert_eq!(cold_t1.json(), warm_t8.json());
    assert_eq!(cold_t1.render(), warm_t8.render());

    // An uncached eight-thread run agrees too (scheduling-independent).
    let uncached_t8 = run(&scenario_spec(8)).unwrap();
    assert_eq!(uncached_t8.csv(), cold_t1.csv());

    // The scenario actually bites: cells differing only in a scenario
    // axis produce different keys AND different physics.
    let by_key: std::collections::BTreeMap<&str, &therm3d::RunResult> =
        cold_t1.rows.iter().map(|r| (r.key.as_str(), &r.result)).collect();
    assert_eq!(by_key.len(), n as usize, "every cell has a distinct key");
    let far = &cold_t1.rows[0]; // cores-far, paper, ideal, Default
    let near = cold_t1
        .rows
        .iter()
        .find(|r| {
            r.cell.stack_order == therm3d_floorplan::StackOrder::CoresNearSink
                && r.cell.tsv == far.cell.tsv
                && r.cell.sensor == far.cell.sensor
                && r.cell.policy == far.cell.policy
        })
        .unwrap();
    assert_ne!(
        far.result.peak_temp_c, near.result.peak_temp_c,
        "bonding the cores to the spreader must change the thermal profile"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cell_keys_distinguish_integrators() {
    // The descriptor embeds the integrator axis: an RK4 golden-reference
    // cell can never be served an implicit cell's numbers or vice versa.
    use therm3d_thermal::Integrator;
    let spec = small_spec(&[PolicyKind::Default], 1)
        .with_integrators(&[Integrator::ImplicitCn, Integrator::ExplicitRk4]);
    let cells = expand(&spec);
    let twin = cells
        .iter()
        .find(|c| {
            c.integrator == Integrator::ExplicitRk4
                && c.experiment == cells[0].experiment
                && c.policy == cells[0].policy
                && c.dpm == cells[0].dpm
                && c.trace_seed == cells[0].trace_seed
        })
        .expect("an RK4 twin of the first cell exists");
    let a = cache::cell_key(&spec, &cells[0]);
    let b = cache::cell_key(&spec, twin);
    assert_ne!(a.hex(), b.hex());
    assert!(a.descriptor().contains("integrator=implicit-cn"), "{}", a.descriptor());
    assert!(b.descriptor().contains("integrator=explicit-rk4"), "{}", b.descriptor());
}

#[test]
fn report_key_column_matches_cell_key_derivation() {
    let dir = tmp_dir("key_column");
    let spec = small_spec(&[PolicyKind::Default], 1);
    let mut store = CacheStore::open(&dir).unwrap();
    let report = run_with_cache(&spec, Some(&mut store)).unwrap();
    for (row, cell) in report.rows.iter().zip(expand(&spec)) {
        assert_eq!(row.key, cache::cell_key(&spec, &cell).hex());
    }
    // The provenance column is identical on a cache-less run.
    let uncached = run(&spec).unwrap();
    assert_eq!(uncached.csv(), report.csv());
    let _ = std::fs::remove_dir_all(&dir);
}
