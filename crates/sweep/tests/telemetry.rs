//! End-to-end telemetry invariants of the sweep runner: the metrics
//! snapshot's deterministic subset is identical for any thread count,
//! the JSONL event stream covers every cell with `cell_start` strictly
//! before `cell_finish`, cached cells are reported as such on a warm
//! rerun, and — the invariant everything else rides on — the report
//! itself is byte-identical with telemetry on or off.

use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_sweep::{run_with_cache, run_with_telemetry, CacheStore, RunTelemetry, SweepSpec};
use therm3d_telemetry::{EventSink, Json};
use therm3d_workload::Benchmark;

fn tiny_spec(threads: usize) -> SweepSpec {
    SweepSpec::new("telemetry-e2e")
        .with_experiments(&[Experiment::Exp1])
        .with_policies(&[PolicyKind::Default, PolicyKind::Adapt3d])
        .with_benchmarks(&[Benchmark::Gzip])
        .with_dpm(&[false, true])
        .with_sim_seconds(2.0)
        .with_grid(4, 4)
        .with_threads(threads)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("therm3d_telemetry_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A `Write` handle into a shared byte buffer, for capturing the JSONL
/// event stream in-process.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn snapshot_deterministic_subset_is_thread_count_invariant() {
    let tel1 = RunTelemetry::new();
    let tel8 = RunTelemetry::new();
    let r1 = run_with_telemetry(&tiny_spec(1), None, Some(&tel1)).unwrap();
    let r8 = run_with_telemetry(&tiny_spec(8), None, Some(&tel8)).unwrap();
    assert_eq!(r1, r8, "reports are bit-identical across thread counts");

    let (s1, s8) = (tel1.snapshot(), tel8.snapshot());
    // Counters (cells, hits/misses, simulated, factorization totals)
    // are fully deterministic; only the thread-count meta differs.
    assert_eq!(s1.counters, s8.counters);
    assert_eq!(s1.counters["sweep.cells_total"], 4);
    assert_eq!(s1.counters["sweep.cells_simulated"], 4);
    assert!(!s1.counters.contains_key("sweep.cache_misses"), "no cache attached: nothing to miss");
    assert!(s1.counters["thermal.factor_numeric"] >= 1);
    assert!(s1.counters["thermal.symbolic_analyses"] >= 1);
    assert_eq!(s1.meta["threads"], "1");
    // Per-cell records line up: same cells, same keys, same cached
    // flags, same solver counters, same phase names — only the µs vary.
    assert_eq!(s1.cells.len(), 4);
    assert_eq!(s1.cells.len(), s8.cells.len());
    for (a, b) in s1.cells.iter().zip(&s8.cells) {
        assert_eq!((a.index, &a.key, a.cached), (b.index, &b.key, b.cached));
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.phases.keys().collect::<Vec<_>>(), b.phases.keys().collect::<Vec<_>>());
    }
    // Aggregate histograms saw every cell.
    assert_eq!(s1.histograms["cell.wall_us"].count, 4);
    assert_eq!(s8.histograms["cell.wall_us"].count, 4);
    // And the snapshot round-trips through its JSON form.
    let back = therm3d_telemetry::MetricsSnapshot::from_json(&s1.to_json()).unwrap();
    assert_eq!(back, s1);
}

#[test]
fn factor_share_dedupes_solver_work_across_cells() {
    let tel = RunTelemetry::new();
    let report = run_with_telemetry(&tiny_spec(4), None, Some(&tel)).unwrap();
    let snap = tel.snapshot();
    // All four cells differ only in policy/DPM, so they resolve to one
    // thermal model …
    assert_eq!(snap.counters["sweep.thermal_models"], 1);
    // … which pays for exactly one symbolic analysis and one factor
    // set, however many cells and worker threads the sweep used.
    assert_eq!(snap.counters["thermal.symbolic_analyses"], 1);
    let computed = snap.counters["thermal.factor_numeric"];
    let per_cell: Vec<u64> =
        report.rows.iter().map(|r| r.timing.as_ref().unwrap().counters["factor_numeric"]).collect();
    // Per-cell counters keep their "ensured" semantics (adopting a
    // shared factor counts like computing it), so each cell reports the
    // same work it would have done alone …
    assert!(per_cell.iter().all(|&c| c == per_cell[0]), "{per_cell:?}");
    assert!((1..=per_cell[0]).contains(&computed), "computed {computed} of {}", per_cell[0]);
    // … while the run-level total splits exactly into one computation
    // per distinct factor plus share hits for everything else.
    let hits = snap.counters["sweep.factor_share_hits"];
    assert_eq!(hits + computed, per_cell.iter().sum::<u64>());
    assert!(hits >= 3 * per_cell[0], "3 of 4 cells adopt every factor: {hits}");
}

#[test]
fn events_cover_every_cell_with_start_before_finish() {
    let buf = SharedBuf::default();
    let tel = RunTelemetry::new().with_events(EventSink::to_writer(Box::new(buf.clone())));
    let report = run_with_telemetry(&tiny_spec(4), None, Some(&tel)).unwrap();

    let text = buf.text();
    let docs: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    let field = |d: &Json, k: &str| d.get(k).unwrap().as_u64().unwrap();
    let tag = |d: &Json| d.get("ev").unwrap().as_str().unwrap().to_owned();

    // Per cell: exactly one start and one finish, in that order.
    for row in &report.rows {
        let idx = row.cell.index as u64;
        let of_cell: Vec<usize> = docs
            .iter()
            .enumerate()
            .filter(|(_, d)| field(d, "cell") == idx)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(of_cell.len(), 2, "cell {idx} has start+finish");
        assert_eq!(tag(&docs[of_cell[0]]), "cell_start");
        assert_eq!(tag(&docs[of_cell[1]]), "cell_finish");
        assert_eq!(docs[of_cell[0]].get("key").unwrap().as_str(), Some(row.key.as_str()));
        assert_eq!(docs[of_cell[1]].get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(docs[of_cell[0]].get("shard").unwrap().as_str(), Some("0/1"));
    }
    assert_eq!(docs.len(), 2 * report.rows.len());
}

#[test]
fn warm_cache_run_reports_hits_and_cached_timings() {
    let dir = tmp_dir("warm");
    let mut store = CacheStore::open(&dir).unwrap();
    let cold = run_with_cache(&tiny_spec(2), Some(&mut store)).unwrap();

    let buf = SharedBuf::default();
    let tel = RunTelemetry::new().with_events(EventSink::to_writer(Box::new(buf.clone())));
    let mut store = CacheStore::open(&dir).unwrap();
    let warm = run_with_telemetry(&tiny_spec(2), Some(&mut store), Some(&tel)).unwrap();
    assert_eq!(warm, cold, "telemetry and cache hits leave the report untouched");

    let snap = tel.snapshot();
    assert_eq!(snap.counters["sweep.cache_hits"], 4);
    assert_eq!(snap.counters["sweep.cache_misses"], 0);
    assert!(!snap.counters.contains_key("sweep.cells_simulated"));
    assert!(snap.cells.iter().all(|c| c.cached && c.phases.contains_key("cache_lookup")));
    // Rows carry the same records.
    for row in &warm.rows {
        let timing = row.timing.as_ref().expect("telemetered run attaches timing");
        assert!(timing.cached);
        assert_eq!(timing.key, row.key);
    }
    // Event stream: every cell appears as cache_hit then cell_finish
    // with cached=true.
    let text = buf.text();
    let docs: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    let tags: Vec<_> =
        docs.iter().map(|d| d.get("ev").unwrap().as_str().unwrap().to_owned()).collect();
    assert_eq!(tags.iter().filter(|t| *t == "cache_hit").count(), 4);
    assert_eq!(tags.iter().filter(|t| *t == "cell_finish").count(), 4);
    assert!(docs
        .iter()
        .filter(|d| d.get("ev").unwrap().as_str() == Some("cell_finish"))
        .all(|d| d.get("cached").unwrap().as_bool() == Some(true)));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn untelemetered_rows_carry_no_timing() {
    let spec = tiny_spec(1).with_policies(&[PolicyKind::Default]).with_dpm(&[false]);
    let report = run_with_cache(&spec, None).unwrap();
    assert!(report.rows.iter().all(|r| r.timing.is_none()));

    let tel = RunTelemetry::new();
    let telemetered = run_with_telemetry(&spec, None, Some(&tel)).unwrap();
    for row in &telemetered.rows {
        let timing = row.timing.as_ref().expect("timing attached");
        assert!(!timing.cached);
        assert!(timing.phases.contains_key("setup") && timing.phases.contains_key("simulate"));
        // The paper's implicit integrator factors a handful of times
        // per model; the per-cell counter makes that observable.
        assert!(timing.counters["factor_numeric"] >= 1, "{:?}", timing.counters);
        assert!(timing.counters["symbolic_analyses"] >= 1);
    }
    // Timing differences never affect row equality.
    assert_eq!(report.rows, telemetered.rows);
}
