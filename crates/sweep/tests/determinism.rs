//! End-to-end determinism of the sweep engine: the aggregated exports
//! must be bit-identical whatever the worker-thread count, and spec →
//! matrix expansion must be stable.

use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_sweep::{expand, from_toml, to_toml, SweepSpec};
use therm3d_workload::Benchmark;

/// ≥2 experiments × ≥3 policies × {DPM on, off}, kept fast with a 4×4
/// grid and short traces (the acceptance-criteria scenario).
fn acceptance_spec(threads: usize) -> SweepSpec {
    SweepSpec::new("acceptance")
        .with_experiments(&[Experiment::Exp1, Experiment::Exp2])
        .with_policies(&[PolicyKind::Default, PolicyKind::CGate, PolicyKind::Adapt3d])
        .with_dpm(&[false, true])
        .with_benchmarks(&[Benchmark::Gzip, Benchmark::WebMed])
        .with_sim_seconds(4.0)
        .with_grid(4, 4)
        .with_threads(threads)
}

#[test]
fn csv_identical_across_one_and_two_threads() {
    let serial = therm3d_sweep::run(&acceptance_spec(1)).unwrap();
    let parallel = therm3d_sweep::run(&acceptance_spec(2)).unwrap();
    assert_eq!(serial.rows.len(), 2 * 3 * 2);
    assert_eq!(serial.csv(), parallel.csv(), "thread count must not change results");
    assert_eq!(serial.json(), parallel.json());
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn csv_identical_with_oversubscribed_threads() {
    // More threads than cells exercises the clamp and the job queue tail.
    let few = therm3d_sweep::run(&acceptance_spec(2)).unwrap();
    let many = therm3d_sweep::run(&acceptance_spec(64)).unwrap();
    assert_eq!(few.csv(), many.csv());
}

#[test]
fn matrix_expansion_matches_cell_count_and_order() {
    let spec = acceptance_spec(1);
    let cells = expand(&spec);
    assert_eq!(cells.len(), spec.cell_count());
    for (i, cell) in cells.iter().enumerate() {
        assert_eq!(cell.index, i);
    }
    // Same spec, same matrix — including derived seeds.
    assert_eq!(cells, expand(&acceptance_spec(1)));
    // Policy axis is innermost: three consecutive cells per group.
    assert_eq!(cells[0].policy, PolicyKind::Default);
    assert_eq!(cells[1].policy, PolicyKind::CGate);
    assert_eq!(cells[2].policy, PolicyKind::Adapt3d);
}

#[test]
fn toml_round_trip_preserves_the_acceptance_spec() {
    let spec = acceptance_spec(2);
    let parsed = from_toml(&to_toml(&spec)).unwrap();
    assert_eq!(parsed, spec);
    // And the parsed spec expands to the identical matrix.
    assert_eq!(expand(&parsed), expand(&spec));
}

#[test]
fn report_groups_follow_policy_order() {
    let report = therm3d_sweep::run(&acceptance_spec(2)).unwrap();
    for &exp in &[Experiment::Exp1, Experiment::Exp2] {
        for &dpm in &[false, true] {
            let group = report.group(exp, dpm, 0);
            let labels: Vec<&str> = group.iter().map(|r| r.policy.as_str()).collect();
            // The engine suffixes "+DPM" onto the policy label when DPM
            // wraps the policy; the order must match the spec's.
            let expected: Vec<String> = ["Default", "CGate", "Adapt3D"]
                .iter()
                .map(|l| if dpm { format!("{l}+DPM") } else { (*l).to_owned() })
                .collect();
            assert_eq!(labels, expected, "{exp} dpm={dpm}");
        }
    }
}
