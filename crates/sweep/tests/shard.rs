//! Sharding invariants, property-tested over random specs: for any
//! spec and any shard count, the shards' cell lists are disjoint, their
//! union (in canonical order) is exactly the full expansion, and
//! sharding never perturbs a cell — indices, derived seeds and
//! content-addressed cache keys are identical to the unsharded run's.
//! Plus an end-to-end check that a 3-shard campaign merges back to the
//! byte-identical report and a fully-warm union cache.

use proptest::prelude::*;
use therm3d::SensorProfile;
use therm3d_floorplan::{Experiment, StackOrder};
use therm3d_policies::PolicyKind;
use therm3d_sweep::{
    cell_key, expand, expand_shard, merge_csv, run_with_cache, CacheStore, ShardSpec, SweepSpec,
};
use therm3d_thermal::{Integrator, TsvVariant};
use therm3d_workload::Benchmark;

/// Builds a valid random spec from axis-prefix lengths (prefixes of the
/// canonical axis value lists are always duplicate-free).
#[allow(clippy::too_many_arguments)]
fn spec_from(
    n_exp: usize,
    n_orders: usize,
    n_tsv: usize,
    n_sensors: usize,
    n_integrators: usize,
    n_pol: usize,
    both_dpm: bool,
    n_seeds: usize,
) -> SweepSpec {
    let seeds: Vec<u64> = (0..n_seeds as u64).map(|i| 2009 + i).collect();
    SweepSpec::new("shard-props")
        .with_experiments(&Experiment::ALL[..n_exp])
        .with_stack_orders(&StackOrder::ALL[..n_orders])
        .with_tsv(&[TsvVariant::Paper, TsvVariant::Dense1Pct, TsvVariant::Epoxy][..n_tsv])
        .with_sensors(&[SensorProfile::Ideal, SensorProfile::Noisy1C][..n_sensors])
        .with_integrators(&[Integrator::ImplicitCn, Integrator::ExplicitRk4][..n_integrators])
        .with_policies(&PolicyKind::ALL[..n_pol])
        .with_dpm(if both_dpm { &[false, true] } else { &[false] })
        .with_seeds(&seeds)
        .with_benchmarks(&[Benchmark::Gzip])
        .with_sim_seconds(1.0)
        .with_grid(4, 4)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn shards_are_disjoint_their_union_is_canonical_and_cells_are_untouched(
        n_exp in 1usize..5,
        n_orders in 1usize..3,
        n_tsv in 1usize..4,
        n_sensors in 1usize..3,
        n_integrators in 1usize..3,
        n_pol in 1usize..12,
        both_dpm in prop::sample::select(vec![false, true]),
        n_seeds in 1usize..4,
        count in 1usize..9,
    ) {
        let spec = spec_from(
            n_exp, n_orders, n_tsv, n_sensors, n_integrators, n_pol, both_dpm, n_seeds,
        );
        spec.validate().unwrap();
        let full = expand(&spec);
        let full_keys: Vec<String> =
            full.iter().map(|c| cell_key(&spec, c).hex()).collect();

        let mut seen = std::collections::BTreeSet::new();
        let mut union = Vec::new();
        for index in 0..count {
            let shard = ShardSpec { index, count };
            let sharded_spec = spec.clone().with_shard(shard);
            sharded_spec.validate().unwrap();
            let cells = expand_shard(&sharded_spec);
            prop_assert_eq!(cells.len(), shard.cell_count(full.len()));
            for cell in &cells {
                // Disjoint: no cell index may appear on two shards.
                prop_assert!(seen.insert(cell.index), "cell #{} on two shards", cell.index);
                // Unchanged: the shard's cell is the canonical cell —
                // same axes, same derived seeds…
                prop_assert_eq!(cell, &full[cell.index]);
                // …and the same content-addressed cache key, so shard
                // caches union into exactly the unsharded cache.
                prop_assert_eq!(
                    cell_key(&sharded_spec, cell).hex(),
                    full_keys[cell.index].clone()
                );
            }
            union.extend(cells);
        }
        // Union: sorting the shards' cells by canonical index (what
        // merging does) restores the full expansion exactly.
        union.sort_by_key(|c| c.index);
        prop_assert_eq!(union, full);
    }
}

#[test]
fn three_shard_campaign_merges_byte_identically_and_cache_union_is_warm() {
    let tag = std::process::id();
    let base = std::env::temp_dir().join(format!("therm3d_shard_e2e_{tag}"));
    let _ = std::fs::remove_dir_all(&base);
    let spec = SweepSpec::new("shard-e2e")
        .with_experiments(&[Experiment::Exp1])
        .with_policies(&[PolicyKind::Default, PolicyKind::CGate, PolicyKind::Adapt3d])
        .with_dpm(&[false, true])
        .with_benchmarks(&[Benchmark::Gzip])
        .with_sim_seconds(3.0)
        .with_grid(4, 4)
        .with_threads(2);
    let full = therm3d_sweep::run(&spec).unwrap();

    // Each shard runs in its own "process": separate store, own CSV.
    let mut shard_csvs = Vec::new();
    for k in 0..3 {
        let mut store = CacheStore::open(&base.join(format!("cache-{k}"))).unwrap();
        let report = run_with_cache(
            &spec.clone().with_shard(ShardSpec { index: k, count: 3 }),
            Some(&mut store),
        )
        .unwrap();
        assert_eq!(store.stats().inserted, report.rows.len() as u64);
        shard_csvs.push(report.csv());
    }

    // CSV merge (fed out of order) is byte-identical to the full run.
    let inputs: Vec<(&str, &str)> =
        [2usize, 0, 1].iter().map(|&k| ("shard.csv", shard_csvs[k].as_str())).collect();
    assert_eq!(merge_csv(&inputs).unwrap(), full.csv());

    // Cache union serves the whole matrix warm: every cell hits, none
    // simulates, and the report built purely from cache is identical.
    let mut merged = CacheStore::open(&base.join("cache-all")).unwrap();
    for k in 0..3 {
        merged.merge_from(&CacheStore::open(&base.join(format!("cache-{k}"))).unwrap()).unwrap();
    }
    let warm = run_with_cache(&spec, Some(&mut merged)).unwrap();
    let s = merged.stats();
    assert_eq!((s.hits, s.misses), (full.rows.len() as u64, 0), "union cache must be fully warm");
    assert_eq!(warm.csv(), full.csv());
    assert_eq!(warm.json(), full.json());
    let _ = std::fs::remove_dir_all(&base);
}
