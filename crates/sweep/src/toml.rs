//! TOML (de)serialization for [`SweepSpec`] — a hand-rolled subset
//! parser, since the offline dependency set has no `toml` crate.
//!
//! Supported syntax: `# comments`, one optional `[sweep]` section
//! header, and `key = value` lines where the value is a string, number,
//! boolean, or a single-line array of those. Every spec produced by
//! [`to_toml`] parses back to an equal spec (round-trip property).
//!
//! # Spec file reference
//!
//! ```toml
//! [sweep]                      # optional section header
//! name = "quick"
//! experiments = ["exp1", "exp3"]           # exp1..exp4
//! stack_orders = ["cores-far", "cores-near"]  # split-config orientation
//! tsv = ["paper", "dense-1pct"]            # TSV/interlayer variants
//! sensors = ["ideal", "noisy-1c"]          # sensor-fidelity profiles
//! integrators = ["implicit-cn"]            # or explicit-rk4 (golden reference)
//! policies = ["Default", "Adapt3D"]        # figure labels
//! dpm = [false, true]
//! benchmarks = ["web-med", "gzip"]         # Table I names
//! seeds = [2009, 2010]
//! sim_seconds = 20.0
//! grid = [4, 4]                # or a single integer for square grids
//! policy_seed = 44257
//! threads = 0                  # 0 = one per CPU
//! shard = "0/1"                # run shard K of N ("0/1" = full matrix)
//! streaming = false            # stream traces (O(1) memory in sim_seconds)
//! ```
//!
//! Omitted keys keep the [`SweepSpec::new`] defaults. Note that when
//! `sim_seconds` is omitted, [`from_toml`] honours the
//! `THERM3D_SIM_SECONDS` environment variable (falling back to 240 s;
//! a malformed value is a parse error, never a silent fallback), so a
//! spec that pins its duration should set `sim_seconds` explicitly.

use std::str::FromStr;

use therm3d::SensorProfile;
use therm3d_floorplan::{Experiment, StackOrder};
use therm3d_policies::PolicyKind;
use therm3d_thermal::{Integrator, TsvVariant};
use therm3d_workload::Benchmark;

use crate::shard::ShardSpec;
use crate::spec::SweepSpec;

/// One parsed scalar. Non-negative integers keep their exact `u64`
/// value (a float detour would corrupt trace seeds above 2^53).
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Str(String),
    Int(u64),
    Num(f64),
    Bool(bool),
}

impl Scalar {
    fn type_name(&self) -> &'static str {
        match self {
            Scalar::Str(_) => "string",
            Scalar::Int(_) => "integer",
            Scalar::Num(_) => "number",
            Scalar::Bool(_) => "boolean",
        }
    }
}

/// A value: scalar or single-line array of scalars.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Scalar(Scalar),
    Array(Vec<Scalar>),
}

fn parse_scalar(raw: &str, line_no: usize) -> Result<Scalar, String> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return Err(format!("line {line_no}: unterminated string {raw}"));
        };
        if inner.contains('"') {
            return Err(format!("line {line_no}: escaped quotes are not supported: {raw}"));
        }
        return Ok(Scalar::Str(inner.to_owned()));
    }
    match raw {
        "true" => return Ok(Scalar::Bool(true)),
        "false" => return Ok(Scalar::Bool(false)),
        _ => {}
    }
    if let Ok(n) = raw.parse::<u64>() {
        return Ok(Scalar::Int(n));
    }
    raw.parse::<f64>()
        .map(Scalar::Num)
        .map_err(|_| format!("line {line_no}: cannot parse value `{raw}`"))
}

fn parse_value(raw: &str, line_no: usize) -> Result<Value, String> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('[') {
        let Some(inner) = stripped.strip_suffix(']') else {
            return Err(format!("line {line_no}: arrays must open and close on one line: `{raw}`"));
        };
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Value::Array(Vec::new()));
        }
        let items = inner
            .split(',')
            .map(|item| parse_scalar(item, line_no))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Value::Array(items));
    }
    parse_scalar(raw, line_no).map(Value::Scalar)
}

/// Strips a `#` comment, respecting `"` quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn typed<T: FromStr>(s: &Scalar, key: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let Scalar::Str(s) = s else {
        return Err(format!("`{key}` expects strings, got a {}", s.type_name()));
    };
    s.parse().map_err(|e| format!("`{key}`: {e}"))
}

fn numeric(s: &Scalar, key: &str) -> Result<f64, String> {
    match s {
        Scalar::Num(n) => Ok(*n),
        Scalar::Int(n) => Ok(*n as f64),
        other => Err(format!("`{key}` expects numbers, got a {}", other.type_name())),
    }
}

fn integer(s: &Scalar, key: &str) -> Result<u64, String> {
    match s {
        Scalar::Int(n) => Ok(*n),
        // Negative, fractional and > 2^64−1 values all land here (they
        // parse as floats); name the value so "out of range" is
        // distinguishable from a type mismatch.
        Scalar::Num(n) => Err(format!(
            "`{key}` expects integers in 0..=18446744073709551615, got {n} \
             (out of range or not an integer)"
        )),
        other => Err(format!(
            "`{key}` expects non-negative integers that fit in 64 bits, got a {}",
            other.type_name()
        )),
    }
}

fn scalar_list(value: &Value) -> Vec<Scalar> {
    match value {
        Value::Scalar(s) => vec![s.clone()],
        Value::Array(items) => items.clone(),
    }
}

/// Parses a sweep spec from TOML text.
///
/// Unknown keys are rejected (typos must not silently drop an axis).
/// Omitted keys keep the [`SweepSpec::new`] defaults.
///
/// # Errors
///
/// Returns a message with the offending line or key on malformed
/// syntax, unknown keys/sections, type mismatches, or a spec that fails
/// [`SweepSpec::validate`].
pub fn from_toml(text: &str) -> Result<SweepSpec, String> {
    let mut spec = SweepSpec::new("sweep");
    let mut seen: Vec<String> = Vec::new();
    let mut seen_section = false;
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(section) = line.strip_prefix('[') {
            let section = section.strip_suffix(']').map(str::trim);
            match section {
                // Real TOML rejects a repeated table header; a second
                // `[sweep]` is a sign of a careless concatenation.
                Some("sweep") if seen_section => {
                    return Err(format!("line {line_no}: duplicate `[sweep]` section"));
                }
                Some("sweep") => {
                    seen_section = true;
                    continue;
                }
                Some(other) => return Err(format!("line {line_no}: unknown section `[{other}]`")),
                None => return Err(format!("line {line_no}: malformed section `{line}`")),
            }
        }
        let Some((key, raw_value)) = line.split_once('=') else {
            return Err(format!("line {line_no}: expected `key = value`, got `{line}`"));
        };
        let key = key.trim();
        // `sensor` is accepted as an alias for `sensors` (and likewise
        // for the singular of the other scenario axes); canonicalize
        // before the duplicate check so an alias cannot smuggle a
        // second value past it.
        let key = match key {
            "sensor" => "sensors",
            "stack_order" => "stack_orders",
            other => other,
        };
        // Real TOML rejects duplicate keys; silently letting the last
        // one win would drop an axis the user believes is in effect.
        if seen.iter().any(|k| k == key) {
            return Err(format!("line {line_no}: duplicate key `{key}`"));
        }
        seen.push(key.to_owned());
        let value = parse_value(raw_value, line_no)?;
        apply_key(&mut spec, key, &value).map_err(|e| format!("line {line_no}: {e}"))?;
    }
    // A spec that omits its duration honours THERM3D_SIM_SECONDS; a
    // malformed value must fail the parse (a silent fallback would
    // simulate — and cache — a different duration than requested).
    if !seen.iter().any(|k| k == "sim_seconds") {
        spec.sim_seconds = crate::spec::sim_seconds_from_env(crate::spec::DEFAULT_SIM_SECONDS)?;
    }
    spec.validate()?;
    Ok(spec)
}

fn apply_key(spec: &mut SweepSpec, key: &str, value: &Value) -> Result<(), String> {
    match key {
        "name" => match value {
            Value::Scalar(Scalar::Str(s)) => spec.name.clone_from(s),
            other => return Err(format!("`name` expects a string, got {other:?}")),
        },
        "experiments" => {
            spec.experiments = scalar_list(value)
                .iter()
                .map(|s| typed::<Experiment>(s, key))
                .collect::<Result<_, _>>()?;
        }
        "stack_orders" => {
            spec.stack_orders = scalar_list(value)
                .iter()
                .map(|s| typed::<StackOrder>(s, key))
                .collect::<Result<_, _>>()?;
        }
        "tsv" => {
            spec.tsv = scalar_list(value)
                .iter()
                .map(|s| typed::<TsvVariant>(s, key))
                .collect::<Result<_, _>>()?;
        }
        "sensors" => {
            spec.sensors = scalar_list(value)
                .iter()
                .map(|s| typed::<SensorProfile>(s, key))
                .collect::<Result<_, _>>()?;
        }
        "integrators" => {
            spec.integrators = scalar_list(value)
                .iter()
                .map(|s| typed::<Integrator>(s, key))
                .collect::<Result<_, _>>()?;
        }
        "policies" => {
            spec.policies = scalar_list(value)
                .iter()
                .map(|s| typed::<PolicyKind>(s, key))
                .collect::<Result<_, _>>()?;
        }
        "benchmarks" => {
            spec.benchmarks = scalar_list(value)
                .iter()
                .map(|s| typed::<Benchmark>(s, key))
                .collect::<Result<_, _>>()?;
        }
        "dpm" => {
            spec.dpm = scalar_list(value)
                .iter()
                .map(|s| match s {
                    Scalar::Bool(b) => Ok(*b),
                    other => Err(format!("`dpm` expects booleans, got a {}", other.type_name())),
                })
                .collect::<Result<_, _>>()?;
        }
        "seeds" => {
            spec.seeds =
                scalar_list(value).iter().map(|s| integer(s, key)).collect::<Result<_, _>>()?;
        }
        "sim_seconds" => match value {
            Value::Scalar(s) => spec.sim_seconds = numeric(s, key)?,
            Value::Array(_) => return Err("`sim_seconds` expects one number".into()),
        },
        "grid" => match value {
            Value::Scalar(s) => {
                let n = integer(s, key)? as usize;
                spec.grid = (n, n);
            }
            Value::Array(items) => {
                let dims = items
                    .iter()
                    .map(|s| integer(s, key).map(|n| n as usize))
                    .collect::<Result<Vec<_>, _>>()?;
                let [rows, cols] = dims[..] else {
                    return Err(format!("`grid` expects [rows, cols], got {} items", dims.len()));
                };
                spec.grid = (rows, cols);
            }
        },
        "policy_seed" => match value {
            Value::Scalar(s) => {
                let n = integer(s, key)?;
                spec.policy_seed = u16::try_from(n)
                    .map_err(|_| format!("`policy_seed` must fit in 16 bits, got {n}"))?;
            }
            Value::Array(_) => return Err("`policy_seed` expects one integer".into()),
        },
        "threads" => match value {
            Value::Scalar(s) => spec.threads = integer(s, key)? as usize,
            Value::Array(_) => return Err("`threads` expects one integer".into()),
        },
        "shard" => match value {
            Value::Scalar(s) => spec.shard = typed::<ShardSpec>(s, key)?,
            Value::Array(_) => return Err("`shard` expects one \"K/N\" string".into()),
        },
        "streaming" => match value {
            Value::Scalar(Scalar::Bool(b)) => spec.streaming = *b,
            Value::Scalar(other) => {
                return Err(format!("`streaming` expects a boolean, got a {}", other.type_name()));
            }
            Value::Array(_) => return Err("`streaming` expects one boolean".into()),
        },
        other => return Err(format!("unknown key `{other}`")),
    }
    Ok(())
}

/// Serializes a spec to canonical TOML (parses back to an equal spec).
#[must_use]
pub fn to_toml(spec: &SweepSpec) -> String {
    use std::fmt::Write as _;
    fn string_array<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
        let quoted: Vec<String> = items.iter().map(|x| format!("\"{}\"", f(x))).collect();
        format!("[{}]", quoted.join(", "))
    }
    let mut out = String::new();
    let _ = writeln!(out, "[sweep]");
    let _ = writeln!(out, "name = \"{}\"", spec.name);
    let _ = writeln!(
        out,
        "experiments = {}",
        string_array(&spec.experiments, |e| e.to_string().to_ascii_lowercase())
    );
    let _ = writeln!(
        out,
        "stack_orders = {}",
        string_array(&spec.stack_orders, |o| o.name().to_owned())
    );
    let _ = writeln!(out, "tsv = {}", string_array(&spec.tsv, |v| v.name().to_owned()));
    let _ = writeln!(out, "sensors = {}", string_array(&spec.sensors, |s| s.name().to_owned()));
    let _ =
        writeln!(out, "integrators = {}", string_array(&spec.integrators, |i| i.name().to_owned()));
    let _ = writeln!(out, "policies = {}", string_array(&spec.policies, |p| p.label().to_owned()));
    let _ = writeln!(
        out,
        "dpm = [{}]",
        spec.dpm.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    );
    let _ =
        writeln!(out, "benchmarks = {}", string_array(&spec.benchmarks, |b| b.name().to_owned()));
    let _ = writeln!(
        out,
        "seeds = [{}]",
        spec.seeds.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(out, "sim_seconds = {:?}", spec.sim_seconds);
    let _ = writeln!(out, "grid = [{}, {}]", spec.grid.0, spec.grid.1);
    let _ = writeln!(out, "policy_seed = {}", spec.policy_seed);
    let _ = writeln!(out, "threads = {}", spec.threads);
    let _ = writeln!(out, "shard = \"{}\"", spec.shard);
    let _ = writeln!(out, "streaming = {}", spec.streaming);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec() {
        let spec = from_toml(
            r#"
            # a quick sweep
            [sweep]
            name = "quick"           # inline comment
            experiments = ["exp1", "exp3"]
            policies = ["Default", "CGate", "Adapt3D"]
            dpm = [false, true]
            benchmarks = ["gzip"]
            seeds = [2009, 2010]
            sim_seconds = 20.0
            grid = 4
            threads = 2
            "#,
        )
        .unwrap();
        assert_eq!(spec.name, "quick");
        assert_eq!(spec.experiments, vec![Experiment::Exp1, Experiment::Exp3]);
        assert_eq!(spec.policies.len(), 3);
        assert_eq!(spec.dpm, vec![false, true]);
        assert_eq!(spec.seeds, vec![2009, 2010]);
        assert_eq!(spec.grid, (4, 4));
        assert_eq!(spec.threads, 2);
        assert_eq!(spec.cell_count(), 2 * 3 * 2 * 2);
    }

    #[test]
    fn omitted_keys_keep_defaults() {
        let spec = from_toml("name = \"tiny\"\n").unwrap();
        assert_eq!(spec.policies.len(), 11);
        assert_eq!(spec.experiments.len(), 4);
        assert_eq!(spec.seeds, vec![crate::spec::DEFAULT_TRACE_SEED]);
        assert_eq!(spec.stack_orders, vec![StackOrder::CoresFarFromSink]);
        assert_eq!(spec.tsv, vec![TsvVariant::Paper]);
        assert_eq!(spec.sensors, vec![SensorProfile::Ideal]);
    }

    #[test]
    fn scenario_axes_parse_and_round_trip() {
        let spec = from_toml(
            r#"
            [sweep]
            name = "scenario"
            experiments = ["exp1"]
            stack_orders = ["cores-far", "cores-near"]
            tsv = ["paper", "dense-1pct", "epoxy"]
            sensors = ["ideal", "noisy-1c", "offset-cool-3c"]
            policies = ["Default"]
            sim_seconds = 5.0
            "#,
        )
        .unwrap();
        assert_eq!(spec.stack_orders, StackOrder::ALL.to_vec());
        assert_eq!(spec.tsv, vec![TsvVariant::Paper, TsvVariant::Dense1Pct, TsvVariant::Epoxy]);
        assert_eq!(
            spec.sensors,
            vec![SensorProfile::Ideal, SensorProfile::Noisy1C, SensorProfile::OffsetCool3C]
        );
        assert_eq!(spec.cell_count(), 2 * 3 * 3);
        let round = from_toml(&to_toml(&spec)).unwrap();
        assert_eq!(round, spec);
    }

    #[test]
    fn singular_scenario_aliases_are_accepted_and_duplicate_checked() {
        let spec = from_toml("sensor = [\"noisy-3c\"]\nstack_order = \"cores-near\"\n").unwrap();
        assert_eq!(spec.sensors, vec![SensorProfile::Noisy3C]);
        assert_eq!(spec.stack_orders, vec![StackOrder::CoresNearSink]);
        // The alias maps onto the canonical key, so mixing both forms
        // is a duplicate, not a silent overwrite.
        let err = from_toml("sensors = [\"ideal\"]\nsensor = [\"noisy-1c\"]\n").unwrap_err();
        assert!(err.contains("duplicate key `sensors`"), "{err}");
    }

    #[test]
    fn bad_scenario_values_are_errors() {
        let err = from_toml("tsv = [\"liquid-cooled\"]\n").unwrap_err();
        assert!(err.contains("liquid-cooled"), "{err}");
        let err = from_toml("sensors = [\"psychic\"]\n").unwrap_err();
        assert!(err.contains("psychic"), "{err}");
        let err = from_toml("stack_orders = [\"sideways\"]\n").unwrap_err();
        assert!(err.contains("sideways"), "{err}");
    }

    #[test]
    fn shard_key_parses_validates_and_round_trips() {
        let spec = from_toml("shard = \"1/3\"\nsim_seconds = 1.0\n").unwrap();
        assert_eq!(spec.shard, ShardSpec { index: 1, count: 3 });
        assert_eq!(from_toml(&to_toml(&spec)).unwrap(), spec);
        // Omitted means the full matrix.
        assert_eq!(from_toml("sim_seconds = 1.0\n").unwrap().shard, ShardSpec::FULL);
        // Out-of-range shards fail the parse with the range named, same
        // as the CLI flag — never an empty report.
        let err = from_toml("shard = \"3/3\"\n").unwrap_err();
        assert!(err.contains("0/3..=2/3"), "{err}");
        let err = from_toml("shard = \"0/0\"\n").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = from_toml("shard = \"whole\"\n").unwrap_err();
        assert!(err.contains("K/N"), "{err}");
        let err = from_toml("shard = 3\n").unwrap_err();
        assert!(err.contains("shard"), "{err}");
    }

    #[test]
    fn streaming_key_parses_validates_and_round_trips() {
        assert!(!from_toml("sim_seconds = 1.0\n").unwrap().streaming, "defaults off");
        let spec = from_toml("streaming = true\nsim_seconds = 1.0\n").unwrap();
        assert!(spec.streaming);
        assert_eq!(from_toml(&to_toml(&spec)).unwrap(), spec);
        let err = from_toml("streaming = 1\n").unwrap_err();
        assert!(err.contains("streaming") && err.contains("boolean"), "{err}");
        let err = from_toml("streaming = [true]\n").unwrap_err();
        assert!(err.contains("one boolean"), "{err}");
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err = from_toml("polices = [\"Default\"]\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn bad_policy_name_is_an_error() {
        let err = from_toml("policies = [\"NotAPolicy\"]\n").unwrap_err();
        assert!(err.contains("NotAPolicy"), "{err}");
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let err = from_toml("dpm = [1, 0]\n").unwrap_err();
        assert!(err.contains("boolean"), "{err}");
        let err = from_toml("seeds = [\"abc\"]\n").unwrap_err();
        assert!(err.contains("seeds"), "{err}");
    }

    #[test]
    fn invalid_expanded_spec_is_an_error() {
        let err = from_toml("policies = []\n").unwrap_err();
        assert!(err.contains("policies"), "{err}");
    }

    #[test]
    fn comments_inside_strings_survive() {
        let spec = from_toml("name = \"a # not a comment\"\n").unwrap();
        assert_eq!(spec.name, "a # not a comment");
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = from_toml("policies = [\"Default\", \"CGate\"]\npolicies = [\"Adapt3D\"]\n")
            .unwrap_err();
        assert!(err.contains("duplicate key `policies`"), "{err}");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn duplicate_section_is_rejected() {
        let err = from_toml("[sweep]\nname = \"a\"\n[sweep]\nthreads = 2\n").unwrap_err();
        assert!(err.contains("duplicate `[sweep]` section"), "{err}");
        assert!(err.contains("line 3"), "{err}");
    }

    #[test]
    fn out_of_range_seeds_are_hard_errors() {
        // Negative: must not wrap to a huge unsigned seed.
        let err = from_toml("seeds = [-1]\n").unwrap_err();
        assert!(err.contains("seeds") && err.contains("-1"), "{err}");
        // Fractional: must not truncate.
        let err = from_toml("seeds = [1.5]\n").unwrap_err();
        assert!(err.contains("seeds") && err.contains("1.5"), "{err}");
        // policy_seed beyond 16 bits: must not wrap.
        let err = from_toml("policy_seed = 70000\n").unwrap_err();
        assert!(err.contains("policy_seed") && err.contains("70000"), "{err}");
    }

    #[test]
    fn canonical_toml_has_no_duplicate_keys() {
        // to_toml output must always satisfy the duplicate-key check it
        // is parsed back through (the round-trip guarantee's other half).
        let text = to_toml(&SweepSpec::new("dup-check").with_sim_seconds(1.0));
        let mut keys: Vec<&str> =
            text.lines().filter_map(|l| l.split_once('=').map(|(k, _)| k.trim())).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n, "{text}");
    }

    #[test]
    fn extreme_seeds_round_trip() {
        let spec = SweepSpec::new("extremes")
            .with_seeds(&[0, 1, u64::MAX])
            .with_sim_seconds(1.0)
            .with_policy_seed(u16::MAX);
        let parsed = from_toml(&to_toml(&spec)).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn large_seeds_survive_exactly() {
        // Above 2^53 an f64 detour would silently corrupt the seed.
        let big = (1u64 << 53) + 1;
        let spec = from_toml(&format!("seeds = [{big}]\n")).unwrap();
        assert_eq!(spec.seeds, vec![big]);
        let round = from_toml(&to_toml(&spec)).unwrap();
        assert_eq!(round.seeds, vec![big]);
        // 2^64 does not fit and must error, not saturate.
        let err = from_toml("seeds = [18446744073709551616]\n").unwrap_err();
        assert!(err.contains("seeds"), "{err}");
    }

    #[test]
    fn quoted_name_is_rejected_not_corrupted() {
        // The subset has no string escapes; a quote in the name would
        // break the round-trip, so validation refuses it up front.
        let spec = SweepSpec::new("a").with_sim_seconds(1.0);
        let mut bad = spec;
        bad.name = "a \"quick\" check".into();
        assert!(bad.validate().unwrap_err().contains("name"));
    }

    #[test]
    fn round_trip_preserves_the_spec() {
        let spec = SweepSpec::new("round-trip")
            .with_experiments(&[Experiment::Exp2, Experiment::Exp4])
            .with_stack_orders(&[StackOrder::CoresNearSink])
            .with_tsv(&[TsvVariant::Dense2Pct, TsvVariant::Bare])
            .with_sensors(&[SensorProfile::NoisyQuantized, SensorProfile::Ideal])
            .with_policies(&[PolicyKind::Adapt3dDvfsTt, PolicyKind::Migr])
            .with_dpm(&[true])
            .with_benchmarks(&[Benchmark::WebHigh, Benchmark::MPlayerWeb])
            .with_seeds(&[1, 2, 3])
            .with_sim_seconds(12.5)
            .with_grid(6, 8)
            .with_policy_seed(0xBEEF)
            .with_threads(3)
            .with_streaming(true);
        let text = to_toml(&spec);
        let parsed = from_toml(&text).unwrap();
        assert_eq!(parsed, spec, "{text}");
    }
}
