//! Deterministic sharding of a sweep matrix across processes/machines,
//! and the merger that recombines shard outputs into the canonical
//! report.
//!
//! A [`ShardSpec`] (`index`/`count`, written `K/N`) selects every cell
//! of the canonical expansion whose index satisfies
//! `cell.index % count == index` — round-robin over the canonical
//! order, so shards are balanced to within one cell and their union is
//! provably the full matrix. Sharding changes *which* cells a process
//! runs, never *what* a cell is: per-cell seeds, descriptors and
//! [`cell_key`](crate::cache::cell_key)s are pure functions of the spec
//! and the cell's canonical index, both untouched by the shard.
//!
//! Each shard's CSV export is self-describing: a leading `shard` column
//! carries `K/N` on every row (see
//! [`SweepReport::csv`](crate::SweepReport::csv)), and the remaining
//! bytes of each row are exactly what the unsharded run would emit for
//! that cell.
//! [`merge_csv`] exploits that: it strips the provenance column,
//! verifies the shards are disjoint and complete, and reassembles the
//! canonical CSV — byte-identical to a single-process run, for any
//! shard count and any per-shard thread count.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use crate::report::sweep_csv_header;

/// Which slice of a sweep matrix one process runs: shard `index` of
/// `count`, written `K/N` (zero-based, so the shards of a 3-way
/// campaign are `0/3`, `1/3` and `2/3`).
///
/// The default is the full matrix (`0/1`): an unsharded run is simply
/// the one-shard special case, with identical output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard position, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards the matrix is split into.
    pub count: usize,
}

impl Default for ShardSpec {
    fn default() -> Self {
        Self::FULL
    }
}

impl ShardSpec {
    /// The unsharded (full-matrix) shard, `0/1`.
    pub const FULL: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// Creates a validated shard spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the valid range when `count` is zero or
    /// `index` is out of range (e.g. `3/3`: shard indices are
    /// zero-based, so a 3-way split has shards `0/3..=2/3`).
    pub fn new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err(format!(
                "shard count must be at least 1: got {index}/{count} \
                 (use K/N with 0 <= K < N, e.g. 0/3)"
            ));
        }
        if index >= count {
            return Err(format!(
                "shard index {index} is out of range for {count} shard{}: \
                 indices are zero-based, valid shards are 0/{count}..={}/{count}",
                if count == 1 { "" } else { "s" },
                count - 1,
            ));
        }
        Ok(Self { index, count })
    }

    /// `true` for the full (unsharded) matrix, `0/1`.
    #[must_use]
    pub fn is_full(self) -> bool {
        self.count == 1
    }

    /// Whether this shard runs the cell at canonical index
    /// `cell_index` (round-robin over the canonical expansion order).
    #[must_use]
    pub fn owns(self, cell_index: usize) -> bool {
        cell_index % self.count == self.index
    }

    /// How many of `total` cells land on this shard (balanced to
    /// within one cell by the round-robin assignment).
    #[must_use]
    pub fn cell_count(self, total: usize) -> usize {
        (total + self.count - 1 - self.index) / self.count
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for ShardSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let malformed =
            || format!("expected a shard as K/N (e.g. 0/3 for the first of three), got `{s}`");
        let (index, count) = s.trim().split_once('/').ok_or_else(malformed)?;
        let index: usize = index.trim().parse().map_err(|_| malformed())?;
        let count: usize = count.trim().parse().map_err(|_| malformed())?;
        ShardSpec::new(index, count)
    }
}

/// Merges shard CSV reports back into the canonical (unsharded) CSV.
///
/// `inputs` are `(name, text)` pairs — the name only labels error
/// messages (typically the file path). Each input is either a sharded
/// export (leading `shard` column) or an unsharded one (treated as the
/// full matrix, for the one-shard case). The merge verifies that
///
/// * every input's header matches the canonical schema,
/// * every row's shard assignment is consistent with its cell index
///   (round-robin), and all inputs agree on the shard count,
/// * no cell appears twice, and
/// * the union covers the matrix with no gaps (cells `0..n`),
///
/// then emits the canonical header and the rows in canonical order.
/// Row bytes are carried verbatim from the shard exports, so the output
/// is byte-identical to what one unsharded run would have produced.
///
/// # Errors
///
/// A message naming the offending input (and cell, where applicable)
/// when any of the checks above fails.
pub fn merge_csv(inputs: &[(&str, &str)]) -> Result<String, String> {
    if inputs.is_empty() {
        return Err("nothing to merge: no input reports given".into());
    }
    let canonical = sweep_csv_header();
    let sharded = format!("shard,{canonical}");
    let expected_fields = canonical.split(',').count();
    // Cell index -> (canonical row bytes, source name).
    let mut rows: BTreeMap<usize, (&str, &str)> = BTreeMap::new();
    let mut shard_count: Option<(usize, &str)> = None;
    for &(name, text) in inputs {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let has_shard_column = if header == sharded {
            true
        } else if header == canonical {
            false
        } else {
            return Err(format!(
                "`{name}`: not a sweep CSV report (header is `{header}`, \
                 expected `{sharded}` or `{canonical}`)"
            ));
        };
        for line in lines {
            let (shard, row) = if has_shard_column {
                let Some((shard, row)) = line.split_once(',') else {
                    return Err(format!("`{name}`: malformed row `{line}`"));
                };
                let shard: ShardSpec = shard
                    .parse()
                    .map_err(|e| format!("`{name}`: bad shard column in `{line}`: {e}"))?;
                (shard, row)
            } else {
                (ShardSpec::FULL, line)
            };
            // A row truncated by an interrupted transfer (index column
            // intact, metric columns gone) must not be carried verbatim
            // into the "canonical" output; no field may contain a
            // comma, so the count is exact.
            let fields = row.split(',').count();
            if fields != expected_fields {
                return Err(format!(
                    "`{name}`: row has {fields} fields, expected {expected_fields} \
                     (truncated transfer?): `{line}`"
                ));
            }
            match shard_count {
                None => shard_count = Some((shard.count, name)),
                Some((count, first)) if count != shard.count => {
                    return Err(format!(
                        "shard counts disagree: `{first}` splits the matrix {count} ways, \
                         `{name}` says {} (row `{line}`)",
                        shard.count
                    ));
                }
                Some(_) => {}
            }
            let index: usize = row
                .split(',')
                .next()
                .and_then(|cell| cell.parse().ok())
                .ok_or_else(|| format!("`{name}`: row has no cell index: `{line}`"))?;
            if !shard.owns(index) {
                return Err(format!(
                    "`{name}`: cell #{index} cannot belong to shard {shard} \
                     (round-robin assigns it to shard {}/{})",
                    index % shard.count,
                    shard.count
                ));
            }
            if let Some((_, first)) = rows.insert(index, (row, name)) {
                return Err(format!(
                    "cell #{index} appears in more than one input (`{first}` and `{name}`)"
                ));
            }
        }
    }
    // Completeness: cell indices must be exactly 0..n.
    for (expected, &actual) in rows.keys().enumerate() {
        if actual != expected {
            let missing_shard = shard_count
                .map(|(count, _)| format!(" (is shard {}/{count} missing?)", expected % count))
                .unwrap_or_default();
            return Err(format!("merged report is missing cell #{expected}{missing_shard}"));
        }
    }
    let mut out = String::with_capacity(canonical.len() + 1 + rows.len() * 80);
    out.push_str(&canonical);
    out.push('\n');
    for (row, _) in rows.values() {
        out.push_str(row);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_the_range() {
        assert_eq!(ShardSpec::new(0, 1), Ok(ShardSpec::FULL));
        assert_eq!(ShardSpec::new(2, 3), Ok(ShardSpec { index: 2, count: 3 }));
        let err = ShardSpec::new(3, 3).unwrap_err();
        assert!(err.contains("0/3..=2/3"), "{err}");
        let err = ShardSpec::new(0, 0).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0/1", "1/3", "7/8"] {
            assert_eq!(s.parse::<ShardSpec>().unwrap().to_string(), s);
        }
        assert_eq!(" 1 / 3 ".parse::<ShardSpec>(), Ok(ShardSpec { index: 1, count: 3 }));
        for bad in ["", "3", "a/b", "1/", "/3", "-1/3", "1.5/3"] {
            let err = bad.parse::<ShardSpec>().unwrap_err();
            assert!(err.contains("K/N"), "{bad}: {err}");
        }
        // Out-of-range values parse syntactically but fail validation
        // with the range named — the CLI relies on this message.
        let err = "3/3".parse::<ShardSpec>().unwrap_err();
        assert!(err.contains("0/3..=2/3"), "{err}");
        let err = "0/0".parse::<ShardSpec>().unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn round_robin_partitions_exactly() {
        for count in 1..=8 {
            let mut owners = Vec::new();
            for index in 0..100 {
                let owning: Vec<usize> =
                    (0..count).filter(|&k| ShardSpec { index: k, count }.owns(index)).collect();
                assert_eq!(owning.len(), 1, "cell {index} must have exactly one owner");
                owners.push(owning[0]);
            }
            // Balanced to within one cell.
            for k in 0..count {
                let shard = ShardSpec { index: k, count };
                let owned = owners.iter().filter(|&&o| o == k).count();
                assert_eq!(owned, shard.cell_count(100));
                assert!(owned.abs_diff(100 / count) <= 1);
            }
        }
    }

    #[test]
    fn cell_count_sums_to_the_total() {
        for count in 1..=8 {
            for total in [0, 1, 7, 16, 100] {
                let sum: usize =
                    (0..count).map(|k| ShardSpec { index: k, count }.cell_count(total)).sum();
                assert_eq!(sum, total, "{count} shards over {total} cells");
            }
        }
    }

    fn fake_rows(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{i},2009,implicit-cn,cores-far,paper,ideal,k{i},p,EXP-1,false,1.0,2.0,3.0,80.0,4.0,0.5,100.0,0,0")).collect()
    }

    fn shard_csv(shard: ShardSpec, rows: &[String]) -> String {
        let mut out = format!("shard,{}\n", sweep_csv_header());
        for (i, row) in rows.iter().enumerate() {
            if shard.owns(i) {
                out.push_str(&format!("{shard},{row}\n"));
            }
        }
        out
    }

    fn full_csv(rows: &[String]) -> String {
        let mut out = format!("{}\n", sweep_csv_header());
        for row in rows {
            out.push_str(row);
            out.push('\n');
        }
        out
    }

    #[test]
    fn merge_reassembles_the_canonical_csv() {
        let rows = fake_rows(7);
        for count in 1..=4 {
            let shards: Vec<String> =
                (0..count).map(|k| shard_csv(ShardSpec { index: k, count }, &rows)).collect();
            // Merge is order-insensitive: feed the shards reversed.
            let inputs: Vec<(&str, &str)> =
                shards.iter().rev().map(|s| ("shard.csv", s.as_str())).collect();
            assert_eq!(merge_csv(&inputs).unwrap(), full_csv(&rows), "count={count}");
        }
    }

    #[test]
    fn merge_accepts_an_unsharded_report_as_the_one_shard_case() {
        let rows = fake_rows(3);
        let full = full_csv(&rows);
        assert_eq!(merge_csv(&[("full.csv", full.as_str())]).unwrap(), full);
    }

    #[test]
    fn merge_rejects_missing_duplicate_and_inconsistent_shards() {
        let rows = fake_rows(6);
        let s0 = shard_csv(ShardSpec { index: 0, count: 3 }, &rows);
        let s1 = shard_csv(ShardSpec { index: 1, count: 3 }, &rows);
        let s2 = shard_csv(ShardSpec { index: 2, count: 3 }, &rows);

        let err = merge_csv(&[("a", &s0), ("b", &s1)]).unwrap_err();
        assert!(err.contains("missing cell #2") && err.contains("2/3"), "{err}");

        let err = merge_csv(&[("a", &s0), ("b", &s1), ("b2", &s1), ("c", &s2)]).unwrap_err();
        assert!(err.contains("more than one input"), "{err}");

        let other = shard_csv(ShardSpec { index: 0, count: 2 }, &rows);
        let err = merge_csv(&[("a", &s0), ("d", &other)]).unwrap_err();
        assert!(err.contains("disagree"), "{err}");

        let err = merge_csv(&[]).unwrap_err();
        assert!(err.contains("nothing to merge"), "{err}");

        let err = merge_csv(&[("x", "policy,nope\n")]).unwrap_err();
        assert!(err.contains("not a sweep CSV report"), "{err}");

        // A row filed under the wrong shard (hand-edited or mispaired
        // files) is caught by the round-robin consistency check.
        let forged = s0.replace("0/3,0,", "0/3,1,");
        let err = merge_csv(&[("f", &forged), ("b", &s1), ("c", &s2)]).unwrap_err();
        assert!(err.contains("cannot belong to shard 0/3"), "{err}");

        // A row truncated mid-transfer (index intact, metrics cut)
        // must fail the merge, not flow into the canonical output.
        let cut = s0.trim_end().rsplit_once(',').unwrap().0.to_owned() + "\n";
        let err = merge_csv(&[("t", &cut), ("b", &s1), ("c", &s2)]).unwrap_err();
        assert!(err.contains("truncated") && err.contains("`t`"), "{err}");
    }
}
