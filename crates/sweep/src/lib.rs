//! `therm3d_sweep`: declarative, parallel scenario-sweep orchestration
//! for the therm3d DATE 2009 reproduction.
//!
//! The paper evaluates every policy × experiment × DPM × workload
//! combination by replaying traces and comparing hot-spot, gradient and
//! cycling metrics. This crate turns that combinatorial pattern into a
//! subsystem:
//!
//! 1. [`SweepSpec`] — a declarative scenario description (builder API,
//!    or a TOML file via [`from_toml`]/[`to_toml`]) with axes over
//!    experiments, stack orders, TSV/interlayer variants,
//!    sensor-fidelity profiles, integrators, policies, DPM, benchmarks
//!    and trace seeds;
//! 2. [`expand`] — deterministic cross-product expansion into a run
//!    matrix of [`SweepCell`]s, each a pure function of the spec (seeds
//!    derived per cell, never from scheduling order);
//! 3. [`run`] — parallel execution across worker threads, one
//!    `Simulator` per cell, traces generated once per (core-count,
//!    seed) and shared read-only;
//! 4. [`SweepReport`] — typed aggregation with CSV/JSON export and
//!    paper-style text tables; results are bit-identical for any thread
//!    count;
//! 5. [`cache`] — persistent, content-addressed memoization: every cell
//!    resolves to a stable [`cell_key`] (FNV-64 of its fully-resolved
//!    descriptor plus an engine-version salt), and [`run_with_cache`]
//!    looks results up in a [`CacheStore`] before simulating, so
//!    re-running a grown spec only simulates the new cells. Reports are
//!    byte-identical for any hit/miss mix; see the [`cache`] module
//!    docs for the store layout and invalidation rules;
//! 6. [`shard`] — deterministic splitting of one matrix across
//!    processes/machines ([`ShardSpec`], round-robin over the canonical
//!    order) and the mergers that recombine shard outputs: [`merge_csv`]
//!    reassembles the canonical CSV byte-identically, and
//!    [`CacheStore::merge_from`] unions shard cache stores.
//!
//! Failures are typed ([`SweepError`]): an invalid spec, a cell whose
//! simulation panicked (named, instead of poisoning the whole
//! campaign), or a cache I/O problem.
//!
//! The figure binaries (`fig3`..`fig6`) and the `therm3d sweep`
//! subcommand are thin layers over this crate.
//!
//! # Quick start
//!
//! ```
//! use therm3d_floorplan::Experiment;
//! use therm3d_policies::PolicyKind;
//! use therm3d_sweep::SweepSpec;
//! use therm3d_workload::Benchmark;
//!
//! let spec = SweepSpec::new("quickstart")
//!     .with_experiments(&[Experiment::Exp1])
//!     .with_policies(&[PolicyKind::Default, PolicyKind::Adapt3d])
//!     .with_benchmarks(&[Benchmark::Gzip])
//!     .with_sim_seconds(4.0)
//!     .with_grid(4, 4);
//! let report = therm3d_sweep::run(&spec).unwrap();
//! assert_eq!(report.rows.len(), 2);
//! println!("{}", report.render());
//! ```

pub mod cache;
pub mod error;
pub mod matrix;
pub mod report;
pub mod runner;
pub mod shard;
pub mod spec;
pub mod telemetry;
pub mod toml;

pub use cache::{
    cell_key, decode_line, encode_line, CacheStats, CacheStore, CellKey, CompactStats, MergeStats,
    DESCRIPTOR_FINGERPRINT, ENGINE_VERSION,
};
pub use error::SweepError;
pub use matrix::{derive_policy_seed, derive_sensor_seed, expand, expand_shard, SweepCell};
pub use report::{csv_header, csv_row, sweep_csv_header, SweepReport, SweepRow, CSV_HEADER};
pub use runner::{
    effective_threads, model_fingerprint, run, run_cell, run_cells_with_telemetry, run_with_cache,
    run_with_telemetry, sim_config,
};
pub use shard::{merge_csv, ShardSpec};
pub use spec::{parse_sim_seconds, sim_seconds_from_env, SweepSpec};
pub use telemetry::RunTelemetry;
pub use toml::{from_toml, to_toml};
