//! Per-run telemetry wiring for the sweep runner.
//!
//! A [`RunTelemetry`] bundles the three observability channels a
//! campaign can opt into — a private metrics [`Registry`], a JSONL
//! [`EventSink`] (`--trace-out`) and a throttled [`Progress`] reporter
//! (`--progress`) — and is handed to
//! [`run_with_telemetry`](crate::run_with_telemetry) by reference, so
//! worker threads share it without locking anything beyond the sinks'
//! own mutexes.
//!
//! The registry is deliberately *per run*, not the process-wide
//! [`therm3d_telemetry::global()`] one: parallel runs (and parallel
//! tests) must never interleave counts, and a run-local registry is
//! what makes the snapshot's deterministic subset — cell coverage,
//! cache hit/miss counts, factorization counters — reproducible for
//! any thread count. The global registry still collects the in-engine
//! spans (thermal factorization, engine ticks) when an embedder
//! enables it; the CLI merges both snapshots into `--metrics-out`.

use therm3d_telemetry::{EventSink, MetricsSnapshot, Progress, Registry};

/// Observability channels for one sweep run; see the module docs.
pub struct RunTelemetry {
    /// Run-local metrics: aggregate counters/histograms plus one
    /// [`therm3d_telemetry::CellMetrics`] record per finished cell.
    pub registry: Registry,
    /// JSONL cell-lifecycle event stream, if requested.
    pub events: Option<EventSink>,
    /// Live progress reporter, if requested.
    pub progress: Option<Progress>,
}

impl RunTelemetry {
    /// Metrics only; add sinks with the builder methods.
    #[must_use]
    pub fn new() -> Self {
        Self { registry: Registry::new(true), events: None, progress: None }
    }

    /// Streams cell-lifecycle events into `sink`.
    #[must_use]
    pub fn with_events(mut self, sink: EventSink) -> Self {
        self.events = Some(sink);
        self
    }

    /// Reports live progress through `progress`.
    #[must_use]
    pub fn with_progress(mut self, progress: Progress) -> Self {
        self.progress = Some(progress);
        self
    }

    /// The run's metrics snapshot (deterministically ordered).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

impl Default for RunTelemetry {
    fn default() -> Self {
        Self::new()
    }
}
