//! Typed aggregation of sweep results with CSV/JSON export and
//! paper-style text rendering.
//!
//! This module is the single source of truth for `RunResult`
//! serialization: the CLI's `run --csv` output and the sweep exports
//! share [`csv_header`]/[`csv_row`].

use std::fmt::Write as _;

use therm3d::RunResult;
use therm3d_floorplan::Experiment;

use crate::matrix::SweepCell;
use crate::shard::ShardSpec;

/// The per-result CSV columns shared by every exporter in the workspace.
pub const CSV_HEADER: &str = "policy,experiment,dpm,hot_pct,grad_pct,cycle_pct,peak_c,vertical_peak_c,mean_turnaround_s,energy_j,migrations,unfinished";

/// CSV header matching [`csv_row`].
#[must_use]
pub fn csv_header() -> &'static str {
    CSV_HEADER
}

/// The full per-cell header of [`SweepReport::csv`] (cell provenance
/// columns + [`CSV_HEADER`]) — the canonical schema sharded exports
/// prefix with a `shard` column and [`merge_csv`](crate::merge_csv)
/// restores.
#[must_use]
pub fn sweep_csv_header() -> String {
    format!("cell,trace_seed,integrator,stack_order,tsv,sensor,cell_key,{CSV_HEADER}")
}

/// One CSV row for a run result.
#[must_use]
pub fn csv_row(r: &RunResult, dpm: bool) -> String {
    format!(
        "{},{},{},{:.4},{:.4},{:.4},{:.2},{:.2},{:.4},{:.1},{},{}",
        r.policy,
        r.experiment,
        dpm,
        r.hotspot_pct,
        r.gradient_pct,
        r.cycle_pct,
        r.peak_temp_c,
        r.vertical_peak_c,
        r.perf.mean_turnaround_s,
        r.energy_j,
        r.migrations,
        r.unfinished
    )
}

/// One executed cell with its result.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Content-addressed provenance: the 16-hex-digit
    /// [`cell_key`](crate::cache::cell_key) this cell resolves to in a
    /// result cache. Deterministic for a given spec — identical whether
    /// the row was simulated or served from cache.
    pub key: String,
    /// The cell descriptor (axes + derived seeds).
    pub cell: SweepCell,
    /// The simulation outcome.
    pub result: RunResult,
    /// Per-cell cost breakdown, present only on telemetered runs
    /// ([`run_with_telemetry`](crate::run_with_telemetry)). Wall-clock
    /// data — deliberately excluded from `PartialEq`, the CSV/JSON
    /// exports and the cache codec, so telemetry can never perturb the
    /// byte-identical-report invariant.
    pub timing: Option<therm3d_telemetry::CellMetrics>,
}

/// Equality covers the deterministic payload (key, cell, result) and
/// ignores `timing`: sharded-union and warm-vs-cold tests compare rows
/// across runs whose wall-clock costs legitimately differ.
impl PartialEq for SweepRow {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.cell == other.cell && self.result == other.result
    }
}

/// Aggregated results of one sweep, in canonical matrix order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The sweep's name (from the spec).
    pub name: String,
    /// Which shard of the canonical matrix this report covers (from the
    /// spec; [`ShardSpec::FULL`] for an unsharded run). Sharded exports
    /// carry it as provenance so interleaved shard outputs stay
    /// attributable and [`merge_csv`](crate::merge_csv) can verify
    /// disjointness and completeness.
    pub shard: ShardSpec,
    /// One row per cell of the shard, ordered by `cell.index` (canonical
    /// matrix indices — a non-full shard's rows are strided, not
    /// renumbered).
    pub rows: Vec<SweepRow>,
}

impl SweepReport {
    /// The results for one (experiment, dpm, seed-axis position) group,
    /// in the spec's policy order — the shape one figure column needs.
    ///
    /// Rows of every integrator **and every scenario combination**
    /// (stack order × TSV variant × sensor profile) on the spec's axes
    /// are included: the figure sweeps all use single-valued scenario
    /// and integrator axes, and multi-scenario campaigns (like the
    /// ported ablation binaries) filter `rows` directly — calling
    /// `group` on such a report would interleave scenarios into one
    /// column.
    #[must_use]
    pub fn group(&self, experiment: Experiment, dpm: bool, seed_index: usize) -> Vec<&RunResult> {
        self.rows
            .iter()
            .filter(|r| {
                r.cell.experiment == experiment
                    && r.cell.dpm == dpm
                    && r.cell.seed_index == seed_index
            })
            .map(|r| &r.result)
            .collect()
    }

    /// CSV export: [`sweep_csv_header`], one line per cell in canonical
    /// order. Identical for every thread count and for any cache
    /// hit/miss mix (`cell_key` is derived from the spec, not from how
    /// the row was obtained).
    ///
    /// A sharded report (shard count > 1) prefixes every line with a
    /// `shard` provenance column holding `K/N`; the bytes after that
    /// column are exactly what the unsharded run emits for the same
    /// cell, which is what lets [`merge_csv`](crate::merge_csv)
    /// reassemble the canonical CSV byte-identically.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let shard_prefix =
            if self.shard.is_full() { String::new() } else { format!("{},", self.shard) };
        if shard_prefix.is_empty() {
            let _ = writeln!(out, "{}", sweep_csv_header());
        } else {
            let _ = writeln!(out, "shard,{}", sweep_csv_header());
        }
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{shard_prefix}{},{},{},{},{},{},{},{}",
                row.cell.index,
                row.cell.trace_seed,
                row.cell.integrator,
                row.cell.stack_order,
                row.cell.tsv,
                row.cell.sensor,
                row.key,
                csv_row(&row.result, row.cell.dpm)
            );
        }
        out
    }

    /// JSON export: `{"name": .., "rows": [{..}, ..]}` with one object
    /// per cell. Hand-rolled (the offline dependency set has no serde);
    /// policy labels and names are escaped as JSON strings. A sharded
    /// report (shard count > 1) adds a top-level `"shard": "K/N"` field;
    /// unsharded output is unchanged.
    #[must_use]
    pub fn json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"name\": {},", json_string(&self.name));
        if !self.shard.is_full() {
            let _ = writeln!(out, "  \"shard\": {},", json_string(&self.shard.to_string()));
        }
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let r = &row.result;
            let _ = write!(
                out,
                "    {{\"cell\": {}, \"cell_key\": {}, \"experiment\": {}, \"policy\": {}, \
                 \"dpm\": {}, \"integrator\": {}, \
                 \"stack_order\": {}, \"tsv\": {}, \"sensor\": {}, \
                 \"trace_seed\": {}, \"hotspot_pct\": {}, \"gradient_pct\": {}, \
                 \"cycle_pct\": {}, \"peak_temp_c\": {}, \"vertical_peak_c\": {}, \
                 \"mean_turnaround_s\": {}, \"completed\": {}, \"energy_j\": {}, \
                 \"mean_power_w\": {}, \"migrations\": {}, \"unfinished\": {}}}",
                row.cell.index,
                json_string(&row.key),
                json_string(&r.experiment.to_string()),
                json_string(&r.policy),
                row.cell.dpm,
                json_string(row.cell.integrator.name()),
                json_string(row.cell.stack_order.name()),
                json_string(row.cell.tsv.name()),
                json_string(row.cell.sensor.name()),
                row.cell.trace_seed,
                json_f64(r.hotspot_pct),
                json_f64(r.gradient_pct),
                json_f64(r.cycle_pct),
                json_f64(r.peak_temp_c),
                json_f64(r.vertical_peak_c),
                json_f64(r.perf.mean_turnaround_s),
                r.perf.completed,
                json_f64(r.energy_j),
                json_f64(r.mean_power_w),
                r.migrations,
                r.unfinished
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Paper-style text rendering: one fixed-width table per
    /// (experiment, scenario, integrator, DPM, seed) group, rows in the
    /// spec's policy order, with throughput normalized to each group's
    /// first policy. Scenario and integrator qualifiers appear in the
    /// group heading only when the respective axis actually varies, so
    /// single-scenario sweeps render exactly as before.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let shard =
            if self.shard.is_full() { String::new() } else { format!(" [shard {}]", self.shard) };
        let _ = writeln!(out, "sweep '{}'{shard}: {} cells", self.name, self.rows.len());
        let first = match self.rows.first() {
            Some(row) => &row.cell,
            None => return out,
        };
        let multi_integrator = self.rows.iter().any(|r| r.cell.integrator != first.integrator);
        let multi_order = self.rows.iter().any(|r| r.cell.stack_order != first.stack_order);
        let multi_tsv = self.rows.iter().any(|r| r.cell.tsv != first.tsv);
        let multi_sensor = self.rows.iter().any(|r| r.cell.sensor != first.sensor);
        type GroupKey = (
            Experiment,
            therm3d_floorplan::StackOrder,
            therm3d_thermal::TsvVariant,
            therm3d::SensorProfile,
            therm3d_thermal::Integrator,
            bool,
            usize,
            u64,
        );
        let mut groups: Vec<GroupKey> = Vec::new();
        for row in &self.rows {
            let key = (
                row.cell.experiment,
                row.cell.stack_order,
                row.cell.tsv,
                row.cell.sensor,
                row.cell.integrator,
                row.cell.dpm,
                row.cell.seed_index,
                row.cell.trace_seed,
            );
            if !groups.contains(&key) {
                groups.push(key);
            }
        }
        for (experiment, stack_order, tsv, sensor, integrator, dpm, seed_index, trace_seed) in
            groups
        {
            let runs: Vec<&RunResult> = self
                .rows
                .iter()
                .filter(|r| {
                    r.cell.experiment == experiment
                        && r.cell.stack_order == stack_order
                        && r.cell.tsv == tsv
                        && r.cell.sensor == sensor
                        && r.cell.integrator == integrator
                        && r.cell.dpm == dpm
                        && r.cell.seed_index == seed_index
                })
                .map(|r| &r.result)
                .collect();
            let mut qualifiers = String::new();
            if multi_order {
                let _ = write!(qualifiers, " {stack_order}");
            }
            if multi_tsv {
                let _ = write!(qualifiers, " tsv={tsv}");
            }
            if multi_sensor {
                let _ = write!(qualifiers, " sensor={sensor}");
            }
            if multi_integrator {
                let _ = write!(qualifiers, " {integrator}");
            }
            if !qualifiers.is_empty() {
                qualifiers = format!(" [{}]", qualifiers.trim_start());
            }
            let _ = writeln!(
                out,
                "\n== {experiment}{}{qualifiers} (trace seed {trace_seed})",
                if dpm { " +DPM" } else { "" },
            );
            let _ = writeln!(out, "{}", RunResult::table_header());
            let baseline = runs.first().copied();
            for r in runs {
                let norm = baseline.map_or(1.0, |b| r.normalized_performance_vs(b));
                let _ = writeln!(out, "{}  perf={norm:.3}", r.table_row());
            }
        }
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::expand;
    use crate::spec::SweepSpec;
    use therm3d::metrics::PerformanceStats;
    use therm3d_policies::PolicyKind;

    fn fake_result(policy: &str, experiment: Experiment) -> RunResult {
        RunResult {
            policy: policy.to_owned(),
            experiment,
            duration_s: 10.0,
            hotspot_pct: 12.5,
            gradient_pct: 3.0,
            cycle_pct: 1.0,
            vertical_peak_c: 4.0,
            vertical_mean_c: 2.0,
            peak_temp_c: 91.0,
            perf: PerformanceStats::from_turnarounds(&[0.5, 0.7]),
            energy_j: 500.0,
            mean_power_w: 50.0,
            migrations: 3,
            unfinished: 0,
        }
    }

    fn fake_report() -> SweepReport {
        let spec = SweepSpec::new("fake")
            .with_experiments(&[Experiment::Exp1])
            .with_policies(&[PolicyKind::Default, PolicyKind::Adapt3d])
            .with_dpm(&[false, true]);
        let rows = expand(&spec)
            .into_iter()
            .map(|cell| SweepRow {
                key: crate::cache::cell_key(&spec, &cell).hex(),
                result: fake_result(cell.policy.label(), cell.experiment),
                cell,
                timing: None,
            })
            .collect();
        SweepReport { name: spec.name, shard: ShardSpec::FULL, rows }
    }

    #[test]
    fn csv_has_header_and_one_line_per_cell() {
        let report = fake_report();
        let csv = report.csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("cell,trace_seed,integrator,stack_order,tsv,sensor,cell_key,policy,experiment,dpm,hot_pct,grad_pct,cycle_pct,peak_c,vertical_peak_c,mean_turnaround_s,energy_j,migrations,unfinished"));
        assert_eq!(lines.count(), report.rows.len());
        // Every data row carries its scenario columns and its
        // 16-hex-digit provenance key.
        for (line, row) in csv.lines().skip(1).zip(&report.rows) {
            assert_eq!(line.split(',').nth(2), Some("implicit-cn"), "{line}");
            assert_eq!(line.split(',').nth(3), Some("cores-far"), "{line}");
            assert_eq!(line.split(',').nth(4), Some("paper"), "{line}");
            assert_eq!(line.split(',').nth(5), Some("ideal"), "{line}");
            assert_eq!(line.split(',').nth(6), Some(row.key.as_str()), "{line}");
        }
    }

    #[test]
    fn render_qualifies_groups_only_when_a_scenario_axis_varies() {
        use therm3d::SensorProfile;
        use therm3d_floorplan::StackOrder;

        // Single-scenario report: headings carry no qualifier block.
        let plain = fake_report().render();
        assert!(!plain.contains('['), "{plain}");

        // A report whose stack-order and sensor axes vary names them.
        let spec = SweepSpec::new("multi")
            .with_experiments(&[Experiment::Exp1])
            .with_stack_orders(&StackOrder::ALL)
            .with_sensors(&[SensorProfile::Ideal, SensorProfile::Noisy1C])
            .with_policies(&[PolicyKind::Default]);
        let rows = expand(&spec)
            .into_iter()
            .map(|cell| SweepRow {
                key: crate::cache::cell_key(&spec, &cell).hex(),
                result: fake_result(cell.policy.label(), cell.experiment),
                cell,
                timing: None,
            })
            .collect();
        let text = SweepReport { name: spec.name, shard: ShardSpec::FULL, rows }.render();
        assert!(text.contains("[cores-near sensor=noisy-1c]"), "{text}");
        assert!(!text.contains("tsv="), "single-valued axes stay silent: {text}");
    }

    #[test]
    fn sharded_exports_carry_provenance_and_strip_back_to_canonical() {
        let full = fake_report();
        let shard = ShardSpec { index: 1, count: 3 };
        let sharded = SweepReport {
            name: full.name.clone(),
            shard,
            rows: full.rows.iter().filter(|r| shard.owns(r.cell.index)).cloned().collect(),
        };
        let csv = sharded.csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(format!("shard,{}", sweep_csv_header()).as_str()));
        // Every data row leads with the shard id, and the bytes after it
        // are exactly the unsharded run's row for the same cell.
        let full_csv = full.csv();
        for line in lines {
            let (tag, rest) = line.split_once(',').unwrap();
            assert_eq!(tag, "1/3");
            assert!(full_csv.lines().any(|l| l == rest), "{rest}");
        }
        // JSON and table outputs name the shard too; unsharded ones
        // stay silent (their bytes must not change).
        assert!(sharded.json().contains("\"shard\": \"1/3\""));
        assert!(sharded.render().starts_with("sweep 'fake' [shard 1/3]:"));
        assert!(!full.json().contains("\"shard\""));
        assert!(full.render().starts_with("sweep 'fake':"));
    }

    #[test]
    fn csv_row_field_count_matches_header() {
        let r = fake_result("Adapt3D", Experiment::Exp2);
        assert_eq!(csv_row(&r, true).split(',').count(), csv_header().split(',').count());
    }

    #[test]
    fn json_is_balanced_and_mentions_every_policy() {
        let json = fake_report().json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"Adapt3D\""));
        assert!(json.contains("\"dpm\": true"));
    }

    #[test]
    fn render_groups_by_experiment_and_dpm() {
        let text = fake_report().render();
        assert!(text.contains("== EXP-1 (trace seed"));
        assert!(text.contains("== EXP-1 +DPM"));
        assert!(text.contains("Adapt3D"));
        assert!(text.contains("perf="));
    }

    #[test]
    fn group_preserves_policy_order() {
        let report = fake_report();
        let group = report.group(Experiment::Exp1, false, 0);
        assert_eq!(group.len(), 2);
        assert_eq!(group[0].policy, "Default");
        assert_eq!(group[1].policy, "Adapt3D");
    }
}
