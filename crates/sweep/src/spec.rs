//! The declarative description of a scenario sweep: which axes to cross,
//! how long to simulate, and how to seed each cell.

use therm3d::SensorProfile;
use therm3d_floorplan::{Experiment, StackOrder};
use therm3d_policies::PolicyKind;
use therm3d_thermal::{Integrator, TsvVariant};
use therm3d_workload::Benchmark;

use crate::shard::ShardSpec;

/// Default simulated seconds per cell (the figure binaries' default).
pub const DEFAULT_SIM_SECONDS: f64 = 240.0;

/// Default trace seed (the paper-reproduction seed used everywhere).
pub const DEFAULT_TRACE_SEED: u64 = 2009;

/// Default policy (LFSR) seed.
pub const DEFAULT_POLICY_SEED: u16 = 0xACE1;

/// A declarative scenario sweep: the cross-product of every axis below
/// is expanded into one deterministic run matrix (see
/// [`expand`](crate::expand)).
///
/// # Examples
///
/// ```
/// use therm3d_sweep::SweepSpec;
/// use therm3d_floorplan::Experiment;
/// use therm3d_policies::PolicyKind;
///
/// let spec = SweepSpec::new("demo")
///     .with_experiments(&[Experiment::Exp1, Experiment::Exp2])
///     .with_policies(&[PolicyKind::Default, PolicyKind::Adapt3d])
///     .with_dpm(&[false, true])
///     .with_sim_seconds(10.0);
/// assert_eq!(therm3d_sweep::expand(&spec).len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Human-readable sweep name (used in reports and file headers).
    pub name: String,
    /// 3D systems to simulate (EXP-1..4).
    pub experiments: Vec<Experiment>,
    /// Stack-orientation axis: which die bonds to the spreader in the
    /// split configurations (default: the paper's `cores-far` only).
    pub stack_orders: Vec<StackOrder>,
    /// TSV/interlayer-variant axis: the named via population and
    /// interface material the RC network is built from (default: the
    /// paper's 1024-via joint interlayer only).
    pub tsv: Vec<TsvVariant>,
    /// Sensor-fidelity axis: the imperfection profile the policies
    /// observe through (default: ideal sensors only). Noisy profiles
    /// seed their stream from the per-cell trace seed, so noisy cells
    /// are reproducible and cacheable.
    pub sensors: Vec<SensorProfile>,
    /// Thermal transient integrators to run (default: the implicit
    /// pre-factored scheme only; add `explicit-rk4` to sweep the golden
    /// reference alongside it, e.g. for accuracy/performance studies).
    pub integrators: Vec<Integrator>,
    /// DTM policies to evaluate.
    pub policies: Vec<PolicyKind>,
    /// Dynamic power management on/off axis.
    pub dpm: Vec<bool>,
    /// The benchmark rotation; each run replays this mix with equal
    /// time shares (as the figure binaries do).
    pub benchmarks: Vec<Benchmark>,
    /// Trace-seed axis: one full (experiment × dpm × policy) grid is run
    /// per seed. All policies within one (experiment, seed) cell group
    /// replay the *same* trace, so policies stay comparable.
    pub seeds: Vec<u64>,
    /// Simulated seconds per cell.
    pub sim_seconds: f64,
    /// Thermal grid resolution per layer (rows, cols).
    pub grid: (usize, usize),
    /// Base policy (LFSR) seed; per-cell seeds are derived from it (see
    /// [`SweepCell::policy_seed`](crate::SweepCell)).
    pub policy_seed: u16,
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Which shard of the canonical matrix this process runs (default:
    /// the full matrix). Like `name` and `threads`, the shard is an
    /// execution detail, not a physical knob: it never enters a cell's
    /// descriptor or [`cell_key`](crate::cache::cell_key), so shard
    /// caches union cleanly and merged reports are byte-identical to an
    /// unsharded run.
    pub shard: ShardSpec,
    /// Stream each cell's job trace instead of materializing it up
    /// front, making memory O(1) in `sim_seconds` (week-long cells).
    /// Like `threads` and `shard`, streaming is an execution detail:
    /// results are bit-identical either way and the flag never enters a
    /// cell's descriptor or [`cell_key`](crate::cache::cell_key), so
    /// streamed and materialized runs share one cache.
    pub streaming: bool,
}

impl SweepSpec {
    /// Creates a spec with the paper defaults: all four experiments, all
    /// eleven policies, DPM off, the full Table I benchmark rotation,
    /// trace seed 2009, 240 s per cell on an 8×8 grid.
    ///
    /// The builder itself does *not* consult the environment; callers
    /// that want `THERM3D_SIM_SECONDS` (the CLI spec loader, the figure
    /// binaries) apply [`sim_seconds_from_env`] explicitly so a
    /// malformed value is a reported error, not a silent fallback.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            experiments: Experiment::ALL.to_vec(),
            stack_orders: vec![StackOrder::default()],
            tsv: vec![TsvVariant::default()],
            sensors: vec![SensorProfile::default()],
            integrators: vec![Integrator::default()],
            policies: PolicyKind::ALL.to_vec(),
            dpm: vec![false],
            benchmarks: Benchmark::ALL.to_vec(),
            seeds: vec![DEFAULT_TRACE_SEED],
            sim_seconds: DEFAULT_SIM_SECONDS,
            grid: (8, 8),
            policy_seed: DEFAULT_POLICY_SEED,
            threads: 0,
            shard: ShardSpec::FULL,
            streaming: false,
        }
    }

    /// Sets the experiment axis.
    #[must_use]
    pub fn with_experiments(mut self, experiments: &[Experiment]) -> Self {
        self.experiments = experiments.to_vec();
        self
    }

    /// Sets the stack-orientation axis.
    #[must_use]
    pub fn with_stack_orders(mut self, stack_orders: &[StackOrder]) -> Self {
        self.stack_orders = stack_orders.to_vec();
        self
    }

    /// Sets the TSV/interlayer-variant axis.
    #[must_use]
    pub fn with_tsv(mut self, tsv: &[TsvVariant]) -> Self {
        self.tsv = tsv.to_vec();
        self
    }

    /// Sets the sensor-fidelity axis.
    #[must_use]
    pub fn with_sensors(mut self, sensors: &[SensorProfile]) -> Self {
        self.sensors = sensors.to_vec();
        self
    }

    /// Sets the integrator axis.
    #[must_use]
    pub fn with_integrators(mut self, integrators: &[Integrator]) -> Self {
        self.integrators = integrators.to_vec();
        self
    }

    /// Sets the policy axis.
    #[must_use]
    pub fn with_policies(mut self, policies: &[PolicyKind]) -> Self {
        self.policies = policies.to_vec();
        self
    }

    /// Sets the DPM axis (e.g. `&[false, true]` to sweep both).
    #[must_use]
    pub fn with_dpm(mut self, dpm: &[bool]) -> Self {
        self.dpm = dpm.to_vec();
        self
    }

    /// Sets the benchmark rotation.
    #[must_use]
    pub fn with_benchmarks(mut self, benchmarks: &[Benchmark]) -> Self {
        self.benchmarks = benchmarks.to_vec();
        self
    }

    /// Sets the trace-seed axis.
    #[must_use]
    pub fn with_seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Sets the simulated duration per cell, seconds.
    #[must_use]
    pub fn with_sim_seconds(mut self, sim_seconds: f64) -> Self {
        self.sim_seconds = sim_seconds;
        self
    }

    /// Sets the thermal grid resolution per layer.
    #[must_use]
    pub fn with_grid(mut self, rows: usize, cols: usize) -> Self {
        self.grid = (rows, cols);
        self
    }

    /// Sets the base policy (LFSR) seed.
    #[must_use]
    pub fn with_policy_seed(mut self, policy_seed: u16) -> Self {
        self.policy_seed = policy_seed;
        self
    }

    /// Sets the worker-thread count (`0` = one per available CPU).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the shard of the canonical matrix this process runs.
    #[must_use]
    pub fn with_shard(mut self, shard: ShardSpec) -> Self {
        self.shard = shard;
        self
    }

    /// Enables (or disables) streaming trace generation.
    #[must_use]
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Rough number of jobs one cell's materialized trace would hold
    /// for an `n_cores` system: offered jobs ≈ Σ_b U_b·N/E\[S\] over each
    /// benchmark's equal duration share. This powers the `therm3d
    /// check` memory-model preflight; the streamed path never holds
    /// them.
    #[must_use]
    pub fn estimated_trace_jobs(&self, n_cores: usize) -> f64 {
        let slot_s = self.sim_seconds / self.benchmarks.len() as f64;
        self.benchmarks
            .iter()
            .map(|b| {
                let cfg = therm3d_workload::TraceConfig::new(*b, n_cores.max(1), slot_s.max(1e-9));
                b.stats().avg_utilization * n_cores as f64 / cfg.mean_job_s * slot_s
            })
            .sum()
    }

    /// Number of cells the spec expands to.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.experiments.len()
            * self.stack_orders.len()
            * self.tsv.len()
            * self.sensors.len()
            * self.integrators.len()
            * self.policies.len()
            * self.dpm.len()
            * self.seeds.len()
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field when an axis is
    /// empty, an axis contains duplicates, the duration is not positive,
    /// or the grid is degenerate.
    pub fn validate(&self) -> Result<(), String> {
        fn no_dupes<T: PartialEq + std::fmt::Debug>(axis: &[T], name: &str) -> Result<(), String> {
            if axis.is_empty() {
                return Err(format!("`{name}` axis must not be empty"));
            }
            for (i, a) in axis.iter().enumerate() {
                if axis[..i].contains(a) {
                    return Err(format!("`{name}` axis repeats {a:?}"));
                }
            }
            Ok(())
        }
        // The TOML subset has no string escapes, so a quote (or line
        // break) in the name would break the to_toml/from_toml
        // round-trip guarantee.
        if self.name.contains('"') || self.name.contains('\n') || self.name.contains('\r') {
            return Err(format!("`name` must not contain quotes or line breaks: {:?}", self.name));
        }
        no_dupes(&self.experiments, "experiments")?;
        no_dupes(&self.stack_orders, "stack_orders")?;
        no_dupes(&self.tsv, "tsv")?;
        no_dupes(&self.sensors, "sensors")?;
        no_dupes(&self.integrators, "integrators")?;
        no_dupes(&self.policies, "policies")?;
        no_dupes(&self.dpm, "dpm")?;
        no_dupes(&self.seeds, "seeds")?;
        if self.benchmarks.is_empty() {
            return Err("`benchmarks` must not be empty".into());
        }
        if !(self.sim_seconds > 0.0 && self.sim_seconds.is_finite()) {
            return Err(format!("`sim_seconds` must be positive and finite: {}", self.sim_seconds));
        }
        if self.grid.0 == 0 || self.grid.1 == 0 {
            return Err(format!("`grid` must be at least 1x1: {:?}", self.grid));
        }
        // A hand-built ShardSpec can bypass ShardSpec::new; re-validate
        // so an out-of-range shard is an error, not an empty report.
        ShardSpec::new(self.shard.index, self.shard.count)?;
        Ok(())
    }
}

/// Reads `THERM3D_SIM_SECONDS`: unset means `Ok(default_s)`, a valid
/// positive finite number means `Ok(that value)`, and anything else —
/// unparsable text, zero, negative, NaN or infinite — is a hard error.
///
/// The old behaviour silently fell back to the default, which meant a
/// typo'd duration quietly simulated (and *cached*, now that results
/// are memoized by a key that embeds the resolved duration) something
/// other than what the operator asked for.
///
/// # Errors
///
/// A message naming the variable and the offending value.
///
/// # Examples
///
/// ```
/// let s = therm3d_sweep::sim_seconds_from_env(240.0).unwrap();
/// assert!(s > 0.0);
/// ```
pub fn sim_seconds_from_env(default_s: f64) -> Result<f64, String> {
    parse_sim_seconds(std::env::var("THERM3D_SIM_SECONDS").ok().as_deref(), default_s)
}

/// The pure core of [`sim_seconds_from_env`]: `raw` is the variable's
/// value, `None` when unset.
///
/// # Errors
///
/// See [`sim_seconds_from_env`].
pub fn parse_sim_seconds(raw: Option<&str>, default_s: f64) -> Result<f64, String> {
    let Some(raw) = raw else {
        return Ok(default_s);
    };
    let reject = |why: &str| {
        Err(format!(
            "THERM3D_SIM_SECONDS must be a positive, finite number of simulated seconds, \
             got `{}` ({why})",
            raw.trim()
        ))
    };
    match raw.trim().parse::<f64>() {
        Err(_) => reject("not a number"),
        Ok(s) if s.is_nan() => reject("NaN"),
        Ok(s) if s.is_infinite() => reject("infinite"),
        Ok(s) if s <= 0.0 => reject("not positive"),
        Ok(s) => Ok(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_paper_grid() {
        let spec = SweepSpec::new("paper");
        assert_eq!(spec.experiments.len(), 4);
        assert_eq!(spec.policies.len(), 11);
        assert_eq!(spec.cell_count(), 44);
        spec.validate().unwrap();
    }

    #[test]
    fn integrator_axis_multiplies_cells_and_rejects_duplicates() {
        let spec = SweepSpec::new("x")
            .with_integrators(&[Integrator::ImplicitCn, Integrator::ExplicitRk4]);
        assert_eq!(spec.cell_count(), 2 * 44);
        spec.validate().unwrap();
        let dup =
            SweepSpec::new("x").with_integrators(&[Integrator::ImplicitCn, Integrator::ImplicitCn]);
        assert!(dup.validate().unwrap_err().contains("integrators"));
    }

    #[test]
    fn scenario_axes_multiply_cells_and_reject_duplicates() {
        let spec = SweepSpec::new("scenario")
            .with_stack_orders(&StackOrder::ALL)
            .with_tsv(&[TsvVariant::Paper, TsvVariant::Dense1Pct, TsvVariant::Epoxy])
            .with_sensors(&[SensorProfile::Ideal, SensorProfile::Noisy1C]);
        assert_eq!(spec.cell_count(), 2 * 3 * 2 * 44);
        spec.validate().unwrap();
        for (bad, field) in [
            (SweepSpec::new("x").with_stack_orders(&[]), "stack_orders"),
            (SweepSpec::new("x").with_tsv(&[TsvVariant::Bare, TsvVariant::Bare]), "tsv"),
            (SweepSpec::new("x").with_sensors(&[SensorProfile::Ideal; 2]), "sensors"),
        ] {
            assert!(bad.validate().unwrap_err().contains(field), "{field}");
        }
    }

    #[test]
    fn empty_axis_rejected() {
        let spec = SweepSpec::new("x").with_policies(&[]);
        assert!(spec.validate().unwrap_err().contains("policies"));
    }

    #[test]
    fn duplicate_axis_value_rejected() {
        let spec = SweepSpec::new("x").with_seeds(&[1, 2, 1]);
        assert!(spec.validate().unwrap_err().contains("seeds"));
    }

    #[test]
    fn out_of_range_shard_rejected() {
        let spec = SweepSpec::new("x");
        assert_eq!(spec.shard, ShardSpec::FULL, "default is the full matrix");
        spec.clone().with_shard(ShardSpec { index: 2, count: 3 }).validate().unwrap();
        // Hand-built specs that bypass ShardSpec::new still fail
        // validation with the range named.
        let err = spec.clone().with_shard(ShardSpec { index: 3, count: 3 }).validate().unwrap_err();
        assert!(err.contains("0/3..=2/3"), "{err}");
        let err = spec.with_shard(ShardSpec { index: 0, count: 0 }).validate().unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn bad_duration_rejected() {
        let spec = SweepSpec::new("x").with_sim_seconds(0.0);
        assert!(spec.validate().unwrap_err().contains("sim_seconds"));
    }

    #[test]
    fn env_parsing_accepts_only_sane_durations() {
        // The pure core is tested exhaustively; no mutation of the real
        // environment (tests run in parallel).
        assert_eq!(parse_sim_seconds(None, 123.0), Ok(123.0));
        assert_eq!(parse_sim_seconds(Some("20"), 123.0), Ok(20.0));
        assert_eq!(parse_sim_seconds(Some("  0.5 "), 123.0), Ok(0.5));
        for bad in ["abc", "0", "0.0", "-3", "NaN", "nan", "inf", "-inf", ""] {
            let err = parse_sim_seconds(Some(bad), 123.0).unwrap_err();
            assert!(err.contains("THERM3D_SIM_SECONDS"), "{bad}: {err}");
            assert!(err.contains(bad.trim()), "{bad}: {err}");
        }
    }

    #[test]
    fn env_wrapper_matches_the_pure_core() {
        // Whatever THERM3D_SIM_SECONDS holds right now, the wrapper and
        // the pure parser must agree.
        let raw = std::env::var("THERM3D_SIM_SECONDS").ok();
        assert_eq!(sim_seconds_from_env(77.0), parse_sim_seconds(raw.as_deref(), 77.0));
    }
}
