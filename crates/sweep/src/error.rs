//! Typed errors for sweep execution and the result cache.
//!
//! The engine used to surface every failure as a bare `String` (and a
//! poisoned worker as a panic deep inside the aggregation loop); these
//! variants keep the failing *cell* attached to its *cause* so a
//! 500-cell campaign that loses one worker reports which cell died
//! instead of aborting the whole run with an opaque `expect`.

use std::fmt;

/// An error raised while executing a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The spec failed [`SweepSpec::validate`](crate::SweepSpec::validate).
    InvalidSpec(String),
    /// One cell's simulation panicked or its worker died; `cell` is the
    /// human-readable descriptor from
    /// [`SweepCell::describe`](crate::SweepCell::describe).
    CellFailed {
        /// Which cell died (index + resolved axes).
        cell: String,
        /// The panic payload or worker-loss description.
        cause: String,
    },
    /// The result cache could not be opened, read or appended to.
    Cache {
        /// The cache path involved.
        path: String,
        /// The underlying I/O failure.
        cause: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::InvalidSpec(msg) => write!(f, "invalid sweep spec: {msg}"),
            SweepError::CellFailed { cell, cause } => {
                write!(f, "sweep cell failed: {cell}: {cause}")
            }
            SweepError::Cache { path, cause } => write!(f, "sweep cache `{path}`: {cause}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<SweepError> for String {
    fn from(e: SweepError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_cell_and_cause_together() {
        let e = SweepError::CellFailed {
            cell: "cell #3 (EXP-2, Adapt3D, dpm=false, trace_seed=2009)".into(),
            cause: "index out of bounds".into(),
        };
        let s = e.to_string();
        assert!(s.contains("cell #3"), "{s}");
        assert!(s.contains("index out of bounds"), "{s}");
    }

    #[test]
    fn variants_render_their_context() {
        assert!(SweepError::InvalidSpec("`seeds` axis must not be empty".into())
            .to_string()
            .contains("seeds"));
        let e = SweepError::Cache { path: "/tmp/c".into(), cause: "permission denied".into() };
        assert!(e.to_string().contains("/tmp/c"), "{e}");
    }
}
