//! Parallel execution of a sweep's run matrix, with optional
//! content-addressed result caching.
//!
//! Traces are generated once per (core-count, seed) pair and shared
//! read-only across workers; each worker builds its own [`Simulator`]
//! per cell, so no simulation state crosses threads and the aggregated
//! results are bit-identical for any thread count.
//!
//! With a [`CacheStore`] attached ([`run_with_cache`]), every cell is
//! looked up by its [`cell_key`] *before* any
//! simulator is built: hits skip simulation entirely, misses execute
//! and are written back in canonical order. Because a cached result is
//! decoded bit-exactly and rows are assembled in matrix order either
//! way, the report is byte-identical for any hit/miss mix and any
//! thread count.
//!
//! A cell whose simulation panics no longer aborts the whole campaign
//! via a poisoned `expect`: the panic is caught on the worker, and the
//! run returns [`SweepError::CellFailed`] naming the first failed cell
//! in canonical order. Failed cells are never written to the cache.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use therm3d::{RunResult, ScenarioConfig, SimConfig, Simulator};
use therm3d_telemetry::span::elapsed_us;
use therm3d_telemetry::{CellMetrics, Event, Span};
use therm3d_thermal::{FactorShare, ThermalConfig};
use therm3d_workload::{generate_mix, stream_mix, JobTrace};

use crate::cache::{cell_key, CacheStore, ENGINE_VERSION};
use crate::error::SweepError;
use crate::matrix::{expand_shard, SweepCell};
use crate::report::{SweepReport, SweepRow};
use crate::spec::SweepSpec;
use crate::telemetry::RunTelemetry;

/// The simulator configuration for one cell of `spec`: paper defaults
/// plus the cell's scenario (stack order, TSV variant, sensor profile —
/// with the noise seed derived from the cell's trace seed), grid and
/// integrator.
#[must_use]
pub fn sim_config(spec: &SweepSpec, cell: &SweepCell) -> SimConfig {
    let scenario = ScenarioConfig::paper_default()
        .with_stack_order(cell.stack_order)
        .with_tsv(cell.tsv)
        .with_sensor(cell.sensor)
        .with_sensor_seed(cell.sensor_seed());
    let mut cfg = SimConfig::paper_default(cell.experiment).with_scenario(scenario);
    cfg.thermal = cfg.thermal.with_grid(spec.grid.0, spec.grid.1).with_integrator(cell.integrator);
    cfg
}

/// The resolved thermal-model identity of one cell: every axis that
/// changes the RC network, its ordering or its factors — experiment,
/// stack order, effective TSV variant, grid, integrator and the tick
/// the implicit substep sizes derive from. Cells with equal
/// fingerprints build bit-identical conductance systems, so the runner
/// hands them one [`FactorShare`] and the whole group pays for one
/// symbolic analysis and one factor set.
///
/// The TSV variant only reaches the network when the thermal config
/// keeps the paper's interlayer (the same rule `Simulator::new`
/// applies); a custom interlayer folds the variant out of the
/// fingerprint instead of splitting identical models apart.
#[must_use]
pub fn model_fingerprint(spec: &SweepSpec, cell: &SweepCell) -> String {
    let cfg = sim_config(spec, cell);
    let tsv = if cfg.thermal.interlayer == ThermalConfig::paper_default().interlayer {
        format!("{:?}", cell.tsv)
    } else {
        "custom-interlayer".to_owned()
    };
    format!(
        "{}|{:?}|{tsv}|{}x{}|{:?}|{:016x}",
        cell.experiment,
        cell.stack_order,
        spec.grid.0,
        spec.grid.1,
        cell.integrator,
        cfg.tick_s.to_bits()
    )
}

/// Runs a single cell in isolation, generating its trace on the fly.
///
/// The figure binaries use this for one-off cells; [`run`] amortizes
/// trace generation across the matrix instead. With `spec.streaming`
/// set, the trace is never materialized: jobs stream straight from the
/// generator into the engine (bit-identical results, O(1) memory in
/// `sim_seconds`).
#[must_use]
pub fn run_cell(spec: &SweepSpec, cell: &SweepCell) -> RunResult {
    if spec.streaming {
        return run_cell_costed(spec, cell, None, None).0;
    }
    let trace = generate_mix(
        &spec.benchmarks,
        cell.experiment.num_cores(),
        spec.sim_seconds,
        cell.trace_seed,
    );
    run_cell_with_trace(spec, cell, &trace)
}

fn run_cell_with_trace(spec: &SweepSpec, cell: &SweepCell, trace: &JobTrace) -> RunResult {
    run_cell_costed(spec, cell, Some(trace), None).0
}

/// The cost of simulating one cell: wall-clock split by phase plus the
/// thermal solver's deterministic work counters. A handful of clock
/// reads per *cell* (not per tick), so it is recorded unconditionally.
#[derive(Clone, Copy, Debug)]
struct CellCost {
    wall_us: u64,
    setup_us: u64,
    simulate_us: u64,
    factor_numeric: u64,
    symbolic_analyses: u64,
}

/// Simulates one cell. A `Some(trace)` runs the classic materialized
/// path; `None` streams the cell's job mix directly from the generator
/// ([`stream_mix`]) without ever building a [`JobTrace`] — results are
/// bit-identical either way, so both paths share one cache key.
fn run_cell_costed(
    spec: &SweepSpec,
    cell: &SweepCell,
    trace: Option<&JobTrace>,
    share: Option<&FactorShare>,
) -> (RunResult, CellCost) {
    // lint: allow(no-wall-clock): per-cell cost accounting only — never feeds results
    let t_wall = Instant::now();
    // The policy must see the same stack the engine simulates (Adapt3D's
    // thermal indices depend on which layer each core sits on).
    let stack = cell.experiment.stack_with_order(cell.stack_order);
    let policy = cell.policy.build_with_dpm(&stack, cell.policy_seed, cell.dpm);
    let mut sim = Simulator::with_factor_share(sim_config(spec, cell), policy, share.cloned());
    let setup_us = elapsed_us(t_wall);
    // lint: allow(no-wall-clock): per-cell cost accounting only — never feeds results
    let t_sim = Instant::now();
    let result = match trace {
        Some(trace) => sim.run(trace, spec.sim_seconds),
        None => {
            let source = stream_mix(
                &spec.benchmarks,
                cell.experiment.num_cores(),
                spec.sim_seconds,
                cell.trace_seed,
            );
            sim.run_source(source, spec.sim_seconds)
        }
    };
    let cost = CellCost {
        wall_us: elapsed_us(t_wall),
        setup_us,
        simulate_us: elapsed_us(t_sim),
        factor_numeric: sim.factorization_count() as u64,
        symbolic_analyses: sim.symbolic_analysis_count() as u64,
    };
    (result, cost)
}

/// [`run_cell_costed`] with panics converted to an error message,
/// so one exploding cell reports itself instead of killing its worker.
fn try_run_cell(
    spec: &SweepSpec,
    cell: &SweepCell,
    trace: Option<&JobTrace>,
    share: Option<&FactorShare>,
) -> Result<(RunResult, CellCost), String> {
    std::panic::catch_unwind(AssertUnwindSafe(|| run_cell_costed(spec, cell, trace, share)))
        .map_err(|payload| panic_message(payload.as_ref()))
}

/// [`try_run_cell`] bracketed by telemetry: a `cell_start` event before
/// the simulation, `cell_finish`/`cell_panic` and a progress bump after.
fn run_cell_observed(
    spec: &SweepSpec,
    cell: &SweepCell,
    trace: Option<&JobTrace>,
    share: Option<&FactorShare>,
    key_hex: &str,
    shard: &str,
    telemetry: Option<&RunTelemetry>,
) -> Result<(RunResult, CellCost), String> {
    let Some(tel) = telemetry else { return try_run_cell(spec, cell, trace, share) };
    if let Some(events) = &tel.events {
        events.emit(&Event::CellStart { shard, cell: cell.index, key: key_hex });
    }
    let outcome = try_run_cell(spec, cell, trace, share);
    if let Some(events) = &tel.events {
        match &outcome {
            Ok((_, cost)) => events.emit(&Event::CellFinish {
                shard,
                cell: cell.index,
                key: key_hex,
                wall_us: cost.wall_us,
                cached: false,
            }),
            Err(cause) => {
                events.emit(&Event::CellPanic { shard, cell: cell.index, key: key_hex, cause });
            }
        }
    }
    if let Some(progress) = &tel.progress {
        progress.cell_done(false);
    }
    outcome
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("simulation panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("simulation panicked: {s}")
    } else {
        "simulation panicked (non-string payload)".to_owned()
    }
}

/// Resolves the effective worker count for `jobs` cells.
#[must_use]
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let t = if requested == 0 { auto } else { requested };
    t.clamp(1, jobs.max(1))
}

/// Expands `spec` and executes every cell across worker threads,
/// returning rows in canonical matrix order.
///
/// # Errors
///
/// [`SweepError::InvalidSpec`] for a spec that fails validation, or
/// [`SweepError::CellFailed`] when a cell's simulation panics.
pub fn run(spec: &SweepSpec) -> Result<SweepReport, SweepError> {
    run_with_cache(spec, None)
}

/// [`run`] with an optional persistent result cache: cells whose key is
/// already in `cache` skip simulation, the rest execute in parallel and
/// are written back. The report (rows, CSV, JSON, tables) is
/// byte-identical whatever the hit/miss mix or thread count.
///
/// # Errors
///
/// [`SweepError::InvalidSpec`] for a spec that fails validation,
/// [`SweepError::CellFailed`] when a cell's simulation panics (the
/// failed cell is named; nothing is cached for it), or
/// [`SweepError::Cache`] when the store cannot be appended to.
pub fn run_with_cache(
    spec: &SweepSpec,
    cache: Option<&mut CacheStore>,
) -> Result<SweepReport, SweepError> {
    run_with_telemetry(spec, cache, None)
}

/// [`run_with_cache`] with optional observability: when `telemetry` is
/// given, the run feeds its private metrics registry (aggregate
/// counters/histograms plus one [`CellMetrics`] record per cell),
/// streams cell-lifecycle events and drives the live progress
/// reporter. Telemetry writes only to the sinks inside
/// [`RunTelemetry`] — rows, CSV and JSON stay byte-identical with
/// telemetry on or off, which CI guards by diffing the two.
///
/// # Errors
///
/// Exactly as [`run_with_cache`].
pub fn run_with_telemetry(
    spec: &SweepSpec,
    cache: Option<&mut CacheStore>,
    telemetry: Option<&RunTelemetry>,
) -> Result<SweepReport, SweepError> {
    run_selected(spec, None, cache, telemetry)
}

/// [`run_with_telemetry`] restricted to an explicit set of canonical
/// cell indices — the campaign coordinator's entry point: a
/// `therm3d work` process runs exactly the cells of its lease through
/// the full runner (cache lookup, factor sharing, worker threads,
/// telemetry) and nothing else. Indices refer to the canonical
/// expansion, the same numbering as [`SweepCell::index`], shard filters
/// and report rows; seeds and keys are selection-independent, so any
/// partition of a matrix across workers reassembles byte-identically.
///
/// # Errors
///
/// As [`run_with_telemetry`], plus [`SweepError::InvalidSpec`] when an
/// index is at or past the spec's cell count.
pub fn run_cells_with_telemetry(
    spec: &SweepSpec,
    indices: &[usize],
    cache: Option<&mut CacheStore>,
    telemetry: Option<&RunTelemetry>,
) -> Result<SweepReport, SweepError> {
    let total = spec.cell_count();
    if let Some(&bad) = indices.iter().find(|&&i| i >= total) {
        return Err(SweepError::InvalidSpec(format!(
            "cell index {bad} out of range: '{}' expands to {total} cell(s)",
            spec.name
        )));
    }
    let selection: BTreeSet<usize> = indices.iter().copied().collect();
    run_selected(spec, Some(&selection), cache, telemetry)
}

fn run_selected(
    spec: &SweepSpec,
    selection: Option<&BTreeSet<usize>>,
    mut cache: Option<&mut CacheStore>,
    telemetry: Option<&RunTelemetry>,
) -> Result<SweepReport, SweepError> {
    spec.validate().map_err(SweepError::InvalidSpec)?;
    let shard_label = spec.shard.to_string();
    // Only this shard's cells are expanded into the work list; the full
    // matrix is the default (shard 0/1). Cells keep their canonical
    // indices and derived seeds, so everything below — keys, traces,
    // write-back, report rows — is identical whether a cell runs in a
    // sharded process or an unsharded one. An explicit selection (a
    // coordinator lease) narrows the work list the same way a shard
    // does: by canonical index, changing nothing about any cell.
    // lint: allow(no-wall-clock): expansion-phase telemetry only — never feeds results
    let t_expand = Instant::now();
    let mut cells = {
        let _span = Span::enter("sweep.expand_us");
        expand_shard(spec)
    };
    if let Some(sel) = selection {
        cells.retain(|cell| sel.contains(&cell.index));
    }
    let keys: Vec<_> = cells.iter().map(|cell| cell_key(spec, cell)).collect();
    let expand_us = elapsed_us(t_expand);

    // Lookup-before-simulate: hits fill their slot immediately, misses
    // form the pending work list for the workers.
    let mut results: Vec<Option<Result<RunResult, String>>> = vec![None; cells.len()];
    let mut lookup_us: Vec<u64> = Vec::new();
    let cache_attached = cache.is_some();
    if let Some(store) = cache.as_deref_mut() {
        let _span = Span::enter("cache.lookup_us");
        for (slot, key) in results.iter_mut().zip(&keys) {
            // lint: allow(no-wall-clock): cache-lookup telemetry only — never feeds results
            let t = Instant::now();
            *slot = store.lookup(key).map(Ok);
            lookup_us.push(elapsed_us(t));
        }
    }
    let pending: Vec<usize> = (0..cells.len()).filter(|&i| results[i].is_none()).collect();
    let threads = effective_threads(spec.threads, pending.len());

    if let Some(tel) = telemetry {
        let reg = &tel.registry;
        reg.set_meta("sweep", &spec.name);
        reg.set_meta("shard", &shard_label);
        reg.set_meta("engine", ENGINE_VERSION);
        reg.set_meta("threads", &threads.to_string());
        reg.gauge("sweep.expand_us").set(expand_us as f64);
        reg.counter("sweep.cells_total").add(cells.len() as u64);
        // Hit/miss accounting only means something with a store attached
        // — an uncached run is not "all misses".
        if cache_attached {
            reg.counter("sweep.cache_hits").add((cells.len() - pending.len()) as u64);
            reg.counter("sweep.cache_misses").add(pending.len() as u64);
        }
        if let Some(progress) = &tel.progress {
            progress.begin(cells.len(), threads);
        }
        // Cache hits resolve before any worker starts: announce them
        // now so progress and the event stream cover every cell.
        for (i, slot) in results.iter().enumerate() {
            if slot.is_none() {
                continue;
            }
            if let Some(events) = &tel.events {
                let key = keys[i].hex();
                let us = lookup_us[i];
                let (shard, cell) = (shard_label.as_str(), cells[i].index);
                events.emit(&Event::CacheHit { shard, cell, key: &key, lookup_us: us });
                events.emit(&Event::CellFinish {
                    shard,
                    cell,
                    key: &key,
                    wall_us: us,
                    cached: true,
                });
            }
            if let Some(progress) = &tel.progress {
                progress.cell_done(true);
            }
        }
    }

    // One trace per (core-count, seed): generated up front for the
    // pending cells only, shared read-only by every worker. In
    // streaming mode no trace is ever materialized — each worker pulls
    // jobs straight from a per-cell generator, so the map stays empty
    // and peak memory is independent of `sim_seconds`.
    let mut traces: BTreeMap<(usize, u64), JobTrace> = BTreeMap::new();
    if !spec.streaming {
        for &i in &pending {
            let cell = &cells[i];
            let key = (cell.experiment.num_cores(), cell.trace_seed);
            traces.entry(key).or_insert_with(|| {
                // lint: allow(no-wall-clock): trace-generation telemetry only — never feeds results
                let t = Instant::now();
                let trace = generate_mix(&spec.benchmarks, key.0, spec.sim_seconds, key.1);
                if let Some(tel) = telemetry {
                    tel.registry.histogram_us("sweep.trace_gen_us").record(elapsed_us(t));
                }
                trace
            });
        }
    }

    // One factor share per distinct thermal-model fingerprint among the
    // pending cells: every cell whose model resolves identically adopts
    // the group's symbolic analysis and factors instead of recomputing
    // them. Cached cells never build a model, so they take no share.
    let shares: BTreeMap<String, FactorShare> =
        pending.iter().map(|&i| (model_fingerprint(spec, &cells[i]), FactorShare::new())).collect();
    let share_of = |i: usize| shares.get(&model_fingerprint(spec, &cells[i]));

    let mut costs: Vec<Option<CellCost>> = vec![None; cells.len()];
    if threads == 1 {
        for &i in &pending {
            let cell = &cells[i];
            let trace = traces.get(&(cell.experiment.num_cores(), cell.trace_seed));
            let outcome = run_cell_observed(
                spec,
                cell,
                trace,
                share_of(i),
                &keys[i].hex(),
                &shard_label,
                telemetry,
            );
            results[i] = Some(match outcome {
                Ok((result, cost)) => {
                    costs[i] = Some(cost);
                    Ok(result)
                }
                Err(cause) => Err(cause),
            });
        }
    } else {
        let next = AtomicUsize::new(0);
        type CellOutcome = (usize, Result<RunResult, String>, Option<CellCost>);
        let (tx, rx) = mpsc::channel::<CellOutcome>();
        let (next, pending_ref, cells_ref, traces_ref) = (&next, &pending, &cells, &traces);
        let (keys_ref, shard_ref) = (&keys, shard_label.as_str());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = pending_ref.get(slot) else { break };
                    let cell = &cells_ref[i];
                    let trace = traces_ref.get(&(cell.experiment.num_cores(), cell.trace_seed));
                    let outcome = run_cell_observed(
                        spec,
                        cell,
                        trace,
                        share_of(i),
                        &keys_ref[i].hex(),
                        shard_ref,
                        telemetry,
                    );
                    let (result, cost) = match outcome {
                        Ok((result, cost)) => (Ok(result), Some(cost)),
                        Err(cause) => (Err(cause), None),
                    };
                    if tx.send((i, result, cost)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, result, cost) in rx {
                results[i] = Some(result);
                costs[i] = cost;
            }
        });
    }
    if let Some(progress) = telemetry.and_then(|tel| tel.progress.as_ref()) {
        progress.finish();
    }

    // Run-level solver totals come from the shares, not by summing the
    // per-cell counters: a shared factor was *computed* once however
    // many cells used it, so these are the deduplicated work totals (and
    // they are scheduling-independent — compute-under-lock makes the
    // split between computed and adopted exact, not racy). A fully
    // cached run builds no models and reports no solver work.
    if let Some(tel) = telemetry {
        if !shares.is_empty() {
            let (mut analyses, mut factors, mut hits) = (0u64, 0u64, 0u64);
            for share in shares.values() {
                analyses += share.symbolic_analyses() as u64;
                factors += share.factorizations() as u64;
                hits += share.hits() as u64;
            }
            let reg = &tel.registry;
            reg.counter("sweep.thermal_models").add(shares.len() as u64);
            reg.counter("sweep.factor_share_hits").add(hits);
            reg.counter("thermal.symbolic_analyses").add(analyses);
            reg.counter("thermal.factor_numeric").add(factors);
        }
        // Heap accounting from the counting allocator, when the binary
        // installs one (benches, memory tests); inert zeros otherwise.
        // This is where throughput mode shows up: with `streaming` on,
        // the high-water mark stops scaling with `sim_seconds`.
        let reg = &tel.registry;
        reg.gauge("sweep.heap_live_bytes").set(therm3d_telemetry::alloc::live_bytes() as f64);
        reg.gauge("sweep.heap_high_water_bytes")
            .set(therm3d_telemetry::alloc::high_water_bytes() as f64);
    }

    // Write-back and assembly in canonical order. A failed cell makes
    // the run fail with the *first* failure (deterministic by matrix
    // order), but only after every successfully simulated cell has been
    // written back — one poisoned cell in a long campaign must not
    // discard hours of good work from the cache.
    let mut rows = Vec::with_capacity(cells.len());
    let mut first_failure: Option<SweepError> = None;
    // Positions in the (possibly shard-strided) work list, NOT canonical
    // cell indices — the two coincide only for the full matrix.
    let pending_set: std::collections::BTreeSet<usize> = pending.into_iter().collect();
    for (position, ((cell, key), slot)) in cells.into_iter().zip(keys).zip(results).enumerate() {
        let fresh = pending_set.contains(&position);
        let result = match slot {
            Some(Ok(result)) => result,
            Some(Err(cause)) => {
                if let Some(tel) = telemetry {
                    tel.registry.counter("sweep.cells_failed").inc();
                }
                first_failure
                    .get_or_insert(SweepError::CellFailed { cell: cell.describe(), cause });
                continue;
            }
            None => {
                if let Some(tel) = telemetry {
                    tel.registry.counter("sweep.cells_failed").inc();
                }
                first_failure.get_or_insert(SweepError::CellFailed {
                    cell: cell.describe(),
                    cause: "worker thread died before reporting a result".to_owned(),
                });
                continue;
            }
        };
        if fresh {
            if let Some(store) = cache.as_deref_mut() {
                let _span = Span::enter("cache.insert_us");
                store.insert(&key, &result)?;
            }
        }
        let timing = telemetry.map(|tel| {
            let metrics = cell_metrics(&cell, &key.hex(), costs[position], lookup_us.get(position));
            record_cell_metrics(&tel.registry, &metrics);
            metrics
        });
        rows.push(SweepRow { key: key.hex(), cell, result, timing });
    }
    match first_failure {
        Some(failure) => Err(failure),
        None => Ok(SweepReport { name: spec.name.clone(), shard: spec.shard, rows }),
    }
}

/// The per-cell cost record for one finished cell: simulated cells
/// carry their phase split and solver counters, cached cells their
/// lookup time.
fn cell_metrics(
    cell: &SweepCell,
    key_hex: &str,
    cost: Option<CellCost>,
    lookup_us: Option<&u64>,
) -> CellMetrics {
    let mut metrics =
        CellMetrics { index: cell.index as u64, key: key_hex.to_owned(), ..CellMetrics::default() };
    if let Some(cost) = cost {
        metrics.wall_us = cost.wall_us;
        metrics.phases.insert("setup".to_owned(), cost.setup_us);
        metrics.phases.insert("simulate".to_owned(), cost.simulate_us);
        metrics.counters.insert("factor_numeric".to_owned(), cost.factor_numeric);
        metrics.counters.insert("symbolic_analyses".to_owned(), cost.symbolic_analyses);
    } else {
        let us = lookup_us.copied().unwrap_or(0);
        metrics.cached = true;
        metrics.wall_us = us;
        metrics.phases.insert("cache_lookup".to_owned(), us);
    }
    metrics
}

/// Folds one cell's record into the run-local aggregates. The solver
/// counters stay per-cell only: the run-level `thermal.*` totals are
/// derived from the factor shares (deduplicated computed work), not by
/// summing the cells' "ensured" counts.
fn record_cell_metrics(registry: &therm3d_telemetry::Registry, metrics: &CellMetrics) {
    registry.histogram_us("cell.wall_us").record(metrics.wall_us);
    for (phase, us) in &metrics.phases {
        registry.histogram_us(&format!("cell.{phase}_us")).record(*us);
    }
    if !metrics.cached {
        registry.counter("sweep.cells_simulated").inc();
    }
    registry.record_cell(metrics.clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use therm3d_floorplan::Experiment;
    use therm3d_policies::PolicyKind;
    use therm3d_workload::Benchmark;

    fn tiny_spec(threads: usize) -> SweepSpec {
        SweepSpec::new("tiny")
            .with_experiments(&[Experiment::Exp1])
            .with_policies(&[PolicyKind::Default, PolicyKind::Adapt3d])
            .with_benchmarks(&[Benchmark::Gzip])
            .with_sim_seconds(4.0)
            .with_grid(4, 4)
            .with_threads(threads)
    }

    #[test]
    fn rows_come_back_in_matrix_order() {
        let report = run(&tiny_spec(2)).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].cell.policy, PolicyKind::Default);
        assert_eq!(report.rows[1].cell.policy, PolicyKind::Adapt3d);
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.cell.index, i);
            assert_eq!(row.result.experiment, Experiment::Exp1);
            assert_eq!(row.key.len(), 16, "cell_key is 16 hex digits: {}", row.key);
        }
    }

    #[test]
    fn sharded_runs_union_to_the_full_report() {
        use crate::shard::ShardSpec;
        let full = run(&tiny_spec(2).with_dpm(&[false, true])).unwrap();
        assert_eq!(full.rows.len(), 4);
        let mut union: Vec<SweepRow> = Vec::new();
        for k in 0..3 {
            let spec =
                tiny_spec(1).with_dpm(&[false, true]).with_shard(ShardSpec { index: k, count: 3 });
            let part = run(&spec).unwrap();
            assert_eq!(part.shard, spec.shard);
            assert!(part.rows.iter().all(|r| r.cell.index % 3 == k));
            union.extend(part.rows);
        }
        union.sort_by_key(|r| r.cell.index);
        // Same cells, same keys, same numbers — sharding only moves
        // work between processes.
        assert_eq!(union, full.rows);
        // An out-of-range shard is an invalid spec, not an empty report.
        let err = run(&tiny_spec(1).with_shard(ShardSpec { index: 3, count: 3 })).unwrap_err();
        assert!(matches!(err, SweepError::InvalidSpec(_)), "{err}");
    }

    #[test]
    fn streaming_report_is_byte_identical_to_materialized() {
        let materialized = run(&tiny_spec(2).with_dpm(&[false, true])).unwrap();
        let streamed = run(&tiny_spec(2).with_dpm(&[false, true]).with_streaming(true)).unwrap();
        assert_eq!(streamed.rows, materialized.rows);
        assert_eq!(streamed.csv(), materialized.csv());
        // Same cell keys too: streaming is an execution detail, so both
        // paths address one shared cache.
        let keys: Vec<_> = streamed.rows.iter().map(|r| &r.key).collect();
        let expect: Vec<_> = materialized.rows.iter().map(|r| &r.key).collect();
        assert_eq!(keys, expect);
        // And the one-off cell entry point honors the flag the same way.
        let spec = tiny_spec(1).with_streaming(true);
        let cells = expand_shard(&spec).into_iter().next().unwrap();
        let lone = run_cell(&spec, &cells);
        assert_eq!(lone, streamed.rows[0].result);
    }

    #[test]
    fn invalid_spec_is_reported() {
        let err = run(&tiny_spec(1).with_policies(&[])).unwrap_err();
        assert!(matches!(err, SweepError::InvalidSpec(_)), "{err}");
        assert!(err.to_string().contains("policies"), "{err}");
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(1, 0), 1);
    }

    #[test]
    fn panic_payloads_become_messages() {
        let caught = std::panic::catch_unwind(|| panic!("boom at t={:.1}", 3.0)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "simulation panicked: boom at t=3.0");
        let caught = std::panic::catch_unwind(|| panic!("plain")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "simulation panicked: plain");
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).unwrap_err();
        assert!(panic_message(caught.as_ref()).contains("non-string payload"));
    }
}
