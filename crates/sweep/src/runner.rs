//! Parallel execution of a sweep's run matrix.
//!
//! Traces are generated once per (core-count, seed) pair and shared
//! read-only across workers; each worker builds its own [`Simulator`]
//! per cell, so no simulation state crosses threads and the aggregated
//! results are bit-identical for any thread count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use therm3d::{RunResult, SimConfig, Simulator};
use therm3d_workload::{generate_mix, JobTrace};

use crate::matrix::{expand, SweepCell};
use crate::report::{SweepReport, SweepRow};
use crate::spec::SweepSpec;

/// The simulator configuration for one cell of `spec`.
#[must_use]
pub fn sim_config(spec: &SweepSpec, cell: &SweepCell) -> SimConfig {
    let mut cfg = SimConfig::paper_default(cell.experiment);
    cfg.thermal = cfg.thermal.with_grid(spec.grid.0, spec.grid.1);
    cfg
}

/// Runs a single cell in isolation, generating its trace on the fly.
///
/// The figure binaries use this for one-off cells; [`run`] amortizes
/// trace generation across the matrix instead.
#[must_use]
pub fn run_cell(spec: &SweepSpec, cell: &SweepCell) -> RunResult {
    let trace = generate_mix(
        &spec.benchmarks,
        cell.experiment.num_cores(),
        spec.sim_seconds,
        cell.trace_seed,
    );
    run_cell_with_trace(spec, cell, &trace)
}

fn run_cell_with_trace(spec: &SweepSpec, cell: &SweepCell, trace: &JobTrace) -> RunResult {
    let stack = cell.experiment.stack();
    let policy = cell.policy.build_with_dpm(&stack, cell.policy_seed, cell.dpm);
    let mut sim = Simulator::new(sim_config(spec, cell), policy);
    sim.run(trace, spec.sim_seconds)
}

/// Resolves the effective worker count for `jobs` cells.
#[must_use]
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let t = if requested == 0 { auto } else { requested };
    t.clamp(1, jobs.max(1))
}

/// Expands `spec` and executes every cell across worker threads,
/// returning rows in canonical matrix order.
///
/// # Errors
///
/// Returns the validation message for an invalid spec.
pub fn run(spec: &SweepSpec) -> Result<SweepReport, String> {
    spec.validate()?;
    let cells = expand(spec);
    let threads = effective_threads(spec.threads, cells.len());

    // One trace per (core-count, seed): generated up front, shared
    // read-only by every worker.
    let mut traces: BTreeMap<(usize, u64), JobTrace> = BTreeMap::new();
    for cell in &cells {
        let key = (cell.experiment.num_cores(), cell.trace_seed);
        traces
            .entry(key)
            .or_insert_with(|| generate_mix(&spec.benchmarks, key.0, spec.sim_seconds, key.1));
    }

    let mut results: Vec<Option<RunResult>> = vec![None; cells.len()];
    if threads == 1 {
        for (cell, slot) in cells.iter().zip(&mut results) {
            let trace = &traces[&(cell.experiment.num_cores(), cell.trace_seed)];
            *slot = Some(run_cell_with_trace(spec, cell, trace));
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, RunResult)>();
        let (next, cells_ref, traces_ref) = (&next, &cells, &traces);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells_ref.get(i) else { break };
                    let trace = &traces_ref[&(cell.experiment.num_cores(), cell.trace_seed)];
                    let result = run_cell_with_trace(spec, cell, trace);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, result) in rx {
                results[i] = Some(result);
            }
        });
    }

    let rows = cells
        .into_iter()
        .zip(results)
        .map(|(cell, result)| SweepRow {
            result: result.expect("every cell executed exactly once"),
            cell,
        })
        .collect();
    Ok(SweepReport { name: spec.name.clone(), rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use therm3d_floorplan::Experiment;
    use therm3d_policies::PolicyKind;
    use therm3d_workload::Benchmark;

    fn tiny_spec(threads: usize) -> SweepSpec {
        SweepSpec::new("tiny")
            .with_experiments(&[Experiment::Exp1])
            .with_policies(&[PolicyKind::Default, PolicyKind::Adapt3d])
            .with_benchmarks(&[Benchmark::Gzip])
            .with_sim_seconds(4.0)
            .with_grid(4, 4)
            .with_threads(threads)
    }

    #[test]
    fn rows_come_back_in_matrix_order() {
        let report = run(&tiny_spec(2)).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].cell.policy, PolicyKind::Default);
        assert_eq!(report.rows[1].cell.policy, PolicyKind::Adapt3d);
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.cell.index, i);
            assert_eq!(row.result.experiment, Experiment::Exp1);
        }
    }

    #[test]
    fn invalid_spec_is_reported() {
        let err = run(&tiny_spec(1).with_policies(&[])).unwrap_err();
        assert!(err.contains("policies"), "{err}");
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(1, 0), 1);
    }
}
