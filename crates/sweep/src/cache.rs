//! Persistent, content-addressed memoization of sweep results.
//!
//! Every [`SweepCell`] is a pure function of its fully-resolved
//! descriptor — experiment, policy, DPM setting, benchmark mix, trace
//! seed, derived policy seed, simulated duration and thermal grid — so
//! a `RunResult` computed once is valid forever *for the same engine
//! version*. This module derives a stable [`CellKey`] from that
//! descriptor and persists results in a [`CacheStore`]: an
//! append-friendly, line-oriented store under a cache directory.
//!
//! # Layout
//!
//! A cache directory holds one file, `results.tsv`, with one entry per
//! line:
//!
//! ```text
//! therm3d-cache-v1 <TAB> <key-hex> <TAB> <descriptor> <TAB> <result fields...> <TAB> <checksum>
//! ```
//!
//! Floats are written in Rust's shortest round-trip form, so a decoded
//! `RunResult` is bit-identical to the one simulated — reports built
//! from cache hits are byte-identical to cold runs. The trailing
//! checksum (FNV-64 of everything before it) rejects *any* partial or
//! bit-flipped line, including truncation inside the final numeric
//! field, which plain field counting would miss.
//!
//! # Key derivation and invalidation
//!
//! The key is a 64-bit FNV-1a hash of the canonical descriptor string,
//! which embeds [`ENGINE_VERSION`] as a salt. Invalidation rules:
//!
//! * changing any axis value, the benchmark mix, `sim_seconds` or the
//!   grid changes the descriptor, hence the key — a grown spec only
//!   misses on its new cells;
//! * bumping [`ENGINE_VERSION`] (required whenever simulator semantics
//!   change) changes every descriptor, so stale results are never
//!   served — old lines simply stop matching and are ignored;
//! * a corrupted or truncated line is counted in
//!   [`CacheStats::corrupt`] and treated as a miss (the cell re-runs
//!   and appends a fresh entry);
//! * on lookup the stored descriptor must match exactly, so even an
//!   (astronomically unlikely) hash collision cannot serve the wrong
//!   cell's numbers.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use therm3d::metrics::PerformanceStats;
use therm3d::RunResult;
use therm3d_floorplan::Experiment;

use crate::error::SweepError;
use crate::matrix::SweepCell;
use crate::spec::SweepSpec;

/// Cache-format + simulation-semantics version salt. Bump whenever the
/// simulator, trace generator or policy implementations change observed
/// numbers; every existing cache entry is invalidated by the bump.
/// (v2: the default thermal integrator switched from explicit RK4 to
/// the pre-factored implicit scheme, which perturbs every trajectory.
/// v3: the scenario axes — stack order, TSV/interlayer variant, sensor
/// profile — joined the cell descriptor, and noisy sensor seeds are now
/// derived from the per-cell trace seed; v2 entries miss cleanly.)
pub const ENGINE_VERSION: &str = "therm3d-sweep-cache/v3";

/// FNV-64 fingerprint of [`ENGINE_VERSION`] plus the source text of the
/// cell-descriptor serialization region below (the `lint:
/// region(fingerprint: cell-descriptor)` block in
/// [`cell_key_salted`]). `therm3d_lint`'s `cache-salt-drift` rule
/// recomputes it on every run: editing the descriptor without bumping
/// the salt — which would serve stale cache entries for new semantics —
/// makes the lint (and CI) fail until both constants are updated
/// together. The lint's error message prints the new value.
pub const DESCRIPTOR_FINGERPRINT: u64 = 0x8bc0_d389_2a7b_ab31;

/// File name of the result store inside a cache directory.
pub const STORE_FILE: &str = "results.tsv";

const LINE_TAG: &str = "therm3d-cache-v1";

/// The content-addressed identity of one sweep cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellKey {
    hash: u64,
    descriptor: String,
}

impl CellKey {
    /// The 16-hex-digit key (the report's `cell_key` column).
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}", self.hash)
    }

    /// The canonical descriptor the key hashes.
    #[must_use]
    pub fn descriptor(&self) -> &str {
        &self.descriptor
    }
}

/// 64-bit FNV-1a over `bytes` (stable across platforms and builds; the
/// std hasher is neither).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derives the content-addressed key for `cell` of `spec` under the
/// current [`ENGINE_VERSION`].
#[must_use]
pub fn cell_key(spec: &SweepSpec, cell: &SweepCell) -> CellKey {
    cell_key_salted(spec, cell, ENGINE_VERSION)
}

/// [`cell_key`] with an explicit engine-version salt. Exposed so tests
/// (and future migration tooling) can demonstrate that a version bump
/// invalidates every entry; production code uses [`cell_key`].
#[must_use]
pub fn cell_key_salted(spec: &SweepSpec, cell: &SweepCell, salt: &str) -> CellKey {
    let benchmarks: Vec<&str> = spec.benchmarks.iter().map(|b| b.name()).collect();
    // Everything the simulation depends on, fully resolved — including
    // the scenario (stack order, TSV variant, sensor profile; the
    // sensor noise seed is a pure function of the trace seed, so it is
    // implied). The spec name, thread count and cell index are
    // deliberately absent, so renaming or reordering a campaign still
    // reuses its cells.
    // lint: region(fingerprint: cell-descriptor)
    let descriptor = format!(
        "engine={salt};experiment={};stack_order={};tsv={};sensor={};integrator={};policy={};\
         dpm={};benchmarks={};trace_seed={};policy_seed={};sim_seconds={:?};grid={}x{}",
        cell.experiment,
        cell.stack_order,
        cell.tsv,
        cell.sensor,
        cell.integrator,
        cell.policy.label(),
        cell.dpm,
        benchmarks.join(","),
        cell.trace_seed,
        cell.policy_seed,
        spec.sim_seconds,
        spec.grid.0,
        spec.grid.1,
    );
    // lint: end-region
    CellKey { hash: fnv1a64(descriptor.as_bytes()), descriptor }
}

/// Hit/miss/write counters for one [`CacheStore`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that found no matching entry.
    pub misses: u64,
    /// Results appended this session.
    pub inserted: u64,
    /// Lines skipped while loading (corrupted/truncated/foreign).
    pub corrupt: u64,
}

/// A persistent store of `RunResult`s keyed by [`CellKey`].
#[derive(Debug)]
pub struct CacheStore {
    path: PathBuf,
    entries: BTreeMap<u64, (String, RunResult)>,
    stats: CacheStats,
    /// Append handle, opened once on first insert and reused (a cold
    /// 500-cell sweep should not open the file 500 times).
    appender: Option<std::fs::File>,
    /// A crashed writer can leave the file without a trailing newline;
    /// appending straight onto that partial line would corrupt the next
    /// entry too, so the first insert of this session starts fresh.
    needs_leading_newline: bool,
}

impl CacheStore {
    /// Opens (creating if needed) the store under `dir`, loading every
    /// intact entry of `dir/results.tsv`.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Cache`] when the directory cannot be
    /// created or the store file exists but cannot be read.
    pub fn open(dir: &Path) -> Result<Self, SweepError> {
        let io_err = |path: &Path, e: &std::io::Error| SweepError::Cache {
            path: path.display().to_string(),
            cause: e.to_string(),
        };
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let path = dir.join(STORE_FILE);
        let mut entries = BTreeMap::new();
        let mut stats = CacheStats::default();
        let mut needs_leading_newline = false;
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                needs_leading_newline = !text.is_empty() && !text.ends_with('\n');
                for line in text.lines() {
                    if line.is_empty() {
                        continue;
                    }
                    match decode_entry(line) {
                        // Later lines win: a re-inserted cell (e.g. after
                        // an interrupted write) shadows its older entry.
                        Some((hash, descriptor, result)) => {
                            entries.insert(hash, (descriptor, result));
                        }
                        None => stats.corrupt += 1,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&path, &e)),
        }
        Ok(Self { path, entries, stats, appender: None, needs_leading_newline })
    }

    /// Looks up `key`, counting a hit or miss. A stored entry only hits
    /// when its full descriptor matches (collision-proof).
    pub fn lookup(&mut self, key: &CellKey) -> Option<RunResult> {
        match self.entries.get(&key.hash) {
            Some((descriptor, result)) if *descriptor == key.descriptor => {
                self.stats.hits += 1;
                Some(result.clone())
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Appends `result` under `key` (durable immediately: the line goes
    /// out in one `write_all` before the call returns). The append
    /// handle is opened once and reused across inserts.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Cache`] when the store file cannot be
    /// opened or appended to.
    pub fn insert(&mut self, key: &CellKey, result: &RunResult) -> Result<(), SweepError> {
        let io_err = |path: &Path, e: &std::io::Error| SweepError::Cache {
            path: path.display().to_string(),
            cause: e.to_string(),
        };
        if self.appender.is_none() {
            self.appender = Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)
                    .map_err(|e| io_err(&self.path, &e))?,
            );
        }
        let lead = if std::mem::take(&mut self.needs_leading_newline) { "\n" } else { "" };
        let line = format!("{lead}{}\n", encode_entry(key, result));
        let file = self.appender.as_mut().expect("appender opened above");
        file.write_all(line.as_bytes()).map_err(|e| io_err(&self.path, &e))?;
        self.entries.insert(key.hash, (key.descriptor.clone(), result.clone()));
        self.stats.inserted += 1;
        Ok(())
    }

    /// Counters for this session (loading, lookups, inserts).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// One human-readable counters line, shared by every surface that
    /// reports cache activity (the CLI's `--cache-stats`, the figure
    /// binaries' stderr note) so the formats cannot drift.
    #[must_use]
    pub fn summary(&self) -> String {
        self.summary_for(crate::shard::ShardSpec::FULL)
    }

    /// [`summary`](Self::summary) tagged with the shard that produced
    /// the counters: `cache[1/3]: ...` for shard 1 of 3, plain
    /// `cache: ...` for the full matrix. Shard campaigns interleave the
    /// stderr of N processes into one log; the tag keeps every counters
    /// line attributable.
    #[must_use]
    pub fn summary_for(&self, shard: crate::shard::ShardSpec) -> String {
        let s = self.stats;
        let tag = if shard.is_full() { String::new() } else { format!("[{shard}]") };
        format!(
            "cache{tag}: {} hits, {} misses, {} inserted, {} corrupt ({})",
            s.hits,
            s.misses,
            s.inserted,
            s.corrupt,
            self.path.display()
        )
    }

    /// Unions `src`'s entries into this store (the shard-cache merge:
    /// each shard of a distributed campaign appends to its own store,
    /// and this recombines them). Entries whose (key, descriptor) are
    /// already present are skipped; the rest are appended through
    /// [`insert`](Self::insert), so the merged store is immediately
    /// durable and append-friendly like any other. Source stores are
    /// never modified. Entries are absorbed in key order, so merging
    /// the same shards always writes the same store, whatever the
    /// directory order of the caller.
    ///
    /// Duplicate keys *inside* one store (re-inserted cells) were
    /// already collapsed newest-wins by [`open`](Self::open); run
    /// [`compact`](Self::compact) afterwards to also drop the shadowed
    /// lines from disk.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Cache`] when this store cannot be
    /// appended to.
    pub fn merge_from(&mut self, src: &CacheStore) -> Result<MergeStats, SweepError> {
        let mut stats = MergeStats::default();
        // BTreeMap iterates in ascending key order, so the appended
        // lines are deterministic regardless of the source's history.
        for (&hash, (descriptor, result)) in &src.entries {
            if self.entries.get(&hash).is_some_and(|(d, _)| d == descriptor) {
                stats.skipped += 1;
                continue;
            }
            let key = CellKey { hash, descriptor: descriptor.clone() };
            self.insert(&key, result)?;
            stats.appended += 1;
        }
        Ok(stats)
    }

    /// Number of distinct entries currently loaded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The store file's path (`<dir>/results.tsv`).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rewrites `results.tsv` keeping only the newest entry per cell
    /// key and dropping lines salted with an engine version other than
    /// the current [`ENGINE_VERSION`] (stale entries can never hit
    /// again) as well as corrupted lines. The rewrite is atomic (temp
    /// file + rename) and the in-memory store is reloaded from the
    /// compacted file, so lookups after compaction serve exactly what
    /// survived.
    ///
    /// Long-lived caches grow one appended line per simulated cell
    /// forever — across engine bumps and re-runs most of those lines
    /// are dead weight this reclaims.
    ///
    /// **Do not compact while another process is appending to the same
    /// store.** The rename replaces the file under the writer's open
    /// append handle, so its subsequent inserts land in the orphaned
    /// old inode and are lost when it exits. Compact between
    /// campaigns (e.g. after merging distributed-sweep shards), never
    /// concurrently with one.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Cache`] when the store file cannot be
    /// read, the temp file cannot be written, or the rename fails.
    pub fn compact(&mut self) -> Result<CompactStats, SweepError> {
        let io_err = |path: &Path, e: &std::io::Error| SweepError::Cache {
            path: path.display().to_string(),
            cause: e.to_string(),
        };
        let text = match std::fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(io_err(&self.path, &e)),
        };

        let mut stats = CompactStats::default();
        let current_salt = format!("engine={ENGINE_VERSION};");
        // Newest-wins per key, preserving first-seen order so compaction
        // output is deterministic and diffs stay small.
        let mut order: Vec<u64> = Vec::new();
        let mut newest: BTreeMap<u64, (String, RunResult)> = BTreeMap::new();
        for line in text.lines().filter(|l| !l.is_empty()) {
            match decode_entry(line) {
                Some((hash, descriptor, result)) => {
                    if newest.insert(hash, (descriptor, result)).is_some() {
                        stats.dropped_shadowed += 1;
                    } else {
                        order.push(hash);
                    }
                }
                None => stats.dropped_corrupt += 1,
            }
        }

        let mut out = String::new();
        for &hash in &order {
            let (descriptor, result) = &newest[&hash];
            if !descriptor.starts_with(&current_salt) {
                stats.dropped_stale += 1;
                continue;
            }
            let key = CellKey { hash, descriptor: descriptor.clone() };
            out.push_str(&encode_entry(&key, result));
            out.push('\n');
            stats.kept += 1;
        }

        let tmp = self.path.with_extension("tsv.compact");
        std::fs::write(&tmp, &out).map_err(|e| io_err(&tmp, &e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, &e))?;

        // The old append handle points at the replaced inode; drop it so
        // the next insert reopens the compacted file, and reload the
        // entry map to exactly what survived.
        self.appender = None;
        self.needs_leading_newline = false;
        self.entries = newest
            .into_iter()
            .filter(|(_, (descriptor, _))| descriptor.starts_with(&current_salt))
            .collect();
        Ok(stats)
    }
}

/// What [`CacheStore::merge_from`] absorbed from one source store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Entries appended to the destination store.
    pub appended: u64,
    /// Entries skipped because an identical (key, descriptor) pair was
    /// already present.
    pub skipped: u64,
}

impl std::ops::AddAssign for MergeStats {
    fn add_assign(&mut self, rhs: Self) {
        self.appended += rhs.appended;
        self.skipped += rhs.skipped;
    }
}

impl std::fmt::Display for MergeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "appended {}, skipped {} already present", self.appended, self.skipped)
    }
}

/// What [`CacheStore::compact`] kept and dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactStats {
    /// Entries surviving compaction (newest per key, current salt).
    pub kept: u64,
    /// Older duplicates shadowed by a newer entry for the same key.
    pub dropped_shadowed: u64,
    /// Entries salted with a non-current engine version.
    pub dropped_stale: u64,
    /// Corrupted/truncated/foreign lines discarded.
    pub dropped_corrupt: u64,
}

impl std::fmt::Display for CompactStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kept {}, dropped {} shadowed, {} stale-salt, {} corrupt",
            self.kept, self.dropped_shadowed, self.dropped_stale, self.dropped_corrupt
        )
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Serializes one entry line. Floats use `{:?}` (shortest form that
/// parses back to the identical bits), so decode ∘ encode is identity.
/// The trailing field is an FNV-64 checksum of everything before it:
/// field counting alone cannot detect a line truncated *inside* its
/// final number, and serving such an entry would silently report a
/// wrong value.
fn encode_entry(key: &CellKey, r: &RunResult) -> String {
    let body = encode_body(key, r);
    format!("{body}\t{:016x}", fnv1a64(body.as_bytes()))
}

fn encode_body(key: &CellKey, r: &RunResult) -> String {
    format!(
        "{LINE_TAG}\t{}\t{}\t{}\t{}\t{:?}\t{:?}\t{:?}\t{:?}\t{:?}\t{:?}\t{:?}\t{}\t{:?}\t{:?}\t{:?}\t{:?}\t{:?}\t{}\t{}",
        key.hex(),
        escape(&key.descriptor),
        escape(&r.policy),
        r.experiment,
        r.duration_s,
        r.hotspot_pct,
        r.gradient_pct,
        r.cycle_pct,
        r.vertical_peak_c,
        r.vertical_mean_c,
        r.peak_temp_c,
        r.perf.completed,
        r.perf.mean_turnaround_s,
        r.perf.max_turnaround_s,
        r.perf.total_turnaround_s,
        r.energy_j,
        r.mean_power_w,
        r.migrations,
        r.unfinished,
    )
}

/// Parses one entry line; `None` for anything malformed, partial or
/// bit-flipped (the trailing checksum must match the body).
fn decode_entry(line: &str) -> Option<(u64, String, RunResult)> {
    let (body, checksum) = line.rsplit_once('\t')?;
    if u64::from_str_radix(checksum, 16) != Ok(fnv1a64(body.as_bytes())) {
        return None;
    }
    let fields: Vec<&str> = body.split('\t').collect();
    let [tag, key_hex, descriptor, policy, experiment, rest @ ..] = &fields[..] else {
        return None;
    };
    if *tag != LINE_TAG || rest.len() != 15 {
        return None;
    }
    let hash = u64::from_str_radix(key_hex, 16).ok()?;
    let descriptor = unescape(descriptor)?;
    if hash != fnv1a64(descriptor.as_bytes()) {
        return None; // truncated/edited line
    }
    let f = |i: usize| rest[i].parse::<f64>().ok();
    let result = RunResult {
        policy: unescape(policy)?,
        experiment: experiment.parse::<Experiment>().ok()?,
        duration_s: f(0)?,
        hotspot_pct: f(1)?,
        gradient_pct: f(2)?,
        cycle_pct: f(3)?,
        vertical_peak_c: f(4)?,
        vertical_mean_c: f(5)?,
        peak_temp_c: f(6)?,
        perf: PerformanceStats {
            completed: rest[7].parse().ok()?,
            mean_turnaround_s: f(8)?,
            max_turnaround_s: f(9)?,
            total_turnaround_s: f(10)?,
        },
        energy_j: f(11)?,
        mean_power_w: f(12)?,
        migrations: rest[13].parse().ok()?,
        unfinished: rest[14].parse().ok()?,
    };
    Some((hash, descriptor, result))
}

/// Serializes one `(key, result)` pair as a store line (no trailing
/// newline) — the exact bytes [`CacheStore`] appends to `results.tsv`,
/// ending in an FNV-64 checksum of the body. This is also the campaign
/// service's result transport: a `therm3d work` process encodes each
/// finished cell with this codec and the coordinator verifies and
/// stores the line, so network results inherit the cache's corruption
/// detection and byte-exactness for free.
#[must_use]
pub fn encode_line(key: &CellKey, result: &RunResult) -> String {
    encode_entry(key, result)
}

/// Parses a line produced by [`encode_line`], reconstructing the full
/// [`CellKey`] (hash and verified descriptor). `None` for anything
/// malformed, truncated or bit-flipped — same acceptance rules as the
/// store loader.
#[must_use]
pub fn decode_line(line: &str) -> Option<(CellKey, RunResult)> {
    let (hash, descriptor, result) = decode_entry(line)?;
    Some((CellKey { hash, descriptor }, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::expand;
    use therm3d_floorplan::Experiment;
    use therm3d_policies::PolicyKind;
    use therm3d_workload::Benchmark;

    fn spec() -> SweepSpec {
        SweepSpec::new("cache-unit")
            .with_experiments(&[Experiment::Exp1, Experiment::Exp2])
            .with_policies(&[PolicyKind::Default, PolicyKind::Adapt3d])
            .with_benchmarks(&[Benchmark::Gzip, Benchmark::WebMed])
            .with_sim_seconds(4.0)
            .with_grid(4, 4)
    }

    fn result(policy: &str) -> RunResult {
        RunResult {
            policy: policy.to_owned(),
            experiment: Experiment::Exp2,
            duration_s: 4.0 + f64::EPSILON,
            hotspot_pct: 0.1 + 0.2, // deliberately non-representable (0.30000000000000004)
            gradient_pct: 3.0,
            cycle_pct: 1e-17,
            vertical_peak_c: 4.5,
            vertical_mean_c: 2.25,
            peak_temp_c: 91.125,
            perf: PerformanceStats::from_turnarounds(&[0.5, 0.7, 1.9]),
            energy_j: 1234.5678901234567,
            mean_power_w: 51.3,
            migrations: 42,
            unfinished: 1,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("therm3d_cache_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_are_stable_and_axis_sensitive() {
        let spec = spec();
        let cells = expand(&spec);
        let a = cell_key(&spec, &cells[0]);
        assert_eq!(a, cell_key(&spec, &cells[0]), "same cell, same key");
        // Every cell of the matrix gets a distinct key.
        let mut seen = std::collections::BTreeSet::new();
        for c in &cells {
            assert!(seen.insert(cell_key(&spec, c).hex()), "duplicate key for {c:?}");
        }
        // Non-physical spec fields do not change the key…
        let mut renamed = spec.clone().with_threads(7);
        renamed.name = "other-name".into();
        assert_eq!(a, cell_key(&renamed, &cells[0]));
        // …but every physical knob does.
        for changed in [
            spec.clone().with_sim_seconds(5.0),
            spec.clone().with_grid(8, 8),
            spec.clone().with_benchmarks(&[Benchmark::Gzip]),
        ] {
            assert_ne!(a, cell_key(&changed, &cells[0]), "{changed:?}");
        }
    }

    #[test]
    fn version_salt_invalidates_keys() {
        let spec = spec();
        let cell = &expand(&spec)[0];
        assert_ne!(
            cell_key_salted(&spec, cell, ENGINE_VERSION),
            cell_key_salted(&spec, cell, "therm3d-sweep-cache/v0"),
        );
    }

    #[test]
    fn entry_round_trip_is_bit_exact() {
        let spec = spec();
        let key = cell_key(&spec, &expand(&spec)[0]);
        let r = result("Adapt3D&DVFS_TT+DPM");
        let (hash, descriptor, decoded) = decode_entry(&encode_entry(&key, &r)).unwrap();
        assert_eq!(hash, key.hash);
        assert_eq!(descriptor, key.descriptor);
        assert_eq!(decoded, r, "every f64 must survive exactly");
    }

    #[test]
    fn truncation_inside_the_final_number_is_rejected() {
        // Field counting alone would accept "…\t12" cut from "…\t1234";
        // the trailing checksum must catch it.
        let spec = spec();
        let key = cell_key(&spec, &expand(&spec)[0]);
        let mut r = result("Default");
        r.unfinished = 1234;
        let line = encode_entry(&key, &r);
        assert!(decode_entry(&line).is_some());
        // Rebuild a "crashed mid-append" line: drop the checksum field
        // and two digits of the last number, then re-count fields.
        let body = line.rsplit_once('\t').unwrap().0;
        let cut = &body[..body.len() - 2];
        assert!(decode_entry(cut).is_none(), "truncated body must not decode");
        // Even re-attaching a stale checksum fails (checksum of the
        // original body, body now shorter).
        let stale = format!("{cut}\t{}", line.rsplit_once('\t').unwrap().1);
        assert!(decode_entry(&stale).is_none());
    }

    #[test]
    fn summary_reports_all_counters_and_the_path() {
        let dir = tmp_dir("summary");
        let spec = spec();
        let key = cell_key(&spec, &expand(&spec)[0]);
        let mut store = CacheStore::open(&dir).unwrap();
        assert_eq!(store.lookup(&key), None);
        store.insert(&key, &result("Default")).unwrap();
        let _ = store.lookup(&key);
        let line = store.summary();
        assert!(line.starts_with("cache: 1 hits, 1 misses, 1 inserted, 0 corrupt"), "{line}");
        assert!(line.contains(STORE_FILE), "{line}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_is_tagged_with_a_non_full_shard() {
        use crate::shard::ShardSpec;
        let dir = tmp_dir("shard_summary");
        let store = CacheStore::open(&dir).unwrap();
        assert!(store.summary_for(ShardSpec::FULL).starts_with("cache: "), "full stays plain");
        let tagged = store.summary_for(ShardSpec { index: 1, count: 3 });
        assert!(tagged.starts_with("cache[1/3]: "), "{tagged}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_from_unions_shard_stores() {
        let spec = spec();
        let cells = expand(&spec);
        let dirs: Vec<PathBuf> = (0..3).map(|k| tmp_dir(&format!("merge_src{k}"))).collect();
        // Three "shard" stores with disjoint entries, one key shared by
        // two stores (a cell simulated twice, e.g. a retried shard).
        for (k, dir) in dirs.iter().enumerate() {
            let mut store = CacheStore::open(dir).unwrap();
            store.insert(&cell_key(&spec, &cells[k]), &result("Default")).unwrap();
            if k == 2 {
                store.insert(&cell_key(&spec, &cells[0]), &result("Default")).unwrap();
            }
        }
        let out_dir = tmp_dir("merge_out");
        let mut out = CacheStore::open(&out_dir).unwrap();
        let mut total = MergeStats::default();
        for dir in &dirs {
            total += out.merge_from(&CacheStore::open(dir).unwrap()).unwrap();
        }
        assert_eq!(total, MergeStats { appended: 3, skipped: 1 }, "{total}");
        assert_eq!(out.len(), 3);
        // The merged store is durable and serves every shard's cells
        // after a reopen; merging again is a no-op.
        let mut reopened = CacheStore::open(&out_dir).unwrap();
        for cell in &cells[..3] {
            assert!(reopened.lookup(&cell_key(&spec, cell)).is_some(), "{}", cell.describe());
        }
        let again = reopened.merge_from(&CacheStore::open(&dirs[0]).unwrap()).unwrap();
        assert_eq!(again, MergeStats { appended: 0, skipped: 1 });
        for dir in dirs.iter().chain([&out_dir]) {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn store_round_trip_and_stats() {
        let dir = tmp_dir("roundtrip");
        let spec = spec();
        let cells = expand(&spec);
        let key = cell_key(&spec, &cells[0]);
        let r = result("Default");
        {
            let mut store = CacheStore::open(&dir).unwrap();
            assert!(store.is_empty());
            assert_eq!(store.lookup(&key), None);
            store.insert(&key, &r).unwrap();
            assert_eq!(store.lookup(&key), Some(r.clone()));
            assert_eq!(store.stats(), CacheStats { hits: 1, misses: 1, inserted: 1, corrupt: 0 });
        }
        // Re-opened store serves the persisted entry.
        let mut store = CacheStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup(&key), Some(r));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_lines_are_skipped_not_served() {
        let dir = tmp_dir("corrupt");
        let spec = spec();
        let cells = expand(&spec);
        let (k0, k1) = (cell_key(&spec, &cells[0]), cell_key(&spec, &cells[1]));
        {
            let mut store = CacheStore::open(&dir).unwrap();
            store.insert(&k0, &result("Default")).unwrap();
            store.insert(&k1, &result("Adapt3D")).unwrap();
        }
        // Truncate the second entry mid-line (a crashed writer).
        let path = dir.join(STORE_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.lines().next().unwrap();
        let half = &text.lines().nth(1).unwrap()[..40];
        std::fs::write(&path, format!("{keep}\n{half}\n")).unwrap();

        let mut store = CacheStore::open(&dir).unwrap();
        assert_eq!(store.stats().corrupt, 1);
        assert!(store.lookup(&k0).is_some(), "intact entry still hits");
        assert!(store.lookup(&k1).is_none(), "truncated entry is a miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_version_bump_turns_hits_into_misses() {
        let dir = tmp_dir("version");
        let spec = spec();
        let cell = &expand(&spec)[0];
        let old = cell_key_salted(&spec, cell, "therm3d-sweep-cache/v0");
        let mut store = CacheStore::open(&dir).unwrap();
        store.insert(&old, &result("Default")).unwrap();
        // The same physical cell under the current version misses.
        assert_eq!(store.lookup(&cell_key(&spec, cell)), None);
        assert_eq!(store.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_keeps_newest_drops_stale_and_shadowed() {
        let dir = tmp_dir("compact");
        let spec = spec();
        let cells = expand(&spec);
        let (k0, k1) = (cell_key(&spec, &cells[0]), cell_key(&spec, &cells[1]));
        let stale = cell_key_salted(&spec, &cells[2], "therm3d-sweep-cache/v2");
        let mut store = CacheStore::open(&dir).unwrap();
        store.insert(&k0, &result("Old")).unwrap();
        store.insert(&k1, &result("Adapt3D")).unwrap();
        store.insert(&stale, &result("Stale")).unwrap();
        store.insert(&k0, &result("New")).unwrap(); // shadows the first line
                                                    // Plus one corrupted line a crashed writer left behind.
        drop(store);
        let path = dir.join(STORE_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("therm3d-cache-v1\tgarbage\n");
        std::fs::write(&path, text).unwrap();

        let mut store = CacheStore::open(&dir).unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(
            stats,
            CompactStats { kept: 2, dropped_shadowed: 1, dropped_stale: 1, dropped_corrupt: 1 },
            "{stats}"
        );
        // The file holds exactly the survivors, newest value wins, and
        // the store still serves them — before and after a reopen.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        assert_eq!(store.lookup(&k0).unwrap().policy, "New");
        assert!(store.lookup(&k1).is_some());
        assert_eq!(store.lookup(&cell_key(&spec, &cells[2])), None, "stale salt gone");
        // Inserts after compaction land in the new file, not the old inode.
        store.insert(&cell_key(&spec, &cells[3]), &result("Fresh")).unwrap();
        let mut reopened = CacheStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.stats().corrupt, 0, "compacted store is fully clean");
        assert_eq!(reopened.lookup(&k0).unwrap().policy, "New");
        // A second compaction is a no-op.
        let again = reopened.compact().unwrap();
        assert_eq!(again, CompactStats { kept: 3, ..CompactStats::default() });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_on_a_missing_store_is_empty_not_an_error() {
        let dir = tmp_dir("compact_empty");
        let mut store = CacheStore::open(&dir).unwrap();
        assert_eq!(store.compact().unwrap(), CompactStats::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_axes_are_in_the_descriptor_and_split_keys() {
        let spec = spec();
        let cells = expand(&spec);
        let base = cell_key(&spec, &cells[0]);
        for part in ["stack_order=cores-far", "tsv=paper", "sensor=ideal"] {
            assert!(base.descriptor().contains(part), "{}", base.descriptor());
        }
        // Each scenario dimension alone changes the key.
        let mut near = cells[0].clone();
        near.stack_order = therm3d_floorplan::StackOrder::CoresNearSink;
        let mut dense = cells[0].clone();
        dense.tsv = therm3d_thermal::TsvVariant::Dense1Pct;
        let mut noisy = cells[0].clone();
        noisy.sensor = therm3d::SensorProfile::Noisy1C;
        for twin in [&near, &dense, &noisy] {
            assert_ne!(base, cell_key(&spec, twin));
        }
    }

    #[test]
    fn escape_round_trips_awkward_strings() {
        for s in ["plain", "tab\there", "line\nbreak", "back\\slash", "cr\rlf", ""] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
        assert_eq!(unescape("bad\\x"), None);
        assert_eq!(unescape("trailing\\"), None);
    }
}
