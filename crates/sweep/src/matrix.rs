//! Deterministic expansion of a [`SweepSpec`] into a run matrix.
//!
//! The canonical cell order is row-major over the axes as listed in the
//! spec: seeds (outermost), then experiments, then the scenario axes
//! (stack orders, then TSV variants, then sensor profiles), then
//! integrators, then DPM, then policies (innermost). Every cell is a
//! *pure function* of the spec — its seeds are derived from the axis
//! values, never from scheduling order — so a sweep produces identical
//! results whatever the thread count.

use therm3d::SensorProfile;
use therm3d_floorplan::{Experiment, StackOrder};
use therm3d_policies::PolicyKind;
use therm3d_thermal::{Integrator, TsvVariant};

use crate::spec::SweepSpec;

/// One fully-determined run of the matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCell {
    /// Position in the canonical order (also the CSV `cell` column).
    pub index: usize,
    /// Position of this cell's trace seed on the seed axis.
    pub seed_index: usize,
    /// The 3D system.
    pub experiment: Experiment,
    /// Which die bonds to the spreader in the split configurations.
    pub stack_order: StackOrder,
    /// The TSV/interlayer variant the RC network is built from.
    pub tsv: TsvVariant,
    /// The sensor-fidelity profile the policy observes through.
    pub sensor: SensorProfile,
    /// The thermal transient integrator this cell simulates with.
    pub integrator: Integrator,
    /// The DTM policy.
    pub policy: PolicyKind,
    /// Whether the policy is wrapped in fixed-timeout DPM.
    pub dpm: bool,
    /// Trace-generator seed: the seed-axis value itself, shared by every
    /// policy in the same (experiment, seed) group so that all policies
    /// replay the same workload.
    pub trace_seed: u64,
    /// Policy (LFSR) seed, derived from the spec's base seed and the
    /// seed-axis position; seed-axis position 0 uses the base seed
    /// unchanged so single-seed sweeps match the paper figures exactly.
    pub policy_seed: u16,
}

impl SweepCell {
    /// A one-line human-readable descriptor, used by error reports to
    /// name the exact cell that failed.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "cell #{} ({}, {}, {}, tsv={}, sensor={}, {}, dpm={}, trace_seed={})",
            self.index,
            self.experiment,
            self.stack_order,
            self.integrator,
            self.tsv,
            self.sensor,
            self.policy.label(),
            self.dpm,
            self.trace_seed,
        )
    }

    /// The sensor noise seed this cell's noisy profiles draw from: a
    /// pure function of the trace seed (see [`derive_sensor_seed`]), so
    /// every policy in one (experiment, seed) group reads through the
    /// *same* imperfect sensor — policies stay comparable, and a cached
    /// noisy cell reproduces bit-identically.
    #[must_use]
    pub fn sensor_seed(&self) -> u64 {
        derive_sensor_seed(self.trace_seed)
    }
}

/// Derives the per-cell policy seed. Pure: depends only on the base
/// seed and the seed-axis position, not on scheduling.
#[must_use]
pub fn derive_policy_seed(base: u16, seed_index: usize) -> u16 {
    // Golden-ratio stride keeps replica streams well separated; the
    // LFSR remaps an accidental 0 internally.
    base ^ (seed_index as u16).wrapping_mul(0x9E37)
}

/// Derives the sensor noise seed from a cell's trace seed (splitmix64
/// finalizer over a domain-separated input, so sensor and trace streams
/// never correlate even though one seeds the other). Pure and
/// scheduling-independent, like every other per-cell seed.
#[must_use]
pub fn derive_sensor_seed(trace_seed: u64) -> u64 {
    let mut z = trace_seed ^ 0x5E45_0E5E_ED00_2009; // "sensor seed" domain tag
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands `spec` into its canonical run matrix.
///
/// # Examples
///
/// ```
/// use therm3d_sweep::{expand, SweepSpec};
///
/// let spec = SweepSpec::new("demo").with_dpm(&[false, true]);
/// let cells = expand(&spec);
/// assert_eq!(cells.len(), spec.cell_count());
/// assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
/// ```
#[must_use]
pub fn expand(spec: &SweepSpec) -> Vec<SweepCell> {
    expand_full(spec)
}

/// [`expand`] filtered down to the cells of the spec's shard
/// ([`SweepSpec::shard`]): round-robin over the canonical order, so the
/// shards of one spec are disjoint and their union (sorted by
/// `cell.index`, which merging restores) is exactly [`expand`]'s
/// output. Cells keep their canonical `index` and derived seeds —
/// sharding selects cells, it never re-derives them.
///
/// # Examples
///
/// ```
/// use therm3d_sweep::{expand, expand_shard, ShardSpec, SweepSpec};
///
/// let spec = SweepSpec::new("demo").with_dpm(&[false, true]);
/// let full = expand(&spec);
/// let mut union: Vec<_> = (0..3)
///     .flat_map(|k| expand_shard(&spec.clone().with_shard(ShardSpec { index: k, count: 3 })))
///     .collect();
/// union.sort_by_key(|c| c.index);
/// assert_eq!(union, full);
/// ```
#[must_use]
pub fn expand_shard(spec: &SweepSpec) -> Vec<SweepCell> {
    let mut cells = expand_full(spec);
    if !spec.shard.is_full() {
        cells.retain(|cell| spec.shard.owns(cell.index));
    }
    cells
}

fn expand_full(spec: &SweepSpec) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(spec.cell_count());
    for (seed_index, &trace_seed) in spec.seeds.iter().enumerate() {
        let policy_seed = derive_policy_seed(spec.policy_seed, seed_index);
        for &experiment in &spec.experiments {
            for &stack_order in &spec.stack_orders {
                for &tsv in &spec.tsv {
                    for &sensor in &spec.sensors {
                        for &integrator in &spec.integrators {
                            for &dpm in &spec.dpm {
                                for &policy in &spec.policies {
                                    cells.push(SweepCell {
                                        index: cells.len(),
                                        seed_index,
                                        experiment,
                                        stack_order,
                                        tsv,
                                        sensor,
                                        integrator,
                                        policy,
                                        dpm,
                                        trace_seed,
                                        policy_seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_the_full_cross_product() {
        let spec = SweepSpec::new("x")
            .with_experiments(&[Experiment::Exp1, Experiment::Exp3])
            .with_policies(&[PolicyKind::Default, PolicyKind::CGate, PolicyKind::Adapt3d])
            .with_dpm(&[false, true])
            .with_seeds(&[7, 8]);
        let cells = expand(&spec);
        assert_eq!(cells.len(), 2 * 3 * 2 * 2);
        // Innermost axis is the policy: the first three cells share
        // everything but the policy.
        assert_eq!(cells[0].policy, PolicyKind::Default);
        assert_eq!(cells[1].policy, PolicyKind::CGate);
        assert_eq!(cells[2].policy, PolicyKind::Adapt3d);
        assert!(cells[..3]
            .iter()
            .all(|c| { c.experiment == Experiment::Exp1 && !c.dpm && c.trace_seed == 7 }));
        // Outermost axis is the seed: the second half uses seed 8.
        assert!(cells[12..].iter().all(|c| c.trace_seed == 8));
    }

    #[test]
    fn integrator_axis_expands_between_experiments_and_dpm() {
        let spec = SweepSpec::new("x")
            .with_experiments(&[Experiment::Exp1])
            .with_integrators(&[Integrator::ImplicitCn, Integrator::ExplicitRk4])
            .with_policies(&[PolicyKind::Default, PolicyKind::Adapt3d])
            .with_dpm(&[false, true]);
        let cells = expand(&spec);
        assert_eq!(cells.len(), 2 * 2 * 2);
        // First half is the implicit default, second half RK4.
        assert!(cells[..4].iter().all(|c| c.integrator == Integrator::ImplicitCn));
        assert!(cells[4..].iter().all(|c| c.integrator == Integrator::ExplicitRk4));
        // The descriptor names the integrator, so failures are traceable.
        assert!(cells[4].describe().contains("explicit-rk4"), "{}", cells[4].describe());
    }

    #[test]
    fn shards_are_disjoint_balanced_and_union_to_the_matrix() {
        use crate::shard::ShardSpec;
        let spec = SweepSpec::new("x")
            .with_experiments(&[Experiment::Exp1, Experiment::Exp2])
            .with_policies(&[PolicyKind::Default, PolicyKind::CGate, PolicyKind::Adapt3d])
            .with_dpm(&[false, true]);
        let full = expand(&spec);
        for count in 1..=5 {
            let mut union = Vec::new();
            for k in 0..count {
                let shard = ShardSpec { index: k, count };
                let cells = expand_shard(&spec.clone().with_shard(shard));
                assert_eq!(cells.len(), shard.cell_count(full.len()), "{shard}");
                for c in &cells {
                    assert_eq!(c.index % count, k, "round-robin assignment");
                }
                union.extend(cells);
            }
            union.sort_by_key(|c| c.index);
            // Union equals the canonical expansion — indices, axis
            // values and derived seeds all included (SweepCell: Eq).
            assert_eq!(union, full, "count={count}");
        }
        // The full shard is the identity.
        assert_eq!(expand_shard(&spec), full);
    }

    #[test]
    fn indices_are_sequential() {
        let cells = expand(&SweepSpec::new("x").with_dpm(&[false, true]));
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn scenario_axes_expand_between_experiments_and_integrators() {
        let spec = SweepSpec::new("x")
            .with_experiments(&[Experiment::Exp1])
            .with_stack_orders(&StackOrder::ALL)
            .with_tsv(&[TsvVariant::Paper, TsvVariant::Dense1Pct])
            .with_sensors(&[SensorProfile::Ideal, SensorProfile::Noisy1C])
            .with_policies(&[PolicyKind::Default]);
        let cells = expand(&spec);
        assert_eq!(cells.len(), 2 * 2 * 2);
        // Sensor is the innermost of the scenario axes…
        assert_eq!(cells[0].sensor, SensorProfile::Ideal);
        assert_eq!(cells[1].sensor, SensorProfile::Noisy1C);
        // …then TSV…
        assert!(cells[..2].iter().all(|c| c.tsv == TsvVariant::Paper));
        assert!(cells[2..4].iter().all(|c| c.tsv == TsvVariant::Dense1Pct));
        // …then the stack order outermost of the three.
        assert!(cells[..4].iter().all(|c| c.stack_order == StackOrder::CoresFarFromSink));
        assert!(cells[4..].iter().all(|c| c.stack_order == StackOrder::CoresNearSink));
        // The descriptor names every scenario dimension.
        let d = cells[7].describe();
        assert!(
            d.contains("cores-near")
                && d.contains("tsv=dense-1pct")
                && d.contains("sensor=noisy-1c"),
            "{d}"
        );
    }

    #[test]
    fn sensor_seeds_are_derived_not_scheduled() {
        let spec = SweepSpec::new("x").with_seeds(&[5, 6]);
        let cells = expand(&spec);
        for c in &cells {
            assert_eq!(c.sensor_seed(), derive_sensor_seed(c.trace_seed));
        }
        // Distinct trace seeds give decorrelated sensor streams; the
        // derivation itself never collides with the trace seed.
        assert_ne!(derive_sensor_seed(5), derive_sensor_seed(6));
        assert_ne!(derive_sensor_seed(5), 5);
    }

    #[test]
    fn seed_zero_matches_base_policy_seed() {
        let spec = SweepSpec::new("x");
        for c in expand(&spec) {
            assert_eq!(c.policy_seed, spec.policy_seed);
        }
    }

    #[test]
    fn replica_seeds_differ_but_are_stable() {
        let spec = SweepSpec::new("x").with_seeds(&[1, 2, 3]);
        let a = expand(&spec);
        let b = expand(&spec);
        assert_eq!(a, b, "expansion must be deterministic");
        assert_ne!(derive_policy_seed(0xACE1, 0), derive_policy_seed(0xACE1, 1));
        // Growing an unrelated axis must not shift existing seeds.
        let grown = expand(&spec.clone().with_dpm(&[false, true]));
        let seeds_a: std::collections::BTreeSet<u16> = a.iter().map(|c| c.policy_seed).collect();
        let seeds_b: std::collections::BTreeSet<u16> =
            grown.iter().map(|c| c.policy_seed).collect();
        assert_eq!(seeds_a, seeds_b);
    }

    #[test]
    fn policies_share_traces_within_a_group() {
        let spec = SweepSpec::new("x").with_seeds(&[5, 6]);
        let cells = expand(&spec);
        for c in &cells {
            assert_eq!(c.trace_seed, spec.seeds[c.seed_index]);
        }
    }
}
