//! Voltage/frequency operating points and the paper's three-level DVFS
//! table.

use std::fmt;

/// One voltage/frequency operating point, expressed relative to the
/// default (highest) setting.
///
/// Dynamic power scales as `P ∝ f · V²` (the paper's Section IV-B), so a
/// level's dynamic-power multiplier is
/// [`dynamic_scale`](Self::dynamic_scale) = `f_rel · v_rel²`. Leakage
/// scales roughly linearly with supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfLevel {
    /// Frequency relative to the default setting, in `(0, 1]`.
    pub freq_scale: f64,
    /// Supply voltage relative to the default setting, in `(0, 1]`.
    pub volt_scale: f64,
}

impl VfLevel {
    /// Creates a level.
    ///
    /// # Panics
    ///
    /// Panics if either scale is outside `(0, 1]`.
    #[must_use]
    pub fn new(freq_scale: f64, volt_scale: f64) -> Self {
        assert!(
            freq_scale > 0.0 && freq_scale <= 1.0,
            "frequency scale must be in (0, 1], got {freq_scale}"
        );
        assert!(
            volt_scale > 0.0 && volt_scale <= 1.0,
            "voltage scale must be in (0, 1], got {volt_scale}"
        );
        Self { freq_scale, volt_scale }
    }

    /// Dynamic power multiplier `f · V²` relative to the default level.
    #[must_use]
    pub fn dynamic_scale(&self) -> f64 {
        self.freq_scale * self.volt_scale * self.volt_scale
    }

    /// Leakage power multiplier (≈ linear in supply voltage).
    #[must_use]
    pub fn leakage_scale(&self) -> f64 {
        self.volt_scale
    }
}

impl fmt::Display for VfLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f={:.0}% V={:.0}%", self.freq_scale * 100.0, self.volt_scale * 100.0)
    }
}

/// An ordered table of V/f levels, index 0 being the default (highest).
///
/// The paper assumes three built-in settings per core: default, 95 % and
/// 85 % of the default (Section III-A), independently settable per core.
///
/// # Examples
///
/// ```
/// use therm3d_power::VfTable;
///
/// let table = VfTable::paper_default();
/// assert_eq!(table.len(), 3);
/// assert_eq!(table.highest(), 0);
/// assert_eq!(table.lowest(), 2);
/// assert!(table.level(2).dynamic_scale() < table.level(0).dynamic_scale());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfTable {
    levels: Vec<VfLevel>,
}

impl VfTable {
    /// The paper's table: 100 %, 95 %, 85 % of the default V/f setting.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(vec![VfLevel::new(1.0, 1.0), VfLevel::new(0.95, 0.95), VfLevel::new(0.85, 0.85)])
    }

    /// Creates a table from levels ordered fastest first.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or not strictly decreasing in
    /// frequency.
    #[must_use]
    pub fn new(levels: Vec<VfLevel>) -> Self {
        assert!(!levels.is_empty(), "V/f table must have at least one level");
        for w in levels.windows(2) {
            assert!(w[1].freq_scale < w[0].freq_scale, "levels must be ordered fastest first");
        }
        Self { levels }
    }

    /// Number of levels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Always `false` (a table has at least one level); for API
    /// completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The level at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn level(&self, index: usize) -> VfLevel {
        self.levels[index]
    }

    /// All levels, fastest first.
    #[must_use]
    pub fn levels(&self) -> &[VfLevel] {
        &self.levels
    }

    /// Index of the fastest (default) level: always 0.
    #[must_use]
    pub fn highest(&self) -> usize {
        0
    }

    /// Index of the slowest level.
    #[must_use]
    pub fn lowest(&self) -> usize {
        self.levels.len() - 1
    }

    /// The next slower level index (saturating at the slowest).
    #[must_use]
    pub fn step_down(&self, index: usize) -> usize {
        (index + 1).min(self.lowest())
    }

    /// The next faster level index (saturating at the default).
    #[must_use]
    pub fn step_up(&self, index: usize) -> usize {
        index.saturating_sub(1)
    }

    /// The slowest level whose frequency still meets `required_throughput`
    /// (a fraction of the default frequency's throughput, in `[0, 1]`).
    ///
    /// Used by the utilization-driven DVFS policy: a core that was `u`
    /// busy at full speed can run at any level with `freq_scale ≥ u`
    /// without (to first order) stretching execution beyond the interval.
    #[must_use]
    pub fn slowest_meeting(&self, required_throughput: f64) -> usize {
        let req = required_throughput.clamp(0.0, 1.0);
        // Levels are sorted fastest first, so scan from the slow end.
        for idx in (0..self.levels.len()).rev() {
            if self.levels[idx].freq_scale + 1e-12 >= req {
                return idx;
            }
        }
        self.highest()
    }
}

impl Default for VfTable {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_scales() {
        let t = VfTable::paper_default();
        assert!((t.level(0).dynamic_scale() - 1.0).abs() < 1e-12);
        assert!((t.level(1).dynamic_scale() - 0.95f64.powi(3)).abs() < 1e-12);
        assert!((t.level(2).dynamic_scale() - 0.85f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn stepping_saturates() {
        let t = VfTable::paper_default();
        assert_eq!(t.step_down(0), 1);
        assert_eq!(t.step_down(2), 2);
        assert_eq!(t.step_up(2), 1);
        assert_eq!(t.step_up(0), 0);
    }

    #[test]
    fn slowest_meeting_throughput() {
        let t = VfTable::paper_default();
        assert_eq!(t.slowest_meeting(0.1), 2, "light load → slowest level");
        assert_eq!(t.slowest_meeting(0.9), 1, "90 % load fits the 95 % level");
        assert_eq!(t.slowest_meeting(0.97), 0, "heavy load → default level");
        assert_eq!(t.slowest_meeting(0.85), 2, "exactly at the 85 % boundary");
    }

    #[test]
    #[should_panic(expected = "fastest first")]
    fn unsorted_table_rejected() {
        let _ = VfTable::new(vec![VfLevel::new(0.9, 0.9), VfLevel::new(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_table_rejected() {
        let _ = VfTable::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "frequency scale")]
    fn bad_level_rejected() {
        let _ = VfLevel::new(1.5, 1.0);
    }

    #[test]
    fn leakage_scale_is_voltage() {
        let l = VfLevel::new(0.85, 0.85);
        assert!((l.leakage_scale() - 0.85).abs() < 1e-12);
    }
}
