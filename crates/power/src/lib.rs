//! Power, leakage, DVFS and DPM models for the `therm3d` reproduction of
//! "Dynamic Thermal Management in 3D Multicore Architectures"
//! (Coskun et al., DATE 2009).
//!
//! The crate converts scheduling state (per-core utilization, V/f level,
//! clock gating, sleep) plus the current temperature field into per-block
//! power for the thermal simulator, using the paper's Section IV-B
//! parameterization: 3 W active cores, 1.28 W L2 banks, `P ∝ f·V²` DVFS
//! scaling over three levels (100 %/95 %/85 %), activity-scaled crossbar
//! power, 0.02 W sleep state, and the second-order temperature-dependent
//! leakage model with a 0.5 W/mm² base density at 383 K.
//!
//! # Quick start
//!
//! ```
//! use therm3d_floorplan::Experiment;
//! use therm3d_power::{CorePowerInput, PowerModel, PowerParams, VfTable};
//!
//! let stack = Experiment::Exp1.stack();
//! let model = PowerModel::new(&stack, PowerParams::paper_default(), VfTable::paper_default());
//! let cores = vec![CorePowerInput::busy(); stack.num_cores()];
//! let temps = vec![70.0; stack.num_blocks()];
//! let watts = model.block_powers(&cores, &temps);
//! println!("total chip power: {:.1} W", watts.iter().sum::<f64>());
//! ```

pub mod leakage;
pub mod model;
pub mod vf;

pub use leakage::LeakageModel;
pub use model::{CorePowerInput, PowerModel, PowerParams};
pub use vf::{VfLevel, VfTable};
