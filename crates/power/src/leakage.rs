//! Temperature- and voltage-dependent leakage power.
//!
//! The paper quotes a base leakage power density of 0.5 W/mm² at 383 K
//! (Section IV-B, after Bose) and captures the temperature and voltage
//! dependence with the second-order polynomial model of Su et al.
//! (ISLPED'03), with coefficients fit to the normalized leakage values of
//! that work. This module implements exactly that:
//!
//! ```text
//! P_leak(T, V) = ρ_base · A · n(T) · v_rel
//! n(T) = 1 + a₁·(T − T_ref) + a₂·(T − T_ref)²    (normalized, n(T_ref)=1)
//! ```
//!
//! The temperature↔leakage feedback loop the paper warns about emerges
//! when this model is evaluated against the thermal simulator's current
//! block temperatures each sampling interval.

/// Parameters of the second-order normalized leakage model.
///
/// **Calibration note (DESIGN.md §4):** applying the quoted 0.5 W/mm²
/// to the full 10 mm² core area makes leakage alone 4 W/core at 383 K —
/// leakage would dwarf the 3 W active power the same section quotes, and
/// four-layer stacks would sit 60 °C above any regime where the paper's
/// relative results could hold. We use 0.1 W/mm² (leaking transistor
/// area is a fraction of the block footprint), which yields ≈ 0.8 W of
/// leakage per core at 85 °C — consistent with the paper's "3 W average
/// power including leakage". The quoted 0.5 W/mm² remains available via
/// the public field.
///
/// # Examples
///
/// ```
/// use therm3d_power::LeakageModel;
///
/// let leak = LeakageModel::paper_default();
/// // At the 383 K reference point a 10 mm² core leaks 1 W.
/// let p = leak.power_w(10.0, 109.85, 1.0);
/// assert!((p - 1.0).abs() < 1e-9);
/// // Cooler silicon leaks less.
/// assert!(leak.power_w(10.0, 45.0, 1.0) < p);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageModel {
    /// Base leakage power density at the reference temperature, W/mm².
    pub base_density_w_per_mm2: f64,
    /// Reference temperature in kelvin (383 K in the paper).
    pub reference_k: f64,
    /// Linear coefficient of the normalized polynomial, 1/K.
    pub a1: f64,
    /// Quadratic coefficient of the normalized polynomial, 1/K².
    pub a2: f64,
    /// Floor for the normalized factor, keeping the model physical far
    /// below the fitted range.
    pub min_factor: f64,
}

impl LeakageModel {
    /// The calibrated parameterization: 0.1 W/mm² at 383 K (see the type
    /// docs) with coefficients fit to the normalized curve of Su et al.
    /// (leakage roughly halves from 383 K down to 318 K).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            base_density_w_per_mm2: 0.1,
            reference_k: 383.0,
            a1: 8.5e-3,
            a2: 2.2e-5,
            min_factor: 0.05,
        }
    }

    /// A leakage-free model (for ablations isolating dynamic power).
    #[must_use]
    pub fn disabled() -> Self {
        Self { base_density_w_per_mm2: 0.0, reference_k: 383.0, a1: 0.0, a2: 0.0, min_factor: 0.0 }
    }

    /// The normalized temperature factor `n(T)` at `temp_c` °C.
    ///
    /// `n(reference) = 1`; clamped below at `min_factor`.
    #[must_use]
    pub fn normalized(&self, temp_c: f64) -> f64 {
        let dt = (temp_c + 273.15) - self.reference_k;
        (1.0 + self.a1 * dt + self.a2 * dt * dt).max(self.min_factor)
    }

    /// Leakage power in W for a block of `area_mm2` at `temp_c` °C with
    /// supply-voltage scale `volt_scale`.
    ///
    /// # Panics
    ///
    /// Panics if `area_mm2` is negative or `volt_scale` outside `[0, 1]`.
    #[must_use]
    pub fn power_w(&self, area_mm2: f64, temp_c: f64, volt_scale: f64) -> f64 {
        assert!(area_mm2 >= 0.0, "area must be non-negative");
        assert!(
            (0.0..=1.0).contains(&volt_scale),
            "voltage scale must be in [0, 1], got {volt_scale}"
        );
        self.base_density_w_per_mm2 * area_mm2 * self.normalized(temp_c) * volt_scale
    }

    /// Small-signal gain `dP/dT` (W/K) at the given operating point — used
    /// to check that the leakage↔temperature loop stays stable for a given
    /// thermal resistance.
    #[must_use]
    pub fn gain_w_per_k(&self, area_mm2: f64, temp_c: f64, volt_scale: f64) -> f64 {
        let dt = (temp_c + 273.15) - self.reference_k;
        if self.normalized(temp_c) <= self.min_factor {
            return 0.0;
        }
        self.base_density_w_per_mm2 * area_mm2 * volt_scale * (self.a1 + 2.0 * self.a2 * dt)
    }
}

impl Default for LeakageModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_normalizes_to_one() {
        let l = LeakageModel::paper_default();
        assert!((l.normalized(109.85) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monotonically_increasing_in_temperature() {
        let l = LeakageModel::paper_default();
        let mut prev = 0.0;
        for t in (30..=120).step_by(5) {
            let n = l.normalized(t as f64);
            assert!(n > prev, "normalized leakage must increase with T");
            prev = n;
        }
    }

    #[test]
    fn ambient_leakage_roughly_half_of_reference() {
        // Su et al.'s curve has leakage dropping by ~2x from 383 K to
        // ~318 K; the fit should land in that neighbourhood.
        let l = LeakageModel::paper_default();
        let n = l.normalized(45.0);
        assert!(n > 0.3 && n < 0.7, "normalized leakage at 45 °C = {n}");
    }

    #[test]
    fn voltage_scales_linearly() {
        let l = LeakageModel::paper_default();
        let hi = l.power_w(10.0, 85.0, 1.0);
        let lo = l.power_w(10.0, 85.0, 0.85);
        assert!((lo / hi - 0.85).abs() < 1e-12);
    }

    #[test]
    fn disabled_model_is_zero() {
        let l = LeakageModel::disabled();
        assert_eq!(l.power_w(10.0, 110.0, 1.0), 0.0);
    }

    #[test]
    fn floor_prevents_negative_leakage() {
        let l = LeakageModel::paper_default();
        assert!(l.normalized(-150.0) >= l.min_factor);
        assert!(l.power_w(10.0, -150.0, 1.0) >= 0.0);
    }

    #[test]
    fn loop_gain_stable_for_paper_geometry() {
        // A 10 mm² core sees at most a few K/W to ambient; the
        // leakage-temperature loop gain must stay well below 1 for the
        // coupled simulation to converge.
        let l = LeakageModel::paper_default();
        let gain = l.gain_w_per_k(10.0, 85.0, 1.0);
        let r_thermal = 4.0; // conservative K/W for a core in this package
        assert!(gain * r_thermal < 0.5, "loop gain {}", gain * r_thermal);
    }

    #[test]
    #[should_panic(expected = "voltage scale")]
    fn bad_voltage_rejected() {
        let _ = LeakageModel::paper_default().power_w(1.0, 50.0, 1.5);
    }
}
