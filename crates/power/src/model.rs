//! The per-block power model: dynamic + leakage power for every block in
//! a 3D stack given the cores' scheduling state and current temperatures.

use therm3d_floorplan::{Stack3d, UnitKind};

use crate::leakage::LeakageModel;
use crate::vf::VfTable;

/// Static power parameters (Section IV-B of the paper).
///
/// # Examples
///
/// ```
/// use therm3d_power::PowerParams;
///
/// let p = PowerParams::paper_default();
/// assert_eq!(p.core_active_w, 3.0);
/// assert_eq!(p.l2_w, 1.28);
/// assert_eq!(p.core_sleep_w, 0.02);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerParams {
    /// Dynamic power of a fully utilized core at the default V/f, W
    /// (paper: 3 W, from the UltraSPARC T1 measurements).
    pub core_active_w: f64,
    /// Dynamic power of an idle (clocked but unloaded) core, W.
    /// The paper does not quote this number; 15 % of active power is a
    /// typical clock-tree floor and is documented as our assumption in
    /// DESIGN.md.
    pub core_idle_w: f64,
    /// Power in the sleep state, W (paper: 0.02 W).
    pub core_sleep_w: f64,
    /// Per-L2-bank power, W (paper: 1.28 W from CACTI).
    pub l2_w: f64,
    /// Crossbar power with all cores active and memory-heavy traffic, W
    /// (scaled by active-core count and memory intensity per Section
    /// IV-B; the T1 crossbar accounts for a few percent of chip power).
    pub crossbar_max_w: f64,
    /// Constant power of each `Other` block, W. The non-core, non-L2
    /// logic of a Niagara-1 (FPU, memory controllers, I/O, buffers) burns
    /// a substantial share of the 63 W chip budget; 3 W per `other`
    /// template block lands the simulated chip in that neighbourhood.
    pub other_w: f64,
    /// Leakage model applied to core blocks.
    pub leakage: LeakageModel,
}

impl PowerParams {
    /// The paper's parameterization.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            core_active_w: 3.0,
            core_idle_w: 0.45,
            core_sleep_w: 0.02,
            l2_w: 1.28,
            crossbar_max_w: 2.0,
            other_w: 3.0,
            leakage: LeakageModel::paper_default(),
        }
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-core scheduling state consumed by the power model each sampling
/// interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePowerInput {
    /// Fraction of the interval the core executed instructions, `[0, 1]`.
    pub utilization: f64,
    /// Index into the [`VfTable`] (0 = default/fastest).
    pub vf_index: usize,
    /// Clock gated: dynamic power suppressed, leakage remains.
    pub gated: bool,
    /// Sleep state (DPM): everything off except `core_sleep_w`.
    pub asleep: bool,
    /// Memory intensity of the running workload in `[0, 1]` (drives the
    /// crossbar's traffic-dependent component).
    pub memory_intensity: f64,
}

impl CorePowerInput {
    /// An idle, full-speed, awake core.
    #[must_use]
    pub fn idle() -> Self {
        Self { utilization: 0.0, vf_index: 0, gated: false, asleep: false, memory_intensity: 0.0 }
    }

    /// A fully busy core at the default V/f.
    #[must_use]
    pub fn busy() -> Self {
        Self { utilization: 1.0, vf_index: 0, gated: false, asleep: false, memory_intensity: 0.5 }
    }
}

impl Default for CorePowerInput {
    fn default() -> Self {
        Self::idle()
    }
}

/// Computes per-block power for a stack from core states and block
/// temperatures.
///
/// # Examples
///
/// ```
/// use therm3d_floorplan::Experiment;
/// use therm3d_power::{CorePowerInput, PowerModel, PowerParams, VfTable};
///
/// let stack = Experiment::Exp1.stack();
/// let model = PowerModel::new(&stack, PowerParams::paper_default(), VfTable::paper_default());
/// let cores = vec![CorePowerInput::busy(); stack.num_cores()];
/// let temps = vec![60.0; stack.num_blocks()];
/// let powers = model.block_powers(&cores, &temps);
/// assert_eq!(powers.len(), stack.num_blocks());
/// assert!(powers.iter().sum::<f64>() > 24.0, "8 busy cores dissipate well over 3 W each");
/// ```
#[derive(Debug, Clone)]
pub struct PowerModel {
    params: PowerParams,
    vf: VfTable,
    /// For each global block site: kind, area, and (for cores) the core
    /// index.
    sites: Vec<SiteInfo>,
    num_cores: usize,
}

#[derive(Debug, Clone, Copy)]
struct SiteInfo {
    kind: UnitKind,
    area_mm2: f64,
    core_index: Option<usize>,
}

impl PowerModel {
    /// Builds the model for `stack`.
    #[must_use]
    pub fn new(stack: &Stack3d, params: PowerParams, vf: VfTable) -> Self {
        let mut core_counter = 0usize;
        let sites = stack
            .sites()
            .iter()
            .map(|s| {
                let core_index = if s.kind == UnitKind::Core {
                    let i = core_counter;
                    core_counter += 1;
                    Some(i)
                } else {
                    None
                };
                SiteInfo { kind: s.kind, area_mm2: s.area_mm2, core_index }
            })
            .collect();
        Self { params, vf, sites, num_cores: core_counter }
    }

    /// The V/f table in use.
    #[must_use]
    pub fn vf_table(&self) -> &VfTable {
        &self.vf
    }

    /// The static parameters in use.
    #[must_use]
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Number of cores the model expects input for.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Number of blocks the model produces power for.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.sites.len()
    }

    /// Computes the power of every block (W), indexed like
    /// [`Stack3d::sites`].
    ///
    /// `temps_c` are the current block temperatures (for the leakage
    /// feedback); pass the previous interval's thermal solution.
    ///
    /// # Panics
    ///
    /// Panics if `cores.len() != num_cores()`,
    /// `temps_c.len() != num_blocks()`, a utilization or memory intensity
    /// is outside `[0, 1]`, or a `vf_index` is out of table range.
    #[must_use]
    pub fn block_powers(&self, cores: &[CorePowerInput], temps_c: &[f64]) -> Vec<f64> {
        assert_eq!(cores.len(), self.num_cores, "expected one input per core");
        assert_eq!(temps_c.len(), self.sites.len(), "expected one temperature per block");

        // Crossbar load: fraction of cores active, weighted by their
        // memory intensity (Section IV-B: "scaling the average power value
        // according to the number of active cores and the memory access
        // statistics").
        let mut active_frac = 0.0;
        let mut mem_frac = 0.0;
        for c in cores {
            assert!(
                (0.0..=1.0).contains(&c.utilization),
                "utilization {} out of [0,1]",
                c.utilization
            );
            assert!(
                (0.0..=1.0).contains(&c.memory_intensity),
                "memory intensity {} out of [0,1]",
                c.memory_intensity
            );
            assert!(c.vf_index < self.vf.len(), "vf index {} out of range", c.vf_index);
            if !c.asleep && !c.gated {
                active_frac += c.utilization;
                mem_frac += c.utilization * c.memory_intensity;
            }
        }
        active_frac /= self.num_cores as f64;
        mem_frac /= self.num_cores as f64;
        let crossbar_w =
            self.params.crossbar_max_w * (0.5 * active_frac + 0.5 * mem_frac).clamp(0.0, 1.0);

        self.sites
            .iter()
            .enumerate()
            .map(|(site, info)| match info.kind {
                UnitKind::Core => {
                    let c = &cores[info.core_index.expect("core site has core index")];
                    self.core_power(c, temps_c[site], info.area_mm2)
                }
                UnitKind::L2Cache => self.params.l2_w,
                UnitKind::Crossbar => crossbar_w,
                UnitKind::Other => self.params.other_w,
            })
            .collect()
    }

    /// Power of a single core given its state and temperature (W).
    #[must_use]
    pub fn core_power(&self, c: &CorePowerInput, temp_c: f64, area_mm2: f64) -> f64 {
        if c.asleep {
            return self.params.core_sleep_w;
        }
        let level = self.vf.level(c.vf_index);
        let dynamic = if c.gated {
            0.0
        } else {
            (c.utilization * self.params.core_active_w
                + (1.0 - c.utilization) * self.params.core_idle_w)
                * level.dynamic_scale()
        };
        let leakage = self.params.leakage.power_w(area_mm2, temp_c, level.leakage_scale());
        dynamic + leakage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use therm3d_floorplan::Experiment;

    fn model(exp: Experiment) -> (Stack3d, PowerModel) {
        let stack = exp.stack();
        let m = PowerModel::new(&stack, PowerParams::paper_default(), VfTable::paper_default());
        (stack, m)
    }

    #[test]
    fn busy_core_power_exceeds_idle() {
        let (stack, m) = model(Experiment::Exp1);
        let temps = vec![60.0; stack.num_blocks()];
        let busy = m.block_powers(&vec![CorePowerInput::busy(); 8], &temps);
        let idle = m.block_powers(&vec![CorePowerInput::idle(); 8], &temps);
        for c in stack.core_ids() {
            let i = stack.core_block_index(c);
            assert!(busy[i] > idle[i] + 2.0, "busy {} vs idle {}", busy[i], idle[i]);
        }
    }

    #[test]
    fn sleep_power_is_paper_value() {
        let (stack, m) = model(Experiment::Exp1);
        let temps = vec![90.0; stack.num_blocks()];
        let mut c = CorePowerInput::busy();
        c.asleep = true;
        let p = m.block_powers(&vec![c; 8], &temps);
        for core in stack.core_ids() {
            assert!((p[stack.core_block_index(core)] - 0.02).abs() < 1e-12);
        }
    }

    #[test]
    fn gating_kills_dynamic_but_not_leakage() {
        let (stack, m) = model(Experiment::Exp1);
        let temps = vec![85.0; stack.num_blocks()];
        let mut gated = CorePowerInput::busy();
        gated.gated = true;
        let pg = m.block_powers(&vec![gated; 8], &temps);
        let site = stack.core_block_index(therm3d_floorplan::CoreId(0));
        let leak_only = m.params().leakage.power_w(10.0, 85.0, 1.0);
        assert!((pg[site] - leak_only).abs() < 1e-9);
        assert!(pg[site] > 0.5, "leakage at 85 °C is substantial");
    }

    #[test]
    fn dvfs_reduces_power() {
        let (stack, m) = model(Experiment::Exp2);
        let temps = vec![70.0; stack.num_blocks()];
        let mut slow = CorePowerInput::busy();
        slow.vf_index = 2;
        let p_fast = m.block_powers(&vec![CorePowerInput::busy(); 8], &temps);
        let p_slow = m.block_powers(&vec![slow; 8], &temps);
        for c in stack.core_ids() {
            let i = stack.core_block_index(c);
            assert!(p_slow[i] < p_fast[i]);
        }
    }

    #[test]
    fn leakage_feedback_raises_power_with_temperature() {
        let (stack, m) = model(Experiment::Exp1);
        let cool = vec![50.0; stack.num_blocks()];
        let hot = vec![95.0; stack.num_blocks()];
        let inputs = vec![CorePowerInput::busy(); 8];
        let pc = m.block_powers(&inputs, &cool);
        let ph = m.block_powers(&inputs, &hot);
        let total_cool: f64 = pc.iter().sum();
        let total_hot: f64 = ph.iter().sum();
        assert!(total_hot > total_cool + 1.0, "{total_hot} vs {total_cool}");
    }

    #[test]
    fn crossbar_scales_with_activity() {
        let (stack, m) = model(Experiment::Exp1);
        let temps = vec![60.0; stack.num_blocks()];
        let xbar_site = stack
            .sites()
            .iter()
            .position(|s| s.kind == UnitKind::Crossbar)
            .expect("EXP-1 has a crossbar");
        let busy = m.block_powers(&vec![CorePowerInput::busy(); 8], &temps);
        let idle = m.block_powers(&vec![CorePowerInput::idle(); 8], &temps);
        assert!(busy[xbar_site] > idle[xbar_site]);
        assert!(idle[xbar_site] >= 0.0);
        assert!(busy[xbar_site] <= m.params().crossbar_max_w + 1e-12);
    }

    #[test]
    fn l2_power_constant() {
        let (stack, m) = model(Experiment::Exp1);
        let temps = vec![60.0; stack.num_blocks()];
        let p = m.block_powers(&vec![CorePowerInput::busy(); 8], &temps);
        for (site, info) in stack.sites().iter().enumerate() {
            if info.kind == UnitKind::L2Cache {
                assert!((p[site] - 1.28).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn total_chip_power_in_plausible_range() {
        // Fully loaded EXP-1 should land in the neighbourhood of a real
        // Niagara-1 (63 W typical, 72 W max) once leakage is included.
        let (stack, m) = model(Experiment::Exp1);
        let temps = vec![80.0; stack.num_blocks()];
        let p = m.block_powers(&vec![CorePowerInput::busy(); 8], &temps);
        let total: f64 = p.iter().sum();
        assert!(total > 30.0 && total < 90.0, "total {total} W");
    }

    #[test]
    #[should_panic(expected = "one input per core")]
    fn wrong_core_count_rejected() {
        let (stack, m) = model(Experiment::Exp1);
        let temps = vec![60.0; stack.num_blocks()];
        let _ = m.block_powers(&[CorePowerInput::busy(); 4], &temps);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_rejected() {
        let (stack, m) = model(Experiment::Exp1);
        let temps = vec![60.0; stack.num_blocks()];
        let mut c = CorePowerInput::busy();
        c.utilization = 1.5;
        let _ = m.block_powers(&vec![c; 8], &temps);
    }
}
