//! Pure campaign bookkeeping: which cells are leased, done, or waiting.
//!
//! [`Campaign`] is the coordinator's single source of truth and is
//! deliberately free of I/O and clocks — every mutating call takes the
//! current time as a `now_ms` argument, so lease expiry is unit-testable
//! with a mock clock and the server owns the one (lint-allowed) mapping
//! from `Instant` to milliseconds.
//!
//! The determinism contract makes the bookkeeping forgiving: every cell
//! is a pure function of the spec, so a range that gets computed twice
//! (a lease expired, was re-issued, and the original worker's results
//! arrived late anyway) produces byte-identical lines and first-write
//! dedup is always safe.

use std::collections::{BTreeMap, VecDeque};

/// Default cells-per-lease for a campaign of `total` cells: coarse
/// enough to amortize a round trip, fine enough that ~8 leases are in
/// flight and a dead worker forfeits little work.
#[must_use]
pub fn default_lease_cells(total: usize) -> usize {
    (total / 8).clamp(1, 64)
}

/// One outstanding lease: a contiguous range of canonical cell indices
/// granted to a worker until a deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Coordinator-assigned id, echoed by the worker in results and
    /// heartbeats.
    pub id: u64,
    /// First canonical cell index of the range.
    pub start: usize,
    /// Number of cells in the range.
    pub len: usize,
    /// The worker holding the lease (connection-scoped name).
    pub worker: String,
    /// Absolute deadline in campaign milliseconds; results or
    /// heartbeats push it forward, passing it re-queues the range.
    pub deadline_ms: u64,
}

/// Outcome of a lease request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grant {
    /// A range to compute: cells `start .. start + len`.
    Range {
        /// The new lease's id.
        lease_id: u64,
        /// First canonical cell index.
        start: usize,
        /// Cell count (always ≥ 1).
        len: usize,
    },
    /// Nothing leasable right now (other workers hold the remaining
    /// ranges) — retry shortly.
    Wait,
    /// Every cell is done; the worker should disconnect.
    Drain,
}

/// Lease/result bookkeeping for one campaign over `total` canonical
/// cells. See the module docs for the clock and dedup discipline.
#[derive(Debug)]
pub struct Campaign {
    total: usize,
    lease_cells: usize,
    lease_timeout_ms: u64,
    /// First canonical index never leased yet.
    next_fresh: usize,
    next_lease_id: u64,
    active: BTreeMap<u64, Lease>,
    /// Ranges forfeited by dead/expired leases, re-issued before fresh
    /// cells.
    requeued: VecDeque<(usize, usize)>,
    /// Completed cells: canonical index → encoded result line
    /// (first-write wins).
    done: BTreeMap<usize, String>,
    reissued: usize,
}

impl Campaign {
    /// Creates the bookkeeping for `total` cells with the given lease
    /// geometry.
    #[must_use]
    pub fn new(total: usize, lease_cells: usize, lease_timeout_ms: u64) -> Self {
        Self {
            total,
            lease_cells: lease_cells.max(1),
            lease_timeout_ms,
            next_fresh: 0,
            next_lease_id: 1,
            active: BTreeMap::new(),
            requeued: VecDeque::new(),
            done: BTreeMap::new(),
            reissued: 0,
        }
    }

    /// True once every cell has a recorded result.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.done.len() == self.total
    }

    /// Cells still lacking a result.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.total - self.done.len()
    }

    /// How many forfeited leases have been re-queued for re-issue.
    #[must_use]
    pub fn reissue_count(&self) -> usize {
        self.reissued
    }

    /// Completed results in canonical order: index → encoded line.
    #[must_use]
    pub fn done_rows(&self) -> &BTreeMap<usize, String> {
        &self.done
    }

    /// Currently outstanding leases (diagnostics).
    #[must_use]
    pub fn active_leases(&self) -> usize {
        self.active.len()
    }

    /// Sweeps leases whose deadline has passed, re-queueing their
    /// ranges for re-issue. Returns the expired leases for logging.
    pub fn expire(&mut self, now_ms: u64) -> Vec<Lease> {
        let expired: Vec<u64> =
            self.active.values().filter(|l| l.deadline_ms < now_ms).map(|l| l.id).collect();
        let mut out = Vec::with_capacity(expired.len());
        for id in expired {
            let lease = self.active.remove(&id).expect("id from active");
            self.requeue(lease.start, lease.len);
            out.push(lease);
        }
        out
    }

    /// Drops every lease held by `worker` (its connection died) and
    /// re-queues the ranges. Returns the abandoned leases for logging.
    pub fn abandon_worker(&mut self, worker: &str) -> Vec<Lease> {
        let ids: Vec<u64> =
            self.active.values().filter(|l| l.worker == worker).map(|l| l.id).collect();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let lease = self.active.remove(&id).expect("id from active");
            self.requeue(lease.start, lease.len);
            out.push(lease);
        }
        out
    }

    fn requeue(&mut self, start: usize, len: usize) {
        self.requeued.push_back((start, len));
        self.reissued += 1;
    }

    /// Trims already-completed cells off both ends of a range; returns
    /// `None` when nothing in it remains to compute.
    fn trim(&self, mut start: usize, mut len: usize) -> Option<(usize, usize)> {
        while len > 0 && self.done.contains_key(&start) {
            start += 1;
            len -= 1;
        }
        while len > 0 && self.done.contains_key(&(start + len - 1)) {
            len -= 1;
        }
        (len > 0).then_some((start, len))
    }

    /// Grants the next range to `worker`: expired leases are swept and
    /// re-issued first, then fresh cells in canonical order.
    pub fn lease(&mut self, worker: &str, now_ms: u64) -> Grant {
        self.expire(now_ms);
        if self.is_complete() {
            return Grant::Drain;
        }
        let range = loop {
            if let Some((start, len)) = self.requeued.pop_front() {
                match self.trim(start, len) {
                    Some(range) => break Some(range),
                    None => continue,
                }
            }
            if self.next_fresh < self.total {
                let start = self.next_fresh;
                let len = self.lease_cells.min(self.total - start);
                self.next_fresh = start + len;
                break Some((start, len));
            }
            break None;
        };
        match range {
            Some((start, len)) => {
                let id = self.next_lease_id;
                self.next_lease_id += 1;
                self.active.insert(
                    id,
                    Lease {
                        id,
                        start,
                        len,
                        worker: worker.to_string(),
                        deadline_ms: now_ms + self.lease_timeout_ms,
                    },
                );
                Grant::Range { lease_id: id, start, len }
            }
            None => Grant::Wait,
        }
    }

    /// Extends a live lease's deadline. Returns false when the lease is
    /// no longer active (already expired and re-issued, or completed) —
    /// the worker may keep computing; its results still dedup cleanly.
    pub fn heartbeat(&mut self, lease_id: u64, now_ms: u64) -> bool {
        match self.active.get_mut(&lease_id) {
            Some(lease) => {
                lease.deadline_ms = now_ms + self.lease_timeout_ms;
                true
            }
            None => false,
        }
    }

    /// Records completed cells. Rows may cover part of a lease (a
    /// throttled worker streams cell by cell); the lease is retired
    /// once its whole range is done. Duplicate cells are ignored
    /// (first write wins — results are deterministic, so the bytes are
    /// identical either way). Returns how many rows were new.
    ///
    /// # Errors
    /// A row index at or past the campaign size is rejected.
    pub fn complete(
        &mut self,
        lease_id: u64,
        rows: Vec<(usize, String)>,
        now_ms: u64,
    ) -> Result<usize, String> {
        if let Some(&(index, _)) = rows.iter().find(|&&(index, _)| index >= self.total) {
            return Err(format!("cell index {index} out of range (campaign has {})", self.total));
        }
        let mut fresh = 0;
        for (index, line) in rows {
            if let std::collections::btree_map::Entry::Vacant(slot) = self.done.entry(index) {
                slot.insert(line);
                fresh += 1;
            }
        }
        if let Some(lease) = self.active.get(&lease_id) {
            let done_range =
                (lease.start..lease.start + lease.len).all(|i| self.done.contains_key(&i));
            if done_range {
                self.active.remove(&lease_id);
            } else if let Some(lease) = self.active.get_mut(&lease_id) {
                // Partial progress is liveness: push the deadline out.
                lease.deadline_ms = now_ms + self.lease_timeout_ms;
            }
        }
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant_range(g: Grant) -> (u64, usize, usize) {
        match g {
            Grant::Range { lease_id, start, len } => (lease_id, start, len),
            other => panic!("expected a range, got {other:?}"),
        }
    }

    fn line(i: usize) -> String {
        format!("line-{i}")
    }

    #[test]
    fn leases_cover_the_matrix_in_canonical_order() {
        let mut c = Campaign::new(16, 2, 1_000);
        for k in 0..8 {
            let (_, start, len) = grant_range(c.lease("w1", 0));
            assert_eq!((start, len), (k * 2, 2));
        }
        assert_eq!(c.lease("w1", 0), Grant::Wait, "all ranges out, none done");
    }

    #[test]
    fn default_lease_size_scales_with_the_campaign() {
        assert_eq!(default_lease_cells(0), 1);
        assert_eq!(default_lease_cells(7), 1);
        assert_eq!(default_lease_cells(16), 2);
        assert_eq!(default_lease_cells(512), 64);
        assert_eq!(default_lease_cells(1_000_000), 64);
    }

    #[test]
    fn expired_leases_are_reissued_with_a_mock_clock() {
        let mut c = Campaign::new(4, 2, 100);
        let (id1, start1, len1) = grant_range(c.lease("w1", 0));
        assert_eq!((start1, len1), (0, 2));
        // Within the deadline nothing expires; w2 gets the next range.
        let (_, start2, _) = grant_range(c.lease("w2", 50));
        assert_eq!(start2, 2);
        c.complete(id1, vec![], 50).unwrap();
        // Past w1's deadline its range comes back — and is handed out
        // before any fresh cells (there are none left here).
        let expired_then = c.lease("w3", 201);
        let (id3, start3, len3) = grant_range(expired_then);
        assert_ne!(id3, id1, "a re-issue is a new lease");
        assert_eq!((start3, len3), (0, 2));
        assert_eq!(c.reissue_count(), 2, "w1 and w2 both timed out");
    }

    #[test]
    fn heartbeats_extend_the_deadline() {
        let mut c = Campaign::new(4, 2, 100);
        let (id, _, _) = grant_range(c.lease("w1", 0));
        assert!(c.heartbeat(id, 90));
        // Without the heartbeat this sweep (at t=150) would expire the
        // lease; with it the deadline moved to 190.
        assert!(c.expire(150).is_empty());
        let expired = c.expire(191);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, id);
        assert!(!c.heartbeat(id, 200), "expired lease no longer beats");
    }

    #[test]
    fn dead_worker_ranges_are_reissued_and_trimmed_to_undone_cells() {
        let mut c = Campaign::new(4, 4, 1_000);
        let (id, _, _) = grant_range(c.lease("w1", 0));
        // w1 streams two cells, then its connection dies.
        c.complete(id, vec![(0, line(0)), (1, line(1))], 10).unwrap();
        let lost = c.abandon_worker("w1");
        assert_eq!(lost.len(), 1);
        assert_eq!(c.reissue_count(), 1);
        // The re-issued range is trimmed to what is actually missing.
        let (_, start, len) = grant_range(c.lease("w2", 20));
        assert_eq!((start, len), (2, 2));
        assert!(c.abandon_worker("w1").is_empty(), "nothing left to abandon");
    }

    #[test]
    fn duplicate_results_dedup_first_write_wins() {
        let mut c = Campaign::new(2, 2, 100);
        let (id, _, _) = grant_range(c.lease("w1", 0));
        // The lease expires and is re-issued to w2; both finish anyway.
        let (id2, _, _) = grant_range(c.lease("w2", 500));
        assert_eq!(c.complete(id2, vec![(0, line(0)), (1, line(1))], 510).unwrap(), 2);
        assert_eq!(c.complete(id, vec![(0, line(0)), (1, line(1))], 520).unwrap(), 0);
        assert!(c.is_complete());
        assert_eq!(c.lease("w1", 530), Grant::Drain);
        assert_eq!(c.done_rows().len(), 2);
    }

    #[test]
    fn out_of_range_rows_are_rejected() {
        let mut c = Campaign::new(2, 2, 100);
        let (id, _, _) = grant_range(c.lease("w1", 0));
        assert!(c.complete(id, vec![(2, line(2))], 0).is_err());
    }

    #[test]
    fn partial_batches_keep_the_lease_alive_until_the_range_is_done() {
        let mut c = Campaign::new(2, 2, 100);
        let (id, _, _) = grant_range(c.lease("w1", 0));
        c.complete(id, vec![(0, line(0))], 80).unwrap();
        // The partial batch refreshed the deadline: at t=150 (past the
        // original 100) the lease is still live.
        assert!(c.expire(150).is_empty());
        c.complete(id, vec![(1, line(1))], 150).unwrap();
        assert_eq!(c.active_leases(), 0, "full range retires the lease");
        assert!(c.is_complete());
    }
}
