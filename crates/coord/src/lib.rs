//! `therm3d_coord`: the campaign service — a coordinator that owns one
//! canonical sweep expansion and leases cell ranges to networked
//! workers, with work stealing via lease expiry and re-issue.
//!
//! PR 5's static `--shard K/N` split assumes homogeneous machines: one
//! slow or dead worker straggles the whole campaign. This crate
//! replaces the static split with dynamic leases over TCP:
//!
//! * [`wire`] — a zero-dependency, length-prefixed, FNV-checksummed
//!   frame codec and the protocol's nine messages
//!   (hello/welcome/lease-request/lease-grant/result-batch/heartbeat/
//!   drain/ack/reject). The on-wire layout is fingerprinted
//!   ([`wire::WIRE_FINGERPRINT`]) and guarded by `therm3d_lint`'s
//!   salt-drift rule, exactly like the sweep cache's cell descriptor.
//! * [`campaign`] — the pure lease state machine ([`Campaign`]):
//!   deadline-based expiry with an injected mock-testable clock,
//!   immediate abandonment of a dead connection's leases, first-write
//!   dedup of duplicated results.
//! * [`server`] — `therm3d serve SPEC.toml --listen ADDR`: accepts
//!   workers, grants leases, verifies every returned line against the
//!   canonical cell keys, and assembles the final [`SweepReport`] (and
//!   optionally a single `CacheStore`) in canonical order.
//! * [`worker`] — `therm3d work --connect ADDR`: runs leased ranges
//!   through the ordinary sweep runner (cache, factor sharing,
//!   threads) and streams encoded rows back.
//!
//! **Determinism contract.** Seeds and content-addressed cell keys are
//! assignment-independent (PRs 2/5), so *any* schedule of cells onto
//! workers — including kills, expiries and double computation —
//! reproduces the byte-identical CSV of a single-process run. CI
//! SIGKILLs a worker mid-campaign and diffs exactly that.
//!
//! [`SweepReport`]: therm3d_sweep::SweepReport

pub mod campaign;
pub mod server;
pub mod wire;
pub mod worker;

pub use campaign::{default_lease_cells, Campaign, Grant, Lease};
pub use server::{ServeOptions, Server};
pub use wire::{Msg, WireError, MAX_FRAME, PROTOCOL_VERSION, WIRE_DESCRIPTOR, WIRE_FINGERPRINT};
pub use worker::{work, WorkOptions, WorkSummary};
