//! Length-prefixed, versioned wire protocol for the campaign service.
//!
//! The codec is dependency-free and fully deterministic. Every message
//! travels in one frame:
//!
//! ```text
//! [payload length: u32 BE][payload][FNV-1a-64(payload): u64 BE]
//! ```
//!
//! The payload's first byte is the message tag; all integers are
//! big-endian and strings are `[length: u32 BE][UTF-8 bytes]`. A frame
//! longer than [`MAX_FRAME`] is rejected before any allocation sized
//! from the length prefix, a frame whose trailing checksum does not
//! match is rejected without being parsed, and every malformed input
//! maps to a typed [`WireError`] — the decoder never panics.
//!
//! Protocol evolution is guarded twice: the [`PROTOCOL_VERSION`] string
//! is exchanged in the `Hello`/`Welcome` handshake (mismatched peers
//! are rejected before any lease moves), and the on-wire layout is
//! FNV-fingerprinted ([`WIRE_FINGERPRINT`] over the [`WIRE_DESCRIPTOR`]
//! region below) so `therm3d_lint`'s salt-drift rule fails CI whenever
//! the frame shape changes without a version bump — exactly the
//! mechanism that guards the sweep cache's cell descriptor.

use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// Version string exchanged in the `Hello`/`Welcome` handshake. Bump it
/// (and re-record [`WIRE_FINGERPRINT`]) whenever the frame layout or
/// message set changes incompatibly.
pub const PROTOCOL_VERSION: &str = "therm3d-coord/v1";

/// Hard ceiling on a frame's payload length. Large enough for a
/// `ResultBatch` covering any realistic lease (result lines are a few
/// hundred bytes each), small enough that a corrupt length prefix can
/// never drive an allocation into the gigabytes.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// FNV-1a-64 fingerprint of [`WIRE_DESCRIPTOR`] (salted with
/// [`PROTOCOL_VERSION`]), recorded so the lint can detect drift: editing
/// the descriptor region without bumping the protocol version fails
/// `therm3d_lint`. The failing lint prints the expected value.
pub const WIRE_FINGERPRINT: u64 = 0x79b8_10f2_6ad6_ba18;

// The protocol's on-wire shape as one canonical string. This is what
// the lint fingerprints: any change to the framing or message layout
// must edit this descriptor, and editing it without bumping
// PROTOCOL_VERSION (and re-recording WIRE_FINGERPRINT) is a CI failure.
// lint: region(fingerprint: wire-protocol)
/// Canonical one-line description of the wire format, fingerprinted by
/// the lint's salt-drift rule (see [`WIRE_FINGERPRINT`]).
pub const WIRE_DESCRIPTOR: &str = "frame=[len:u32be][payload][fnv1a64:u64be];max_frame=16MiB;\
     ints=be;string=[len:u32be][utf8];payload=[tag:u8][fields];\
     hello:1{protocol:string,engine:string};\
     welcome:2{spec_toml:string,total_cells:u64,lease_cells:u64};\
     lease_request:3{};\
     lease_grant:4{lease_id:u64,start:u64,len:u64;len=0=>wait};\
     result_batch:5{lease_id:u64,rows:[count:u32][(cell:u64,line:string)]};\
     heartbeat:6{lease_id:u64};\
     drain:7{};\
     ack:8{};\
     reject:9{reason:string}";
// lint: end-region

/// Typed decode/transport failure. Every malformed input maps here —
/// the codec never panics on wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame does (length prefix, payload
    /// or trailing checksum). Read more bytes and retry.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`]; the payload length is
    /// carried for diagnostics.
    Oversized(usize),
    /// The trailing FNV-64 does not match the payload (bit corruption
    /// in transit or a desynchronized stream).
    Checksum,
    /// The payload's leading tag byte names no known message.
    UnknownTag(u8),
    /// The frame is intact but its fields do not parse (short string,
    /// invalid UTF-8, trailing bytes, ...).
    Malformed(String),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// An underlying socket/file error.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "truncated frame"),
            Self::Oversized(n) => write!(f, "oversized frame: {n} bytes > {MAX_FRAME}"),
            Self::Checksum => write!(f, "frame checksum mismatch"),
            Self::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            Self::Malformed(why) => write!(f, "malformed payload: {why}"),
            Self::Closed => write!(f, "connection closed"),
            Self::Io(why) => write!(f, "i/o error: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The campaign service's message set. Tags and layouts are recorded in
/// [`WIRE_DESCRIPTOR`]; the conversation is strict request/response
/// (worker sends `Hello`/`LeaseRequest`/`ResultBatch`/`Heartbeat`, the
/// coordinator answers `Welcome`/`LeaseGrant`/`Drain`/`Ack`/`Reject`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Worker → coordinator handshake: protocol and engine versions.
    /// Either mismatch is answered with `Reject` — a worker built
    /// against a different cache salt would poison the result store.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: String,
        /// The worker's `therm3d_sweep::ENGINE_VERSION` (cache salt).
        engine: String,
    },
    /// Coordinator → worker handshake reply: the canonical spec (as
    /// TOML, so the worker expands the identical matrix) plus campaign
    /// dimensions for logging.
    Welcome {
        /// The full sweep spec, serialized with `therm3d_sweep::to_toml`.
        spec_toml: String,
        /// Canonical expansion size.
        total_cells: u64,
        /// Cells per lease the coordinator will grant.
        lease_cells: u64,
    },
    /// Worker → coordinator: ready for (more) work.
    LeaseRequest,
    /// Coordinator → worker: a leased range of canonical cell indices
    /// `start .. start + len`. `len == 0` means "nothing leasable right
    /// now, retry shortly" (other workers still hold active leases).
    LeaseGrant {
        /// Coordinator-assigned lease id, echoed in results/heartbeats.
        lease_id: u64,
        /// First canonical cell index of the range.
        start: u64,
        /// Number of cells in the range (0 = wait and retry).
        len: u64,
    },
    /// Worker → coordinator: completed cells from a lease. Batches may
    /// be partial (a throttled worker streams one cell at a time); the
    /// lease completes when every cell of its range has arrived.
    ResultBatch {
        /// The lease these rows belong to.
        lease_id: u64,
        /// `(canonical cell index, encoded result line)` pairs; the
        /// line is the sweep cache's checksummed `results.tsv` codec
        /// (`therm3d_sweep::cache::encode_line`).
        rows: Vec<(u64, String)>,
    },
    /// Worker → coordinator: still alive on this lease; extends the
    /// lease deadline.
    Heartbeat {
        /// The lease being kept alive.
        lease_id: u64,
    },
    /// Coordinator → worker: the campaign is complete; disconnect.
    Drain,
    /// Coordinator → worker: positive acknowledgement of a
    /// `ResultBatch` or `Heartbeat`.
    Ack,
    /// Coordinator → worker: the request was refused (version mismatch,
    /// unknown lease, corrupt rows); the connection closes after this.
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
}

/// FNV-1a 64-bit hash — the same function the sweep cache uses, local
/// so the codec stays dependency-free.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    let len = u32::try_from(s.len())
        .map_err(|_| WireError::Malformed(format!("string of {} bytes", s.len())))?;
    put_u32(buf, len);
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Bounds-checked reader over one frame's payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError::Malformed("field past end of payload".into()))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("invalid UTF-8 in string field".into()))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing byte(s) after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Serializes one message into its payload bytes (tag + fields, no
/// framing).
fn encode_payload(msg: &Msg) -> Result<Vec<u8>, WireError> {
    let mut buf = Vec::new();
    match msg {
        Msg::Hello { protocol, engine } => {
            buf.push(1);
            put_str(&mut buf, protocol)?;
            put_str(&mut buf, engine)?;
        }
        Msg::Welcome { spec_toml, total_cells, lease_cells } => {
            buf.push(2);
            put_str(&mut buf, spec_toml)?;
            put_u64(&mut buf, *total_cells);
            put_u64(&mut buf, *lease_cells);
        }
        Msg::LeaseRequest => buf.push(3),
        Msg::LeaseGrant { lease_id, start, len } => {
            buf.push(4);
            put_u64(&mut buf, *lease_id);
            put_u64(&mut buf, *start);
            put_u64(&mut buf, *len);
        }
        Msg::ResultBatch { lease_id, rows } => {
            buf.push(5);
            put_u64(&mut buf, *lease_id);
            let count = u32::try_from(rows.len())
                .map_err(|_| WireError::Malformed(format!("{} rows in batch", rows.len())))?;
            put_u32(&mut buf, count);
            for (cell, line) in rows {
                put_u64(&mut buf, *cell);
                put_str(&mut buf, line)?;
            }
        }
        Msg::Heartbeat { lease_id } => {
            buf.push(6);
            put_u64(&mut buf, *lease_id);
        }
        Msg::Drain => buf.push(7),
        Msg::Ack => buf.push(8),
        Msg::Reject { reason } => {
            buf.push(9);
            put_str(&mut buf, reason)?;
        }
    }
    Ok(buf)
}

/// Parses one payload (tag + fields) back into a message.
fn decode_payload(payload: &[u8]) -> Result<Msg, WireError> {
    let mut r = Reader { buf: payload, pos: 0 };
    let tag = r.u8().map_err(|_| WireError::Malformed("empty payload".into()))?;
    let msg = match tag {
        1 => Msg::Hello { protocol: r.str()?, engine: r.str()? },
        2 => Msg::Welcome { spec_toml: r.str()?, total_cells: r.u64()?, lease_cells: r.u64()? },
        3 => Msg::LeaseRequest,
        4 => Msg::LeaseGrant { lease_id: r.u64()?, start: r.u64()?, len: r.u64()? },
        5 => {
            let lease_id = r.u64()?;
            let count = r.u32()? as usize;
            // Each row is at least 8 + 4 bytes; cap the pre-allocation
            // by what the payload could actually hold.
            if count > payload.len() / 12 + 1 {
                return Err(WireError::Malformed(format!("row count {count} exceeds payload")));
            }
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                rows.push((r.u64()?, r.str()?));
            }
            Msg::ResultBatch { lease_id, rows }
        }
        6 => Msg::Heartbeat { lease_id: r.u64()? },
        7 => Msg::Drain,
        8 => Msg::Ack,
        9 => Msg::Reject { reason: r.str()? },
        t => return Err(WireError::UnknownTag(t)),
    };
    r.finish()?;
    Ok(msg)
}

/// Encodes one message as a complete frame (length prefix + payload +
/// checksum), ready to write to a stream.
pub fn encode_frame(msg: &Msg) -> Result<Vec<u8>, WireError> {
    let payload = encode_payload(msg)?;
    if payload.len() > MAX_FRAME {
        return Err(WireError::Oversized(payload.len()));
    }
    let mut frame = Vec::with_capacity(4 + payload.len() + 8);
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    put_u64(&mut frame, fnv1a64(&payload));
    Ok(frame)
}

/// Decodes one frame from the front of `buf`. On success returns the
/// message and the number of bytes consumed; [`WireError::Truncated`]
/// means the buffer holds only a frame prefix — read more and retry.
pub fn decode_frame(buf: &[u8]) -> Result<(Msg, usize), WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let total = 4 + len + 8;
    if buf.len() < total {
        return Err(WireError::Truncated);
    }
    let payload = &buf[4..4 + len];
    let recorded = u64::from_be_bytes(buf[4 + len..total].try_into().expect("8 bytes"));
    if fnv1a64(payload) != recorded {
        return Err(WireError::Checksum);
    }
    Ok((decode_payload(payload)?, total))
}

/// Writes one framed message to a stream and flushes it.
pub fn write_msg<W: Write>(w: &mut W, msg: &Msg) -> Result<(), WireError> {
    let frame = encode_frame(msg)?;
    w.write_all(&frame).map_err(|e| WireError::Io(e.to_string()))?;
    w.flush().map_err(|e| WireError::Io(e.to_string()))
}

/// Reads one framed message from a stream (blocking). EOF exactly at a
/// frame boundary is [`WireError::Closed`] — a clean disconnect — while
/// EOF inside a frame is [`WireError::Truncated`].
pub fn read_msg<R: Read>(r: &mut R) -> Result<Msg, WireError> {
    let mut header = [0u8; 4];
    if let Err(e) = r.read_exact(&mut header) {
        return Err(if e.kind() == ErrorKind::UnexpectedEof {
            WireError::Closed
        } else {
            WireError::Io(e.to_string())
        });
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let mut rest = vec![0u8; len + 8];
    if let Err(e) = r.read_exact(&mut rest) {
        return Err(if e.kind() == ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.to_string())
        });
    }
    let payload = &rest[..len];
    let recorded = u64::from_be_bytes(rest[len..].try_into().expect("8 bytes"));
    if fnv1a64(payload) != recorded {
        return Err(WireError::Checksum);
    }
    decode_payload(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Msg> {
        vec![
            Msg::Hello { protocol: PROTOCOL_VERSION.into(), engine: "engine/v3".into() },
            Msg::Welcome {
                spec_toml: "[sweep]\nname = \"x\"\n".into(),
                total_cells: 16,
                lease_cells: 2,
            },
            Msg::LeaseRequest,
            Msg::LeaseGrant { lease_id: 7, start: 4, len: 2 },
            Msg::ResultBatch {
                lease_id: 7,
                rows: vec![(4, "line-a\tb".into()), (5, String::new())],
            },
            Msg::Heartbeat { lease_id: 7 },
            Msg::Drain,
            Msg::Ack,
            Msg::Reject { reason: "protocol mismatch".into() },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let frame = encode_frame(&msg).unwrap();
            let (back, used) = decode_frame(&frame).unwrap();
            assert_eq!(back, msg);
            assert_eq!(used, frame.len());
            // And through the stream API.
            let mut cursor = std::io::Cursor::new(frame);
            assert_eq!(read_msg(&mut cursor).unwrap(), msg);
        }
    }

    #[test]
    fn every_truncation_is_rejected_not_panicking() {
        for msg in sample_messages() {
            let frame = encode_frame(&msg).unwrap();
            for cut in 0..frame.len() {
                assert_eq!(decode_frame(&frame[..cut]), Err(WireError::Truncated), "cut={cut}");
            }
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum_or_parse() {
        let frame = encode_frame(&Msg::Heartbeat { lease_id: 99 }).unwrap();
        for bit in 0..frame.len() * 8 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            // A flip in the length prefix usually shows as Truncated or
            // Oversized; anywhere else as Checksum. Never Ok, never a
            // panic.
            assert!(decode_frame(&bad).is_err(), "bit={bit}");
        }
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut frame = Vec::new();
        put_u32(&mut frame, (MAX_FRAME + 1) as u32);
        frame.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode_frame(&frame), Err(WireError::Oversized(MAX_FRAME + 1)));
        let mut cursor = std::io::Cursor::new(frame);
        assert_eq!(read_msg(&mut cursor), Err(WireError::Oversized(MAX_FRAME + 1)));
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_typed_errors() {
        let mut frame = Vec::new();
        let payload = [42u8];
        put_u32(&mut frame, 1);
        frame.extend_from_slice(&payload);
        put_u64(&mut frame, fnv1a64(&payload));
        assert_eq!(decode_frame(&frame), Err(WireError::UnknownTag(42)));

        let mut payload = encode_payload(&Msg::Ack).unwrap();
        payload.push(0);
        let mut frame = Vec::new();
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&payload);
        put_u64(&mut frame, fnv1a64(&payload));
        assert!(matches!(decode_frame(&frame), Err(WireError::Malformed(_))));
    }

    #[test]
    fn eof_at_frame_boundary_is_closed() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert_eq!(read_msg(&mut empty), Err(WireError::Closed));
        let frame = encode_frame(&Msg::Drain).unwrap();
        let mut partial = std::io::Cursor::new(frame[..5].to_vec());
        assert_eq!(read_msg(&mut partial), Err(WireError::Truncated));
    }

    #[test]
    fn descriptor_names_every_tag() {
        // The fingerprinted descriptor must cover the whole message
        // set: adding a variant without recording it (and re-salting)
        // is exactly the drift the lint exists to catch.
        for needle in [
            "hello:1",
            "welcome:2",
            "lease_request:3",
            "lease_grant:4",
            "result_batch:5",
            "heartbeat:6",
            "drain:7",
            "ack:8",
            "reject:9",
        ] {
            assert!(WIRE_DESCRIPTOR.contains(needle), "descriptor missing {needle}");
        }
    }
}
