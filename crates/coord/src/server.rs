//! The campaign coordinator: owns the canonical expansion, leases cell
//! ranges to connected workers, and reassembles the byte-identical
//! report.
//!
//! One thread per connection speaks the strict request/response
//! protocol of [`crate::wire`]; all bookkeeping lives in a single
//! [`Campaign`] behind a mutex, so the protocol threads are plain
//! executors with no scheduling logic of their own. Dead workers are
//! detected two ways: a dropped connection abandons its leases
//! immediately (the SIGKILL case), and a lease whose deadline passes
//! without results or heartbeats is swept by the accept loop (the hung
//! case) — both paths re-queue the range for the next `LeaseRequest`.
//!
//! Determinism contract: cells keep their canonical indices, derived
//! seeds and cache keys no matter which worker computes them, so the
//! assembled [`SweepReport`] — and its CSV — is byte-identical to a
//! single-process `therm3d sweep` of the same spec. CI kills a worker
//! mid-campaign and diffs exactly that.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use therm3d_sweep::shard::ShardSpec;
use therm3d_sweep::{
    cell_key, decode_line, expand, to_toml, CacheStore, SweepCell, SweepReport, SweepRow,
    ENGINE_VERSION,
};
use therm3d_telemetry::Progress;

use crate::campaign::{default_lease_cells, Campaign, Grant};
use crate::wire::{read_msg, write_msg, Msg, WireError, PROTOCOL_VERSION};

/// Coordinator tuning knobs (the spec itself arrives separately).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Cells per lease; `None` = [`default_lease_cells`] of the
    /// expansion size.
    pub lease_cells: Option<usize>,
    /// Milliseconds a lease may go without results or heartbeats
    /// before its range is re-issued. `0` = the 30 s default.
    pub lease_timeout_ms: u64,
}

const DEFAULT_LEASE_TIMEOUT_MS: u64 = 30_000;
/// Accept-loop poll interval: bounds how stale deadline expiry can be.
const POLL_MS: u64 = 25;
/// Grace after completion so waiting workers can collect their `Drain`.
const DRAIN_GRACE_MS: u64 = 200;

/// Everything the per-connection handler threads share.
struct Shared {
    campaign: Mutex<Campaign>,
    /// Expected `CellKey::hex()` per canonical index — incoming result
    /// lines are verified against these before they are accepted.
    expected_hex: Vec<String>,
    spec_toml: String,
    total: u64,
    lease_cells: u64,
    progress: Option<Progress>,
    epoch: Instant,
}

impl Shared {
    /// Campaign-relative wall time for lease deadlines.
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// A bound coordinator, ready to [`run`](Server::run). Binding is
/// separate from running so callers (the CLI's `--port-file`, the
/// loopback tests) can learn the OS-assigned address before any worker
/// connects.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    spec_name: String,
    cells: Vec<SweepCell>,
    shared: Arc<Shared>,
}

impl Server {
    /// Validates `spec`, expands the canonical matrix and binds the
    /// listening socket (use port 0 for an OS-assigned port).
    ///
    /// # Errors
    ///
    /// An invalid or sharded spec (the coordinator owns the split —
    /// leases replace `--shard`), an empty expansion, or a bind
    /// failure.
    pub fn bind(
        spec: &therm3d_sweep::SweepSpec,
        listen: &str,
        opts: &ServeOptions,
    ) -> Result<Self, String> {
        spec.validate()?;
        if !spec.shard.is_full() {
            return Err(format!(
                "'{}' is sharded ({}); `serve` owns the whole matrix — remove the shard and let \
                 leases do the splitting",
                spec.name, spec.shard
            ));
        }
        let cells = expand(spec);
        if cells.is_empty() {
            return Err(format!("'{}' expands to zero cells", spec.name));
        }
        let total = cells.len();
        let lease_cells =
            opts.lease_cells.unwrap_or_else(|| default_lease_cells(total)).clamp(1, total);
        let timeout_ms = if opts.lease_timeout_ms == 0 {
            DEFAULT_LEASE_TIMEOUT_MS
        } else {
            opts.lease_timeout_ms
        };
        let expected_hex = cells.iter().map(|cell| cell_key(spec, cell).hex()).collect();
        let listener =
            TcpListener::bind(listen).map_err(|e| format!("cannot listen on {listen}: {e}"))?;
        let local_addr =
            listener.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
        // lint: allow(no-wall-clock): lease-deadline bookkeeping only — results stay a pure function of the spec
        let epoch = Instant::now();
        Ok(Self {
            listener,
            local_addr,
            spec_name: spec.name.clone(),
            shared: Arc::new(Shared {
                campaign: Mutex::new(Campaign::new(total, lease_cells, timeout_ms)),
                expected_hex,
                spec_toml: to_toml(spec),
                total: total as u64,
                lease_cells: lease_cells as u64,
                progress: None,
                epoch,
            }),
            cells,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Cells per lease this coordinator grants.
    #[must_use]
    pub fn lease_cells(&self) -> usize {
        self.shared.lease_cells as usize
    }

    /// Runs the campaign to completion: accepts workers, leases ranges,
    /// sweeps expired leases, and — once every cell has a verified
    /// result — assembles the canonical [`SweepReport`] (inserting each
    /// result into `cache` when one is attached, so a warm re-run
    /// simulates nothing).
    ///
    /// # Errors
    ///
    /// Socket errors on the listener, or a corrupt stored result line
    /// (which the arrival-time verification makes unreachable short of
    /// memory corruption).
    pub fn run(
        mut self,
        cache: Option<&mut CacheStore>,
        progress: Option<Progress>,
    ) -> Result<SweepReport, String> {
        if let Some(p) = &progress {
            p.begin(self.cells.len(), 1);
        }
        // Publish the progress reporter to the handler threads. No
        // handler exists yet, so the Arc has exactly one owner here.
        Arc::get_mut(&mut self.shared).expect("no handlers yet").progress = progress;
        self.listener.set_nonblocking(true).map_err(|e| format!("cannot poll listener: {e}"))?;
        eprintln!(
            "coord: '{}' listening on {} — {} cells, lease size {}",
            self.spec_name, self.local_addr, self.shared.total, self.shared.lease_cells
        );
        let mut workers = 0_usize;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    workers += 1;
                    let worker = format!("w{workers}");
                    eprintln!("coord: {worker} connected from {peer}");
                    // Accepted sockets can inherit the listener's
                    // non-blocking mode; the handlers do blocking reads.
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| format!("cannot configure {worker}: {e}"))?;
                    let shared = Arc::clone(&self.shared);
                    // lint: allow(no-thread-spawn): protocol I/O threads — cell execution happens in worker processes via the sweep runner
                    std::thread::spawn(move || handle_worker(stream, &worker, &shared));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(format!("accept failed: {e}")),
            }
            {
                let now = self.shared.now_ms();
                let mut campaign = self.shared.campaign.lock().expect("campaign lock");
                for lease in campaign.expire(now) {
                    eprintln!(
                        "coord: lease {} (cells {}..{}) for {} expired; range re-issued",
                        lease.id,
                        lease.start,
                        lease.start + lease.len,
                        lease.worker
                    );
                }
                if campaign.is_complete() {
                    eprintln!(
                        "coord: campaign complete — {} cells from {} worker(s), {} lease(s) re-issued",
                        self.shared.total,
                        workers,
                        campaign.reissue_count()
                    );
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(POLL_MS));
        }
        if let Some(p) = &self.shared.progress {
            p.finish();
        }
        // Let workers still blocked on a LeaseRequest collect their
        // Drain before the process exits and resets their connections.
        std::thread::sleep(Duration::from_millis(DRAIN_GRACE_MS));
        self.assemble(cache)
    }

    /// Decodes the stored result lines back into rows in canonical
    /// order — the byte-identical single-process report.
    fn assemble(&self, mut cache: Option<&mut CacheStore>) -> Result<SweepReport, String> {
        let campaign = self.shared.campaign.lock().expect("campaign lock");
        let done = campaign.done_rows();
        let mut rows = Vec::with_capacity(self.cells.len());
        for (i, cell) in self.cells.iter().enumerate() {
            let line = done.get(&i).ok_or_else(|| format!("internal: cell {i} has no result"))?;
            let (key, result) =
                decode_line(line).ok_or_else(|| format!("internal: cell {i} line corrupt"))?;
            if let Some(store) = cache.as_deref_mut() {
                store.insert(&key, &result).map_err(|e| e.to_string())?;
            }
            rows.push(SweepRow { key: key.hex(), cell: cell.clone(), result, timing: None });
        }
        Ok(SweepReport { name: self.spec_name.clone(), shard: ShardSpec::FULL, rows })
    }
}

/// Converts and verifies one incoming result batch: indices in range,
/// lines that decode under the cache codec, keys matching the
/// canonical expansion. Any failure rejects the whole batch — a worker
/// sending wrong keys is running different semantics and must not
/// contribute.
fn verify_rows(shared: &Shared, rows: &[(u64, String)]) -> Result<Vec<(usize, String)>, String> {
    let mut out = Vec::with_capacity(rows.len());
    for (raw_index, line) in rows {
        let index = usize::try_from(*raw_index).map_err(|_| format!("cell index {raw_index}"))?;
        let expected = shared
            .expected_hex
            .get(index)
            .ok_or_else(|| format!("cell index {index} out of range"))?;
        let (key, _) =
            decode_line(line).ok_or_else(|| format!("cell {index}: corrupt result line"))?;
        if key.hex() != *expected {
            return Err(format!(
                "cell {index}: key {} does not match canonical {expected} — engine mismatch?",
                key.hex()
            ));
        }
        out.push((index, line.clone()));
    }
    Ok(out)
}

/// Drives one worker connection: handshake, then the lease loop, until
/// the peer disconnects or the campaign drains. On any connection
/// error the worker's live leases are abandoned and re-issued.
fn handle_worker(mut stream: TcpStream, worker: &str, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    match read_msg(&mut stream) {
        Ok(Msg::Hello { protocol, engine }) => {
            if protocol != PROTOCOL_VERSION || engine != ENGINE_VERSION {
                let reason = format!(
                    "version mismatch: coordinator speaks {PROTOCOL_VERSION} / {ENGINE_VERSION}, \
                     worker speaks {protocol} / {engine}"
                );
                eprintln!("coord: {worker} rejected — {reason}");
                let _ = write_msg(&mut stream, &Msg::Reject { reason });
                return;
            }
        }
        Ok(_) | Err(_) => {
            let _ = write_msg(
                &mut stream,
                &Msg::Reject { reason: "expected hello as the first message".into() },
            );
            return;
        }
    }
    let welcome = Msg::Welcome {
        spec_toml: shared.spec_toml.clone(),
        total_cells: shared.total,
        lease_cells: shared.lease_cells,
    };
    if write_msg(&mut stream, &welcome).is_err() {
        return;
    }
    loop {
        let reply = match read_msg(&mut stream) {
            Ok(Msg::LeaseRequest) => {
                let grant = {
                    let mut campaign = shared.campaign.lock().expect("campaign lock");
                    campaign.lease(worker, shared.now_ms())
                };
                match grant {
                    Grant::Range { lease_id, start, len } => {
                        eprintln!(
                            "coord: lease {lease_id} -> {worker}: cells {start}..{}",
                            start + len
                        );
                        Msg::LeaseGrant { lease_id, start: start as u64, len: len as u64 }
                    }
                    Grant::Wait => Msg::LeaseGrant { lease_id: 0, start: 0, len: 0 },
                    Grant::Drain => Msg::Drain,
                }
            }
            Ok(Msg::ResultBatch { lease_id, rows }) => match verify_rows(shared, &rows) {
                Ok(verified) => {
                    let outcome = {
                        let mut campaign = shared.campaign.lock().expect("campaign lock");
                        campaign.complete(lease_id, verified, shared.now_ms())
                    };
                    match outcome {
                        Ok(fresh) => {
                            if let Some(p) = &shared.progress {
                                for _ in 0..fresh {
                                    p.cell_done(false);
                                }
                            }
                            Msg::Ack
                        }
                        Err(reason) => Msg::Reject { reason },
                    }
                }
                Err(reason) => {
                    eprintln!("coord: {worker} batch rejected — {reason}");
                    Msg::Reject { reason }
                }
            },
            Ok(Msg::Heartbeat { lease_id }) => {
                let mut campaign = shared.campaign.lock().expect("campaign lock");
                campaign.heartbeat(lease_id, shared.now_ms());
                Msg::Ack
            }
            Ok(other) => {
                let _ = write_msg(
                    &mut stream,
                    &Msg::Reject { reason: format!("unexpected message: {other:?}") },
                );
                break;
            }
            Err(WireError::Closed) => break,
            Err(e) => {
                eprintln!("coord: {worker} connection error: {e}");
                break;
            }
        };
        if write_msg(&mut stream, &reply).is_err() {
            break;
        }
    }
    let lost = {
        let mut campaign = shared.campaign.lock().expect("campaign lock");
        campaign.abandon_worker(worker)
    };
    for lease in lost {
        eprintln!(
            "coord: {worker} died holding lease {} (cells {}..{}); range re-issued",
            lease.id,
            lease.start,
            lease.start + lease.len
        );
    }
}
