//! The campaign worker: connects to a coordinator, leases cell ranges
//! and runs them through the ordinary sweep runner.
//!
//! The worker owns no scheduling decisions — it asks, computes, and
//! reports, in a strict request/response loop. Each leased range is
//! executed with [`therm3d_sweep::run_cells_with_telemetry`], i.e. the
//! exact cache-lookup/factor-sharing/thread-pool path a local sweep
//! uses, and each finished cell is shipped back as the cache codec's
//! checksummed line ([`therm3d_sweep::encode_line`]), so the
//! coordinator can verify every byte against the canonical expansion.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use therm3d_sweep::{
    cell_key, encode_line, from_toml, run_cells_with_telemetry, CacheStore, SweepReport, SweepSpec,
    ENGINE_VERSION,
};

use crate::wire::{read_msg, write_msg, Msg, PROTOCOL_VERSION};

/// How long a worker sleeps after a "wait" grant (`len == 0`) before
/// asking again.
const WAIT_RETRY_MS: u64 = 50;

/// Worker-side knobs.
#[derive(Debug, Clone, Default)]
pub struct WorkOptions {
    /// Worker-thread override for the leased cells' runner (`None` =
    /// the spec's own `threads`).
    pub threads: Option<usize>,
    /// Optional local result cache (lookups and write-backs as in a
    /// local sweep).
    pub cache_dir: Option<PathBuf>,
    /// Test/ops knob: with a value > 0 the worker computes its lease
    /// one cell at a time, streaming each result immediately and
    /// sleeping this many milliseconds (with a heartbeat) between
    /// cells — slow enough for CI to kill a worker *mid-lease*
    /// deterministically.
    pub throttle_ms: u64,
}

/// What a finished worker did, for logging and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkSummary {
    /// Cells computed and acknowledged by the coordinator.
    pub cells: usize,
    /// Leases this worker completed work under.
    pub leases: usize,
}

fn send_expect_ack(stream: &mut TcpStream, msg: &Msg) -> Result<(), String> {
    write_msg(stream, msg).map_err(|e| format!("send failed: {e}"))?;
    match read_msg(stream).map_err(|e| format!("coordinator went away: {e}"))? {
        Msg::Ack => Ok(()),
        Msg::Reject { reason } => Err(format!("coordinator rejected: {reason}")),
        other => Err(format!("expected ack, got {other:?}")),
    }
}

/// Runs the cells of one lease and streams the encoded rows back.
/// Returns how many cells were shipped.
fn run_lease(
    stream: &mut TcpStream,
    spec: &SweepSpec,
    cache: &mut Option<CacheStore>,
    opts: &WorkOptions,
    lease_id: u64,
    indices: &[usize],
) -> Result<usize, String> {
    let encode_rows = |report: &SweepReport| -> Vec<(u64, String)> {
        report
            .rows
            .iter()
            .map(|row| {
                let key = cell_key(spec, &row.cell);
                (row.cell.index as u64, encode_line(&key, &row.result))
            })
            .collect()
    };
    if opts.throttle_ms == 0 {
        let report = run_cells_with_telemetry(spec, indices, cache.as_mut(), None)
            .map_err(|e| e.to_string())?;
        let rows = encode_rows(&report);
        let shipped = rows.len();
        send_expect_ack(stream, &Msg::ResultBatch { lease_id, rows })?;
        return Ok(shipped);
    }
    // Throttled: one cell per batch, heartbeat + pause between cells.
    let mut shipped = 0;
    for (k, &index) in indices.iter().enumerate() {
        if k > 0 {
            send_expect_ack(stream, &Msg::Heartbeat { lease_id })?;
            std::thread::sleep(Duration::from_millis(opts.throttle_ms));
        }
        let report = run_cells_with_telemetry(spec, &[index], cache.as_mut(), None)
            .map_err(|e| e.to_string())?;
        let rows = encode_rows(&report);
        shipped += rows.len();
        send_expect_ack(stream, &Msg::ResultBatch { lease_id, rows })?;
    }
    Ok(shipped)
}

/// Connects to a coordinator at `connect` and works until drained:
/// handshake, then lease → compute → report until the coordinator says
/// the campaign is complete.
///
/// # Errors
///
/// Connection/protocol failures, a coordinator rejection (version
/// mismatch, bad rows), an unparseable spec, or a cell whose
/// simulation fails.
pub fn work(connect: &str, opts: &WorkOptions) -> Result<WorkSummary, String> {
    let mut stream =
        TcpStream::connect(connect).map_err(|e| format!("cannot connect to {connect}: {e}"))?;
    let _ = stream.set_nodelay(true);
    write_msg(
        &mut stream,
        &Msg::Hello { protocol: PROTOCOL_VERSION.into(), engine: ENGINE_VERSION.into() },
    )
    .map_err(|e| format!("handshake send failed: {e}"))?;
    let (spec_toml, total_cells, lease_cells) =
        match read_msg(&mut stream).map_err(|e| format!("handshake read failed: {e}"))? {
            Msg::Welcome { spec_toml, total_cells, lease_cells } => {
                (spec_toml, total_cells, lease_cells)
            }
            Msg::Reject { reason } => return Err(format!("coordinator rejected: {reason}")),
            other => return Err(format!("expected welcome, got {other:?}")),
        };
    let mut spec =
        from_toml(&spec_toml).map_err(|e| format!("coordinator sent a bad spec: {e}"))?;
    if let Some(threads) = opts.threads {
        spec.threads = threads;
    }
    let mut cache = match &opts.cache_dir {
        Some(dir) => Some(CacheStore::open(dir).map_err(|e| e.to_string())?),
        None => None,
    };
    eprintln!(
        "work: joined campaign '{}' at {connect} — {total_cells} cells, lease size {lease_cells}",
        spec.name
    );
    let mut summary = WorkSummary { cells: 0, leases: 0 };
    loop {
        write_msg(&mut stream, &Msg::LeaseRequest)
            .map_err(|e| format!("lease request failed: {e}"))?;
        match read_msg(&mut stream).map_err(|e| format!("coordinator went away: {e}"))? {
            Msg::LeaseGrant { len: 0, .. } => {
                std::thread::sleep(Duration::from_millis(WAIT_RETRY_MS));
            }
            Msg::LeaseGrant { lease_id, start, len } => {
                let start =
                    usize::try_from(start).map_err(|_| format!("lease start {start} overflows"))?;
                let len =
                    usize::try_from(len).map_err(|_| format!("lease length {len} overflows"))?;
                let indices: Vec<usize> = (start..start + len).collect();
                eprintln!("work: lease {lease_id}: cells {start}..{}", start + len);
                summary.cells +=
                    run_lease(&mut stream, &spec, &mut cache, opts, lease_id, &indices)?;
                summary.leases += 1;
            }
            Msg::Drain => break,
            Msg::Reject { reason } => return Err(format!("coordinator rejected: {reason}")),
            other => return Err(format!("unexpected message: {other:?}")),
        }
    }
    eprintln!("work: drained — {} cell(s) over {} lease(s)", summary.cells, summary.leases);
    Ok(summary)
}
