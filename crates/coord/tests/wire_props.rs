//! Property tests for the coordinator frame codec: arbitrary messages
//! survive `encode_frame`/`decode_frame` byte-exactly, and mangled
//! frames — truncated, bit-flipped, oversized — are rejected with a
//! typed [`WireError`], never a panic. This is the contract the
//! campaign service rests on: a worker crashing mid-write must show up
//! as a clean protocol error on the coordinator, not undefined
//! behavior.

use proptest::prelude::*;
use therm3d_coord::wire::{decode_frame, encode_frame, Msg, WireError, MAX_FRAME};

/// String alphabet exercising the length-prefixed UTF-8 codec: empty,
/// realistic payloads (a protocol version, a TOML spec, a result line)
/// and hostile shapes (multi-byte UTF-8, embedded separators, quotes).
const STRINGS: [&str; 6] = [
    "",
    "therm3d-coord/v1",
    "name = \"x\"\npolicies = [\"Default\"]\nsim_seconds = 2.0",
    "uni·códe µs — 3°C",
    "line,with,commas\tand\ttabs",
    "q\"uote\\back\\slash",
];

fn s(i: usize) -> String {
    // Suffix keeps drawn strings distinguishable even when two slots
    // pick the same alphabet entry.
    format!("{}#{i}", STRINGS[i % STRINGS.len()])
}

/// Deterministically builds one of the nine protocol messages from
/// drawn scalars, covering every variant shape.
fn build_msg(tag: usize, a: u64, b: u64, s1: usize, s2: usize, rows: &[(u64, usize)]) -> Msg {
    match tag % 9 {
        0 => Msg::Hello { protocol: s(s1), engine: s(s2) },
        1 => Msg::Welcome { spec_toml: s(s1), total_cells: a, lease_cells: b },
        2 => Msg::LeaseRequest,
        3 => Msg::LeaseGrant { lease_id: a, start: b, len: s1 as u64 },
        4 => Msg::ResultBatch {
            lease_id: a,
            rows: rows.iter().map(|(cell, i)| (*cell, s(*i))).collect(),
        },
        5 => Msg::Heartbeat { lease_id: a },
        6 => Msg::Drain,
        7 => Msg::Ack,
        8 => Msg::Reject { reason: s(s1) },
        _ => unreachable!("tag % 9"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn frames_round_trip_byte_exactly(
        tag in 0usize..9,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        s1 in 0usize..64,
        s2 in 0usize..64,
        rows in prop::collection::vec((0u64..4096, 0usize..64), 0..8),
    ) {
        let msg = build_msg(tag, a, b, s1, s2, &rows);
        let bytes = encode_frame(&msg).expect("encodable");
        let (back, used) = decode_frame(&bytes).expect("decodable");
        prop_assert_eq!(used, bytes.len(), "decode must consume the whole frame");
        prop_assert_eq!(back, msg);
        // Encoding is deterministic (frames are comparable across hosts).
        prop_assert_eq!(encode_frame(&build_msg(tag, a, b, s1, s2, &rows)).unwrap(), bytes);
    }

    #[test]
    fn every_truncation_is_a_typed_error(
        tag in 0usize..9,
        a in 0u64..u64::MAX,
        s1 in 0usize..64,
        rows in prop::collection::vec((0u64..4096, 0usize..64), 0..4),
    ) {
        let bytes = encode_frame(&build_msg(tag, a, a ^ 0x5555, s1, s1 + 1, &rows)).unwrap();
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated) => {}
                other => prop_assert!(false, "cut at {cut}/{}: {other:?}", bytes.len()),
            }
        }
    }

    #[test]
    fn every_bit_flip_is_rejected(
        tag in 0usize..9,
        a in 0u64..u64::MAX,
        s1 in 0usize..64,
        rows in prop::collection::vec((0u64..4096, 0usize..64), 0..4),
        bit in 0usize..4096,
    ) {
        let bytes = encode_frame(&build_msg(tag, a, a >> 7, s1, s1 + 3, &rows)).unwrap();
        let mut flipped = bytes.clone();
        let bit = bit % (bytes.len() * 8);
        flipped[bit / 8] ^= 1 << (bit % 8);
        // The checksum trailer (or, for flips in the length header, the
        // frame-shape validation) catches the corruption — the decoder
        // must never panic and never hand back a message as-if-valid.
        prop_assert!(decode_frame(&flipped).is_err(), "flipping bit {bit} went undetected");
    }

    #[test]
    fn oversized_headers_are_rejected_before_allocation(
        extra in 1u64..u64::from(u32::MAX) - MAX_FRAME as u64,
    ) {
        let len = MAX_FRAME as u64 + extra;
        let mut bytes = u32::try_from(len).unwrap().to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 32]);
        match decode_frame(&bytes) {
            Err(WireError::Oversized(n)) => prop_assert_eq!(n as u64, len),
            other => prop_assert!(false, "{other:?}"),
        }
    }
}
