//! Loopback integration tests for the campaign service: a coordinator
//! and in-process workers on 127.0.0.1 must reproduce the
//! byte-identical report of a single-process sweep — including when a
//! worker takes a lease and dies without ever reporting.
//! (`tests/` is outside the workspace lint's thread-spawn scope; the
//! product code keeps cell execution in worker processes.)

use std::net::TcpStream;
use std::thread;

use therm3d_coord::wire::{read_msg, write_msg, Msg, PROTOCOL_VERSION};
use therm3d_coord::{work, ServeOptions, Server, WorkOptions};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_sweep::{SweepSpec, ENGINE_VERSION};
use therm3d_workload::Benchmark;

fn spec(name: &str) -> SweepSpec {
    SweepSpec::new(name)
        .with_experiments(&[Experiment::Exp1])
        .with_policies(&[PolicyKind::Default, PolicyKind::Adapt3d])
        .with_dpm(&[false, true])
        .with_benchmarks(&[Benchmark::Gzip])
        .with_sim_seconds(2.0)
        .with_grid(4, 4)
        .with_threads(1)
}

#[test]
fn leased_campaign_matches_single_process_run_byte_for_byte() {
    let spec = spec("coord-loopback");
    let single = therm3d_sweep::run(&spec).expect("single-process run").csv();

    // Lease size 1 forces every cell through a separate grant, so the
    // two workers genuinely interleave.
    let opts = ServeOptions { lease_cells: Some(1), lease_timeout_ms: 60_000 };
    let server = Server::bind(&spec, "127.0.0.1:0", &opts).expect("bind");
    let addr = server.local_addr().to_string();
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || work(&addr, &WorkOptions::default()))
        })
        .collect();
    let report = server.run(None, None).expect("campaign");
    let summaries: Vec<_> =
        workers.into_iter().map(|h| h.join().expect("worker thread").expect("worker")).collect();

    assert_eq!(report.csv(), single, "any worker assignment must be byte-identical");
    let cells: usize = summaries.iter().map(|s| s.cells).sum();
    assert_eq!(cells, 4, "workers computed every cell exactly once: {summaries:?}");
}

#[test]
fn dead_worker_lease_is_reissued_and_campaign_completes() {
    let spec = spec("coord-deserter");
    let single = therm3d_sweep::run(&spec).expect("single-process run").csv();

    let opts = ServeOptions { lease_cells: Some(2), lease_timeout_ms: 60_000 };
    let server = Server::bind(&spec, "127.0.0.1:0", &opts).expect("bind");
    let addr = server.local_addr().to_string();

    // A deserter: handshakes, takes a lease, and drops the connection
    // without reporting a single row. Its range must be re-issued via
    // the EOF path (the timeout is far beyond the test's runtime, so
    // only abandonment can save the campaign). It connects while the
    // accept loop runs; the honest worker starts on a head-start delay
    // so the deserter grabs the first lease.
    let deserter = {
        let addr = addr.clone();
        thread::spawn(move || {
            let mut stream = TcpStream::connect(&addr).expect("connect");
            write_msg(
                &mut stream,
                &Msg::Hello { protocol: PROTOCOL_VERSION.into(), engine: ENGINE_VERSION.into() },
            )
            .expect("hello");
            assert!(matches!(read_msg(&mut stream).expect("welcome"), Msg::Welcome { .. }));
            write_msg(&mut stream, &Msg::LeaseRequest).expect("lease request");
            let granted = read_msg(&mut stream).expect("grant");
            assert!(
                matches!(granted, Msg::LeaseGrant { len, .. } if len > 0),
                "deserter should get a real range: {granted:?}"
            );
            // Dropping the stream here is the crash.
        })
    };
    let worker = thread::spawn(move || {
        thread::sleep(std::time::Duration::from_millis(300));
        work(&addr, &WorkOptions::default())
    });
    let report = server.run(None, None).expect("campaign");
    deserter.join().expect("deserter thread");
    let summary = worker.join().expect("worker thread").expect("worker");

    assert_eq!(report.csv(), single, "re-issued cells must not change a byte");
    assert_eq!(summary.cells, 4, "the survivor computed everything: {summary:?}");
}

#[test]
fn serve_rejects_sharded_specs_and_version_skew() {
    let sharded = spec("coord-sharded").with_shard(therm3d_sweep::ShardSpec { index: 0, count: 2 });
    let err = match Server::bind(&sharded, "127.0.0.1:0", &ServeOptions::default()) {
        Err(e) => e,
        Ok(_) => panic!("sharded spec must not bind"),
    };
    assert!(err.contains("sharded"), "{err}");

    // A worker speaking a different engine version must be rejected at
    // handshake — mixing cache salts would poison the merged results.
    let server =
        Server::bind(&spec("coord-skew"), "127.0.0.1:0", &ServeOptions::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let probe = thread::spawn(move || {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        write_msg(
            &mut stream,
            &Msg::Hello { protocol: PROTOCOL_VERSION.into(), engine: "stale-engine/v0".into() },
        )
        .expect("hello");
        match read_msg(&mut stream).expect("reply") {
            Msg::Reject { reason } => assert!(reason.contains("version mismatch"), "{reason}"),
            other => panic!("expected rejection, got {other:?}"),
        }
    });
    // The server never needs to run its accept loop to completion for
    // this: the handshake happens on the handler thread spawned by
    // `run`, so drive one accept iteration by running a tiny campaign
    // with a real worker alongside the probe.
    let addr2 = server.local_addr().to_string();
    let worker = thread::spawn(move || work(&addr2, &WorkOptions::default()));
    server.run(None, None).expect("campaign");
    probe.join().expect("probe thread");
    worker.join().expect("worker thread").expect("worker");
}
