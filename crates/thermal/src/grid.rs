//! Spatial discretization of a die layer into a regular grid of thermal
//! cells, and the block ↔ cell coverage mapping.

use therm3d_floorplan::{Floorplan, Rect};

/// A regular `rows × cols` grid over a die outline.
///
/// Cell `(r, c)` covers `x ∈ [c·w, (c+1)·w)`, `y ∈ [r·h, (r+1)·h)` relative
/// to the outline origin. Grid geometry is in millimetres like the
/// floorplan.
///
/// # Examples
///
/// ```
/// use therm3d_floorplan::Rect;
/// use therm3d_thermal::grid::LayerGrid;
///
/// let g = LayerGrid::new(Rect::new(0.0, 0.0, 11.5, 10.0), 8, 8);
/// assert_eq!(g.num_cells(), 64);
/// assert!((g.cell_area_mm2() - 115.0 / 64.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGrid {
    outline: Rect,
    rows: usize,
    cols: usize,
}

impl LayerGrid {
    /// Creates a grid over `outline`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    #[must_use]
    pub fn new(outline: Rect, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must have at least one cell");
        Self { outline, rows, cols }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Cell width in mm.
    #[must_use]
    pub fn cell_width_mm(&self) -> f64 {
        self.outline.width / self.cols as f64
    }

    /// Cell height in mm.
    #[must_use]
    pub fn cell_height_mm(&self) -> f64 {
        self.outline.height / self.rows as f64
    }

    /// Cell area in mm².
    #[must_use]
    pub fn cell_area_mm2(&self) -> f64 {
        self.cell_width_mm() * self.cell_height_mm()
    }

    /// Linear index of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn cell_index(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows && col < self.cols, "cell ({row},{col}) out of range");
        row * self.cols + col
    }

    /// `(row, col)` of a linear cell index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn cell_coords(&self, index: usize) -> (usize, usize) {
        assert!(index < self.num_cells(), "cell index {index} out of range");
        (index / self.cols, index % self.cols)
    }

    /// The rectangle covered by cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn cell_rect(&self, row: usize, col: usize) -> Rect {
        assert!(row < self.rows && col < self.cols, "cell ({row},{col}) out of range");
        Rect::new(
            self.outline.x + col as f64 * self.cell_width_mm(),
            self.outline.y + row as f64 * self.cell_height_mm(),
            self.cell_width_mm(),
            self.cell_height_mm(),
        )
    }

    /// For every block of `fp`, the cells it covers with the fraction of
    /// the **block's** area falling in each cell (fractions sum to 1 per
    /// block).
    ///
    /// These weights serve double duty: distributing a block's power onto
    /// cells, and averaging cell temperatures back into a block reading.
    #[must_use]
    pub fn block_coverage(&self, fp: &Floorplan) -> Vec<Vec<(usize, f64)>> {
        fp.blocks()
            .iter()
            .map(|b| {
                let mut cover = Vec::new();
                let rect = b.rect();
                let col_lo = ((rect.x - self.outline.x) / self.cell_width_mm()).floor() as usize;
                let col_hi = (((rect.right() - self.outline.x) / self.cell_width_mm()).ceil()
                    as usize)
                    .min(self.cols);
                let row_lo = ((rect.y - self.outline.y) / self.cell_height_mm()).floor() as usize;
                let row_hi = (((rect.top() - self.outline.y) / self.cell_height_mm()).ceil()
                    as usize)
                    .min(self.rows);
                for r in row_lo..row_hi {
                    for c in col_lo..col_hi {
                        let a = rect.intersection_area(&self.cell_rect(r, c));
                        if a > 1e-12 {
                            cover.push((self.cell_index(r, c), a / rect.area()));
                        }
                    }
                }
                cover
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use therm3d_floorplan::niagara;

    #[test]
    fn indexing_round_trip() {
        let g = LayerGrid::new(Rect::new(0.0, 0.0, 10.0, 10.0), 4, 5);
        for i in 0..g.num_cells() {
            let (r, c) = g.cell_coords(i);
            assert_eq!(g.cell_index(r, c), i);
        }
    }

    #[test]
    fn cell_rects_tile_outline() {
        let g = LayerGrid::new(Rect::new(0.0, 0.0, 11.5, 10.0), 8, 8);
        let total: f64 = (0..8)
            .flat_map(|r| (0..8).map(move |c| (r, c)))
            .map(|(r, c)| g.cell_rect(r, c).area())
            .sum();
        assert!((total - 115.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_fractions_sum_to_one() {
        let fp = niagara::core_layer();
        let g = LayerGrid::new(*fp.outline(), 8, 8);
        for (bi, cover) in g.block_coverage(&fp).iter().enumerate() {
            let sum: f64 = cover.iter().map(|(_, w)| w).sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "block {bi} ({}) coverage sums to {sum}",
                fp.blocks()[bi].name()
            );
        }
    }

    #[test]
    fn coverage_respects_geometry() {
        // A block occupying exactly the left half covers exactly the left
        // half of the cells with uniform weights.
        let outline = Rect::new(0.0, 0.0, 10.0, 10.0);
        let fp = Floorplan::new(
            outline,
            vec![therm3d_floorplan::Block::new(
                "half",
                therm3d_floorplan::UnitKind::Other,
                Rect::new(0.0, 0.0, 5.0, 10.0),
            )],
        )
        .unwrap();
        let g = LayerGrid::new(outline, 2, 2);
        let cover = &g.block_coverage(&fp)[0];
        assert_eq!(cover.len(), 2, "covers cells (0,0) and (1,0)");
        for (_, w) in cover {
            assert!((w - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn single_cell_grid() {
        let fp = niagara::cache_layer();
        let g = LayerGrid::new(*fp.outline(), 1, 1);
        for cover in g.block_coverage(&fp) {
            assert_eq!(cover.len(), 1);
            assert_eq!(cover[0].0, 0);
            assert!((cover[0].1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_cell_index_panics() {
        let g = LayerGrid::new(Rect::new(0.0, 0.0, 1.0, 1.0), 2, 2);
        let _ = g.cell_index(2, 0);
    }
}
