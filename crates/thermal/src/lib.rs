//! A from-scratch 3D RC thermal simulator in the style of HotSpot v4.2's
//! grid model, built for the `therm3d` reproduction of
//! "Dynamic Thermal Management in 3D Multicore Architectures"
//! (Coskun et al., DATE 2009).
//!
//! The crate turns a [`therm3d_floorplan::Stack3d`] into an RC network:
//! each silicon layer becomes a grid of thermal cells with lateral and
//! vertical conductances, inter-die heat flows through the TSV-adjusted
//! interface material, and the package (TIM, copper spreader, heat sink,
//! convection to ambient) closes the path using the paper's Table II
//! parameters. Steady states are solved directly through a sparse LDLᵀ
//! factorization of the conductance matrix; transients default to an
//! implicit pre-factored integrator ([`Integrator::ImplicitCn`]) that
//! advances a full 100 ms tick in a couple of triangular solves, with
//! stability-controlled explicit RK4 retained as the golden reference
//! ([`Integrator::ExplicitRk4`]).
//!
//! # Quick start
//!
//! ```
//! use therm3d_floorplan::Experiment;
//! use therm3d_thermal::{ThermalConfig, ThermalModel};
//!
//! let stack = Experiment::Exp2.stack();
//! let mut model = ThermalModel::new(&stack, ThermalConfig::paper_default().with_grid(4, 4));
//! let mut powers = vec![0.0; stack.num_blocks()];
//! for core in stack.core_ids() {
//!     powers[stack.core_block_index(core)] = 3.0; // active SPARC core
//! }
//! let steady = model.initialize_steady_state(&powers);
//! assert!(steady.iter().cloned().fold(f64::MIN, f64::max) > 45.0);
//! ```

pub mod block_model;
pub mod config;
pub mod grid;
pub mod material;
pub mod model;
pub mod network;
pub mod share;
pub mod sparse;
pub mod tsv;
pub mod units;

pub use block_model::BlockThermalModel;
pub use config::{Integrator, ThermalConfig};
pub use material::Material;
pub use model::ThermalModel;
pub use network::RcNetwork;
pub use share::FactorShare;
pub use tsv::{TsvSpec, TsvVariant};
