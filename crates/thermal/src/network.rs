//! Assembly of the 3D RC thermal network from a die stack.
//!
//! Every silicon layer is discretized into grid cells (one thermal node
//! each). Vertical heat flow passes through the inter-die interface
//! material (with the TSV-adjusted joint resistivity) between stacked
//! layers, and through the TIM, heat spreader and heat sink below layer 0.
//! The sink convects into a fixed-temperature ambient through the
//! Table II convection resistance.
//!
//! ```text
//!   layer L-1 cells          (top of stack, adiabatic above)
//!      ║ interface (joint ρ)
//!   …
//!      ║ interface (joint ρ)
//!   layer 0 cells
//!      ║ TIM
//!   spreader node ── sink node ──(R_conv)── ambient (fixed)
//! ```

use therm3d_floorplan::Stack3d;

use crate::config::ThermalConfig;
use crate::grid::LayerGrid;
use crate::sparse::{CsrMatrix, TripletMatrix};
use crate::units::kelvin_from_celsius;

const MM_TO_M: f64 = 1e-3;

/// The assembled RC network: conductance matrix, per-node heat capacities,
/// ambient coupling, and the block ↔ node mapping.
#[derive(Debug, Clone)]
pub struct RcNetwork {
    conductance: CsrMatrix,
    /// Heat capacity per node, J/K.
    capacitance: Vec<f64>,
    /// Conductance to the fixed ambient per node, W/K (non-zero only at
    /// the sink).
    ambient_conductance: Vec<f64>,
    /// Ambient temperature in kelvin.
    ambient_k: f64,
    /// Per-layer grids (all identical geometry, one per silicon layer).
    grids: Vec<LayerGrid>,
    /// For each global block site: the `(node, weight)` cells it covers;
    /// weights sum to 1 per block.
    block_nodes: Vec<Vec<(usize, f64)>>,
    num_cell_nodes: usize,
    spreader_node: usize,
    sink_node: usize,
}

impl RcNetwork {
    /// Builds the network for `stack` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ThermalConfig::validate`].
    #[must_use]
    pub fn build(stack: &Stack3d, config: &ThermalConfig) -> Self {
        config.validate();
        let layers = stack.layer_count();
        let grids: Vec<LayerGrid> = (0..layers)
            .map(|l| LayerGrid::new(*stack.layer(l).outline(), config.grid_rows, config.grid_cols))
            .collect();
        let cells_per_layer = grids[0].num_cells();
        let num_cell_nodes = cells_per_layer * layers;
        let spreader_node = num_cell_nodes;
        let sink_node = num_cell_nodes + 1;
        let n = num_cell_nodes + 2;

        let cell_w = grids[0].cell_width_mm() * MM_TO_M;
        let cell_h = grids[0].cell_height_mm() * MM_TO_M;
        let cell_area = cell_w * cell_h;
        let t_die = config.die_thickness_m;
        let k_si = config.silicon.conductivity;

        let mut g = TripletMatrix::new(n);
        let mut cap = vec![0.0; n];
        let mut g_amb = vec![0.0; n];

        // Per-cell silicon heat capacity, plus half the adjacent interface
        // material's capacity lumped into each neighbouring cell.
        let c_cell_si = config.silicon.volume_capacitance(cell_area * t_die);
        let c_half_interface =
            config.interlayer.volume_capacitance(cell_area * config.interlayer_thickness_m) / 2.0;

        // Lateral conductances within each layer.
        let g_lat_x = k_si * (t_die * cell_h) / cell_w;
        let g_lat_y = k_si * (t_die * cell_w) / cell_h;
        for (l, grid) in grids.iter().enumerate() {
            let base = l * cells_per_layer;
            for r in 0..grid.rows() {
                for c in 0..grid.cols() {
                    let i = base + grid.cell_index(r, c);
                    cap[i] += c_cell_si;
                    if c + 1 < grid.cols() {
                        g.add_conductance(i, base + grid.cell_index(r, c + 1), g_lat_x);
                    }
                    if r + 1 < grid.rows() {
                        g.add_conductance(i, base + grid.cell_index(r + 1, c), g_lat_y);
                    }
                }
            }
        }

        // Vertical conductances between stacked layers: half-die silicon,
        // joint interface, half-die silicon — all per cell column.
        let r_vert = (t_die / k_si
            + config.interlayer_thickness_m * config.interlayer.resistivity())
            / cell_area;
        let g_vert = 1.0 / r_vert;
        for l in 0..layers.saturating_sub(1) {
            for cell in 0..cells_per_layer {
                let lo = l * cells_per_layer + cell;
                let hi = (l + 1) * cells_per_layer + cell;
                g.add_conductance(lo, hi, g_vert);
                cap[lo] += c_half_interface;
                cap[hi] += c_half_interface;
            }
        }

        // Layer 0 into the spreader through the TIM, per cell column:
        // half-die silicon + TIM slab + spreader thickness over the cell
        // footprint.
        let r_to_spreader = (t_die / 2.0 / k_si
            + config.tim_thickness_m * config.tim.resistivity()
            + config.spreader_thickness_m / config.spreader.conductivity)
            / cell_area;
        let g_to_spreader = 1.0 / r_to_spreader;
        for cell in 0..cells_per_layer {
            g.add_conductance(cell, spreader_node, g_to_spreader);
        }

        // Package: spreader body capacity, lumped spreader→sink resistance,
        // sink capacity and convection to ambient (Table II).
        cap[spreader_node] = config.spreader.volume_capacitance(
            config.spreader_side_m * config.spreader_side_m * config.spreader_thickness_m,
        );
        cap[sink_node] = config.convection_capacitance_jk;
        g.add_conductance(spreader_node, sink_node, 1.0 / config.spreader_to_sink_resistance_kw);
        g_amb[sink_node] = 1.0 / config.convection_resistance_kw;
        g.add_grounded_conductance(sink_node, g_amb[sink_node]);

        // Block → node coverage, per global site.
        let mut block_nodes = Vec::with_capacity(stack.num_blocks());
        for (l, fp) in stack.layers().iter().enumerate() {
            let base = l * cells_per_layer;
            for cover in grids[l].block_coverage(fp) {
                block_nodes
                    .push(cover.into_iter().map(|(cell, w)| (base + cell, w)).collect::<Vec<_>>());
            }
        }
        debug_assert_eq!(block_nodes.len(), stack.num_blocks());

        let conductance = g.to_csr();
        // The RC system is only well-posed if G is symmetric (every
        // conductance added pairwise) and every node has thermal mass;
        // the implicit integrator's SPD factorization relies on both.
        debug_assert!(
            conductance.is_symmetric(1e-9),
            "conductance matrix must be symmetric (pairwise-added conductances)"
        );
        debug_assert!(
            cap.iter().all(|&c| c > 0.0),
            "every node needs positive heat capacity for the RC system to be SPD"
        );

        Self {
            conductance,
            capacitance: cap,
            ambient_conductance: g_amb,
            ambient_k: kelvin_from_celsius(config.ambient_c),
            grids,
            block_nodes,
            num_cell_nodes,
            spreader_node,
            sink_node,
        }
    }

    /// The conductance (Laplacian + ambient diagonal) matrix.
    #[must_use]
    pub fn conductance(&self) -> &CsrMatrix {
        &self.conductance
    }

    /// Per-node heat capacities in J/K.
    #[must_use]
    pub fn capacitance(&self) -> &[f64] {
        &self.capacitance
    }

    /// Per-node conductance to ambient in W/K.
    #[must_use]
    pub fn ambient_conductance(&self) -> &[f64] {
        &self.ambient_conductance
    }

    /// Ambient temperature in kelvin.
    #[must_use]
    pub fn ambient_k(&self) -> f64 {
        self.ambient_k
    }

    /// Total number of nodes (cells + spreader + sink).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.capacitance.len()
    }

    /// Number of silicon cell nodes.
    #[must_use]
    pub fn cell_node_count(&self) -> usize {
        self.num_cell_nodes
    }

    /// Node index of the heat spreader.
    #[must_use]
    pub fn spreader_node(&self) -> usize {
        self.spreader_node
    }

    /// Node index of the heat sink.
    #[must_use]
    pub fn sink_node(&self) -> usize {
        self.sink_node
    }

    /// Number of silicon layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.grids.len()
    }

    /// The grid of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[must_use]
    pub fn grid(&self, l: usize) -> &LayerGrid {
        &self.grids[l]
    }

    /// `(node, weight)` coverage of global block `site` (weights sum to 1).
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn block_nodes(&self, site: usize) -> &[(usize, f64)] {
        &self.block_nodes[site]
    }

    /// Number of mapped blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.block_nodes.len()
    }

    /// Distributes per-block powers (W) onto nodes, returning a per-node
    /// power vector.
    ///
    /// # Panics
    ///
    /// Panics if `block_powers.len() != block_count()` or any power is
    /// negative/not finite.
    #[must_use]
    pub fn node_power(&self, block_powers: &[f64]) -> Vec<f64> {
        let mut p = vec![0.0; self.node_count()];
        self.node_power_into(block_powers, &mut p);
        p
    }

    /// In-place variant of [`Self::node_power`].
    ///
    /// # Panics
    ///
    /// See [`Self::node_power`]; additionally panics if `out` has the
    /// wrong length.
    pub fn node_power_into(&self, block_powers: &[f64], out: &mut [f64]) {
        assert_eq!(
            block_powers.len(),
            self.block_nodes.len(),
            "expected one power entry per block"
        );
        assert_eq!(out.len(), self.node_count(), "output length mismatch");
        out.fill(0.0);
        for (bi, &pw) in block_powers.iter().enumerate() {
            assert!(pw.is_finite() && pw >= 0.0, "block {bi} power {pw} must be non-negative");
            for &(node, w) in &self.block_nodes[bi] {
                out[node] += pw * w;
            }
        }
    }

    /// Area-weighted average temperature of a block given node
    /// temperatures (kelvin in, kelvin out).
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range or `node_temps` has the wrong
    /// length.
    #[must_use]
    pub fn block_temperature(&self, site: usize, node_temps: &[f64]) -> f64 {
        assert_eq!(node_temps.len(), self.node_count(), "node temperature length mismatch");
        self.block_nodes[site].iter().map(|&(n, w)| node_temps[n] * w).sum()
    }

    /// Assembles the shifted system `α·C + G` (as a fresh CSR matrix)
    /// — the left-hand side of one implicit integration stage with
    /// `α = shift/h`. SPD for any `α ≥ 0` since `G` is and every
    /// capacitance is positive.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    #[must_use]
    pub fn shifted_system(&self, alpha: f64) -> CsrMatrix {
        assert!(alpha.is_finite() && alpha >= 0.0, "shift must be non-negative, got {alpha}");
        let diag: Vec<f64> = self.capacitance.iter().map(|&c| alpha * c).collect();
        self.conductance.with_added_diagonal(&diag)
    }

    /// A conservative upper bound on the stiffest eigenvalue of
    /// `C⁻¹·G` (Gershgorin), used to pick a stable explicit step.
    #[must_use]
    pub fn stiffness_bound(&self) -> f64 {
        let diag = self.conductance.diagonal();
        diag.iter().zip(&self.capacitance).map(|(&d, &c)| 2.0 * d / c).fold(0.0, f64::max)
    }

    /// A geometric nested-dissection elimination order for this
    /// network (`perm[new] = old`), exploiting the known
    /// layers × rows × cols box structure: recursively bisect the box
    /// along its largest dimension, order each half first and the
    /// one-cell separator slab after both, and put the spreader and
    /// sink — the only non-grid nodes, and the densest rows — last.
    ///
    /// Near-linear to compute, where the exact minimum-degree search in
    /// [`crate::sparse::factor::min_degree_order`] is quadratic-plus —
    /// the difference between milliseconds and minutes at the
    /// 64×64-per-layer sizes the blocked factorization targets, with
    /// comparable fill on these grid Laplacians.
    #[must_use]
    pub fn nested_dissection_perm(&self) -> Vec<usize> {
        let cells_per_layer = self.grids[0].num_cells();
        let mut perm = Vec::with_capacity(self.node_count());
        self.nd_order(
            &mut perm,
            cells_per_layer,
            (0, self.grids.len()),
            (0, self.grids[0].rows()),
            (0, self.grids[0].cols()),
        );
        debug_assert_eq!(perm.len(), self.num_cell_nodes);
        perm.push(self.spreader_node);
        perm.push(self.sink_node);
        perm
    }

    /// Recursive step of [`Self::nested_dissection_perm`] over the cell
    /// box `layers × rows × cols` (half-open ranges).
    fn nd_order(
        &self,
        out: &mut Vec<usize>,
        cells_per_layer: usize,
        (l0, l1): (usize, usize),
        (r0, r1): (usize, usize),
        (c0, c1): (usize, usize),
    ) {
        const LEAF_MAX: usize = 8;
        let (dl, dr, dc) = (l1 - l0, r1 - r0, c1 - c0);
        if dl * dr * dc <= LEAF_MAX {
            for l in l0..l1 {
                for r in r0..r1 {
                    for c in c0..c1 {
                        out.push(l * cells_per_layer + self.grids[l].cell_index(r, c));
                    }
                }
            }
            return;
        }
        // Bisect the largest dimension (ties: rows, then cols, then
        // layers — fully deterministic), separator slab ordered last.
        if dr >= dc && dr >= dl {
            let m = r0 + dr / 2;
            self.nd_order(out, cells_per_layer, (l0, l1), (r0, m), (c0, c1));
            self.nd_order(out, cells_per_layer, (l0, l1), (m + 1, r1), (c0, c1));
            self.nd_order(out, cells_per_layer, (l0, l1), (m, m + 1), (c0, c1));
        } else if dc >= dl {
            let m = c0 + dc / 2;
            self.nd_order(out, cells_per_layer, (l0, l1), (r0, r1), (c0, m));
            self.nd_order(out, cells_per_layer, (l0, l1), (r0, r1), (m + 1, c1));
            self.nd_order(out, cells_per_layer, (l0, l1), (r0, r1), (m, m + 1));
        } else {
            let m = l0 + dl / 2;
            self.nd_order(out, cells_per_layer, (l0, m), (r0, r1), (c0, c1));
            self.nd_order(out, cells_per_layer, (m + 1, l1), (r0, r1), (c0, c1));
            self.nd_order(out, cells_per_layer, (m, m + 1), (r0, r1), (c0, c1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use therm3d_floorplan::Experiment;

    fn net(exp: Experiment, rows: usize, cols: usize) -> RcNetwork {
        let stack = exp.stack();
        let cfg = ThermalConfig::paper_default().with_grid(rows, cols);
        RcNetwork::build(&stack, &cfg)
    }

    #[test]
    fn node_counts() {
        let n = net(Experiment::Exp1, 4, 4);
        assert_eq!(n.node_count(), 2 * 16 + 2);
        assert_eq!(n.cell_node_count(), 32);
        assert_eq!(n.spreader_node(), 32);
        assert_eq!(n.sink_node(), 33);
    }

    #[test]
    fn conductance_matrix_is_symmetric() {
        let n = net(Experiment::Exp2, 4, 4);
        assert!(n.conductance().is_symmetric(1e-9));
    }

    #[test]
    fn all_capacitances_positive() {
        let n = net(Experiment::Exp3, 4, 4);
        for (i, &c) in n.capacitance().iter().enumerate() {
            assert!(c > 0.0, "node {i} capacitance {c}");
        }
    }

    #[test]
    fn sink_capacitance_matches_table_ii() {
        let n = net(Experiment::Exp1, 4, 4);
        assert!((n.capacitance()[n.sink_node()] - 140.0).abs() < 1e-9);
        assert!((n.ambient_conductance()[n.sink_node()] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn block_power_distribution_conserves_total() {
        let stack = Experiment::Exp1.stack();
        let cfg = ThermalConfig::paper_default().with_grid(6, 6);
        let n = RcNetwork::build(&stack, &cfg);
        let powers: Vec<f64> = (0..stack.num_blocks()).map(|i| i as f64 * 0.3).collect();
        let node_p = n.node_power(&powers);
        let total_in: f64 = powers.iter().sum();
        let total_out: f64 = node_p.iter().sum();
        assert!((total_in - total_out).abs() < 1e-9);
    }

    #[test]
    fn block_temperature_of_uniform_field_is_uniform() {
        let n = net(Experiment::Exp4, 4, 4);
        let temps = vec![320.0; n.node_count()];
        for site in 0..n.block_count() {
            assert!((n.block_temperature(site, &temps) - 320.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn negative_power_rejected() {
        let n = net(Experiment::Exp1, 2, 2);
        let mut powers = vec![0.0; n.block_count()];
        powers[0] = -1.0;
        let _ = n.node_power(&powers);
    }

    #[test]
    fn stiffness_bound_is_positive_and_finite() {
        let n = net(Experiment::Exp3, 8, 8);
        let s = n.stiffness_bound();
        assert!(s.is_finite() && s > 0.0);
        // With the paper geometry the stiffest time constant is around a
        // millisecond; the bound should sit in a physically plausible range.
        assert!(s > 100.0 && s < 1e6, "stiffness bound {s}");
    }

    #[test]
    fn shifted_system_adds_scaled_capacitance_to_the_diagonal() {
        let n = net(Experiment::Exp1, 4, 4);
        let alpha = 34.142;
        let shifted = n.shifted_system(alpha);
        assert_eq!(shifted.dim(), n.node_count());
        let g_diag = n.conductance().diagonal();
        for (i, d) in shifted.diagonal().iter().enumerate() {
            let expect = g_diag[i] + alpha * n.capacitance()[i];
            assert!((d - expect).abs() < 1e-9 * expect.abs().max(1.0), "node {i}");
        }
        // Off-diagonals are untouched.
        assert!((shifted.get(0, 1) - n.conductance().get(0, 1)).abs() < 1e-12);
        assert!(shifted.is_symmetric(1e-9));
    }

    #[test]
    fn nested_dissection_perm_is_a_permutation_with_package_last() {
        let n = net(Experiment::Exp2, 8, 8);
        let perm = n.nested_dissection_perm();
        assert_eq!(perm.len(), n.node_count());
        let mut seen = vec![false; n.node_count()];
        for &p in &perm {
            assert!(!seen[p], "index {p} repeated");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(perm[n.node_count() - 2], n.spreader_node());
        assert_eq!(perm[n.node_count() - 1], n.sink_node());
    }

    #[test]
    fn nested_dissection_fill_is_competitive_and_solves_agree() {
        use crate::sparse::factor::{analyze_with, analyze_with_perm, FillOrdering};
        let n = net(Experiment::Exp2, 16, 16);
        let g = n.conductance();
        let nd = analyze_with_perm(g, n.nested_dissection_perm());
        let natural = analyze_with(g, FillOrdering::Natural);
        assert!(
            nd.nnz_l() < natural.nnz_l(),
            "nested dissection fill {} must beat natural fill {}",
            nd.nnz_l(),
            natural.nnz_l()
        );
        let b: Vec<f64> = (0..g.dim()).map(|i| (i % 9) as f64 * 0.5).collect();
        let x_nd = nd.factor_numeric(g).unwrap().solve(&b);
        let x_nat = natural.factor_numeric(g).unwrap().solve(&b);
        for (a, b) in x_nd.iter().zip(&x_nat) {
            assert!((a - b).abs() < 1e-7 * a.abs().max(1.0));
        }
    }

    #[test]
    fn laplacian_row_sums_equal_ambient_coupling() {
        // G·1 should be zero everywhere except the ambient-connected sink.
        let n = net(Experiment::Exp2, 4, 4);
        let ones = vec![1.0; n.node_count()];
        let y = n.conductance().mul(&ones);
        for (i, yi) in y.iter().enumerate() {
            let expect = n.ambient_conductance()[i];
            assert!((yi - expect).abs() < 1e-9, "row {i}: {yi} vs {expect}");
        }
    }
}
