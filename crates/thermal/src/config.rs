//! Thermal model configuration (paper Table II plus HotSpot-like package
//! defaults).

use std::fmt;
use std::str::FromStr;

use crate::material::Material;
use crate::tsv::TsvSpec;

/// Transient time-integration scheme for [`ThermalModel::step`].
///
/// [`ThermalModel::step`]: crate::ThermalModel::step
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Integrator {
    /// Implicit Crank–Nicolson-based stepping (the default): the
    /// one-step TR-BDF2 composite — a trapezoidal (CN) stage followed
    /// by a BDF2 stage — whose two stages share one pre-factored
    /// `α·C + G` system per step size. L-stable, second order, and
    /// O(nnz) per tick however stiff the RC network is.
    #[default]
    ImplicitCn,
    /// Classic explicit RK4 with stability-bounded substeps — thousands
    /// of substeps per 100 ms tick on the paper's stacks. Retained as
    /// the golden reference the implicit path is cross-checked against.
    ExplicitRk4,
}

impl Integrator {
    /// Every supported integrator, in canonical order.
    pub const ALL: [Integrator; 2] = [Integrator::ImplicitCn, Integrator::ExplicitRk4];

    /// Canonical name, as accepted by [`FromStr`] and written by sweep
    /// specs (`implicit-cn`, `explicit-rk4`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Integrator::ImplicitCn => "implicit-cn",
            Integrator::ExplicitRk4 => "explicit-rk4",
        }
    }
}

impl fmt::Display for Integrator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Integrator {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "implicit-cn" | "implicit" | "cn" => Ok(Integrator::ImplicitCn),
            "explicit-rk4" | "rk4" | "explicit" => Ok(Integrator::ExplicitRk4),
            other => {
                Err(format!("unknown integrator `{other}` (expected implicit-cn or explicit-rk4)"))
            }
        }
    }
}

/// Parameters of the RC thermal model.
///
/// Defaults reproduce the paper's Table II and the HotSpot v4.2 default
/// package the authors used:
///
/// | Parameter | Value |
/// |---|---|
/// | Die thickness (one stack) | 0.15 mm |
/// | Interlayer material thickness | 0.02 mm |
/// | Interlayer material resistivity | 0.25 m·K/W (0.23 joint with TSVs) |
/// | Convection resistance | 0.1 K/W |
/// | Convection capacitance | 140 J/K |
///
/// # Examples
///
/// ```
/// use therm3d_thermal::ThermalConfig;
///
/// let cfg = ThermalConfig::paper_default();
/// assert_eq!(cfg.grid_rows, 8);
/// assert!((cfg.convection_resistance_kw - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalConfig {
    /// Ambient air temperature in °C (HotSpot default: 45 °C).
    pub ambient_c: f64,
    /// Thickness of each silicon die in metres (Table II: 0.15 mm).
    pub die_thickness_m: f64,
    /// Silicon properties.
    pub silicon: Material,
    /// Thickness of the inter-die interface material in metres
    /// (Table II: 0.02 mm).
    pub interlayer_thickness_m: f64,
    /// Interface material including the TSV contribution (joint
    /// resistivity 0.23 m·K/W for the paper's 1024-via configuration).
    pub interlayer: Material,
    /// Thermal-interface-material thickness between the bottom die and
    /// the heat spreader, in metres (HotSpot v4.2 default: 20 µm).
    pub tim_thickness_m: f64,
    /// TIM properties.
    pub tim: Material,
    /// Heat spreader edge length in metres (HotSpot default: 30 mm).
    pub spreader_side_m: f64,
    /// Heat spreader thickness in metres (HotSpot default: 1 mm).
    pub spreader_thickness_m: f64,
    /// Spreader (and sink) material.
    pub spreader: Material,
    /// Lumped resistance from the spreader node into the sink body, in
    /// K/W: spreader→sink constriction plus the sink's own conduction.
    /// 0.2 K/W reproduces the junction-to-ambient resistance (≈ 0.3 K/W
    /// with the Table II convection term) of the modest server package
    /// HotSpot's defaults describe, putting loaded 3D stacks in the
    /// neighbourhood of the paper's 85 °C threshold.
    pub spreader_to_sink_resistance_kw: f64,
    /// Convection resistance from sink to ambient, in K/W (Table II: 0.1).
    pub convection_resistance_kw: f64,
    /// Convection (sink) capacitance in J/K (Table II: 140).
    pub convection_capacitance_jk: f64,
    /// Grid rows per layer for the spatial discretization.
    pub grid_rows: usize,
    /// Grid columns per layer.
    pub grid_cols: usize,
    /// Transient integration scheme (default: pre-factored implicit).
    pub integrator: Integrator,
}

impl ThermalConfig {
    /// The exact configuration used for the paper's experiments: Table II
    /// values, the 1024-via joint interlayer resistivity of 0.23 m·K/W,
    /// and an 8×8 grid per layer.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            ambient_c: 45.0,
            die_thickness_m: 0.15e-3,
            silicon: Material::SILICON,
            interlayer_thickness_m: 0.02e-3,
            interlayer: TsvSpec::paper_default().joint_material(),
            tim_thickness_m: 20.0e-6,
            // HotSpot's default interface thickness with a slightly
            // stiffer k = 2 W/(m·K) (2009-era filled epoxies); this sets
            // the per-cell junction-to-spreader constriction.
            tim: Material::new(2.0, 4.0e6),
            spreader_side_m: 30.0e-3,
            spreader_thickness_m: 1.0e-3,
            spreader: Material::COPPER,
            spreader_to_sink_resistance_kw: 0.2,
            convection_resistance_kw: 0.1,
            convection_capacitance_jk: 140.0,
            grid_rows: 8,
            grid_cols: 8,
            integrator: Integrator::default(),
        }
    }

    /// Returns the configuration with a different grid resolution
    /// (accuracy/performance trade-off; the figures use 8×8).
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    #[must_use]
    pub fn with_grid(mut self, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must have at least one cell");
        self.grid_rows = rows;
        self.grid_cols = cols;
        self
    }

    /// Returns the configuration with a different interlayer material
    /// (e.g. from a custom [`TsvSpec`]).
    #[must_use]
    pub fn with_interlayer(mut self, interlayer: Material) -> Self {
        self.interlayer = interlayer;
        self
    }

    /// Returns the configuration with the interlayer material resolved
    /// from a named [`TsvVariant`](crate::tsv::TsvVariant) — the hook the scenario sweep axes
    /// use to rebuild the RC network per variant instead of the
    /// hard-coded paper joint material.
    #[must_use]
    pub fn with_tsv(self, variant: crate::tsv::TsvVariant) -> Self {
        self.with_interlayer(variant.joint_material())
    }

    /// Returns the configuration with a different transient integrator
    /// (e.g. [`Integrator::ExplicitRk4`] for golden-reference runs).
    #[must_use]
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Validates parameter sanity; called by the network builder.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on non-physical parameters.
    pub fn validate(&self) {
        assert!(self.die_thickness_m > 0.0, "die thickness must be positive");
        assert!(self.interlayer_thickness_m > 0.0, "interlayer thickness must be positive");
        assert!(self.tim_thickness_m > 0.0, "TIM thickness must be positive");
        assert!(self.spreader_side_m > 0.0, "spreader side must be positive");
        assert!(self.spreader_thickness_m > 0.0, "spreader thickness must be positive");
        assert!(
            self.spreader_to_sink_resistance_kw > 0.0,
            "spreader-to-sink resistance must be positive"
        );
        assert!(self.convection_resistance_kw > 0.0, "convection resistance must be positive");
        assert!(self.convection_capacitance_jk > 0.0, "convection capacitance must be positive");
        assert!(self.grid_rows > 0 && self.grid_cols > 0, "grid must have at least one cell");
        assert!(self.ambient_c.is_finite(), "ambient temperature must be finite");
    }
}

impl Default for ThermalConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_ii() {
        let c = ThermalConfig::paper_default();
        assert!((c.die_thickness_m - 0.15e-3).abs() < 1e-12);
        assert!((c.interlayer_thickness_m - 0.02e-3).abs() < 1e-12);
        assert!((c.convection_resistance_kw - 0.1).abs() < 1e-12);
        assert!((c.convection_capacitance_jk - 140.0).abs() < 1e-12);
        // Joint interlayer resistivity ≈ 0.23 m·K/W with the 1024-via spec.
        assert!((c.interlayer.resistivity() - 0.23).abs() < 0.005);
        c.validate();
    }

    #[test]
    fn with_grid_overrides() {
        let c = ThermalConfig::paper_default().with_grid(4, 6);
        assert_eq!((c.grid_rows, c.grid_cols), (4, 6));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_grid_rejected() {
        let _ = ThermalConfig::paper_default().with_grid(0, 4);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(ThermalConfig::default(), ThermalConfig::paper_default());
    }

    #[test]
    fn with_tsv_resolves_the_interlayer_from_the_variant() {
        use crate::tsv::TsvVariant;
        // The paper variant is exactly the hard-coded default.
        let cfg = ThermalConfig::paper_default().with_tsv(TsvVariant::Paper);
        assert_eq!(cfg, ThermalConfig::paper_default());
        // Other variants change only the interlayer material.
        let bare = ThermalConfig::paper_default().with_tsv(TsvVariant::Bare);
        assert!((bare.interlayer.resistivity() - 0.25).abs() < 1e-12);
        assert_eq!(bare.with_interlayer(cfg.interlayer), cfg);
    }

    #[test]
    fn implicit_is_the_default_integrator() {
        assert_eq!(ThermalConfig::paper_default().integrator, Integrator::ImplicitCn);
        let rk4 = ThermalConfig::paper_default().with_integrator(Integrator::ExplicitRk4);
        assert_eq!(rk4.integrator, Integrator::ExplicitRk4);
    }

    #[test]
    fn integrator_names_round_trip() {
        for integ in Integrator::ALL {
            assert_eq!(integ.name().parse::<Integrator>(), Ok(integ));
            assert_eq!(integ.to_string(), integ.name());
        }
        // Short aliases are accepted case-insensitively.
        assert_eq!("RK4".parse::<Integrator>(), Ok(Integrator::ExplicitRk4));
        assert_eq!("Implicit".parse::<Integrator>(), Ok(Integrator::ImplicitCn));
        assert!("euler".parse::<Integrator>().unwrap_err().contains("euler"));
    }
}
