//! Sparse LDLᵀ (square-root-free Cholesky) factorization of symmetric
//! positive-definite CSR matrices, with a fill-reducing minimum-degree
//! ordering and forward/backward triangular solves.
//!
//! This is the direct-solver backbone of the implicit transient
//! integrator: the thermal network's matrices (`G` for steady state,
//! `α·C + G` for the implicit step) never change after assembly, so one
//! [`factor`] call up front turns every subsequent solve into two
//! triangular sweeps plus a diagonal scale — `O(nnz(L))` instead of a
//! CG iteration per solve.
//!
//! The implementation is the classic up-looking algorithm (elimination
//! tree → per-row symbolic pattern → numeric row of L), in the style of
//! Davis's `LDL` package, preceded by a greedy exact minimum-degree
//! ordering on the adjacency graph. Everything is deterministic: the
//! ordering breaks ties by node index and the numeric phase is
//! sequential, so repeated factorizations of the same matrix are
//! bit-identical (a property the sweep cache's byte-identical-report
//! guarantee relies on).
//!
//! # Examples
//!
//! ```
//! use therm3d_thermal::sparse::{factor::factor, TripletMatrix};
//!
//! // 1D rod with one grounded end: SPD tridiagonal.
//! let mut t = TripletMatrix::new(3);
//! t.add_conductance(0, 1, 2.0);
//! t.add_conductance(1, 2, 2.0);
//! t.add_grounded_conductance(0, 1.0);
//! let f = factor(&t.to_csr()).expect("SPD");
//! let x = f.solve(&[0.0, 0.0, 1.0]);
//! // 1 W injected at the far end: T0 = 1, each link adds 1/2.
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! assert!((x[2] - 2.0).abs() < 1e-12);
//! ```

use std::collections::BTreeSet;
use std::fmt;

use super::CsrMatrix;

/// Node-elimination order used by the symbolic analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillOrdering {
    /// Greedy exact minimum degree with index tie-breaking (default):
    /// near-optimal fill on the RC network's grid-graph Laplacians.
    #[default]
    MinDegree,
    /// The matrix's own ordering (useful for debugging and for matrices
    /// that are already banded).
    Natural,
}

/// Why a factorization attempt was rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorError {
    /// Pivot position (in elimination order) where breakdown occurred.
    pub row: usize,
    /// The offending pivot value (`D[row]`).
    pub pivot: f64,
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} at elimination step {} of the LDL^T \
             factorization",
            self.pivot, self.row
        )
    }
}

impl std::error::Error for FactorError {}

/// A pre-computed `P·A·Pᵀ = L·D·Lᵀ` factorization of an SPD matrix.
///
/// `L` is unit lower triangular (implicit diagonal) stored by columns;
/// `D` is the positive pivot diagonal; `P` is the fill-reducing
/// permutation. [`solve`](Self::solve) /
/// [`solve_into`](Self::solve_into) apply
/// `x = Pᵀ·L⁻ᵀ·D⁻¹·L⁻¹·P·b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LdlFactor {
    n: usize,
    /// `perm[new] = old`: row/column `new` of the permuted matrix is
    /// row/column `old` of the original.
    perm: Vec<usize>,
    /// Column pointers of L (strictly-lower part, unit diagonal implicit).
    col_ptr: Vec<usize>,
    /// Row indices of L's stored entries.
    row_idx: Vec<usize>,
    /// Values of L's stored entries.
    values: Vec<f64>,
    /// The pivot diagonal D (all positive).
    d: Vec<f64>,
}

impl LdlFactor {
    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored non-zeros of `L` including the unit diagonal — the cost of
    /// one triangular solve is proportional to this.
    #[must_use]
    pub fn nnz_l(&self) -> usize {
        self.values.len() + self.n
    }

    /// The fill-reducing permutation (`perm[new] = old`).
    #[must_use]
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A·x = b`, allocating the result.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        let mut scratch = Vec::new();
        self.solve_into(b, &mut scratch, &mut x);
        x
    }

    /// Solves `A·x = b` into `x`, reusing `scratch` for the permuted
    /// intermediate (no allocation once `scratch` has warmed up).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` differ from `dim()`.
    // lint: region(alloc-free: ldlt-solve)
    pub fn solve_into(&self, b: &[f64], scratch: &mut Vec<f64>, x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert_eq!(x.len(), self.n, "solution length mismatch");
        scratch.resize(self.n, 0.0);
        let z = &mut scratch[..];
        for (zi, &old) in z.iter_mut().zip(&self.perm) {
            *zi = b[old];
        }
        // Forward: L·y = P·b.
        for j in 0..self.n {
            let zj = z[j];
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                z[self.row_idx[p]] -= self.values[p] * zj;
            }
        }
        // Diagonal: D·w = y.
        for (zi, &di) in z.iter_mut().zip(&self.d) {
            *zi /= di;
        }
        // Backward: Lᵀ·v = w.
        for j in (0..self.n).rev() {
            let mut zj = z[j];
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                zj -= self.values[p] * z[self.row_idx[p]];
            }
            z[j] = zj;
        }
        // Un-permute: x = Pᵀ·v.
        for (zi, &old) in z.iter().zip(&self.perm) {
            x[old] = *zi;
        }
    }
    // lint: end-region
}

/// The value-independent half of an LDLᵀ factorization: fill-reducing
/// permutation, elimination tree and column pointers of `L`.
///
/// The analysis depends only on the matrix's *sparsity pattern*, so one
/// `Symbolic` serves every matrix with that pattern — in particular all
/// shifted systems `α·C + G` of one RC network (`C` is diagonal and `G`
/// has a full structural diagonal, so the pattern is α-independent) and
/// `G` itself. [`Symbolic::factor_numeric`] runs only the numeric
/// phase against a cached analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbolic {
    n: usize,
    /// Stored-entry count of the analyzed matrix (cheap guard that a
    /// numeric refactorization is using the same pattern).
    nnz: usize,
    /// `perm[new] = old` fill-reducing permutation.
    perm: Vec<usize>,
    /// Inverse permutation.
    iperm: Vec<usize>,
    /// Elimination-tree parent per node (`usize::MAX` = root).
    parent: Vec<usize>,
    /// Column pointers of L (strictly-lower part).
    col_ptr: Vec<usize>,
}

impl Symbolic {
    /// Matrix dimension this analysis was computed for.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Predicted stored non-zeros of `L` including the unit diagonal.
    #[must_use]
    pub fn nnz_l(&self) -> usize {
        self.col_ptr[self.n] + self.n
    }

    /// Stored-entry count of the matrix this analysis was computed from
    /// (callers use it to check pattern compatibility up front).
    #[must_use]
    pub fn pattern_nnz(&self) -> usize {
        self.nnz
    }

    /// Runs the numeric phase against this analysis: computes `L` and
    /// `D` for `a`, which must have the **same sparsity pattern** as the
    /// matrix [`analyze`] saw (same dimension and stored-entry count are
    /// asserted; the RC-network systems this crate factors satisfy the
    /// stronger pattern-equality requirement by construction).
    ///
    /// # Errors
    ///
    /// [`FactorError`] when a pivot is not strictly positive.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s dimension or stored-entry count differ from the
    /// analyzed matrix's.
    pub fn factor_numeric(&self, a: &CsrMatrix) -> Result<LdlFactor, FactorError> {
        let n = self.n;
        assert_eq!(a.dim(), n, "numeric phase on a different-sized matrix");
        assert_eq!(a.nnz(), self.nnz, "numeric phase on a different sparsity pattern");
        let Symbolic { perm, iperm, parent, col_ptr, .. } = self;

        // Numeric phase (up-looking): compute row j of L against the
        // already finished columns, in elimination-tree topological order.
        let total = col_ptr[n];
        let mut row_idx = vec![0usize; total];
        let mut values = vec![0.0f64; total];
        let mut filled = vec![0usize; n];
        let mut d = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        let mut pattern = vec![0usize; n];
        let mut path = vec![0usize; n];
        let mut flag = vec![usize::MAX; n];
        for j in 0..n {
            let mut top = n;
            flag[j] = j;
            y[j] = 0.0;
            for (c_old, v) in a.row(perm[j]) {
                let i = iperm[c_old];
                if i > j {
                    continue;
                }
                y[i] += v;
                let mut len = 0;
                let mut k = i;
                while flag[k] != j {
                    path[len] = k;
                    len += 1;
                    flag[k] = j;
                    k = parent[k];
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    pattern[top] = path[len];
                }
            }
            let mut dj = y[j];
            y[j] = 0.0;
            for &k in &pattern[top..n] {
                let yk = y[k];
                y[k] = 0.0;
                let p0 = col_ptr[k];
                for p in p0..p0 + filled[k] {
                    y[row_idx[p]] -= values[p] * yk;
                }
                let ljk = yk / d[k];
                dj -= ljk * yk;
                let p = p0 + filled[k];
                row_idx[p] = j;
                values[p] = ljk;
                filled[k] += 1;
            }
            if !(dj > 0.0 && dj.is_finite()) {
                return Err(FactorError { row: j, pivot: dj });
            }
            d[j] = dj;
        }
        // Hard assert (O(n), negligible next to the factorization): a
        // matrix whose pattern differs from the analyzed one — possible
        // despite the dim/nnz guard above — would have written fill
        // into the wrong column slots, and release builds must not
        // return silently wrong factors.
        assert!(
            (0..n).all(|j| filled[j] == col_ptr[j + 1] - col_ptr[j]),
            "matrix pattern differs from the analyzed pattern (symbolic/numeric fill mismatch)"
        );
        Ok(LdlFactor { n, perm: perm.clone(), col_ptr: col_ptr.clone(), row_idx, values, d })
    }
}

/// Computes the symbolic analysis of `a` with the default minimum-degree
/// ordering: ordering, elimination tree and per-column fill counts.
/// Value-independent — reuse the result across every matrix sharing
/// `a`'s pattern via [`Symbolic::factor_numeric`].
#[must_use]
pub fn analyze(a: &CsrMatrix) -> Symbolic {
    analyze_with(a, FillOrdering::MinDegree)
}

/// [`analyze`] with an explicit [`FillOrdering`].
#[must_use]
pub fn analyze_with(a: &CsrMatrix, ordering: FillOrdering) -> Symbolic {
    let n = a.dim();
    let perm = match ordering {
        FillOrdering::MinDegree => min_degree_order(a),
        FillOrdering::Natural => (0..n).collect(),
    };
    let mut iperm = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        iperm[old] = new;
    }

    // Elimination tree + per-column non-zero counts of L, from the
    // pattern of the permuted matrix's lower triangle.
    let mut parent = vec![usize::MAX; n];
    let mut flag = vec![usize::MAX; n];
    let mut lnz = vec![0usize; n];
    for j in 0..n {
        flag[j] = j;
        for (c_old, _) in a.row(perm[j]) {
            let mut k = iperm[c_old];
            if k >= j {
                continue;
            }
            while flag[k] != j {
                if parent[k] == usize::MAX {
                    parent[k] = j;
                }
                lnz[k] += 1;
                flag[k] = j;
                k = parent[k];
            }
        }
    }
    let mut col_ptr = vec![0usize; n + 1];
    for j in 0..n {
        col_ptr[j + 1] = col_ptr[j] + lnz[j];
    }
    Symbolic { n, nnz: a.nnz(), perm, iperm, parent, col_ptr }
}

/// Factors `a` with the default minimum-degree ordering (one-shot:
/// symbolic analysis plus numeric phase; callers factoring several
/// matrices with one pattern should [`analyze`] once and reuse it).
///
/// # Errors
///
/// [`FactorError`] when a pivot is not strictly positive (the matrix is
/// not positive definite, e.g. a floating Laplacian with no ground).
///
/// # Panics
///
/// Panics if `a` is structurally unsymmetric (debug builds assert the
/// pattern; values are taken from the lower triangle).
pub fn factor(a: &CsrMatrix) -> Result<LdlFactor, FactorError> {
    factor_with(a, FillOrdering::MinDegree)
}

/// [`factor`] with an explicit [`FillOrdering`].
///
/// # Errors
///
/// See [`factor`].
pub fn factor_with(a: &CsrMatrix, ordering: FillOrdering) -> Result<LdlFactor, FactorError> {
    analyze_with(a, ordering).factor_numeric(a)
}

/// Greedy exact minimum-degree ordering of `a`'s adjacency graph
/// (elimination cliques materialized, ties broken by smallest index —
/// fully deterministic).
#[must_use]
pub fn min_degree_order(a: &CsrMatrix) -> Vec<usize> {
    let n = a.dim();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for r in 0..n {
        for (c, _) in a.row(r) {
            if c != r {
                adj[r].insert(c);
                adj[c].insert(r);
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut perm = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&i| !eliminated[i])
            .min_by_key(|&i| (adj[i].len(), i))
            .expect("uneliminated node remains");
        perm.push(v);
        eliminated[v] = true;
        let neighbours: Vec<usize> = adj[v].iter().copied().collect();
        for &u in &neighbours {
            adj[u].remove(&v);
        }
        for (i, &u) in neighbours.iter().enumerate() {
            for &w in &neighbours[i + 1..] {
                adj[u].insert(w);
                adj[w].insert(u);
            }
        }
        adj[v].clear();
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::{solve_cg, TripletMatrix};

    fn laplacian_chain(n: usize, g: f64, g_amb: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(n);
        for i in 0..n - 1 {
            t.add_conductance(i, i + 1, g);
        }
        t.add_grounded_conductance(0, g_amb);
        t.to_csr()
    }

    /// A 2D grid Laplacian with every node weakly grounded (SPD, and
    /// produces real fill under elimination).
    fn grid_laplacian(rows: usize, cols: usize) -> CsrMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut t = TripletMatrix::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_conductance(idx(r, c), idx(r, c + 1), 1.0 + (r + c) as f64 * 0.1);
                }
                if r + 1 < rows {
                    t.add_conductance(idx(r, c), idx(r + 1, c), 2.0 + c as f64 * 0.1);
                }
                t.add_grounded_conductance(idx(r, c), 0.01);
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_match_cg_on_a_grid() {
        let a = grid_laplacian(7, 9);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 * 0.25 - 1.0).collect();
        let f = factor(&a).expect("SPD grid");
        let x = f.solve(&b);
        let cg = solve_cg(&a, &b, &vec![0.0; n], 1e-13, 100_000);
        assert!(cg.converged);
        for (xi, ci) in x.iter().zip(&cg.x) {
            assert!((xi - ci).abs() < 1e-7, "{xi} vs {ci}");
        }
        // Residual check against the matrix itself.
        let r = a.mul(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9, "residual {ri} vs {bi}");
        }
    }

    #[test]
    fn natural_and_min_degree_agree() {
        let a = grid_laplacian(5, 5);
        let b: Vec<f64> = (0..a.dim()).map(|i| i as f64 * 0.1).collect();
        let xm = factor_with(&a, FillOrdering::MinDegree).unwrap().solve(&b);
        let xn = factor_with(&a, FillOrdering::Natural).unwrap().solve(&b);
        for (m, n) in xm.iter().zip(&xn) {
            assert!((m - n).abs() < 1e-9);
        }
    }

    #[test]
    fn min_degree_reduces_fill_on_grids() {
        let a = grid_laplacian(12, 12);
        let md = factor_with(&a, FillOrdering::MinDegree).unwrap();
        let nat = factor_with(&a, FillOrdering::Natural).unwrap();
        assert!(
            md.nnz_l() < nat.nnz_l(),
            "min-degree fill {} must beat natural fill {}",
            md.nnz_l(),
            nat.nnz_l()
        );
    }

    #[test]
    fn chain_solution_is_exact() {
        let n = 6;
        let a = laplacian_chain(n, 2.0, 1.0);
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        let x = factor(&a).unwrap().solve(&b);
        // 1 W through every link of resistance 1/2, node 0 at 1 K.
        for (i, xi) in x.iter().enumerate() {
            let expect = 1.0 + 0.5 * i as f64;
            assert!((xi - expect).abs() < 1e-12, "node {i}: {xi} vs {expect}");
        }
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        // A floating Laplacian (no ground) is singular: pivot hits zero.
        let mut t = TripletMatrix::new(3);
        t.add_conductance(0, 1, 1.0);
        t.add_conductance(1, 2, 1.0);
        let err = factor(&t.to_csr()).unwrap_err();
        assert!(err.to_string().contains("not positive definite"), "{err}");
    }

    #[test]
    fn factorization_is_deterministic() {
        let a = grid_laplacian(6, 8);
        let f1 = factor(&a).unwrap();
        let f2 = factor(&a).unwrap();
        assert_eq!(f1, f2, "same matrix, bit-identical factors");
    }

    #[test]
    fn solve_into_reuses_buffers() {
        let a = grid_laplacian(4, 4);
        let f = factor(&a).unwrap();
        let b = vec![1.0; a.dim()];
        let mut scratch = Vec::new();
        let mut x = vec![0.0; a.dim()];
        f.solve_into(&b, &mut scratch, &mut x);
        let direct = f.solve(&b);
        assert_eq!(x, direct);
        let cap = scratch.capacity();
        f.solve_into(&b, &mut scratch, &mut x);
        assert_eq!(scratch.capacity(), cap, "second solve must not reallocate");
    }

    #[test]
    fn symbolic_analysis_is_reusable_across_shifts() {
        // α·C + G for any α shares G's pattern (full structural
        // diagonal): one analysis must serve every shift bit-exactly.
        let g = grid_laplacian(6, 6);
        let symbolic = analyze(&g);
        let b: Vec<f64> = (0..g.dim()).map(|i| (i % 7) as f64 - 3.0).collect();
        for alpha in [0.5, 12.25, 341.0] {
            let diag: Vec<f64> = (0..g.dim()).map(|i| alpha * (1.0 + i as f64 * 0.01)).collect();
            let shifted = g.with_added_diagonal(&diag);
            let reused = symbolic.factor_numeric(&shifted).unwrap();
            let fresh = factor(&shifted).unwrap();
            // Same ordering (pattern-only input), so factors are
            // bit-identical, not merely numerically close.
            assert_eq!(reused, fresh, "alpha={alpha}");
            assert_eq!(reused.solve(&b), fresh.solve(&b));
        }
        assert_eq!(symbolic.nnz_l(), factor(&g).unwrap().nnz_l());
    }

    #[test]
    #[should_panic(expected = "different sparsity pattern")]
    fn symbolic_rejects_a_different_pattern() {
        let symbolic = analyze(&grid_laplacian(4, 4));
        let other = laplacian_chain(16, 1.0, 1.0);
        let _ = symbolic.factor_numeric(&other);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let a = grid_laplacian(5, 7);
        let f = factor(&a).unwrap();
        let mut seen = vec![false; a.dim()];
        for &p in f.permutation() {
            assert!(!seen[p], "index {p} repeated");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
