//! Sparse LDLᵀ (square-root-free Cholesky) factorization of symmetric
//! positive-definite CSR matrices, with a fill-reducing minimum-degree
//! ordering and forward/backward triangular solves.
//!
//! This is the direct-solver backbone of the implicit transient
//! integrator: the thermal network's matrices (`G` for steady state,
//! `α·C + G` for the implicit step) never change after assembly, so one
//! [`factor`] call up front turns every subsequent solve into two
//! triangular sweeps plus a diagonal scale — `O(nnz(L))` instead of a
//! CG iteration per solve.
//!
//! The implementation is the classic up-looking algorithm (elimination
//! tree → per-row symbolic pattern → numeric row of L), in the style of
//! Davis's `LDL` package, preceded by a greedy exact minimum-degree
//! ordering on the adjacency graph. Everything is deterministic: the
//! ordering breaks ties by node index and the numeric phase is
//! sequential, so repeated factorizations of the same matrix are
//! bit-identical (a property the sweep cache's byte-identical-report
//! guarantee relies on).
//!
//! # Examples
//!
//! ```
//! use therm3d_thermal::sparse::{factor::factor, TripletMatrix};
//!
//! // 1D rod with one grounded end: SPD tridiagonal.
//! let mut t = TripletMatrix::new(3);
//! t.add_conductance(0, 1, 2.0);
//! t.add_conductance(1, 2, 2.0);
//! t.add_grounded_conductance(0, 1.0);
//! let f = factor(&t.to_csr()).expect("SPD");
//! let x = f.solve(&[0.0, 0.0, 1.0]);
//! // 1 W injected at the far end: T0 = 1, each link adds 1/2.
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! assert!((x[2] - 2.0).abs() < 1e-12);
//! ```

use std::collections::BTreeSet;
use std::fmt;

use super::CsrMatrix;

/// Matrix dimension at which the blocked/supernodal numeric phase and
/// the level-set parallel solves take over from the scalar reference
/// path. Below the threshold the scalar up-looking factorization runs
/// unchanged, keeping every existing grid bit-for-bit identical to the
/// pre-blocked implementation; at and above it (64×64-per-layer
/// networks and larger) the dense-panel path wins on cache behaviour
/// and the solve parallelism pays for its barriers.
pub const BLOCKED_MIN_DIM: usize = 2048;

/// Width cap on detected supernodes: bounds the dense-panel working set
/// so a panel (width × panel-height doubles) stays cache-resident.
const SUPERNODE_MAX_WIDTH: usize = 32;

/// Node-elimination order used by the symbolic analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillOrdering {
    /// Greedy exact minimum degree with index tie-breaking (default):
    /// near-optimal fill on the RC network's grid-graph Laplacians.
    #[default]
    MinDegree,
    /// The matrix's own ordering (useful for debugging and for matrices
    /// that are already banded).
    Natural,
}

/// Why a factorization attempt was rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorError {
    /// Pivot position (in elimination order) where breakdown occurred.
    pub row: usize,
    /// The offending pivot value (`D[row]`).
    pub pivot: f64,
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} at elimination step {} of the LDL^T \
             factorization",
            self.pivot, self.row
        )
    }
}

impl std::error::Error for FactorError {}

/// A pre-computed `P·A·Pᵀ = L·D·Lᵀ` factorization of an SPD matrix.
///
/// `L` is unit lower triangular (implicit diagonal) stored by columns;
/// `D` is the positive pivot diagonal; `P` is the fill-reducing
/// permutation. [`solve`](Self::solve) /
/// [`solve_into`](Self::solve_into) apply
/// `x = Pᵀ·L⁻ᵀ·D⁻¹·L⁻¹·P·b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LdlFactor {
    n: usize,
    /// `perm[new] = old`: row/column `new` of the permuted matrix is
    /// row/column `old` of the original.
    perm: Vec<usize>,
    /// Column pointers of L (strictly-lower part, unit diagonal implicit).
    col_ptr: Vec<usize>,
    /// Row indices of L's stored entries.
    row_idx: Vec<usize>,
    /// Values of L's stored entries.
    values: Vec<f64>,
    /// The pivot diagonal D (all positive).
    d: Vec<f64>,
}

impl LdlFactor {
    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored non-zeros of `L` including the unit diagonal — the cost of
    /// one triangular solve is proportional to this.
    #[must_use]
    pub fn nnz_l(&self) -> usize {
        self.values.len() + self.n
    }

    /// The fill-reducing permutation (`perm[new] = old`).
    #[must_use]
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Column pointers of L's strictly-lower part (for the level-set
    /// solve scheduler).
    pub(crate) fn l_col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices of L's stored entries.
    pub(crate) fn l_row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Values of L's stored entries.
    pub(crate) fn l_values(&self) -> &[f64] {
        &self.values
    }

    /// The pivot diagonal D.
    pub(crate) fn pivots(&self) -> &[f64] {
        &self.d
    }

    /// Solves `A·x = b`, allocating the result.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        let mut scratch = Vec::new();
        self.solve_into(b, &mut scratch, &mut x);
        x
    }

    /// Solves `A·x = b` into `x`, reusing `scratch` for the permuted
    /// intermediate (no allocation once `scratch` has warmed up).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` differ from `dim()`.
    // lint: region(alloc-free: ldlt-solve)
    pub fn solve_into(&self, b: &[f64], scratch: &mut Vec<f64>, x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert_eq!(x.len(), self.n, "solution length mismatch");
        scratch.resize(self.n, 0.0);
        let z = &mut scratch[..];
        for (zi, &old) in z.iter_mut().zip(&self.perm) {
            *zi = b[old];
        }
        // Forward: L·y = P·b.
        for j in 0..self.n {
            let zj = z[j];
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                z[self.row_idx[p]] -= self.values[p] * zj;
            }
        }
        // Diagonal: D·w = y.
        for (zi, &di) in z.iter_mut().zip(&self.d) {
            *zi /= di;
        }
        // Backward: Lᵀ·v = w.
        for j in (0..self.n).rev() {
            let mut zj = z[j];
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                zj -= self.values[p] * z[self.row_idx[p]];
            }
            z[j] = zj;
        }
        // Un-permute: x = Pᵀ·v.
        for (zi, &old) in z.iter().zip(&self.perm) {
            x[old] = *zi;
        }
    }
    // lint: end-region
}

/// The value-independent half of an LDLᵀ factorization: fill-reducing
/// permutation, elimination tree and column pointers of `L`.
///
/// The analysis depends only on the matrix's *sparsity pattern*, so one
/// `Symbolic` serves every matrix with that pattern — in particular all
/// shifted systems `α·C + G` of one RC network (`C` is diagonal and `G`
/// has a full structural diagonal, so the pattern is α-independent) and
/// `G` itself. [`Symbolic::factor_numeric`] runs only the numeric
/// phase against a cached analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbolic {
    n: usize,
    /// Stored-entry count of the analyzed matrix (cheap guard that a
    /// numeric refactorization is using the same pattern).
    nnz: usize,
    /// `perm[new] = old` fill-reducing permutation.
    perm: Vec<usize>,
    /// Inverse permutation.
    iperm: Vec<usize>,
    /// Elimination-tree parent per node (`usize::MAX` = root).
    parent: Vec<usize>,
    /// Column pointers of L (strictly-lower part).
    col_ptr: Vec<usize>,
}

impl Symbolic {
    /// Matrix dimension this analysis was computed for.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Predicted stored non-zeros of `L` including the unit diagonal.
    #[must_use]
    pub fn nnz_l(&self) -> usize {
        self.col_ptr[self.n] + self.n
    }

    /// Stored-entry count of the matrix this analysis was computed from
    /// (callers use it to check pattern compatibility up front).
    #[must_use]
    pub fn pattern_nnz(&self) -> usize {
        self.nnz
    }

    /// Runs the numeric phase against this analysis: computes `L` and
    /// `D` for `a`, which must have the **same sparsity pattern** as the
    /// matrix [`analyze`] saw (same dimension and stored-entry count are
    /// asserted; the RC-network systems this crate factors satisfy the
    /// stronger pattern-equality requirement by construction).
    ///
    /// # Errors
    ///
    /// [`FactorError`] when a pivot is not strictly positive.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s dimension or stored-entry count differ from the
    /// analyzed matrix's.
    pub fn factor_numeric(&self, a: &CsrMatrix) -> Result<LdlFactor, FactorError> {
        let n = self.n;
        assert_eq!(a.dim(), n, "numeric phase on a different-sized matrix");
        assert_eq!(a.nnz(), self.nnz, "numeric phase on a different sparsity pattern");
        let Symbolic { perm, iperm, parent, col_ptr, .. } = self;

        // Numeric phase (up-looking): compute row j of L against the
        // already finished columns, in elimination-tree topological order.
        let total = col_ptr[n];
        let mut row_idx = vec![0usize; total];
        let mut values = vec![0.0f64; total];
        let mut filled = vec![0usize; n];
        let mut d = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        let mut pattern = vec![0usize; n];
        let mut path = vec![0usize; n];
        let mut flag = vec![usize::MAX; n];
        for j in 0..n {
            let mut top = n;
            flag[j] = j;
            y[j] = 0.0;
            for (c_old, v) in a.row(perm[j]) {
                let i = iperm[c_old];
                if i > j {
                    continue;
                }
                y[i] += v;
                let mut len = 0;
                let mut k = i;
                while flag[k] != j {
                    path[len] = k;
                    len += 1;
                    flag[k] = j;
                    k = parent[k];
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    pattern[top] = path[len];
                }
            }
            let mut dj = y[j];
            y[j] = 0.0;
            for &k in &pattern[top..n] {
                let yk = y[k];
                y[k] = 0.0;
                let p0 = col_ptr[k];
                for p in p0..p0 + filled[k] {
                    y[row_idx[p]] -= values[p] * yk;
                }
                let ljk = yk / d[k];
                dj -= ljk * yk;
                let p = p0 + filled[k];
                row_idx[p] = j;
                values[p] = ljk;
                filled[k] += 1;
            }
            if !(dj > 0.0 && dj.is_finite()) {
                return Err(FactorError { row: j, pivot: dj });
            }
            d[j] = dj;
        }
        // Hard assert (O(n), negligible next to the factorization): a
        // matrix whose pattern differs from the analyzed one — possible
        // despite the dim/nnz guard above — would have written fill
        // into the wrong column slots, and release builds must not
        // return silently wrong factors.
        assert!(
            (0..n).all(|j| filled[j] == col_ptr[j + 1] - col_ptr[j]),
            "matrix pattern differs from the analyzed pattern (symbolic/numeric fill mismatch)"
        );
        Ok(LdlFactor { n, perm: perm.clone(), col_ptr: col_ptr.clone(), row_idx, values, d })
    }

    /// Builds the supernodal execution plan for the blocked numeric
    /// phase: the full row-index structure of `L` (identical to what
    /// the scalar phase produces) plus the fundamental-supernode
    /// partition derived from the elimination tree. Value-independent,
    /// like the analysis itself — compute once per pattern and reuse
    /// across every shift.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s dimension or stored-entry count differ from the
    /// analyzed matrix's.
    #[must_use]
    pub fn supernodal_plan(&self, a: &CsrMatrix) -> SupernodalPlan {
        let n = self.n;
        assert_eq!(a.dim(), n, "supernodal plan on a different-sized matrix");
        assert_eq!(a.nnz(), self.nnz, "supernodal plan on a different sparsity pattern");
        let Symbolic { perm, iperm, parent, col_ptr, .. } = self;

        // Replay the numeric phase's pattern walk, recording only the
        // row indices: the resulting structure is byte-identical to the
        // scalar phase's `row_idx` (rows appended to each column as `j`
        // ascends, so columns are sorted ascending).
        let total = col_ptr[n];
        let mut row_idx = vec![0usize; total];
        let mut filled = vec![0usize; n];
        let mut pattern = vec![0usize; n];
        let mut path = vec![0usize; n];
        let mut flag = vec![usize::MAX; n];
        for j in 0..n {
            let mut top = n;
            flag[j] = j;
            for (c_old, _) in a.row(perm[j]) {
                let i = iperm[c_old];
                if i > j {
                    continue;
                }
                let mut len = 0;
                let mut k = i;
                while flag[k] != j {
                    path[len] = k;
                    len += 1;
                    flag[k] = j;
                    k = parent[k];
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    pattern[top] = path[len];
                }
            }
            for &k in &pattern[top..n] {
                let p = col_ptr[k] + filled[k];
                row_idx[p] = j;
                filled[k] += 1;
            }
        }
        assert!(
            (0..n).all(|j| filled[j] == col_ptr[j + 1] - col_ptr[j]),
            "matrix pattern differs from the analyzed pattern (symbolic/numeric fill mismatch)"
        );

        // Fundamental supernodes: column j joins its predecessor's
        // supernode when j is the etree parent of j-1 and column j-1's
        // pattern is exactly {j} ∪ pattern(j) — equivalently the fill
        // counts differ by one. A width cap keeps panels cache-sized.
        let lnz = |j: usize| col_ptr[j + 1] - col_ptr[j];
        let mut sn_ptr = vec![0usize];
        let mut start = 0usize;
        for j in 1..n {
            let join =
                parent[j - 1] == j && lnz(j - 1) == lnz(j) + 1 && j - start < SUPERNODE_MAX_WIDTH;
            if !join {
                sn_ptr.push(j);
                start = j;
            }
        }
        if n > 0 {
            sn_ptr.push(n);
        }
        let mut sn_of = vec![0usize; n];
        let mut max_panel_rows = 0usize;
        let mut max_width = 0usize;
        for s in 0..sn_ptr.len() - 1 {
            let (f, l) = (sn_ptr[s], sn_ptr[s + 1]);
            for of in &mut sn_of[f..l] {
                *of = s;
            }
            let w = l - f;
            max_width = max_width.max(w);
            max_panel_rows = max_panel_rows.max(w + lnz(l - 1));
        }
        SupernodalPlan { n, nnz: self.nnz, sn_ptr, sn_of, row_idx, max_panel_rows, max_width }
    }

    /// Blocked (supernodal left-looking) numeric phase: same inputs and
    /// outputs as [`factor_numeric`](Self::factor_numeric), but columns
    /// are processed in dense panels with panel-panel updates. The
    /// factor's *structure* (permutation, column pointers, row indices)
    /// is exactly the scalar phase's; the *values* agree to rounding
    /// (the dense accumulation order differs), which is why the scalar
    /// path stays the golden reference below [`BLOCKED_MIN_DIM`]. The
    /// blocked phase itself is sequential and deterministic: repeated
    /// calls on one matrix are bit-identical.
    ///
    /// # Errors
    ///
    /// [`FactorError`] when a pivot is not strictly positive.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `plan` do not match this analysis.
    pub fn factor_numeric_blocked(
        &self,
        a: &CsrMatrix,
        plan: &SupernodalPlan,
    ) -> Result<LdlFactor, FactorError> {
        let n = self.n;
        assert_eq!(a.dim(), n, "numeric phase on a different-sized matrix");
        assert_eq!(a.nnz(), self.nnz, "numeric phase on a different sparsity pattern");
        assert!(
            plan.n == n && plan.nnz == self.nnz,
            "supernodal plan was built for a different pattern"
        );
        let Symbolic { perm, iperm, col_ptr, .. } = self;
        let row_idx = &plan.row_idx;
        let num_sn = plan.sn_ptr.len().saturating_sub(1);

        let mut values = vec![0.0f64; col_ptr[n]];
        let mut d = vec![0.0f64; n];
        // Dense panel (column-major, height = supernode width + shared
        // below-block row count) plus the global-row → panel-slot map.
        let mut panel = vec![0.0f64; plan.max_panel_rows * plan.max_width];
        let mut local = vec![0usize; n];
        let mut stamp = vec![usize::MAX; n];
        // Left-looking source lists: after a supernode is finished it is
        // linked into the list of the supernode owning its next unused
        // below-block row, so each target traverses exactly the sources
        // that update it.
        let mut head = vec![usize::MAX; num_sn];
        let mut next_src = vec![usize::MAX; num_sn];
        let mut pos = vec![0usize; num_sn];

        for s in 0..num_sn {
            let f = plan.sn_ptr[s];
            let l = plan.sn_ptr[s + 1];
            let w = l - f;
            // Shared below-block rows of this supernode = the row list
            // of its last column (every member column ends with them).
            let r0 = col_ptr[l - 1];
            let nr = col_ptr[l] - r0;
            let height = w + nr;

            // Panel rows are the supernode's own columns then the
            // below-block rows, both ascending — exactly each member
            // column's storage order, so write-back is a contiguous copy.
            for (slot, j) in (f..l).enumerate() {
                local[j] = slot;
                stamp[j] = s;
            }
            for idx in 0..nr {
                let i = row_idx[r0 + idx];
                local[i] = w + idx;
                stamp[i] = s;
            }
            for v in &mut panel[..height * w] {
                *v = 0.0;
            }

            // Scatter A's lower-triangle columns into the panel.
            for (jc, j) in (f..l).enumerate() {
                let base = jc * height;
                for (c_old, v) in a.row(perm[j]) {
                    let i = iperm[c_old];
                    if i < j {
                        continue;
                    }
                    debug_assert_eq!(stamp[i], s, "A entry outside the symbolic pattern");
                    panel[base + local[i]] += v;
                }
            }

            // Apply every finished source supernode whose next unused
            // rows land in this one. For source T with below-block rows
            // RT, the rows RT[pos..stop) are columns of this supernode;
            // the update to target column j uses the contiguous value
            // slice of each source column below T's diagonal block.
            let mut t = head[s];
            while t != usize::MAX {
                let t_next = next_src[t];
                let ft = plan.sn_ptr[t];
                let lt = plan.sn_ptr[t + 1];
                let tr0 = col_ptr[lt - 1];
                let tlen = col_ptr[lt] - tr0;
                let start = pos[t];
                let mut stop = start;
                while stop < tlen && row_idx[tr0 + stop] < l {
                    stop += 1;
                }
                for idx_j in start..stop {
                    let j = row_idx[tr0 + idx_j];
                    debug_assert!((f..l).contains(&j));
                    let base = (j - f) * height;
                    for k in ft..lt {
                        // Column k of T stores rows {k+1..lt} then RT;
                        // its below-block values start at lt-1-k.
                        let off = col_ptr[k] + (lt - 1 - k);
                        let ljk = values[off + idx_j];
                        let coef = d[k] * ljk;
                        for idx_i in idx_j..tlen {
                            let i = row_idx[tr0 + idx_i];
                            debug_assert_eq!(stamp[i], s, "update row outside the target panel");
                            panel[base + local[i]] -= coef * values[off + idx_i];
                        }
                    }
                }
                pos[t] = stop;
                if stop < tlen {
                    let owner = plan.sn_of[row_idx[tr0 + stop]];
                    next_src[t] = head[owner];
                    head[owner] = t;
                }
                t = t_next;
            }

            // Dense LDLᵀ of the panel's diagonal block, updating the
            // below-block rows as we go (contiguous column axpys).
            for jc in 0..w {
                let base = jc * height;
                let j = f + jc;
                let dj = panel[base + jc];
                if !(dj > 0.0 && dj.is_finite()) {
                    return Err(FactorError { row: j, pivot: dj });
                }
                d[j] = dj;
                for i in jc + 1..height {
                    panel[base + i] /= dj;
                }
                for kc in jc + 1..w {
                    let coef = dj * panel[base + kc];
                    let kbase = kc * height;
                    for i in kc..height {
                        panel[kbase + i] -= coef * panel[base + i];
                    }
                }
            }

            // Write-back: panel rows below each diagonal are exactly the
            // member column's stored rows, in order.
            for (jc, j) in (f..l).enumerate() {
                let base = jc * height;
                let p0 = col_ptr[j];
                debug_assert_eq!(col_ptr[j + 1] - p0, height - 1 - jc);
                values[p0..p0 + height - 1 - jc]
                    .copy_from_slice(&panel[base + jc + 1..base + height]);
            }

            if nr > 0 {
                pos[s] = 0;
                let owner = plan.sn_of[row_idx[r0]];
                next_src[s] = head[owner];
                head[owner] = s;
            }
        }

        Ok(LdlFactor {
            n,
            perm: perm.clone(),
            col_ptr: col_ptr.clone(),
            row_idx: plan.row_idx.clone(),
            values,
            d,
        })
    }
}

/// Value-independent execution plan for
/// [`Symbolic::factor_numeric_blocked`]: the fundamental-supernode
/// partition of the columns of `L` plus the full row-index structure
/// (which the scalar phase recomputes per factorization but the
/// blocked phase shares across all shifts of one pattern).
#[derive(Debug, Clone, PartialEq)]
pub struct SupernodalPlan {
    n: usize,
    /// Stored-entry count of the analyzed matrix (pattern guard).
    nnz: usize,
    /// Supernode `s` covers columns `sn_ptr[s]..sn_ptr[s+1]`.
    sn_ptr: Vec<usize>,
    /// Column → owning supernode.
    sn_of: Vec<usize>,
    /// Full row indices of `L`, identical to the scalar numeric output.
    row_idx: Vec<usize>,
    /// Largest panel height (width + shared below-block rows).
    max_panel_rows: usize,
    /// Largest supernode width (≤ the internal width cap).
    max_width: usize,
}

impl SupernodalPlan {
    /// Number of supernodes the columns were grouped into.
    #[must_use]
    pub fn supernode_count(&self) -> usize {
        self.sn_ptr.len().saturating_sub(1)
    }

    /// Widest detected supernode (1 means no blocking was possible).
    #[must_use]
    pub fn max_width(&self) -> usize {
        self.max_width
    }
}

/// Computes the symbolic analysis of `a` with the default minimum-degree
/// ordering: ordering, elimination tree and per-column fill counts.
/// Value-independent — reuse the result across every matrix sharing
/// `a`'s pattern via [`Symbolic::factor_numeric`].
#[must_use]
pub fn analyze(a: &CsrMatrix) -> Symbolic {
    analyze_with(a, FillOrdering::MinDegree)
}

/// [`analyze`] with an explicit [`FillOrdering`].
#[must_use]
pub fn analyze_with(a: &CsrMatrix, ordering: FillOrdering) -> Symbolic {
    let n = a.dim();
    let perm = match ordering {
        FillOrdering::MinDegree => min_degree_order(a),
        FillOrdering::Natural => (0..n).collect(),
    };
    analyze_with_perm(a, perm)
}

/// [`analyze`] with a caller-supplied elimination order (`perm[new] =
/// old`). This is how geometry-aware orderings (e.g. the RC network's
/// nested-dissection order, which is near-linear to compute where the
/// exact-minimum-degree search is quadratic) plug into the same
/// symbolic/numeric machinery.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..a.dim()`.
#[must_use]
pub fn analyze_with_perm(a: &CsrMatrix, perm: Vec<usize>) -> Symbolic {
    let n = a.dim();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut iperm = vec![usize::MAX; n];
    for (new, &old) in perm.iter().enumerate() {
        assert!(old < n && iperm[old] == usize::MAX, "perm is not a permutation");
        iperm[old] = new;
    }

    // Elimination tree + per-column non-zero counts of L, from the
    // pattern of the permuted matrix's lower triangle.
    let mut parent = vec![usize::MAX; n];
    let mut flag = vec![usize::MAX; n];
    let mut lnz = vec![0usize; n];
    for j in 0..n {
        flag[j] = j;
        for (c_old, _) in a.row(perm[j]) {
            let mut k = iperm[c_old];
            if k >= j {
                continue;
            }
            while flag[k] != j {
                if parent[k] == usize::MAX {
                    parent[k] = j;
                }
                lnz[k] += 1;
                flag[k] = j;
                k = parent[k];
            }
        }
    }
    let mut col_ptr = vec![0usize; n + 1];
    for j in 0..n {
        col_ptr[j + 1] = col_ptr[j] + lnz[j];
    }
    Symbolic { n, nnz: a.nnz(), perm, iperm, parent, col_ptr }
}

/// Factors `a` with the default minimum-degree ordering (one-shot:
/// symbolic analysis plus numeric phase; callers factoring several
/// matrices with one pattern should [`analyze`] once and reuse it).
///
/// # Errors
///
/// [`FactorError`] when a pivot is not strictly positive (the matrix is
/// not positive definite, e.g. a floating Laplacian with no ground).
///
/// # Panics
///
/// Panics if `a` is structurally unsymmetric (debug builds assert the
/// pattern; values are taken from the lower triangle).
pub fn factor(a: &CsrMatrix) -> Result<LdlFactor, FactorError> {
    factor_with(a, FillOrdering::MinDegree)
}

/// [`factor`] with an explicit [`FillOrdering`].
///
/// # Errors
///
/// See [`factor`].
pub fn factor_with(a: &CsrMatrix, ordering: FillOrdering) -> Result<LdlFactor, FactorError> {
    analyze_with(a, ordering).factor_numeric(a)
}

/// Greedy exact minimum-degree ordering of `a`'s adjacency graph
/// (elimination cliques materialized, ties broken by smallest index —
/// fully deterministic).
#[must_use]
pub fn min_degree_order(a: &CsrMatrix) -> Vec<usize> {
    let n = a.dim();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for r in 0..n {
        for (c, _) in a.row(r) {
            if c != r {
                adj[r].insert(c);
                adj[c].insert(r);
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut perm = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&i| !eliminated[i])
            .min_by_key(|&i| (adj[i].len(), i))
            .expect("uneliminated node remains");
        perm.push(v);
        eliminated[v] = true;
        let neighbours: Vec<usize> = adj[v].iter().copied().collect();
        for &u in &neighbours {
            adj[u].remove(&v);
        }
        for (i, &u) in neighbours.iter().enumerate() {
            for &w in &neighbours[i + 1..] {
                adj[u].insert(w);
                adj[w].insert(u);
            }
        }
        adj[v].clear();
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::{solve_cg, TripletMatrix};

    fn laplacian_chain(n: usize, g: f64, g_amb: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(n);
        for i in 0..n - 1 {
            t.add_conductance(i, i + 1, g);
        }
        t.add_grounded_conductance(0, g_amb);
        t.to_csr()
    }

    /// A 2D grid Laplacian with every node weakly grounded (SPD, and
    /// produces real fill under elimination).
    fn grid_laplacian(rows: usize, cols: usize) -> CsrMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut t = TripletMatrix::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_conductance(idx(r, c), idx(r, c + 1), 1.0 + (r + c) as f64 * 0.1);
                }
                if r + 1 < rows {
                    t.add_conductance(idx(r, c), idx(r + 1, c), 2.0 + c as f64 * 0.1);
                }
                t.add_grounded_conductance(idx(r, c), 0.01);
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_match_cg_on_a_grid() {
        let a = grid_laplacian(7, 9);
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 * 0.25 - 1.0).collect();
        let f = factor(&a).expect("SPD grid");
        let x = f.solve(&b);
        let cg = solve_cg(&a, &b, &vec![0.0; n], 1e-13, 100_000);
        assert!(cg.converged);
        for (xi, ci) in x.iter().zip(&cg.x) {
            assert!((xi - ci).abs() < 1e-7, "{xi} vs {ci}");
        }
        // Residual check against the matrix itself.
        let r = a.mul(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9, "residual {ri} vs {bi}");
        }
    }

    #[test]
    fn natural_and_min_degree_agree() {
        let a = grid_laplacian(5, 5);
        let b: Vec<f64> = (0..a.dim()).map(|i| i as f64 * 0.1).collect();
        let xm = factor_with(&a, FillOrdering::MinDegree).unwrap().solve(&b);
        let xn = factor_with(&a, FillOrdering::Natural).unwrap().solve(&b);
        for (m, n) in xm.iter().zip(&xn) {
            assert!((m - n).abs() < 1e-9);
        }
    }

    #[test]
    fn min_degree_reduces_fill_on_grids() {
        let a = grid_laplacian(12, 12);
        let md = factor_with(&a, FillOrdering::MinDegree).unwrap();
        let nat = factor_with(&a, FillOrdering::Natural).unwrap();
        assert!(
            md.nnz_l() < nat.nnz_l(),
            "min-degree fill {} must beat natural fill {}",
            md.nnz_l(),
            nat.nnz_l()
        );
    }

    #[test]
    fn chain_solution_is_exact() {
        let n = 6;
        let a = laplacian_chain(n, 2.0, 1.0);
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        let x = factor(&a).unwrap().solve(&b);
        // 1 W through every link of resistance 1/2, node 0 at 1 K.
        for (i, xi) in x.iter().enumerate() {
            let expect = 1.0 + 0.5 * i as f64;
            assert!((xi - expect).abs() < 1e-12, "node {i}: {xi} vs {expect}");
        }
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        // A floating Laplacian (no ground) is singular: pivot hits zero.
        let mut t = TripletMatrix::new(3);
        t.add_conductance(0, 1, 1.0);
        t.add_conductance(1, 2, 1.0);
        let err = factor(&t.to_csr()).unwrap_err();
        assert!(err.to_string().contains("not positive definite"), "{err}");
    }

    #[test]
    fn factorization_is_deterministic() {
        let a = grid_laplacian(6, 8);
        let f1 = factor(&a).unwrap();
        let f2 = factor(&a).unwrap();
        assert_eq!(f1, f2, "same matrix, bit-identical factors");
    }

    #[test]
    fn solve_into_reuses_buffers() {
        let a = grid_laplacian(4, 4);
        let f = factor(&a).unwrap();
        let b = vec![1.0; a.dim()];
        let mut scratch = Vec::new();
        let mut x = vec![0.0; a.dim()];
        f.solve_into(&b, &mut scratch, &mut x);
        let direct = f.solve(&b);
        assert_eq!(x, direct);
        let cap = scratch.capacity();
        f.solve_into(&b, &mut scratch, &mut x);
        assert_eq!(scratch.capacity(), cap, "second solve must not reallocate");
    }

    #[test]
    fn symbolic_analysis_is_reusable_across_shifts() {
        // α·C + G for any α shares G's pattern (full structural
        // diagonal): one analysis must serve every shift bit-exactly.
        let g = grid_laplacian(6, 6);
        let symbolic = analyze(&g);
        let b: Vec<f64> = (0..g.dim()).map(|i| (i % 7) as f64 - 3.0).collect();
        for alpha in [0.5, 12.25, 341.0] {
            let diag: Vec<f64> = (0..g.dim()).map(|i| alpha * (1.0 + i as f64 * 0.01)).collect();
            let shifted = g.with_added_diagonal(&diag);
            let reused = symbolic.factor_numeric(&shifted).unwrap();
            let fresh = factor(&shifted).unwrap();
            // Same ordering (pattern-only input), so factors are
            // bit-identical, not merely numerically close.
            assert_eq!(reused, fresh, "alpha={alpha}");
            assert_eq!(reused.solve(&b), fresh.solve(&b));
        }
        assert_eq!(symbolic.nnz_l(), factor(&g).unwrap().nnz_l());
    }

    #[test]
    #[should_panic(expected = "different sparsity pattern")]
    fn symbolic_rejects_a_different_pattern() {
        let symbolic = analyze(&grid_laplacian(4, 4));
        let other = laplacian_chain(16, 1.0, 1.0);
        let _ = symbolic.factor_numeric(&other);
    }

    /// Relative agreement for blocked-vs-scalar values: the two phases
    /// sum identical update terms in different orders, so they agree to
    /// rounding, not bit-for-bit.
    fn assert_close(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!((x - y).abs() <= 1e-11 * scale, "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_factor_matches_scalar_structure_exactly_and_values_tightly() {
        let a = grid_laplacian(20, 20);
        let symbolic = analyze(&a);
        let plan = symbolic.supernodal_plan(&a);
        assert!(plan.max_width() > 1, "a 20x20 grid must yield real supernodes");
        assert!(plan.supernode_count() < a.dim(), "blocking must group columns");
        let blocked = symbolic.factor_numeric_blocked(&a, &plan).unwrap();
        let scalar = symbolic.factor_numeric(&a).unwrap();
        // Structure is exact: same permutation, column pointers, rows.
        assert_eq!(blocked.perm, scalar.perm);
        assert_eq!(blocked.col_ptr, scalar.col_ptr);
        assert_eq!(blocked.row_idx, scalar.row_idx);
        assert_close(&blocked.values, &scalar.values, "L");
        assert_close(&blocked.d, &scalar.d, "D");
        // And the solves agree to solver precision.
        let b: Vec<f64> = (0..a.dim()).map(|i| ((i * 13) % 17) as f64 * 0.5 - 2.0).collect();
        assert_close(&blocked.solve(&b), &scalar.solve(&b), "x");
    }

    #[test]
    fn blocked_plan_serves_all_shifts_of_one_pattern() {
        let g = grid_laplacian(9, 11);
        let symbolic = analyze(&g);
        let plan = symbolic.supernodal_plan(&g);
        for alpha in [0.25, 7.5, 513.0] {
            let diag: Vec<f64> = (0..g.dim()).map(|i| alpha * (1.0 + i as f64 * 0.02)).collect();
            let shifted = g.with_added_diagonal(&diag);
            let blocked = symbolic.factor_numeric_blocked(&shifted, &plan).unwrap();
            let scalar = symbolic.factor_numeric(&shifted).unwrap();
            assert_eq!(blocked.row_idx, scalar.row_idx, "alpha={alpha}");
            assert_close(&blocked.values, &scalar.values, "L");
            assert_close(&blocked.d, &scalar.d, "D");
        }
    }

    #[test]
    fn blocked_factor_is_deterministic() {
        let a = grid_laplacian(14, 6);
        let symbolic = analyze(&a);
        let plan = symbolic.supernodal_plan(&a);
        let f1 = symbolic.factor_numeric_blocked(&a, &plan).unwrap();
        let f2 = symbolic.factor_numeric_blocked(&a, &plan).unwrap();
        assert_eq!(f1, f2, "same matrix and plan, bit-identical factors");
    }

    #[test]
    fn blocked_factor_rejects_indefinite_matrices() {
        // Floating Laplacian: singular, the last pivot collapses.
        let mut t = TripletMatrix::new(4);
        for i in 0..3 {
            t.add_conductance(i, i + 1, 1.0);
        }
        let a = t.to_csr();
        let symbolic = analyze(&a);
        let plan = symbolic.supernodal_plan(&a);
        let err = symbolic.factor_numeric_blocked(&a, &plan).unwrap_err();
        assert!(err.to_string().contains("not positive definite"), "{err}");
    }

    #[test]
    fn analyze_with_perm_natural_matches_natural_ordering() {
        let a = grid_laplacian(6, 7);
        let by_perm = analyze_with_perm(&a, (0..a.dim()).collect());
        let natural = analyze_with(&a, FillOrdering::Natural);
        assert_eq!(by_perm, natural);
        let fa = by_perm.factor_numeric(&a).unwrap();
        let fb = natural.factor_numeric(&a).unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn analyze_with_perm_rejects_duplicates() {
        let a = grid_laplacian(3, 3);
        let mut perm: Vec<usize> = (0..a.dim()).collect();
        perm[0] = 1;
        let _ = analyze_with_perm(&a, perm);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let a = grid_laplacian(5, 7);
        let f = factor(&a).unwrap();
        let mut seen = vec![false; a.dim()];
        for &p in f.permutation() {
            assert!(!seen[p], "index {p} repeated");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
