//! Level-set scheduled triangular solves over an [`LdlFactor`].
//!
//! The serial [`LdlFactor::solve_into`] sweeps columns in order, which
//! at 64×64-per-layer networks (≥20k nodes) leaves every core but one
//! idle during the two triangular sweeps. This module partitions the
//! rows of `L` (and, for the backward sweep, its columns) into
//! *level sets* — level 0 has no dependencies, level `k` depends only
//! on levels `< k` — so every row inside one level can be processed
//! concurrently.
//!
//! Determinism is non-negotiable here (the sweep's byte-identical
//! report guarantee rides on it), so the parallel solve is built to be
//! **bit-identical to the serial one at any thread count**:
//!
//! * the forward sweep is recast from column-scatter to row-gather
//!   (per row, subtractions run in ascending column order — exactly
//!   the order the serial scatter applies them, against operands that
//!   are final in both schedules);
//! * the backward sweep is already a per-column gather and keeps its
//!   entry order;
//! * levels run in a fixed order with a full barrier between them, and
//!   each value is written by exactly one row's owner.
//!
//! The schedule depends only on the factor's *structure*, so one
//! [`LevelSchedule`] serves every factor sharing a sparsity pattern —
//! all shifted systems `α·C + G` of one network.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use super::factor::LdlFactor;

/// Structure-only schedule for level-set parallel triangular solves.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSchedule {
    n: usize,
    /// Stored-entry count of `L` (guard that a solve uses a factor with
    /// the structure this schedule was built from).
    nnz: usize,
    /// Row-CSR of `L`: row pointers, column indices (ascending within a
    /// row) and, per entry, the index of its value in the factor's
    /// column-major value array — so the schedule needs no values of
    /// its own and serves every same-structure factor.
    frow_ptr: Vec<usize>,
    fcol: Vec<usize>,
    fval_src: Vec<usize>,
    /// Forward level sets: rows of level `v` are
    /// `frows[flevel_ptr[v]..flevel_ptr[v+1]]`, ascending within a level.
    flevel_ptr: Vec<usize>,
    frows: Vec<usize>,
    /// Backward level sets over columns, same layout.
    blevel_ptr: Vec<usize>,
    bcols: Vec<usize>,
}

/// Reusable solve workspace: the permuted intermediate as atomic bit
/// patterns (plain `f64` reads/writes under the barrier discipline —
/// the atomics only provide safe shared mutability across the worker
/// scope, never read-modify-write contention).
#[derive(Debug, Default)]
pub struct LevelScratch {
    z: Vec<AtomicU64>,
}

impl LevelScratch {
    /// An empty workspace; sized lazily by the first solve.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clone for LevelScratch {
    /// Scratch contents are meaningless between solves, so a clone is
    /// simply a fresh workspace (atomics are not `Clone`).
    fn clone(&self) -> Self {
        Self::new()
    }
}

/// Splits `len` items into `threads` near-equal contiguous chunks;
/// returns chunk `tid`'s bounds. Deterministic in all arguments.
fn chunk(len: usize, tid: usize, threads: usize) -> (usize, usize) {
    let per = len / threads;
    let rem = len % threads;
    let lo = tid * per + tid.min(rem);
    (lo, lo + per + usize::from(tid < rem))
}

/// Buckets items by level: returns `(level_ptr, items)` with items of
/// level `v` at `items[level_ptr[v]..level_ptr[v+1]]`, ascending.
fn bucket_levels(level: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let max_level = level.iter().copied().max().unwrap_or(0);
    let mut ptr = vec![0usize; max_level + 2];
    for &lv in level {
        ptr[lv + 1] += 1;
    }
    for v in 0..=max_level {
        ptr[v + 1] += ptr[v];
    }
    let mut fill = ptr.clone();
    let mut items = vec![0usize; level.len()];
    for (i, &lv) in level.iter().enumerate() {
        items[fill[lv]] = i;
        fill[lv] += 1;
    }
    (ptr, items)
}

impl LevelSchedule {
    /// Builds the schedule from a factor's structure. Reusable across
    /// every factor with the same sparsity pattern (same `Symbolic`).
    #[must_use]
    pub fn new(factor: &LdlFactor) -> Self {
        let n = factor.dim();
        let col_ptr = factor.l_col_ptr();
        let row_idx = factor.l_row_idx();
        let nnz = col_ptr[n];

        // Transpose L's column storage into row-CSR. Filling by
        // ascending column keeps each row's entries column-sorted,
        // which is what makes the gather order match the serial sweep.
        let mut frow_ptr = vec![0usize; n + 1];
        for p in 0..nnz {
            frow_ptr[row_idx[p] + 1] += 1;
        }
        for i in 0..n {
            frow_ptr[i + 1] += frow_ptr[i];
        }
        let mut fill = frow_ptr.clone();
        let mut fcol = vec![0usize; nnz];
        let mut fval_src = vec![0usize; nnz];
        for j in 0..n {
            for p in col_ptr[j]..col_ptr[j + 1] {
                let q = fill[row_idx[p]];
                fcol[q] = j;
                fval_src[q] = p;
                fill[row_idx[p]] = q + 1;
            }
        }

        // Forward levels: a row depends on every column it gathers from.
        let mut level = vec![0usize; n];
        for i in 0..n {
            let mut lv = 0;
            for q in frow_ptr[i]..frow_ptr[i + 1] {
                lv = lv.max(level[fcol[q]] + 1);
            }
            level[i] = lv;
        }
        let (flevel_ptr, frows) = bucket_levels(&level);

        // Backward levels: column j depends on every row of its column
        // list (all > j), so levels are computed descending.
        let mut blevel = vec![0usize; n];
        for j in (0..n).rev() {
            let mut lv = 0;
            for p in col_ptr[j]..col_ptr[j + 1] {
                lv = lv.max(blevel[row_idx[p]] + 1);
            }
            blevel[j] = lv;
        }
        let (blevel_ptr, bcols) = bucket_levels(&blevel);

        Self { n, nnz, frow_ptr, fcol, fval_src, flevel_ptr, frows, blevel_ptr, bcols }
    }

    /// Number of forward level sets (the critical-path length of the
    /// forward sweep).
    #[must_use]
    pub fn forward_levels(&self) -> usize {
        self.flevel_ptr.len() - 1
    }

    /// Number of backward level sets.
    #[must_use]
    pub fn backward_levels(&self) -> usize {
        self.blevel_ptr.len() - 1
    }

    /// Solves `A·x = b` with `factor`, running the triangular sweeps
    /// level-by-level across `threads` workers. Bit-identical to
    /// [`LdlFactor::solve_into`] at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `factor`'s structure differs from the one this
    /// schedule was built from, or on length mismatches.
    pub fn solve_into(
        &self,
        factor: &LdlFactor,
        b: &[f64],
        scratch: &mut LevelScratch,
        x: &mut [f64],
        threads: usize,
    ) {
        let n = self.n;
        assert_eq!(factor.dim(), n, "factor dimension mismatch");
        assert_eq!(factor.l_col_ptr()[n], self.nnz, "schedule built for a different structure");
        assert_eq!(b.len(), n, "rhs length mismatch");
        assert_eq!(x.len(), n, "solution length mismatch");
        let threads = threads.clamp(1, n.max(1));

        if scratch.z.len() != n {
            scratch.z = (0..n).map(|_| AtomicU64::new(0)).collect();
        }
        let z = &scratch.z[..];
        let perm = factor.permutation();
        for (zi, &old) in z.iter().zip(perm) {
            zi.store(b[old].to_bits(), Ordering::Relaxed);
        }

        if threads == 1 {
            self.run_worker(factor, z, 0, 1, None);
        } else {
            let barrier = Barrier::new(threads);
            // The worker pool exists only for the duration of one solve;
            // every other thread in the workspace must ride the sweep
            // runner's workers.
            // lint: allow(no-thread-spawn): opt-in level-set solver pool, never constructed inside sweep cells (the sweep path solves with threads=1 and its parallelism stays in the runner)
            std::thread::scope(|scope| {
                for tid in 1..threads {
                    let barrier = &barrier;
                    scope.spawn(move || self.run_worker(factor, z, tid, threads, Some(barrier)));
                }
                self.run_worker(factor, z, 0, threads, Some(&barrier));
            });
        }

        for (zi, &old) in z.iter().zip(perm) {
            x[old] = f64::from_bits(zi.load(Ordering::Relaxed));
        }
    }

    /// One worker's share of the three sweep phases. Every worker walks
    /// the same fixed level order; barriers separate levels and phases,
    /// so each load observes only values finalized in earlier levels.
    fn run_worker(
        &self,
        factor: &LdlFactor,
        z: &[AtomicU64],
        tid: usize,
        threads: usize,
        barrier: Option<&Barrier>,
    ) {
        let values = factor.l_values();
        let col_ptr = factor.l_col_ptr();
        let row_idx = factor.l_row_idx();
        let d = factor.pivots();
        let wait = |b: Option<&Barrier>| {
            if let Some(b) = b {
                b.wait();
            }
        };
        // Forward: L·y = P·b, row-gather in ascending column order.
        for lv in 0..self.flevel_ptr.len() - 1 {
            let rows = &self.frows[self.flevel_ptr[lv]..self.flevel_ptr[lv + 1]];
            let (lo, hi) = chunk(rows.len(), tid, threads);
            for &i in &rows[lo..hi] {
                let mut zi = f64::from_bits(z[i].load(Ordering::Relaxed));
                for q in self.frow_ptr[i]..self.frow_ptr[i + 1] {
                    let zk = f64::from_bits(z[self.fcol[q]].load(Ordering::Relaxed));
                    zi -= values[self.fval_src[q]] * zk;
                }
                z[i].store(zi.to_bits(), Ordering::Relaxed);
            }
            wait(barrier);
        }
        // Diagonal: D·w = y (elementwise, any split is exact).
        let (lo, hi) = chunk(self.n, tid, threads);
        for (i, di) in (lo..hi).zip(&d[lo..hi]) {
            let zi = f64::from_bits(z[i].load(Ordering::Relaxed)) / di;
            z[i].store(zi.to_bits(), Ordering::Relaxed);
        }
        wait(barrier);
        // Backward: Lᵀ·v = w, per-column gather in storage order.
        for lv in 0..self.blevel_ptr.len() - 1 {
            let cols = &self.bcols[self.blevel_ptr[lv]..self.blevel_ptr[lv + 1]];
            let (lo, hi) = chunk(cols.len(), tid, threads);
            for &j in &cols[lo..hi] {
                let mut zj = f64::from_bits(z[j].load(Ordering::Relaxed));
                for p in col_ptr[j]..col_ptr[j + 1] {
                    zj -= values[p] * f64::from_bits(z[row_idx[p]].load(Ordering::Relaxed));
                }
                z[j].store(zj.to_bits(), Ordering::Relaxed);
            }
            wait(barrier);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::factor::{analyze, factor};
    use crate::sparse::TripletMatrix;

    fn grid_laplacian(rows: usize, cols: usize) -> crate::sparse::CsrMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut t = TripletMatrix::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_conductance(idx(r, c), idx(r, c + 1), 1.0 + (r + c) as f64 * 0.1);
                }
                if r + 1 < rows {
                    t.add_conductance(idx(r, c), idx(r + 1, c), 2.0 + c as f64 * 0.1);
                }
                t.add_grounded_conductance(idx(r, c), 0.01);
            }
        }
        t.to_csr()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn leveled_solve_is_bitwise_identical_to_serial_at_any_thread_count() {
        let a = grid_laplacian(13, 11);
        let f = factor(&a).unwrap();
        let schedule = LevelSchedule::new(&f);
        assert!(schedule.forward_levels() > 1, "a grid factor must have real levels");
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i * 29) % 13) as f64 * 0.375 - 1.5).collect();
        let serial = f.solve(&b);
        let mut scratch = LevelScratch::new();
        let mut x = vec![0.0; n];
        for threads in [1, 2, 3, 8] {
            schedule.solve_into(&f, &b, &mut scratch, &mut x, threads);
            assert_eq!(bits(&x), bits(&serial), "threads={threads}");
        }
    }

    #[test]
    fn one_schedule_serves_every_shift_of_a_pattern() {
        let g = grid_laplacian(8, 9);
        let symbolic = analyze(&g);
        let base = symbolic.factor_numeric(&g).unwrap();
        let schedule = LevelSchedule::new(&base);
        let b: Vec<f64> = (0..g.dim()).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut scratch = LevelScratch::new();
        let mut x = vec![0.0; g.dim()];
        for alpha in [0.5, 40.0] {
            let diag: Vec<f64> = (0..g.dim()).map(|i| alpha * (1.0 + i as f64 * 0.03)).collect();
            let f = symbolic.factor_numeric(&g.with_added_diagonal(&diag)).unwrap();
            schedule.solve_into(&f, &b, &mut scratch, &mut x, 4);
            assert_eq!(bits(&x), bits(&f.solve(&b)), "alpha={alpha}");
        }
    }

    #[test]
    fn levels_partition_all_rows_and_columns() {
        let a = grid_laplacian(6, 10);
        let f = factor(&a).unwrap();
        let s = LevelSchedule::new(&f);
        let mut seen = vec![false; a.dim()];
        for &i in &s.frows {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
        let mut seen = vec![false; a.dim()];
        for &j in &s.bcols {
            assert!(!seen[j]);
            seen[j] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert!(s.backward_levels() > 1);
    }

    #[test]
    #[should_panic(expected = "different structure")]
    fn schedule_rejects_a_different_structure() {
        let f_small = factor(&grid_laplacian(4, 4)).unwrap();
        let f_other = {
            let mut t = TripletMatrix::new(16);
            for i in 0..15 {
                t.add_conductance(i, i + 1, 1.0);
            }
            t.add_grounded_conductance(0, 1.0);
            factor(&t.to_csr()).unwrap()
        };
        let schedule = LevelSchedule::new(&f_small);
        let b = vec![1.0; 16];
        let mut scratch = LevelScratch::new();
        let mut x = vec![0.0; 16];
        schedule.solve_into(&f_other, &b, &mut scratch, &mut x, 2);
    }
}
