//! Minimal sparse linear algebra: symmetric CSR matrices, a
//! Jacobi-preconditioned conjugate-gradient solver, and a sparse LDLᵀ
//! direct factorization ([`factor`]).
//!
//! The thermal network's conductance matrix is a weighted graph Laplacian
//! plus positive diagonal terms for the ambient connection, hence symmetric
//! positive definite — exactly the setting where CG and Cholesky-style
//! factorizations shine and an external linear-algebra dependency would be
//! overkill. Iterative CG remains available for huge or one-off systems;
//! the [`factor`] module provides the pre-factored direct path the
//! transient integrator leans on.

pub mod factor;
pub mod level;

use std::fmt;

/// Builder accumulating matrix entries as coordinate triplets.
///
/// Duplicate `(row, col)` entries are summed when compiled to CSR, which
/// makes assembling a conductance Laplacian (`add_conductance`) a one-liner
/// per edge.
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    n: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `n × n` builder.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { n, entries: Vec::new() }
    }

    /// Dimension of the (square) matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Adds `value` to entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds or `value` is not finite.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index ({row},{col}) out of bounds for n={}", self.n);
        assert!(value.is_finite(), "matrix entry must be finite");
        self.entries.push((row, col, value));
    }

    /// Adds a thermal conductance `g` between nodes `a` and `b`: `+g` on
    /// both diagonals, `−g` on both off-diagonals (Laplacian stencil).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`, if either index is out of bounds, or if `g` is
    /// negative or not finite.
    pub fn add_conductance(&mut self, a: usize, b: usize, g: f64) {
        assert!(a != b, "conductance needs two distinct nodes");
        assert!(g.is_finite() && g >= 0.0, "conductance must be non-negative, got {g}");
        if g == 0.0 {
            return;
        }
        self.add(a, a, g);
        self.add(b, b, g);
        self.add(a, b, -g);
        self.add(b, a, -g);
    }

    /// Adds a conductance from node `a` to an implicit fixed-temperature
    /// node (ambient): only the diagonal term appears in the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of bounds or `g` is negative or not finite.
    pub fn add_grounded_conductance(&mut self, a: usize, g: f64) {
        assert!(g.is_finite() && g >= 0.0, "conductance must be non-negative, got {g}");
        if g > 0.0 {
            self.add(a, a, g);
        }
    }

    /// Compiles the triplets into a CSR matrix, summing duplicates.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(self.n, &self.entries)
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from coordinate triplets (any order, duplicates
    /// summed).
    #[must_use]
    pub fn from_triplets(n: usize, entries: &[(usize, usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = entries.to_vec();
        sorted.sort_unstable_by_key(|a| (a.0, a.1));

        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx: Vec<usize> = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut cur: Option<(usize, usize)> = None;
        for (r, c, v) in sorted {
            if cur == Some((r, c)) {
                *values.last_mut().expect("entry exists") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] += 1;
                cur = Some((r, c));
            }
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        Self { n, row_ptr, col_idx, values }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Computes `out = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `out` have the wrong length.
    pub fn mul_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n, "x length mismatch");
        assert_eq!(out.len(), self.n, "out length mismatch");
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *slot = acc;
        }
    }

    /// Returns `A·x` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    #[must_use]
    pub fn mul(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.mul_into(x, &mut out);
        out
    }

    /// The diagonal of the matrix (zero where no entry is stored).
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for (r, slot) in d.iter_mut().enumerate() {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_idx[k] == r {
                    *slot += self.values[k];
                }
            }
        }
        d
    }

    /// Iterates the stored entries of row `r` as `(col, value)` pairs,
    /// in ascending column order.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(r < self.n, "row {r} out of bounds for n={}", self.n);
        self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
            .iter()
            .zip(&self.values[self.row_ptr[r]..self.row_ptr[r + 1]])
            .map(|(&c, &v)| (c, v))
    }

    /// Returns `self + diag(d)` as a new matrix (used to assemble the
    /// implicit integrator's shifted systems `α·C + G`).
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != dim()` or any entry is not finite.
    #[must_use]
    pub fn with_added_diagonal(&self, d: &[f64]) -> CsrMatrix {
        assert_eq!(d.len(), self.n, "diagonal length mismatch");
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(self.nnz() + self.n);
        for r in 0..self.n {
            for (c, v) in self.row(r) {
                triplets.push((r, c, v));
            }
        }
        for (i, &v) in d.iter().enumerate() {
            assert!(v.is_finite(), "diagonal entry {i} must be finite, got {v}");
            triplets.push((i, i, v));
        }
        CsrMatrix::from_triplets(self.n, &triplets)
    }

    /// Entry `(row, col)` (zero if not stored).
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.n {
            return 0.0;
        }
        let mut acc = 0.0;
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            if self.col_idx[k] == col {
                acc += self.values[k];
            }
        }
        acc
    }

    /// Checks symmetry to within `tol` (debugging aid; O(nnz·log)).
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for r in 0..self.n {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CsrMatrix {}x{} ({} nnz)", self.n, self.n, self.nnz())
    }
}

/// Outcome of a conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm relative to the right-hand side norm.
    pub relative_residual: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Solves `A·x = b` for symmetric positive-definite `A` using
/// Jacobi-preconditioned conjugate gradients.
///
/// `x0` seeds the iteration (pass the previous solution when solving a
/// sequence of similar systems).
///
/// # Panics
///
/// Panics if dimensions disagree or the matrix has a non-positive diagonal
/// entry (not SPD).
#[must_use]
pub fn solve_cg(a: &CsrMatrix, b: &[f64], x0: &[f64], tol: f64, max_iter: usize) -> CgSolution {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x0.len(), n, "x0 length mismatch");
    let diag = a.diagonal();
    for (i, &d) in diag.iter().enumerate() {
        assert!(d > 0.0, "diagonal entry {i} is {d}; matrix not SPD");
    }
    let inv_diag: Vec<f64> = diag.iter().map(|&d| 1.0 / d).collect();

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        return CgSolution {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
        };
    }

    let mut x = x0.to_vec();
    let mut r = vec![0.0; n];
    a.mul_into(&x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for it in 0..max_iter {
        let res = norm2(&r) / b_norm;
        if res <= tol {
            return CgSolution { x, iterations: it, relative_residual: res, converged: true };
        }
        a.mul_into(&p, &mut ap);
        let alpha = rz / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let res = norm2(&r) / b_norm;
    CgSolution { x, iterations: max_iter, relative_residual: res, converged: res <= tol }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_chain(n: usize, g: f64, g_amb: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(n);
        for i in 0..n - 1 {
            t.add_conductance(i, i + 1, g);
        }
        t.add_grounded_conductance(0, g_amb);
        t.to_csr()
    }

    #[test]
    fn triplets_sum_duplicates() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.0);
        t.add(1, 1, 4.0);
        let m = t.to_csr();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn conductance_stencil() {
        let mut t = TripletMatrix::new(3);
        t.add_conductance(0, 2, 5.0);
        let m = t.to_csr();
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(2, 2), 5.0);
        assert_eq!(m.get(0, 2), -5.0);
        assert_eq!(m.get(2, 0), -5.0);
        assert!(m.is_symmetric(1e-12));
    }

    #[test]
    fn zero_conductance_is_noop() {
        let mut t = TripletMatrix::new(2);
        t.add_conductance(0, 1, 0.0);
        assert_eq!(t.to_csr().nnz(), 0);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = laplacian_chain(3, 2.0, 1.0);
        // Rows: [3, -2, 0; -2, 4, -2; 0, -2, 2]
        let y = m.mul(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![3.0 - 4.0, -2.0 + 8.0 - 6.0, -4.0 + 6.0]);
    }

    #[test]
    fn cg_solves_chain() {
        // Physical reading: 4-node rod, node 0 tied to ground through
        // g_amb=1; inject 1 W at the far end. Exact solution: T3 − T2 =
        // 1/g, etc.; T0 = 1.0.
        let n = 4;
        let m = laplacian_chain(n, 2.0, 1.0);
        let mut b = vec![0.0; n];
        b[3] = 1.0;
        let sol = solve_cg(&m, &b, &vec![0.0; n], 1e-12, 200);
        assert!(sol.converged, "CG must converge on SPD chain");
        let expect = [1.0, 1.5, 2.0, 2.5];
        for (xi, ei) in sol.x.iter().zip(expect) {
            assert!((xi - ei).abs() < 1e-9, "{sol:?}");
        }
    }

    #[test]
    fn cg_zero_rhs_short_circuits() {
        let m = laplacian_chain(3, 1.0, 1.0);
        let sol = solve_cg(&m, &[0.0; 3], &[5.0; 3], 1e-10, 10);
        assert_eq!(sol.x, vec![0.0; 3]);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn cg_warm_start_converges_faster() {
        let n = 50;
        let m = laplacian_chain(n, 3.0, 0.5);
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.1).collect();
        let cold = solve_cg(&m, &b, &vec![0.0; n], 1e-10, 10_000);
        let warm = solve_cg(&m, &b, &cold.x, 1e-10, 10_000);
        assert!(warm.iterations <= 1, "warm start from exact solution");
    }

    #[test]
    #[should_panic(expected = "not SPD")]
    fn cg_rejects_zero_diagonal() {
        let t = TripletMatrix::new(2);
        let m = t.to_csr();
        let _ = solve_cg(&m, &[1.0, 1.0], &[0.0, 0.0], 1e-10, 10);
    }

    #[test]
    fn diagonal_extraction() {
        let m = laplacian_chain(3, 2.0, 1.0);
        assert_eq!(m.diagonal(), vec![3.0, 4.0, 2.0]);
    }
}
