//! Run-scoped sharing of symbolic analyses and numeric factors across
//! thermal models.
//!
//! A sweep routinely runs hundreds of cells whose thermal models are
//! *identical* — same experiment, stack order, TSV variant, grid and
//! integrator — differing only in policies, sensors or seeds, none of
//! which touch the RC network. Without sharing, every such cell redoes
//! the same symbolic analysis and the same numeric factorizations.
//! A [`FactorShare`] is a lock-light, clonable handle the sweep runner
//! creates per distinct model fingerprint and attaches to every
//! matching cell's model ([`crate::ThermalModel::set_factor_share`]):
//! the first model to need the analysis or a factor computes it *under
//! the share lock* (so it is computed exactly once, regardless of
//! scheduling), and every other model adopts the finished `Arc`.
//!
//! The lock is held only to adopt or to compute a missing entry; after
//! warm-up each cell takes it a handful of times total (once per
//! distinct factor key), so contention is negligible next to the
//! simulation work. Determinism is unaffected: adopted factors are
//! bit-identical to what the adopting model would have computed
//! itself, because the numeric phases are deterministic functions of
//! the (identical) assembled systems.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::sparse::factor::{LdlFactor, SupernodalPlan, Symbolic};

/// Shared factor state for one thermal-model fingerprint. Cloning the
/// handle shares the underlying state (it is an `Arc` internally).
#[derive(Debug, Clone, Default)]
pub struct FactorShare {
    inner: Arc<Mutex<ShareState>>,
}

/// The guarded state: one symbolic analysis (plus the supernodal plan
/// where the blocked path applies), the steady-state factor of `G`,
/// and one factor per distinct implicit substep size.
#[derive(Debug, Default)]
pub(crate) struct ShareState {
    pub(crate) symbolic: Option<Arc<Symbolic>>,
    pub(crate) plan: Option<Arc<SupernodalPlan>>,
    pub(crate) steady: Option<Arc<LdlFactor>>,
    /// `(h_bits, factor)` per distinct substep size, insertion order.
    pub(crate) steps: Vec<(u64, Arc<LdlFactor>)>,
    /// Symbolic analyses actually computed (not adopted) through this
    /// share — exactly 1 once any model has factored.
    pub(crate) symbolic_analyses: usize,
    /// Numeric factorizations actually computed through this share —
    /// exactly one per distinct factor key.
    pub(crate) factorizations: usize,
    /// Factor adoptions served from the share instead of recomputed.
    pub(crate) hits: usize,
}

impl FactorShare {
    /// A fresh, empty share.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the state. A cell that panicked mid-factor (the sweep
    /// runner catches unwinds) must not wedge every sibling cell, so a
    /// poisoned lock is recovered rather than propagated.
    pub(crate) fn lock(&self) -> MutexGuard<'_, ShareState> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Symbolic analyses computed through this share (1 once warm).
    #[must_use]
    pub fn symbolic_analyses(&self) -> usize {
        self.lock().symbolic_analyses
    }

    /// Numeric factorizations computed through this share (one per
    /// distinct steady/substep-size key).
    #[must_use]
    pub fn factorizations(&self) -> usize {
        self.lock().factorizations
    }

    /// Factor requests served by adoption instead of recomputation.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.lock().hits
    }

    /// Distinct factors currently held (steady plus per-step-size).
    #[must_use]
    pub fn factors_cached(&self) -> usize {
        let s = self.lock();
        s.steps.len() + usize::from(s.steady.is_some())
    }
}
