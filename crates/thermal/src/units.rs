//! Temperature conversion helpers.
//!
//! The thermal solver works in kelvin internally (the linear RC system is
//! defined on absolute temperatures); the public API and the paper's
//! thresholds (85 °C, 80 °C, 15 °C gradients, 20 °C cycles) are in degrees
//! Celsius. These helpers keep conversions explicit at the boundary.

/// Offset between the Celsius and Kelvin scales.
pub const KELVIN_OFFSET: f64 = 273.15;

/// Converts degrees Celsius to kelvin.
///
/// # Examples
///
/// ```
/// use therm3d_thermal::units::kelvin_from_celsius;
/// assert_eq!(kelvin_from_celsius(0.0), 273.15);
/// assert_eq!(kelvin_from_celsius(85.0), 358.15);
/// ```
#[must_use]
pub fn kelvin_from_celsius(celsius: f64) -> f64 {
    celsius + KELVIN_OFFSET
}

/// Converts kelvin to degrees Celsius.
///
/// # Examples
///
/// ```
/// use therm3d_thermal::units::celsius_from_kelvin;
/// assert!((celsius_from_kelvin(383.0) - 109.85).abs() < 1e-9);
/// ```
#[must_use]
pub fn celsius_from_kelvin(kelvin: f64) -> f64 {
    kelvin - KELVIN_OFFSET
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for c in [-40.0, 0.0, 45.0, 85.0, 110.0] {
            let back = celsius_from_kelvin(kelvin_from_celsius(c));
            assert!((back - c).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_reference_points() {
        // The leakage model's reference temperature is 383 K (Section IV-B).
        assert!((kelvin_from_celsius(109.85) - 383.0).abs() < 1e-9);
    }
}
