//! Thermal material properties.

use std::fmt;

/// Bulk thermal properties of a material.
///
/// # Examples
///
/// ```
/// use therm3d_thermal::material::Material;
///
/// let si = Material::SILICON;
/// assert!((si.resistivity() - 1.0 / si.conductivity).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Thermal conductivity `k` in W/(m·K).
    pub conductivity: f64,
    /// Volumetric heat capacity `c_v` in J/(m³·K).
    pub volumetric_heat_capacity: f64,
}

impl Material {
    /// Silicon near operating temperature (HotSpot's default:
    /// k = 100 W/(m·K), c_v = 1.75 MJ/(m³·K)).
    pub const SILICON: Material =
        Material { conductivity: 100.0, volumetric_heat_capacity: 1.75e6 };

    /// Copper (heat spreader and sink): k = 400 W/(m·K),
    /// c_v = 3.55 MJ/(m³·K).
    pub const COPPER: Material = Material { conductivity: 400.0, volumetric_heat_capacity: 3.55e6 };

    /// The inter-die interface material of Table II: resistivity
    /// 0.25 m·K/W (k = 4 W/(m·K)), c_v = 4 MJ/(m³·K) — typical for the
    /// polymer/adhesive bonding layers used in face-to-back stacking.
    pub const INTERFACE: Material = Material { conductivity: 4.0, volumetric_heat_capacity: 4.0e6 };

    /// Thermal interface material between die and spreader (HotSpot
    /// default-like: k = 4 W/(m·K)).
    pub const TIM: Material = Material { conductivity: 4.0, volumetric_heat_capacity: 4.0e6 };

    /// Creates a material from conductivity and volumetric heat capacity.
    ///
    /// # Panics
    ///
    /// Panics if either property is not strictly positive and finite.
    #[must_use]
    pub fn new(conductivity: f64, volumetric_heat_capacity: f64) -> Self {
        assert!(
            conductivity.is_finite() && conductivity > 0.0,
            "conductivity must be positive, got {conductivity}"
        );
        assert!(
            volumetric_heat_capacity.is_finite() && volumetric_heat_capacity > 0.0,
            "volumetric heat capacity must be positive, got {volumetric_heat_capacity}"
        );
        Self { conductivity, volumetric_heat_capacity }
    }

    /// Creates a material from its thermal **resistivity** in m·K/W (the
    /// unit Table II uses for the interlayer material).
    ///
    /// # Panics
    ///
    /// Panics if `resistivity` or `volumetric_heat_capacity` is not
    /// strictly positive and finite.
    #[must_use]
    pub fn from_resistivity(resistivity: f64, volumetric_heat_capacity: f64) -> Self {
        assert!(
            resistivity.is_finite() && resistivity > 0.0,
            "resistivity must be positive, got {resistivity}"
        );
        Self::new(1.0 / resistivity, volumetric_heat_capacity)
    }

    /// Thermal resistivity `1/k` in m·K/W.
    #[must_use]
    pub fn resistivity(&self) -> f64 {
        1.0 / self.conductivity
    }

    /// Conduction resistance of a slab of this material, `t / (k·A)`, in
    /// K/W.
    ///
    /// # Panics
    ///
    /// Panics if `thickness_m` or `area_m2` is not strictly positive.
    #[must_use]
    pub fn slab_resistance(&self, thickness_m: f64, area_m2: f64) -> f64 {
        assert!(thickness_m > 0.0, "slab thickness must be positive");
        assert!(area_m2 > 0.0, "slab area must be positive");
        thickness_m / (self.conductivity * area_m2)
    }

    /// Heat capacity of a volume of this material, `c_v · V`, in J/K.
    ///
    /// # Panics
    ///
    /// Panics if `volume_m3` is not strictly positive.
    #[must_use]
    pub fn volume_capacitance(&self, volume_m3: f64) -> f64 {
        assert!(volume_m3 > 0.0, "volume must be positive");
        self.volumetric_heat_capacity * volume_m3
    }
}

impl fmt::Display for Material {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k={} W/(m·K), c_v={:.3e} J/(m³·K)",
            self.conductivity, self.volumetric_heat_capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_matches_table_ii_resistivity() {
        assert!((Material::INTERFACE.resistivity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn slab_resistance_formula() {
        // 0.15 mm silicon over 1 mm²: R = 1.5e-4 / (100 * 1e-6) = 1.5 K/W.
        let r = Material::SILICON.slab_resistance(0.15e-3, 1.0e-6);
        assert!((r - 1.5).abs() < 1e-12);
    }

    #[test]
    fn volume_capacitance_formula() {
        // 1 mm³ silicon: 1.75e6 * 1e-9 = 1.75e-3 J/K.
        let c = Material::SILICON.volume_capacitance(1.0e-9);
        assert!((c - 1.75e-3).abs() < 1e-15);
    }

    #[test]
    fn from_resistivity_round_trip() {
        let m = Material::from_resistivity(0.25, 4.0e6);
        assert!((m.conductivity - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "conductivity must be positive")]
    fn rejects_zero_conductivity() {
        let _ = Material::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "resistivity must be positive")]
    fn rejects_negative_resistivity() {
        let _ = Material::from_resistivity(-1.0, 1.0);
    }
}
