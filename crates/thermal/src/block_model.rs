//! Block-granularity RC thermal model — HotSpot's *block model*
//! counterpart to the grid model the paper uses.
//!
//! One thermal node per floorplan block (instead of `R×C` cells per
//! layer): lateral conductances between blocks that share an edge,
//! vertical conductances between blocks that overlap on adjacent layers,
//! and the same TIM/spreader/sink package as
//! [`RcNetwork`](crate::RcNetwork). The block model is an order of
//! magnitude smaller and correspondingly faster, at the cost of washing
//! out within-block temperature variation; the `model_fidelity` ablation
//! binary quantifies the difference against the grid model.
//!
//! Like the grid model, transients default to the implicit TR-BDF2
//! integrator against a cached LDLᵀ factorization and steady states are
//! solved directly ([`Integrator::ImplicitCn`] in the shared config);
//! the pre-implicit forward-Euler path survives under
//! [`Integrator::ExplicitRk4`] as the golden reference.

use therm3d_floorplan::Stack3d;

use crate::config::{Integrator, ThermalConfig};
use crate::model::{MAX_IMPLICIT_STEP_S, TRBDF2_C1, TRBDF2_C2, TRBDF2_SHIFT};
use crate::sparse::factor::{analyze, LdlFactor, Symbolic};
use crate::sparse::{CsrMatrix, TripletMatrix};
use crate::units::{celsius_from_kelvin, kelvin_from_celsius};

/// Block-granularity thermal model with the same public shape as
/// [`ThermalModel`](crate::ThermalModel): set powers, step, read
/// temperatures.
///
/// # Examples
///
/// ```
/// use therm3d_floorplan::Experiment;
/// use therm3d_thermal::{BlockThermalModel, ThermalConfig};
///
/// let stack = Experiment::Exp2.stack();
/// let mut model = BlockThermalModel::new(&stack, ThermalConfig::paper_default());
/// let powers = vec![1.0; stack.num_blocks()];
/// let steady = model.initialize_steady_state(&powers);
/// assert!(steady.iter().all(|&t| t > 45.0));
/// ```
#[derive(Debug, Clone)]
pub struct BlockThermalModel {
    /// Conductance matrix over `n_blocks + 2` nodes (spreader, sink last).
    conductance: CsrMatrix,
    /// Heat capacity per node, J/K.
    capacitance: Vec<f64>,
    /// Conductance to ambient per node (sink only), W/K.
    ambient_g: Vec<f64>,
    ambient_k: f64,
    n_blocks: usize,
    /// Node temperatures, kelvin.
    temps_k: Vec<f64>,
    /// Block power injection, W.
    powers_w: Vec<f64>,
    /// Conservative stable explicit step bound, seconds.
    stable_dt: f64,
    /// The transient integrator (same config knob as the grid model).
    integrator: Integrator,
    /// One symbolic analysis serves `G` and every `α·C + G` (the shift
    /// only touches the structurally-full diagonal).
    symbolic: Option<Symbolic>,
    /// Direct factor of `G` for steady states.
    steady: Option<LdlFactor>,
    /// Factor of `(TRBDF2_SHIFT/h)·C + G` for the last substep size.
    step_factor: Option<(u64, LdlFactor)>,
}

impl BlockThermalModel {
    /// Builds the block-level network for `stack`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    #[must_use]
    pub fn new(stack: &Stack3d, config: ThermalConfig) -> Self {
        config.validate();
        let n = stack.num_blocks();
        let spreader = n;
        let sink = n + 1;
        let mut g = TripletMatrix::new(n + 2);
        let mut cap = vec![0.0; n + 2];
        let mut g_amb = vec![0.0; n + 2];

        let k_si = config.silicon.conductivity;
        let t_die = config.die_thickness_m;
        let sites = stack.sites();

        // Heat capacity: silicon volume per block.
        for (i, s) in sites.iter().enumerate() {
            let volume = s.area_mm2 * 1e-6 * t_die;
            cap[i] = config.silicon.volume_capacitance(volume);
        }

        // Lateral conductances: blocks on the same layer sharing an edge.
        // G = k_si · t_die · L_shared / d_centers.
        for layer in 0..stack.layer_count() {
            let fp = stack.layer(layer);
            for a in 0..fp.len() {
                for b in (a + 1)..fp.len() {
                    let ra = fp.blocks()[a].rect();
                    let rb = fp.blocks()[b].rect();
                    let shared_mm = ra.shared_edge_length(rb);
                    if shared_mm <= 0.0 {
                        continue;
                    }
                    let (ax, ay) = ra.center();
                    let (bx, by) = rb.center();
                    let dist_m = ((ax - bx).hypot(ay - by)) * 1e-3;
                    let g_lat = k_si * t_die * (shared_mm * 1e-3) / dist_m;
                    let ia = stack.site_index(layer, a).expect("valid site");
                    let ib = stack.site_index(layer, b).expect("valid site");
                    g.add_conductance(ia, ib, g_lat);
                }
            }
        }

        // Vertical conductances through half-die + interface + half-die.
        let rho_interlayer = config.interlayer.resistivity();
        for (lo, hi) in stack.vertical_adjacency() {
            let overlap_mm2 = {
                let slo = &sites[lo];
                let shi = &sites[hi];
                let rl = stack.layer(slo.layer).blocks()[slo.block].rect();
                let rh = stack.layer(shi.layer).blocks()[shi.block].rect();
                rl.intersection_area(rh)
            };
            let area_m2 = overlap_mm2 * 1e-6;
            let r =
                t_die / (k_si * area_m2) + config.interlayer_thickness_m * rho_interlayer / area_m2;
            g.add_conductance(lo, hi, 1.0 / r);
        }

        // Bottom layer into the spreader through half-die + TIM + spreader.
        for (i, s) in sites.iter().enumerate() {
            if s.layer != 0 {
                continue;
            }
            let area_m2 = s.area_mm2 * 1e-6;
            let r = t_die / (2.0 * k_si * area_m2)
                + config.tim_thickness_m * config.tim.resistivity() / area_m2
                + config.spreader_thickness_m / (config.spreader.conductivity * area_m2);
            g.add_conductance(i, spreader, 1.0 / r);
        }

        // Package (same as the grid model).
        cap[spreader] = config.spreader.volume_capacitance(
            config.spreader_side_m * config.spreader_side_m * config.spreader_thickness_m,
        );
        cap[sink] = config.convection_capacitance_jk;
        g.add_conductance(spreader, sink, 1.0 / config.spreader_to_sink_resistance_kw);
        g_amb[sink] = 1.0 / config.convection_resistance_kw;
        g.add_grounded_conductance(sink, g_amb[sink]);

        let conductance = g.to_csr();
        // Stable explicit step ∝ min(C_i / G_ii).
        let stable_dt = conductance
            .diagonal()
            .iter()
            .zip(&cap)
            .filter(|(_, &c)| c > 0.0)
            .map(|(&gii, &c)| c / gii)
            .fold(f64::INFINITY, f64::min)
            * 0.4;

        let ambient_k = kelvin_from_celsius(config.ambient_c);
        Self {
            conductance,
            capacitance: cap,
            ambient_g: g_amb,
            ambient_k,
            n_blocks: n,
            temps_k: vec![ambient_k; n + 2],
            powers_w: vec![0.0; n],
            stable_dt: stable_dt.max(1e-6),
            integrator: config.integrator,
            symbolic: None,
            steady: None,
            step_factor: None,
        }
    }

    /// Number of blocks (power entries / readable temperatures).
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.n_blocks
    }

    /// Total nodes including spreader and sink.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n_blocks + 2
    }

    /// Sets the per-block power injection.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len() != block_count()` or a power is negative
    /// or non-finite.
    pub fn set_block_powers(&mut self, powers: &[f64]) {
        assert_eq!(powers.len(), self.n_blocks, "one power per block");
        for (i, &p) in powers.iter().enumerate() {
            assert!(p.is_finite() && p >= 0.0, "block {i} power {p} must be non-negative");
        }
        self.powers_w.copy_from_slice(powers);
    }

    fn node_power(&self) -> Vec<f64> {
        let mut p = vec![0.0; self.node_count()];
        p[..self.n_blocks].copy_from_slice(&self.powers_w);
        for (i, &g) in self.ambient_g.iter().enumerate() {
            if g > 0.0 {
                p[i] += g * self.ambient_k;
            }
        }
        p
    }

    /// Solves `G·T = P` directly (LDLᵀ, factored once and cached) and
    /// adopts the result as the current state, returning block
    /// temperatures in °C.
    ///
    /// # Panics
    ///
    /// Panics if the conductance matrix is not positive definite
    /// (indicates a non-physical configuration).
    #[must_use]
    pub fn initialize_steady_state(&mut self, powers: &[f64]) -> Vec<f64> {
        self.set_block_powers(powers);
        let b = self.node_power();
        if self.steady.is_none() {
            self.ensure_symbolic();
            let sym = self.symbolic.as_ref().expect("analyzed above");
            self.steady = Some(
                sym.factor_numeric(&self.conductance)
                    .expect("block conductance matrix is positive definite"),
            );
        }
        let mut scratch = Vec::new();
        self.steady.as_ref().expect("factored above").solve_into(
            &b,
            &mut scratch,
            &mut self.temps_k,
        );
        self.block_temperatures_c()
    }

    /// Advances the transient solution by `dt` seconds.
    ///
    /// Under [`Integrator::ImplicitCn`] (the default config) the
    /// interval is subdivided into TR-BDF2 substeps of at most
    /// 35 ms against one cached LDLᵀ factorization of
    /// `(2+√2)/h·C + G` — the same scheme, constants and substep
    /// bound as the grid model, so the two models' transients are
    /// directly comparable. Under [`Integrator::ExplicitRk4`] the
    /// historical forward-Euler path sub-steps under the stability
    /// bound (the block network is small enough that this is cheap);
    /// it is retained as the golden reference the cross-check tests
    /// integrate against.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step(&mut self, dt: f64) {
        assert!(dt > 0.0 && dt.is_finite(), "step must be positive");
        match self.integrator {
            Integrator::ImplicitCn => self.step_implicit(dt),
            Integrator::ExplicitRk4 => self.step_explicit(dt),
        }
    }

    /// TR-BDF2 substeps mirroring `ThermalModel::trbdf2_substep`: with
    /// `α = (2+√2)/h`, `M = α·C + G` and `b = P + g_amb·T_amb`, stage 1
    /// solves `M·T_γ = α·C·T − G·T + 2b` and stage 2
    /// `M·T' = α·C·(c1·T_γ − c2·T) + b`.
    fn step_implicit(&mut self, dt: f64) {
        let substeps = (dt / MAX_IMPLICIT_STEP_S).ceil().max(1.0) as usize;
        let h = dt / substeps as f64;
        self.ensure_step_factor(h);
        let alpha = TRBDF2_SHIFT / h;
        let b = self.node_power();
        let n = self.node_count();
        let mut gt = vec![0.0; n];
        let mut rhs = vec![0.0; n];
        let mut stage = vec![0.0; n];
        let mut scratch = Vec::new();
        let factored = &self.step_factor.as_ref().expect("factored above").1;
        for _ in 0..substeps {
            self.conductance.mul_into(&self.temps_k, &mut gt);
            for i in 0..n {
                rhs[i] = alpha * self.capacitance[i] * self.temps_k[i] - gt[i] + 2.0 * b[i];
            }
            factored.solve_into(&rhs, &mut scratch, &mut stage);
            for i in 0..n {
                rhs[i] = alpha
                    * self.capacitance[i]
                    * (TRBDF2_C1 * stage[i] - TRBDF2_C2 * self.temps_k[i])
                    + b[i];
            }
            factored.solve_into(&rhs, &mut scratch, &mut self.temps_k);
        }
    }

    /// Forward Euler under the stability bound — the pre-implicit
    /// reference integrator.
    fn step_explicit(&mut self, dt: f64) {
        let p = self.node_power();
        let n = self.node_count();
        let mut remaining = dt;
        let mut flow = vec![0.0; n];
        while remaining > 0.0 {
            let h = remaining.min(self.stable_dt);
            self.conductance.mul_into(&self.temps_k, &mut flow);
            for i in 0..n {
                if self.capacitance[i] > 0.0 {
                    self.temps_k[i] += h * (p[i] - flow[i]) / self.capacitance[i];
                }
            }
            remaining -= h;
        }
    }

    fn ensure_symbolic(&mut self) {
        if self.symbolic.is_none() {
            self.symbolic = Some(analyze(&self.conductance));
        }
    }

    /// Caches the factor of `(TRBDF2_SHIFT/h)·C + G` for substep size
    /// `h`; the shift touches only the (structurally full) diagonal, so
    /// the one symbolic analysis serves every `h` and `G` itself.
    fn ensure_step_factor(&mut self, h: f64) {
        let h_bits = h.to_bits();
        if self.step_factor.as_ref().is_some_and(|(bits, _)| *bits == h_bits) {
            return;
        }
        self.ensure_symbolic();
        let alpha = TRBDF2_SHIFT / h;
        let shift: Vec<f64> = self.capacitance.iter().map(|&c| alpha * c).collect();
        let system = self.conductance.with_added_diagonal(&shift);
        let sym = self.symbolic.as_ref().expect("analyzed above");
        let factored =
            sym.factor_numeric(&system).expect("shifted block system is positive definite");
        self.step_factor = Some((h_bits, factored));
    }

    /// Current block temperatures, °C.
    #[must_use]
    pub fn block_temperatures_c(&self) -> Vec<f64> {
        self.temps_k[..self.n_blocks].iter().map(|&k| celsius_from_kelvin(k)).collect()
    }

    /// The sink node temperature, °C.
    #[must_use]
    pub fn sink_temperature_c(&self) -> f64 {
        celsius_from_kelvin(self.temps_k[self.n_blocks + 1])
    }

    /// Resets every node to a uniform temperature.
    pub fn reset_uniform(&mut self, celsius: f64) {
        let k = kelvin_from_celsius(celsius);
        self.temps_k.fill(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use therm3d_floorplan::Experiment;

    fn model(exp: Experiment) -> (Stack3d, BlockThermalModel) {
        let stack = exp.stack();
        let m = BlockThermalModel::new(&stack, ThermalConfig::paper_default());
        (stack, m)
    }

    #[test]
    fn steady_state_above_ambient_and_conserves() {
        let (stack, mut m) = model(Experiment::Exp2);
        let powers = vec![1.0; stack.num_blocks()];
        let total: f64 = powers.iter().sum();
        let temps = m.initialize_steady_state(&powers);
        for &t in &temps {
            assert!(t > 45.0 && t < 150.0, "{t}");
        }
        let expected_sink = 45.0 + total * 0.1;
        assert!(
            (m.sink_temperature_c() - expected_sink).abs() < 0.05,
            "sink {} vs conservation {expected_sink}",
            m.sink_temperature_c()
        );
    }

    #[test]
    fn transient_converges_to_steady() {
        let (stack, mut m) = model(Experiment::Exp1);
        let powers: Vec<f64> = (0..stack.num_blocks()).map(|i| 0.3 + 0.1 * i as f64).collect();
        let steady = m.initialize_steady_state(&powers);
        let mut t = BlockThermalModel::new(&stack, ThermalConfig::paper_default());
        t.reset_uniform(45.0);
        t.set_block_powers(&powers);
        for _ in 0..4000 {
            t.step(0.1);
        }
        for (a, b) in steady.iter().zip(&t.block_temperatures_c()) {
            assert!((a - b).abs() < 0.5, "{a} vs {b}");
        }
    }

    #[test]
    fn agrees_with_grid_model_within_a_few_degrees() {
        // The headline fidelity check: block vs 8×8 grid steady states.
        use crate::ThermalModel;
        for exp in [Experiment::Exp1, Experiment::Exp3] {
            let stack = exp.stack();
            let powers: Vec<f64> = stack
                .sites()
                .iter()
                .map(|s| match s.kind {
                    therm3d_floorplan::UnitKind::Core => 3.0,
                    therm3d_floorplan::UnitKind::L2Cache => 1.28,
                    _ => 2.0,
                })
                .collect();
            let mut grid = ThermalModel::new(&stack, ThermalConfig::paper_default());
            let mut block = BlockThermalModel::new(&stack, ThermalConfig::paper_default());
            let tg = grid.initialize_steady_state(&powers);
            let tb = block.initialize_steady_state(&powers);
            for (i, (a, b)) in tg.iter().zip(&tb).enumerate() {
                assert!((a - b).abs() < 6.0, "{exp} block {i}: grid {a:.1} vs block-model {b:.1}");
            }
        }
    }

    #[test]
    fn implicit_trajectory_tracks_the_explicit_reference() {
        // The migration cross-check: the implicit TR-BDF2 path must
        // integrate the same physics as the historical explicit path.
        let stack = Experiment::Exp2.stack();
        let powers: Vec<f64> =
            (0..stack.num_blocks()).map(|i| 0.5 + 0.2 * (i % 4) as f64).collect();
        let mut implicit = BlockThermalModel::new(
            &stack,
            ThermalConfig::paper_default().with_integrator(crate::Integrator::ImplicitCn),
        );
        let mut explicit = BlockThermalModel::new(
            &stack,
            ThermalConfig::paper_default().with_integrator(crate::Integrator::ExplicitRk4),
        );
        for m in [&mut implicit, &mut explicit] {
            m.reset_uniform(45.0);
            m.set_block_powers(&powers);
        }
        for tick in 0..200 {
            implicit.step(0.1);
            explicit.step(0.1);
            if tick % 40 == 0 {
                for (i, (a, b)) in implicit
                    .block_temperatures_c()
                    .iter()
                    .zip(&explicit.block_temperatures_c())
                    .enumerate()
                {
                    assert!(
                        (a - b).abs() < 0.2,
                        "tick {tick} block {i}: implicit {a:.3} vs explicit {b:.3}"
                    );
                }
            }
        }
    }

    #[test]
    fn steady_state_matches_between_direct_and_transient_integrators() {
        // Direct LDL^T steady state == where both transients settle.
        let (stack, mut m) = model(Experiment::Exp3);
        let powers = vec![0.8; stack.num_blocks()];
        let steady = m.initialize_steady_state(&powers);
        let mut t = BlockThermalModel::new(&stack, ThermalConfig::paper_default());
        t.reset_uniform(45.0);
        t.set_block_powers(&powers);
        for _ in 0..4000 {
            t.step(0.1);
        }
        for (a, b) in steady.iter().zip(&t.block_temperatures_c()) {
            assert!((a - b).abs() < 0.5, "{a} vs {b}");
        }
    }

    #[test]
    fn hotter_with_more_power() {
        let (stack, mut m) = model(Experiment::Exp4);
        let lo = m.initialize_steady_state(&vec![0.5; stack.num_blocks()]);
        let hi = m.initialize_steady_state(&vec![1.5; stack.num_blocks()]);
        for (a, b) in lo.iter().zip(&hi) {
            assert!(b > a);
        }
    }

    #[test]
    fn block_count_excludes_package_nodes() {
        let (stack, m) = model(Experiment::Exp3);
        assert_eq!(m.block_count(), stack.num_blocks());
        assert_eq!(m.node_count(), stack.num_blocks() + 2);
    }

    #[test]
    #[should_panic(expected = "one power per block")]
    fn wrong_power_length_rejected() {
        let (_, mut m) = model(Experiment::Exp1);
        m.set_block_powers(&[1.0]);
    }
}
