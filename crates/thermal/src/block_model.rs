//! Block-granularity RC thermal model — HotSpot's *block model*
//! counterpart to the grid model the paper uses.
//!
//! One thermal node per floorplan block (instead of `R×C` cells per
//! layer): lateral conductances between blocks that share an edge,
//! vertical conductances between blocks that overlap on adjacent layers,
//! and the same TIM/spreader/sink package as
//! [`RcNetwork`](crate::RcNetwork). The block model is an order of
//! magnitude smaller and correspondingly faster, at the cost of washing
//! out within-block temperature variation; the `model_fidelity` ablation
//! binary quantifies the difference against the grid model.

use therm3d_floorplan::Stack3d;

use crate::config::ThermalConfig;
use crate::sparse::{solve_cg, CsrMatrix, TripletMatrix};
use crate::units::{celsius_from_kelvin, kelvin_from_celsius};

/// Block-granularity thermal model with the same public shape as
/// [`ThermalModel`](crate::ThermalModel): set powers, step, read
/// temperatures.
///
/// # Examples
///
/// ```
/// use therm3d_floorplan::Experiment;
/// use therm3d_thermal::{BlockThermalModel, ThermalConfig};
///
/// let stack = Experiment::Exp2.stack();
/// let mut model = BlockThermalModel::new(&stack, ThermalConfig::paper_default());
/// let powers = vec![1.0; stack.num_blocks()];
/// let steady = model.initialize_steady_state(&powers);
/// assert!(steady.iter().all(|&t| t > 45.0));
/// ```
#[derive(Debug, Clone)]
pub struct BlockThermalModel {
    /// Conductance matrix over `n_blocks + 2` nodes (spreader, sink last).
    conductance: CsrMatrix,
    /// Heat capacity per node, J/K.
    capacitance: Vec<f64>,
    /// Conductance to ambient per node (sink only), W/K.
    ambient_g: Vec<f64>,
    ambient_k: f64,
    n_blocks: usize,
    /// Node temperatures, kelvin.
    temps_k: Vec<f64>,
    /// Block power injection, W.
    powers_w: Vec<f64>,
    /// Conservative stable explicit step bound, seconds.
    stable_dt: f64,
}

impl BlockThermalModel {
    /// Builds the block-level network for `stack`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    #[must_use]
    pub fn new(stack: &Stack3d, config: ThermalConfig) -> Self {
        config.validate();
        let n = stack.num_blocks();
        let spreader = n;
        let sink = n + 1;
        let mut g = TripletMatrix::new(n + 2);
        let mut cap = vec![0.0; n + 2];
        let mut g_amb = vec![0.0; n + 2];

        let k_si = config.silicon.conductivity;
        let t_die = config.die_thickness_m;
        let sites = stack.sites();

        // Heat capacity: silicon volume per block.
        for (i, s) in sites.iter().enumerate() {
            let volume = s.area_mm2 * 1e-6 * t_die;
            cap[i] = config.silicon.volume_capacitance(volume);
        }

        // Lateral conductances: blocks on the same layer sharing an edge.
        // G = k_si · t_die · L_shared / d_centers.
        for layer in 0..stack.layer_count() {
            let fp = stack.layer(layer);
            for a in 0..fp.len() {
                for b in (a + 1)..fp.len() {
                    let ra = fp.blocks()[a].rect();
                    let rb = fp.blocks()[b].rect();
                    let shared_mm = ra.shared_edge_length(rb);
                    if shared_mm <= 0.0 {
                        continue;
                    }
                    let (ax, ay) = ra.center();
                    let (bx, by) = rb.center();
                    let dist_m = ((ax - bx).hypot(ay - by)) * 1e-3;
                    let g_lat = k_si * t_die * (shared_mm * 1e-3) / dist_m;
                    let ia = stack.site_index(layer, a).expect("valid site");
                    let ib = stack.site_index(layer, b).expect("valid site");
                    g.add_conductance(ia, ib, g_lat);
                }
            }
        }

        // Vertical conductances through half-die + interface + half-die.
        let rho_interlayer = config.interlayer.resistivity();
        for (lo, hi) in stack.vertical_adjacency() {
            let overlap_mm2 = {
                let slo = &sites[lo];
                let shi = &sites[hi];
                let rl = stack.layer(slo.layer).blocks()[slo.block].rect();
                let rh = stack.layer(shi.layer).blocks()[shi.block].rect();
                rl.intersection_area(rh)
            };
            let area_m2 = overlap_mm2 * 1e-6;
            let r =
                t_die / (k_si * area_m2) + config.interlayer_thickness_m * rho_interlayer / area_m2;
            g.add_conductance(lo, hi, 1.0 / r);
        }

        // Bottom layer into the spreader through half-die + TIM + spreader.
        for (i, s) in sites.iter().enumerate() {
            if s.layer != 0 {
                continue;
            }
            let area_m2 = s.area_mm2 * 1e-6;
            let r = t_die / (2.0 * k_si * area_m2)
                + config.tim_thickness_m * config.tim.resistivity() / area_m2
                + config.spreader_thickness_m / (config.spreader.conductivity * area_m2);
            g.add_conductance(i, spreader, 1.0 / r);
        }

        // Package (same as the grid model).
        cap[spreader] = config.spreader.volume_capacitance(
            config.spreader_side_m * config.spreader_side_m * config.spreader_thickness_m,
        );
        cap[sink] = config.convection_capacitance_jk;
        g.add_conductance(spreader, sink, 1.0 / config.spreader_to_sink_resistance_kw);
        g_amb[sink] = 1.0 / config.convection_resistance_kw;
        g.add_grounded_conductance(sink, g_amb[sink]);

        let conductance = g.to_csr();
        // Stable explicit step ∝ min(C_i / G_ii).
        let stable_dt = conductance
            .diagonal()
            .iter()
            .zip(&cap)
            .filter(|(_, &c)| c > 0.0)
            .map(|(&gii, &c)| c / gii)
            .fold(f64::INFINITY, f64::min)
            * 0.4;

        let ambient_k = kelvin_from_celsius(config.ambient_c);
        Self {
            conductance,
            capacitance: cap,
            ambient_g: g_amb,
            ambient_k,
            n_blocks: n,
            temps_k: vec![ambient_k; n + 2],
            powers_w: vec![0.0; n],
            stable_dt: stable_dt.max(1e-6),
        }
    }

    /// Number of blocks (power entries / readable temperatures).
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.n_blocks
    }

    /// Total nodes including spreader and sink.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n_blocks + 2
    }

    /// Sets the per-block power injection.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len() != block_count()` or a power is negative
    /// or non-finite.
    pub fn set_block_powers(&mut self, powers: &[f64]) {
        assert_eq!(powers.len(), self.n_blocks, "one power per block");
        for (i, &p) in powers.iter().enumerate() {
            assert!(p.is_finite() && p >= 0.0, "block {i} power {p} must be non-negative");
        }
        self.powers_w.copy_from_slice(powers);
    }

    fn node_power(&self) -> Vec<f64> {
        let mut p = vec![0.0; self.node_count()];
        p[..self.n_blocks].copy_from_slice(&self.powers_w);
        for (i, &g) in self.ambient_g.iter().enumerate() {
            if g > 0.0 {
                p[i] += g * self.ambient_k;
            }
        }
        p
    }

    /// Solves `G·T = P` and adopts the result as the current state,
    /// returning block temperatures in °C.
    #[must_use]
    pub fn initialize_steady_state(&mut self, powers: &[f64]) -> Vec<f64> {
        self.set_block_powers(powers);
        let b = self.node_power();
        let sol = solve_cg(&self.conductance, &b, &self.temps_k, 1e-9, 2000);
        self.temps_k = sol.x;
        self.block_temperatures_c()
    }

    /// Advances the transient solution by `dt` seconds (forward-Euler
    /// sub-stepped under the stability bound; the block network is small
    /// enough that this is cheap).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step(&mut self, dt: f64) {
        assert!(dt > 0.0 && dt.is_finite(), "step must be positive");
        let p = self.node_power();
        let n = self.node_count();
        let mut remaining = dt;
        let mut flow = vec![0.0; n];
        while remaining > 0.0 {
            let h = remaining.min(self.stable_dt);
            self.conductance.mul_into(&self.temps_k, &mut flow);
            for i in 0..n {
                if self.capacitance[i] > 0.0 {
                    self.temps_k[i] += h * (p[i] - flow[i]) / self.capacitance[i];
                }
            }
            remaining -= h;
        }
    }

    /// Current block temperatures, °C.
    #[must_use]
    pub fn block_temperatures_c(&self) -> Vec<f64> {
        self.temps_k[..self.n_blocks].iter().map(|&k| celsius_from_kelvin(k)).collect()
    }

    /// The sink node temperature, °C.
    #[must_use]
    pub fn sink_temperature_c(&self) -> f64 {
        celsius_from_kelvin(self.temps_k[self.n_blocks + 1])
    }

    /// Resets every node to a uniform temperature.
    pub fn reset_uniform(&mut self, celsius: f64) {
        let k = kelvin_from_celsius(celsius);
        self.temps_k.fill(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use therm3d_floorplan::Experiment;

    fn model(exp: Experiment) -> (Stack3d, BlockThermalModel) {
        let stack = exp.stack();
        let m = BlockThermalModel::new(&stack, ThermalConfig::paper_default());
        (stack, m)
    }

    #[test]
    fn steady_state_above_ambient_and_conserves() {
        let (stack, mut m) = model(Experiment::Exp2);
        let powers = vec![1.0; stack.num_blocks()];
        let total: f64 = powers.iter().sum();
        let temps = m.initialize_steady_state(&powers);
        for &t in &temps {
            assert!(t > 45.0 && t < 150.0, "{t}");
        }
        let expected_sink = 45.0 + total * 0.1;
        assert!(
            (m.sink_temperature_c() - expected_sink).abs() < 0.05,
            "sink {} vs conservation {expected_sink}",
            m.sink_temperature_c()
        );
    }

    #[test]
    fn transient_converges_to_steady() {
        let (stack, mut m) = model(Experiment::Exp1);
        let powers: Vec<f64> = (0..stack.num_blocks()).map(|i| 0.3 + 0.1 * i as f64).collect();
        let steady = m.initialize_steady_state(&powers);
        let mut t = BlockThermalModel::new(&stack, ThermalConfig::paper_default());
        t.reset_uniform(45.0);
        t.set_block_powers(&powers);
        for _ in 0..4000 {
            t.step(0.1);
        }
        for (a, b) in steady.iter().zip(&t.block_temperatures_c()) {
            assert!((a - b).abs() < 0.5, "{a} vs {b}");
        }
    }

    #[test]
    fn agrees_with_grid_model_within_a_few_degrees() {
        // The headline fidelity check: block vs 8×8 grid steady states.
        use crate::ThermalModel;
        for exp in [Experiment::Exp1, Experiment::Exp3] {
            let stack = exp.stack();
            let powers: Vec<f64> = stack
                .sites()
                .iter()
                .map(|s| match s.kind {
                    therm3d_floorplan::UnitKind::Core => 3.0,
                    therm3d_floorplan::UnitKind::L2Cache => 1.28,
                    _ => 2.0,
                })
                .collect();
            let mut grid = ThermalModel::new(&stack, ThermalConfig::paper_default());
            let mut block = BlockThermalModel::new(&stack, ThermalConfig::paper_default());
            let tg = grid.initialize_steady_state(&powers);
            let tb = block.initialize_steady_state(&powers);
            for (i, (a, b)) in tg.iter().zip(&tb).enumerate() {
                assert!((a - b).abs() < 6.0, "{exp} block {i}: grid {a:.1} vs block-model {b:.1}");
            }
        }
    }

    #[test]
    fn hotter_with_more_power() {
        let (stack, mut m) = model(Experiment::Exp4);
        let lo = m.initialize_steady_state(&vec![0.5; stack.num_blocks()]);
        let hi = m.initialize_steady_state(&vec![1.5; stack.num_blocks()]);
        for (a, b) in lo.iter().zip(&hi) {
            assert!(b > a);
        }
    }

    #[test]
    fn block_count_excludes_package_nodes() {
        let (stack, m) = model(Experiment::Exp3);
        assert_eq!(m.block_count(), stack.num_blocks());
        assert_eq!(m.node_count(), stack.num_blocks() + 2);
    }

    #[test]
    #[should_panic(expected = "one power per block")]
    fn wrong_power_length_rejected() {
        let (_, mut m) = model(Experiment::Exp1);
        m.set_block_powers(&[1.0]);
    }
}
