//! Through-silicon-via (TSV) model: joint resistivity of the inter-die
//! interface material as a function of via density (paper Figure 2).
//!
//! The paper models TSVs as homogeneously distributed through the interface
//! material and computes a *combined* ("joint") thermal resistivity from
//! the area fraction occupied by copper vias. Each via has a 10 µm diameter
//! with 10 µm of keep-out spacing around it; the paper's x-axis `d_TSV` is
//! the ratio of the **total area overhead** (via + spacing) to the layer
//! area.
//!
//! With an abundant via count (1024 vias, < 1 % area overhead) the paper
//! arrives at a joint resistivity of 0.23 m·K/W, down from the bare
//! interface material's 0.25 m·K/W — reproduced exactly by this module
//! (see `joint_resistivity_for_count`).

use std::fmt;
use std::str::FromStr;

use crate::material::Material;

/// Resistivity of a low-cost die-attach epoxy interface, m·K/W — the
/// cheap-bonding alternative to the paper's 0.25 m·K/W interface
/// material, provided for design-space sweeps.
const EPOXY_RESISTIVITY: f64 = 0.5;

/// A named TSV-population/interlayer-material configuration: the values
/// of the sweep engine's `tsv` axis.
///
/// Each variant resolves to a concrete [`TsvSpec`] (via population ×
/// interface material) through [`spec`](Self::spec), and to the
/// composite interlayer [`Material`] the RC network is built from
/// through [`joint_material`](Self::joint_material). The paper runs all
/// experiments with [`Paper`](TsvVariant::Paper); the other variants
/// cover the density sweep of Figure 2 plus a cheap-bonding interface
/// alternative.
///
/// # Examples
///
/// ```
/// use therm3d_thermal::tsv::TsvVariant;
///
/// assert!(TsvVariant::Dense2Pct.joint_material().resistivity()
///     < TsvVariant::Bare.joint_material().resistivity());
/// assert_eq!("dense-1pct".parse::<TsvVariant>(), Ok(TsvVariant::Dense1Pct));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum TsvVariant {
    /// The paper's configuration: 1024 vias through the standard
    /// 0.25 m·K/W interface (joint ρ ≈ 0.23 m·K/W).
    #[default]
    Paper,
    /// No vias at all: the bare 0.25 m·K/W interface material.
    Bare,
    /// Vias at 1 % area overhead through the standard interface.
    Dense1Pct,
    /// Vias at 2 % area overhead (the top of Figure 2's x-axis).
    Dense2Pct,
    /// Low-cost die-attach epoxy (0.5 m·K/W), no vias.
    Epoxy,
    /// Epoxy interface with vias at 1 % area overhead.
    EpoxyDense1Pct,
}

impl TsvVariant {
    /// Every variant, in canonical order (paper default first).
    pub const ALL: [TsvVariant; 6] = [
        TsvVariant::Paper,
        TsvVariant::Bare,
        TsvVariant::Dense1Pct,
        TsvVariant::Dense2Pct,
        TsvVariant::Epoxy,
        TsvVariant::EpoxyDense1Pct,
    ];

    /// Canonical name, as accepted by [`FromStr`] and written by sweep
    /// specs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TsvVariant::Paper => "paper",
            TsvVariant::Bare => "bare",
            TsvVariant::Dense1Pct => "dense-1pct",
            TsvVariant::Dense2Pct => "dense-2pct",
            TsvVariant::Epoxy => "epoxy",
            TsvVariant::EpoxyDense1Pct => "epoxy-dense-1pct",
        }
    }

    /// The bare interface material this variant bonds the dies with
    /// (before the via contribution).
    #[must_use]
    pub fn interface_material(self) -> Material {
        match self {
            TsvVariant::Paper
            | TsvVariant::Bare
            | TsvVariant::Dense1Pct
            | TsvVariant::Dense2Pct => Material::INTERFACE,
            TsvVariant::Epoxy | TsvVariant::EpoxyDense1Pct => Material::from_resistivity(
                EPOXY_RESISTIVITY,
                Material::INTERFACE.volumetric_heat_capacity,
            ),
        }
    }

    /// The fully-resolved via geometry/population for this variant.
    #[must_use]
    pub fn spec(self) -> TsvSpec {
        let base = TsvSpec { interface: self.interface_material(), ..TsvSpec::paper_default() };
        match self {
            TsvVariant::Paper => base,
            TsvVariant::Bare | TsvVariant::Epoxy => base.with_overhead(0.0),
            TsvVariant::Dense1Pct | TsvVariant::EpoxyDense1Pct => base.with_overhead(0.01),
            TsvVariant::Dense2Pct => base.with_overhead(0.02),
        }
    }

    /// The composite interlayer material (interface + vias) the RC
    /// network is built from.
    #[must_use]
    pub fn joint_material(self) -> Material {
        self.spec().joint_material()
    }
}

impl fmt::Display for TsvVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for TsvVariant {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.to_ascii_lowercase();
        TsvVariant::ALL
            .into_iter()
            .find(|v| v.name() == lowered)
            .ok_or_else(|| format!("unknown TSV variant `{s}` (expected one of paper, bare, dense-1pct, dense-2pct, epoxy, epoxy-dense-1pct)"))
    }
}

/// Geometry and population of the TSVs crossing one interface layer.
///
/// # Examples
///
/// ```
/// use therm3d_thermal::tsv::TsvSpec;
///
/// // The paper's configuration: 1024 vias of 10 µm diameter, 10 µm spacing,
/// // on a 115 mm² layer.
/// let spec = TsvSpec::paper_default();
/// let rho = spec.joint_resistivity();
/// assert!((rho - 0.23).abs() < 0.005, "joint resistivity {rho} ≈ 0.23 m·K/W");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsvSpec {
    /// Via diameter in µm (10 µm for the paper's technology).
    pub diameter_um: f64,
    /// Keep-out spacing required around each via, in µm (10 µm).
    pub spacing_um: f64,
    /// Number of vias distributed over the layer.
    pub count: usize,
    /// Layer area in mm² (115 mm² per Table II).
    pub layer_area_mm2: f64,
    /// Bare interface material (resistivity 0.25 m·K/W per Table II).
    pub interface: Material,
    /// Via fill material (copper).
    pub via_material: Material,
}

impl TsvSpec {
    /// The configuration used for all experiments in the paper: 1024 copper
    /// vias, ⌀10 µm with 10 µm spacing, through the 0.25 m·K/W interface
    /// material of a 115 mm² layer.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            diameter_um: 10.0,
            spacing_um: 10.0,
            count: 1024,
            layer_area_mm2: 115.0,
            interface: Material::INTERFACE,
            via_material: Material::COPPER,
        }
    }

    /// Copper cross-section of a single via in mm².
    #[must_use]
    pub fn via_area_mm2(&self) -> f64 {
        let r_mm = self.diameter_um / 2.0 * 1e-3;
        std::f64::consts::PI * r_mm * r_mm
    }

    /// Footprint (via + keep-out ring) of a single via in mm².
    #[must_use]
    pub fn via_footprint_mm2(&self) -> f64 {
        let r_mm = (self.diameter_um / 2.0 + self.spacing_um) * 1e-3;
        std::f64::consts::PI * r_mm * r_mm
    }

    /// `d_TSV`: total area overhead (footprints) over layer area — the
    /// x-axis of Figure 2. Dimensionless fraction in `[0, 1]`.
    #[must_use]
    pub fn area_overhead_fraction(&self) -> f64 {
        self.count as f64 * self.via_footprint_mm2() / self.layer_area_mm2
    }

    /// Fraction of the layer area that is actually copper.
    #[must_use]
    pub fn copper_fraction(&self) -> f64 {
        self.count as f64 * self.via_area_mm2() / self.layer_area_mm2
    }

    /// Joint thermal resistivity of the interface-plus-vias composite, in
    /// m·K/W.
    ///
    /// The vias conduct in parallel with the surrounding interface
    /// material, so conductivities combine area-weighted:
    /// `k_joint = (1 − f_cu)·k_int + f_cu·k_cu`, and
    /// `ρ_joint = 1/k_joint`.
    #[must_use]
    pub fn joint_resistivity(&self) -> f64 {
        let f_cu = self.copper_fraction().min(1.0);
        let k = (1.0 - f_cu) * self.interface.conductivity + f_cu * self.via_material.conductivity;
        1.0 / k
    }

    /// The composite interface material (joint resistivity, unchanged heat
    /// capacity — the paper argues the TSV contribution to capacity is
    /// negligible at these densities).
    #[must_use]
    pub fn joint_material(&self) -> Material {
        Material::from_resistivity(
            self.joint_resistivity(),
            self.interface.volumetric_heat_capacity,
        )
    }

    /// Builds a spec with the number of vias needed to reach a target area
    /// overhead `d_tsv` (Figure 2 sweeps this from 0 to ~2 %).
    ///
    /// # Panics
    ///
    /// Panics if `d_tsv` is negative or not finite.
    #[must_use]
    pub fn with_overhead(mut self, d_tsv: f64) -> Self {
        assert!(d_tsv.is_finite() && d_tsv >= 0.0, "d_TSV must be non-negative");
        let per_via = self.via_footprint_mm2();
        self.count = (d_tsv * self.layer_area_mm2 / per_via).round() as usize;
        self
    }
}

/// Joint resistivity (m·K/W) as a function of area overhead `d_tsv`,
/// with the paper's default geometry — the curve of Figure 2.
///
/// # Examples
///
/// ```
/// use therm3d_thermal::tsv::joint_resistivity_for_overhead;
///
/// let bare = joint_resistivity_for_overhead(0.0);
/// assert!((bare - 0.25).abs() < 1e-9);
/// let dense = joint_resistivity_for_overhead(0.02);
/// assert!(dense < bare);
/// ```
#[must_use]
pub fn joint_resistivity_for_overhead(d_tsv: f64) -> f64 {
    TsvSpec::paper_default().with_overhead(d_tsv).joint_resistivity()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_reproduces_023() {
        let spec = TsvSpec::paper_default();
        // 1024 vias: copper fraction ≈ 0.07 %, overhead ≈ 0.63 % (< 1 %).
        assert!(spec.area_overhead_fraction() < 0.01, "area overhead below 1 %");
        let rho = spec.joint_resistivity();
        assert!((rho - 0.23).abs() < 0.005, "got {rho}");
    }

    #[test]
    fn via_density_exceeds_8_per_mm2() {
        // The paper notes its assumption places over 8 TSVs per mm².
        let spec = TsvSpec::paper_default();
        assert!(spec.count as f64 / spec.layer_area_mm2 > 8.0);
    }

    #[test]
    fn resistivity_monotonically_decreases_with_density() {
        let mut prev = f64::INFINITY;
        for i in 0..=20 {
            let d = i as f64 * 0.001; // 0 .. 2 %
            let rho = joint_resistivity_for_overhead(d);
            assert!(rho <= prev + 1e-12, "resistivity must not increase: d={d}");
            prev = rho;
        }
    }

    #[test]
    fn zero_density_equals_bare_interface() {
        assert!(
            (joint_resistivity_for_overhead(0.0) - Material::INTERFACE.resistivity()).abs() < 1e-12
        );
    }

    #[test]
    fn one_to_two_percent_density_effect_is_a_few_percent() {
        // "even when the TSV density reaches 1-2%, the effect on the
        // temperature profile is limited" — resistivity drop stays modest.
        let bare = joint_resistivity_for_overhead(0.0);
        let at2 = joint_resistivity_for_overhead(0.02);
        let drop = (bare - at2) / bare;
        assert!(drop > 0.05 && drop < 0.35, "drop {drop}");
    }

    #[test]
    fn with_overhead_round_trips() {
        let spec = TsvSpec::paper_default().with_overhead(0.01);
        assert!((spec.area_overhead_fraction() - 0.01).abs() < 1e-3);
    }

    #[test]
    fn variant_names_round_trip() {
        for v in TsvVariant::ALL {
            assert_eq!(v.name().parse::<TsvVariant>(), Ok(v));
            assert_eq!(v.to_string(), v.name());
        }
        assert_eq!("PAPER".parse::<TsvVariant>(), Ok(TsvVariant::Paper));
        assert!("liquid".parse::<TsvVariant>().unwrap_err().contains("liquid"));
    }

    #[test]
    fn variants_resolve_to_physical_materials() {
        // Paper variant reproduces the Table II joint resistivity.
        assert!((TsvVariant::Paper.joint_material().resistivity() - 0.23).abs() < 0.005);
        assert!(
            (TsvVariant::Bare.joint_material().resistivity() - Material::INTERFACE.resistivity())
                .abs()
                < 1e-12
        );
        // Density strictly improves conduction within one interface
        // material family.
        let rho = |v: TsvVariant| v.joint_material().resistivity();
        assert!(rho(TsvVariant::Dense2Pct) < rho(TsvVariant::Dense1Pct));
        assert!(rho(TsvVariant::Dense1Pct) < rho(TsvVariant::Paper));
        assert!(rho(TsvVariant::EpoxyDense1Pct) < rho(TsvVariant::Epoxy));
        // The epoxy family is strictly worse than its standard twin.
        assert!(rho(TsvVariant::Epoxy) > rho(TsvVariant::Bare));
        assert!(rho(TsvVariant::EpoxyDense1Pct) > rho(TsvVariant::Dense1Pct));
        // Heat capacity is the interface material's in every variant.
        for v in TsvVariant::ALL {
            assert_eq!(
                v.joint_material().volumetric_heat_capacity,
                Material::INTERFACE.volumetric_heat_capacity
            );
        }
    }

    #[test]
    fn joint_material_keeps_capacity() {
        let spec = TsvSpec::paper_default();
        let m = spec.joint_material();
        assert_eq!(m.volumetric_heat_capacity, Material::INTERFACE.volumetric_heat_capacity);
        assert!((m.resistivity() - spec.joint_resistivity()).abs() < 1e-12);
    }
}
