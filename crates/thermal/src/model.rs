//! The transient/steady-state thermal model: the public face of this
//! crate.

use std::f64::consts::SQRT_2;
use std::sync::Arc;

use therm3d_floorplan::Stack3d;
use therm3d_telemetry::Span;

use crate::config::{Integrator, ThermalConfig};
use crate::network::RcNetwork;
use crate::share::FactorShare;
use crate::sparse::factor::{
    analyze, analyze_with_perm, LdlFactor, SupernodalPlan, Symbolic, BLOCKED_MIN_DIM,
};
use crate::sparse::level::{LevelSchedule, LevelScratch};
use crate::sparse::CsrMatrix;
use crate::units::{celsius_from_kelvin, kelvin_from_celsius};

/// Safety factor applied to the explicit-RK4 stability limit.
const RK4_SAFETY: f64 = 0.9;
/// RK4 real-axis stability interval.
const RK4_STABILITY: f64 = 2.78;
/// Largest implicit substep, seconds: a 100 ms paper tick runs as three
/// TR-BDF2 substeps (six triangular solves against one cached factor).
/// Empirically the sweet spot on the paper's stacks — trajectories stay
/// within ~0.01 °C of the RK4 reference under worst-case per-tick power
/// swings while a tick remains ≥15× cheaper than RK4's ~70–80
/// stability-bounded substeps; one substep per tick would be ~2× faster
/// but drifts by ~0.8 °C on mid-frequency (tens-of-ms) thermal modes.
pub(crate) const MAX_IMPLICIT_STEP_S: f64 = 0.035;
/// Cap on simultaneously cached implicit factorizations, evicted LRU
/// (each distinct substep size needs one; real drivers use one or two).
const MAX_CACHED_FACTORS: usize = 8;
/// TR-BDF2 with γ = 2 − √2: both stages share the system
/// `(shift/h)·C + G` with shift = 2/γ = 2 + √2.
pub(crate) const TRBDF2_SHIFT: f64 = 2.0 + SQRT_2;
/// Stage-2 state blend `c1·T_γ − c2·T_n`, c1 = 1/(γ(2−γ)) = (√2+1)/2.
pub(crate) const TRBDF2_C1: f64 = (SQRT_2 + 1.0) / 2.0;
/// c2 = (1−γ)²/(γ(2−γ)) = (√2−1)/2.
pub(crate) const TRBDF2_C2: f64 = (SQRT_2 - 1.0) / 2.0;

/// A transient 3D thermal simulator for a die stack.
///
/// `ThermalModel` owns the RC network built from a [`Stack3d`] and a
/// [`ThermalConfig`], the current temperature state, and the current
/// per-block power assignment. Typical use alternates
/// [`set_block_powers`](Self::set_block_powers) and [`step`](Self::step)
/// at the thermal sampling interval (100 ms in the paper), reading back
/// [`block_temperatures_c`](Self::block_temperatures_c) for the policies.
///
/// # Examples
///
/// ```
/// use therm3d_floorplan::Experiment;
/// use therm3d_thermal::{ThermalConfig, ThermalModel};
///
/// let stack = Experiment::Exp1.stack();
/// let mut model = ThermalModel::new(&stack, ThermalConfig::paper_default().with_grid(4, 4));
///
/// // Run every core at 3 W for one second of simulated time.
/// let mut powers = vec![0.0; stack.num_blocks()];
/// for core in stack.core_ids() {
///     powers[stack.core_block_index(core)] = 3.0;
/// }
/// model.set_block_powers(&powers);
/// for _ in 0..10 {
///     model.step(0.1);
/// }
/// let temps = model.block_temperatures_c();
/// assert!(temps.iter().all(|&t| t > 45.0), "everything heated above ambient");
/// ```
#[derive(Debug, Clone)]
pub struct ThermalModel {
    network: RcNetwork,
    /// Node temperatures in kelvin.
    temps_k: Vec<f64>,
    /// Current per-node power injection in W.
    node_power: Vec<f64>,
    /// Current per-block power in W (kept for diagnostics).
    block_power: Vec<f64>,
    /// Fixed stable substep for explicit integration, seconds.
    stable_dt: f64,
    /// The transient scheme [`step`](Self::step) uses.
    integrator: Integrator,
    /// Scratch buffers for RK4.
    scratch: Rk4Scratch,
    /// Cached factorizations and buffers for the implicit path.
    implicit: ImplicitState,
}

/// One cached factorization of `(TRBDF2_SHIFT/h)·C + G`.
#[derive(Debug, Clone)]
struct StepCache {
    /// Exact bit pattern of the substep size `h` this factor serves.
    h_bits: u64,
    factor: Arc<LdlFactor>,
}

/// Which shared-factor slot a factorization request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FactorKey {
    /// The conductance matrix `G` (steady-state solves).
    Steady,
    /// `(TRBDF2_SHIFT/h)·C + G` for the substep with these `h` bits.
    Step(u64),
}

/// Lazily built direct-solver state: factorization caches plus reusable
/// dense work vectors (the per-tick hot path allocates nothing).
#[derive(Debug, Clone, Default)]
struct ImplicitState {
    /// Per-substep-size factorizations, most recently created last.
    caches: Vec<StepCache>,
    /// Factorization of `G` alone, for direct steady-state solves.
    steady: Option<Arc<LdlFactor>>,
    /// Shared symbolic analysis: the pattern of `α·C + G` is
    /// α-independent (C is diagonal, G has a full structural diagonal)
    /// and equals the pattern of `G` itself, so the ordering,
    /// elimination tree and fill counts are computed once and every
    /// factorization after the first runs only its numeric phase.
    symbolic: Option<Arc<Symbolic>>,
    /// Supernodal plan for the blocked numeric phase; built alongside
    /// the analysis once the system is at least [`BLOCKED_MIN_DIM`].
    plan: Option<Arc<SupernodalPlan>>,
    /// Optional cross-model share (sweep cells with one fingerprint).
    share: Option<FactorShare>,
    /// Nested-dissection ordering hint for large networks, where the
    /// exact minimum-degree search is intractable.
    perm_hint: Option<Vec<usize>>,
    /// Level-set schedule for parallel triangular solves; built lazily
    /// from the first factor once `solver_threads > 1`.
    schedule: Option<Arc<LevelSchedule>>,
    level_scratch: LevelScratch,
    /// Worker count for the level-set solves (1 = serial reference
    /// path; the sweep runner keeps cells at 1 and parallelizes across
    /// cells instead).
    solver_threads: usize,
    /// Factorizations *ensured* over the model's lifetime — computed
    /// locally or adopted ready-made from the attached share; the count
    /// is identical either way, so it is scheduling-independent (tests
    /// assert cache reuse through [`ThermalModel::factorization_count`]).
    factor_count: usize,
    /// Symbolic analyses ensured (same semantics; see
    /// [`ThermalModel::symbolic_analysis_count`]).
    symbolic_count: usize,
    rhs: Vec<f64>,
    stage: Vec<f64>,
    solve_scratch: Vec<f64>,
}

impl ImplicitState {
    /// Runs the symbolic analysis for `a`, with the nested-dissection
    /// hint and the supernodal plan once the system is large enough for
    /// the blocked path.
    fn analyze_for(
        a: &CsrMatrix,
        perm_hint: Option<&Vec<usize>>,
    ) -> (Symbolic, Option<SupernodalPlan>) {
        let symbolic = match perm_hint {
            Some(p) if p.len() == a.dim() => analyze_with_perm(a, p.clone()),
            _ => analyze(a),
        };
        let plan = (a.dim() >= BLOCKED_MIN_DIM).then(|| symbolic.supernodal_plan(a));
        (symbolic, plan)
    }

    /// Runs the numeric phase — blocked when a supernodal plan exists,
    /// scalar (the golden reference) otherwise.
    fn numeric_phase(
        symbolic: &Symbolic,
        plan: Option<&SupernodalPlan>,
        a: &CsrMatrix,
        what: &str,
    ) -> LdlFactor {
        let _span = Span::enter("thermal.factor_numeric_us");
        let result = match plan {
            Some(p) => symbolic.factor_numeric_blocked(a, p),
            None => symbolic.factor_numeric(a),
        };
        result.unwrap_or_else(|e| panic!("{what} must be SPD: {e}"))
    }

    /// Ensures a factorization of `a` for `key`: reuses (or lazily
    /// computes) the shared symbolic analysis, and — when a
    /// [`FactorShare`] is attached — adopts the factor from the share
    /// or computes it exactly once *under the share lock*. Falls back
    /// to a fresh analysis if `a`'s pattern size ever diverges from the
    /// analyzed one (cannot happen for one RC network's systems, but
    /// corruption-proof beats a panic deep inside the solver).
    fn factor_shared(&mut self, a: &CsrMatrix, what: &str, key: FactorKey) -> Arc<LdlFactor> {
        // LDLᵀ without pivoting assumes symmetry; an asymmetric system
        // here means the RC assembly upstream is broken.
        debug_assert!(a.is_symmetric(1e-9), "{what} must be symmetric for LDL^T");
        let locally_compatible = self
            .symbolic
            .as_ref()
            .is_some_and(|s| s.dim() == a.dim() && s.pattern_nnz() == a.nnz());

        let Some(share) = self.share.clone() else {
            // Unshared path: the pre-share behaviour, unchanged.
            if !locally_compatible {
                let _span = Span::enter("thermal.symbolic_analyze_us");
                let (symbolic, plan) = Self::analyze_for(a, self.perm_hint.as_ref());
                self.symbolic = Some(Arc::new(symbolic));
                self.plan = plan.map(Arc::new);
                self.symbolic_count += 1;
            }
            let symbolic = self.symbolic.as_ref().expect("analyzed above");
            let factored = Arc::new(Self::numeric_phase(symbolic, self.plan.as_deref(), a, what));
            self.factor_count += 1;
            return factored;
        };

        let mut state = share.lock();
        if !locally_compatible {
            let share_compatible = state
                .symbolic
                .as_ref()
                .is_some_and(|s| s.dim() == a.dim() && s.pattern_nnz() == a.nnz());
            if !share_compatible {
                let _span = Span::enter("thermal.symbolic_analyze_us");
                let (symbolic, plan) = Self::analyze_for(a, self.perm_hint.as_ref());
                state.symbolic = Some(Arc::new(symbolic));
                state.plan = plan.map(Arc::new);
                state.symbolic_analyses += 1;
            }
            self.symbolic = state.symbolic.clone();
            self.plan = state.plan.clone();
            // Ensured semantics: adopting counts exactly like computing,
            // so per-model counters stay scheduling-independent.
            self.symbolic_count += 1;
        }
        let existing = match key {
            FactorKey::Steady => state.steady.clone(),
            FactorKey::Step(h) => {
                state.steps.iter().find(|(hb, _)| *hb == h).map(|(_, f)| Arc::clone(f))
            }
        };
        let factored = if let Some(f) = existing {
            state.hits += 1;
            f
        } else {
            let symbolic = self.symbolic.as_ref().expect("ensured above");
            let f = Arc::new(Self::numeric_phase(symbolic, self.plan.as_deref(), a, what));
            match key {
                FactorKey::Steady => state.steady = Some(Arc::clone(&f)),
                FactorKey::Step(h) => state.steps.push((h, Arc::clone(&f))),
            }
            state.factorizations += 1;
            f
        };
        self.factor_count += 1;
        factored
    }

    /// Solves against `factored` — level-set parallel when configured,
    /// the serial reference sweep otherwise. Both are bit-identical.
    fn solve_with(
        factored: &LdlFactor,
        schedule: Option<&LevelSchedule>,
        level_scratch: &mut LevelScratch,
        threads: usize,
        rhs: &[f64],
        solve_scratch: &mut Vec<f64>,
        out: &mut [f64],
    ) {
        match schedule {
            Some(s) if threads > 1 => s.solve_into(factored, rhs, level_scratch, out, threads),
            _ => factored.solve_into(rhs, solve_scratch, out),
        }
    }
}

#[derive(Debug, Clone)]
struct Rk4Scratch {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
    gt: Vec<f64>,
}

impl Rk4Scratch {
    fn new(n: usize) -> Self {
        Self {
            k1: vec![0.0; n],
            k2: vec![0.0; n],
            k3: vec![0.0; n],
            k4: vec![0.0; n],
            tmp: vec![0.0; n],
            gt: vec![0.0; n],
        }
    }
}

impl ThermalModel {
    /// Builds the model and initializes every node at the ambient
    /// temperature (the zero-power steady state).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`ThermalConfig::validate`]).
    #[must_use]
    pub fn new(stack: &Stack3d, config: ThermalConfig) -> Self {
        let network = RcNetwork::build(stack, &config);
        let n = network.node_count();
        let temps_k = vec![network.ambient_k(); n];
        let stable_dt = RK4_SAFETY * RK4_STABILITY / network.stiffness_bound();
        let mut implicit = ImplicitState { solver_threads: 1, ..ImplicitState::default() };
        // Production-scale grids get the geometric nested-dissection
        // order (the exact minimum-degree search is quadratic-plus) and,
        // through `analyze_for`, the blocked numeric phase.
        if n >= BLOCKED_MIN_DIM {
            implicit.perm_hint = Some(network.nested_dissection_perm());
        }
        Self {
            temps_k,
            node_power: vec![0.0; n],
            block_power: vec![0.0; network.block_count()],
            scratch: Rk4Scratch::new(n),
            stable_dt,
            integrator: config.integrator,
            implicit,
            network,
        }
    }

    /// Attaches a cross-model [`FactorShare`]: factorizations this
    /// model needs are adopted from the share when present and computed
    /// into it (exactly once, under the share lock) when not. Attach
    /// before the first factorization — typically right after
    /// construction — so nothing is computed twice.
    pub fn set_factor_share(&mut self, share: FactorShare) {
        self.implicit.share = Some(share);
    }

    /// Sets the worker count for the level-set triangular solves.
    /// The default of 1 keeps the serial reference path; any value is
    /// bit-identical to any other (see
    /// [`crate::sparse::level::LevelSchedule`]), so this is purely a
    /// wall-clock knob for large grids. Sweep cells stay at 1 — their
    /// parallelism lives across cells in the runner.
    pub fn set_solver_threads(&mut self, threads: usize) {
        self.implicit.solver_threads = threads.max(1);
    }

    /// Current level-set solve worker count.
    #[must_use]
    pub fn solver_threads(&self) -> usize {
        self.implicit.solver_threads
    }

    /// The transient integration scheme this model steps with.
    #[must_use]
    pub fn integrator(&self) -> Integrator {
        self.integrator
    }

    /// Numeric sparse factorizations *ensured* so far (steady-state plus
    /// one per distinct implicit substep size). Stepping repeatedly at
    /// the same `dt` — or at any recently seen `dt` — must not grow
    /// this: factors are cached per substep size with LRU eviction, so
    /// only a driver cycling through more than `MAX_CACHED_FACTORS` (8)
    /// distinct step sizes ever re-factorizes. With a [`FactorShare`]
    /// attached, a factor adopted ready-made counts exactly like one
    /// computed locally, so the number is identical with or without
    /// sharing (and independent of which sibling cell computed first);
    /// the share's own [`FactorShare::factorizations`] counts actual
    /// computations.
    #[must_use]
    pub fn factorization_count(&self) -> usize {
        self.implicit.factor_count
    }

    /// Symbolic analyses (fill-reducing ordering + elimination tree +
    /// fill counts) ensured so far. The pattern of `α·C + G` is
    /// α-independent and matches `G`'s, so however many step sizes and
    /// steady solves a driver mixes, this stays at **1**: only numeric
    /// phases repeat. Same ensured semantics under sharing as
    /// [`factorization_count`](Self::factorization_count).
    #[must_use]
    pub fn symbolic_analysis_count(&self) -> usize {
        self.implicit.symbolic_count
    }

    /// The underlying RC network (for inspection and metrics).
    #[must_use]
    pub fn network(&self) -> &RcNetwork {
        &self.network
    }

    /// Number of floorplan blocks the model exposes temperatures for.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.network.block_count()
    }

    /// The explicit-integration substep the RK4 path uses internally, in
    /// seconds; [`step`](Self::step) transparently subdivides larger
    /// steps. (The implicit default is unconditionally stable and uses
    /// substeps of up to 100 ms instead.)
    #[must_use]
    pub fn stable_dt(&self) -> f64 {
        self.stable_dt
    }

    /// Sets the per-block power dissipation (W) applied from now on.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len() != block_count()` or any entry is negative
    /// or not finite.
    pub fn set_block_powers(&mut self, powers: &[f64]) {
        self.network.node_power_into(powers, &mut self.node_power);
        self.block_power.copy_from_slice(powers);
    }

    /// The most recently applied per-block powers (W).
    #[must_use]
    pub fn block_powers(&self) -> &[f64] {
        &self.block_power
    }

    /// Advances the transient solution by `dt` seconds.
    ///
    /// Under the default [`Integrator::ImplicitCn`], the interval is
    /// subdivided into equal TR-BDF2 substeps of at most 35 ms (a 100 ms
    /// paper tick is three substeps, i.e. six triangular solves against
    /// one cached factorization of `(2+√2)/h·C + G` — see
    /// `MAX_IMPLICIT_STEP_S` for the accuracy/cost trade-off). The
    /// factorization for each distinct substep size is computed once and
    /// reused with LRU eviction; stepping again at the same (or any
    /// recently seen) `dt` never re-factorizes. Under
    /// [`Integrator::ExplicitRk4`], classic RK4 with stability-bounded
    /// substeps integrates the interval.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive and finite.
    pub fn step(&mut self, dt: f64) {
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive, got {dt}");
        match self.integrator {
            Integrator::ExplicitRk4 => {
                let substeps = (dt / self.stable_dt).ceil().max(1.0) as usize;
                let h = dt / substeps as f64;
                for _ in 0..substeps {
                    self.rk4_substep(h);
                }
            }
            Integrator::ImplicitCn => {
                let substeps = (dt / MAX_IMPLICIT_STEP_S).ceil().max(1.0) as usize;
                let h = dt / substeps as f64;
                let cache = self.ensure_step_factor(h);
                for _ in 0..substeps {
                    self.trbdf2_substep(h, cache);
                }
            }
        }
    }

    /// Returns the cache slot holding the factorization of
    /// `(TRBDF2_SHIFT/h)·C + G`, factoring only on a miss.
    fn ensure_step_factor(&mut self, h: f64) -> usize {
        let h_bits = h.to_bits();
        if let Some(i) = self.implicit.caches.iter().position(|c| c.h_bits == h_bits) {
            // Move the hit to the back: eviction takes the front, so the
            // cache is LRU and cycling through a handful of step sizes
            // keeps the hot factors resident.
            let hit = self.implicit.caches.remove(i);
            self.implicit.caches.push(hit);
            return self.implicit.caches.len() - 1;
        }
        let system = self.network.shifted_system(TRBDF2_SHIFT / h);
        let factored = self.implicit.factor_shared(
            &system,
            "implicit thermal system",
            FactorKey::Step(h_bits),
        );
        if self.implicit.caches.len() >= MAX_CACHED_FACTORS {
            self.implicit.caches.remove(0);
        }
        self.ensure_level_schedule(&factored);
        self.implicit.caches.push(StepCache { h_bits, factor: factored });
        self.implicit.caches.len() - 1
    }

    /// Builds the level-set solve schedule from the first factor once
    /// parallel solves are requested (the schedule is structure-only,
    /// so any factor of the shared pattern works).
    fn ensure_level_schedule(&mut self, factored: &LdlFactor) {
        if self.implicit.solver_threads > 1 && self.implicit.schedule.is_none() {
            self.implicit.schedule = Some(Arc::new(LevelSchedule::new(factored)));
        }
    }

    /// One TR-BDF2 step of size `h` against the cached factor in `slot`.
    ///
    /// Stage 1 (trapezoidal over γh): `M·T_γ = (α·C − G)·T_n + 2b`;
    /// stage 2 (BDF2): `M·T_{n+1} = α·C·(c1·T_γ − c2·T_n) + b`, where
    /// `M = α·C + G`, `α = (2+√2)/h` and `b = P + g_amb·T_amb`. With
    /// γ = 2−√2 both stages share `M`, so one factorization serves the
    /// whole step.
    fn trbdf2_substep(&mut self, h: f64, slot: usize) {
        let n = self.temps_k.len();
        let alpha = TRBDF2_SHIFT / h;
        let amb = self.network.ambient_k();
        let cap = self.network.capacitance();
        let g_amb = self.network.ambient_conductance();
        let ImplicitState {
            caches,
            rhs,
            stage,
            solve_scratch,
            schedule,
            level_scratch,
            solver_threads,
            ..
        } = &mut self.implicit;
        let factored = &caches[slot].factor;
        let (schedule, threads) = (schedule.as_deref(), *solver_threads);
        rhs.resize(n, 0.0);
        stage.resize(n, 0.0);

        // Stage 1 right-hand side: α·C·T − G·T + 2b.
        let gt = &mut self.scratch.gt;
        self.network.conductance().mul_into(&self.temps_k, gt);
        for i in 0..n {
            let b = self.node_power[i] + g_amb[i] * amb;
            rhs[i] = alpha * cap[i] * self.temps_k[i] - gt[i] + 2.0 * b;
        }
        ImplicitState::solve_with(
            factored,
            schedule,
            level_scratch,
            threads,
            rhs,
            solve_scratch,
            stage,
        );

        // Stage 2 right-hand side: α·C·(c1·T_γ − c2·T_n) + b.
        for i in 0..n {
            let b = self.node_power[i] + g_amb[i] * amb;
            rhs[i] = alpha * cap[i] * (TRBDF2_C1 * stage[i] - TRBDF2_C2 * self.temps_k[i]) + b;
        }
        ImplicitState::solve_with(
            factored,
            schedule,
            level_scratch,
            threads,
            rhs,
            solve_scratch,
            &mut self.temps_k,
        );
    }

    fn rk4_substep(&mut self, h: f64) {
        let n = self.temps_k.len();
        // k1 = f(T)
        Self::deriv(
            &self.network,
            &self.node_power,
            &self.temps_k,
            &mut self.scratch.gt,
            &mut self.scratch.k1,
        );
        // k2 = f(T + h/2 k1)
        for i in 0..n {
            self.scratch.tmp[i] = self.temps_k[i] + 0.5 * h * self.scratch.k1[i];
        }
        Self::deriv(
            &self.network,
            &self.node_power,
            &self.scratch.tmp,
            &mut self.scratch.gt,
            &mut self.scratch.k2,
        );
        // k3 = f(T + h/2 k2)
        for i in 0..n {
            self.scratch.tmp[i] = self.temps_k[i] + 0.5 * h * self.scratch.k2[i];
        }
        Self::deriv(
            &self.network,
            &self.node_power,
            &self.scratch.tmp,
            &mut self.scratch.gt,
            &mut self.scratch.k3,
        );
        // k4 = f(T + h k3)
        for i in 0..n {
            self.scratch.tmp[i] = self.temps_k[i] + h * self.scratch.k3[i];
        }
        Self::deriv(
            &self.network,
            &self.node_power,
            &self.scratch.tmp,
            &mut self.scratch.gt,
            &mut self.scratch.k4,
        );
        for i in 0..n {
            self.temps_k[i] += h / 6.0
                * (self.scratch.k1[i]
                    + 2.0 * self.scratch.k2[i]
                    + 2.0 * self.scratch.k3[i]
                    + self.scratch.k4[i]);
        }
    }

    /// `out = C⁻¹ · (P + g_amb·T_amb − G·T)`.
    fn deriv(net: &RcNetwork, power: &[f64], temps: &[f64], gt: &mut [f64], out: &mut [f64]) {
        net.conductance().mul_into(temps, gt);
        let amb = net.ambient_k();
        let g_amb = net.ambient_conductance();
        let cap = net.capacitance();
        for i in 0..out.len() {
            out[i] = (power[i] + g_amb[i] * amb - gt[i]) / cap[i];
        }
    }

    /// Solves for the steady-state temperatures under the given per-block
    /// powers and **sets the model state** to that solution (the paper
    /// initializes HotSpot with steady-state values).
    ///
    /// The solve is direct: the conductance matrix is LDLᵀ-factored once
    /// (lazily, cached for the model's lifetime) and every subsequent
    /// call is two triangular sweeps — there is no iterative solver left
    /// to fail to converge.
    ///
    /// Returns the per-block steady-state temperatures in °C.
    ///
    /// # Panics
    ///
    /// Panics if `powers` is malformed (see
    /// [`set_block_powers`](Self::set_block_powers)) or if the
    /// conductance matrix is not positive definite (indicates a
    /// non-physical configuration).
    pub fn initialize_steady_state(&mut self, powers: &[f64]) -> Vec<f64> {
        self.set_block_powers(powers);
        let amb = self.network.ambient_k();
        if self.implicit.steady.is_none() {
            // `G` shares the shifted systems' pattern (full structural
            // diagonal), so this also reuses the one symbolic analysis.
            let factored = self.implicit.factor_shared(
                self.network.conductance(),
                "conductance matrix",
                FactorKey::Steady,
            );
            self.ensure_level_schedule(&factored);
            self.implicit.steady = Some(factored);
        }
        let ImplicitState {
            steady,
            rhs,
            solve_scratch,
            schedule,
            level_scratch,
            solver_threads,
            ..
        } = &mut self.implicit;
        rhs.clear();
        rhs.extend(
            self.node_power
                .iter()
                .zip(self.network.ambient_conductance())
                .map(|(&p, &g)| p + g * amb),
        );
        ImplicitState::solve_with(
            steady.as_ref().expect("factored above"),
            schedule.as_deref(),
            level_scratch,
            *solver_threads,
            rhs,
            solve_scratch,
            &mut self.temps_k,
        );
        self.block_temperatures_c()
    }

    /// Per-block temperatures in °C (area-weighted over the block's
    /// cells), indexed like [`Stack3d::sites`].
    #[must_use]
    pub fn block_temperatures_c(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.network.block_count());
        self.block_temperatures_c_into(&mut out);
        out
    }

    /// In-place variant of
    /// [`block_temperatures_c`](Self::block_temperatures_c): clears and
    /// refills `out`, so a tick loop can reuse one buffer with zero
    /// per-tick allocation.
    pub fn block_temperatures_c_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            (0..self.network.block_count()).map(|site| {
                celsius_from_kelvin(self.network.block_temperature(site, &self.temps_k))
            }),
        );
    }

    /// Temperature of a single block in °C.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn block_temperature_c(&self, site: usize) -> f64 {
        celsius_from_kelvin(self.network.block_temperature(site, &self.temps_k))
    }

    /// Heat-sink temperature in °C.
    #[must_use]
    pub fn sink_temperature_c(&self) -> f64 {
        celsius_from_kelvin(self.temps_k[self.network.sink_node()])
    }

    /// Heat-spreader temperature in °C.
    #[must_use]
    pub fn spreader_temperature_c(&self) -> f64 {
        celsius_from_kelvin(self.temps_k[self.network.spreader_node()])
    }

    /// Raw node temperatures in kelvin (cells first, then spreader, sink).
    #[must_use]
    pub fn node_temperatures_k(&self) -> &[f64] {
        &self.temps_k
    }

    /// Overrides the state to a uniform temperature in °C (useful for
    /// tests and for restarting experiments).
    pub fn reset_uniform(&mut self, celsius: f64) {
        let k = kelvin_from_celsius(celsius);
        self.temps_k.fill(k);
    }

    /// Total power currently injected, in W.
    #[must_use]
    pub fn total_power(&self) -> f64 {
        self.block_power.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use therm3d_floorplan::Experiment;

    fn small_model(exp: Experiment) -> (Stack3d, ThermalModel) {
        let stack = exp.stack();
        let cfg = ThermalConfig::paper_default().with_grid(4, 4);
        let model = ThermalModel::new(&stack, cfg);
        (stack, model)
    }

    fn core_power_vector(stack: &Stack3d, watts: f64) -> Vec<f64> {
        let mut p = vec![0.0; stack.num_blocks()];
        for c in stack.core_ids() {
            p[stack.core_block_index(c)] = watts;
        }
        p
    }

    #[test]
    fn starts_at_ambient() {
        let (_, model) = small_model(Experiment::Exp1);
        for t in model.block_temperatures_c() {
            assert!((t - 45.0).abs() < 1e-9);
        }
    }

    #[test]
    fn steady_state_energy_balance() {
        // In steady state, all injected power leaves through the sink:
        // (T_sink − T_amb) / R_conv = P_total.
        let (stack, mut model) = small_model(Experiment::Exp1);
        let p = core_power_vector(&stack, 3.0);
        model.initialize_steady_state(&p);
        let p_total: f64 = p.iter().sum();
        let flux = (model.sink_temperature_c() - 45.0) / 0.1;
        assert!(
            (flux - p_total).abs() < 1e-6 * p_total.max(1.0),
            "flux {flux} vs injected {p_total}"
        );
    }

    #[test]
    fn transient_relaxes_to_steady_state() {
        let (stack, mut model) = small_model(Experiment::Exp1);
        let p = core_power_vector(&stack, 3.0);
        let steady = {
            let mut m2 = model.clone();
            m2.initialize_steady_state(&p)
        };
        model.set_block_powers(&p);
        // March the transient long enough for the die (not the 140 J/K
        // sink) to settle: compare die temperature *rise above the sink*.
        for _ in 0..600 {
            model.step(0.1);
        }
        let now = model.block_temperatures_c();
        let sink_now = model.sink_temperature_c();
        // Steady sink temperature from energy balance.
        let sink_steady = 45.0 + 0.1 * p.iter().sum::<f64>();
        for (i, (a, b)) in now.iter().zip(&steady).enumerate() {
            let rise_now = a - sink_now;
            let rise_steady = b - sink_steady;
            assert!(
                (rise_now - rise_steady).abs() < 0.5,
                "block {i}: transient rise {rise_now:.3} vs steady rise {rise_steady:.3}"
            );
        }
    }

    #[test]
    fn hotter_blocks_are_the_powered_ones() {
        let (stack, mut model) = small_model(Experiment::Exp1);
        let mut p = vec![0.0; stack.num_blocks()];
        let hot_core = stack.core_block_index(therm3d_floorplan::CoreId(0));
        p[hot_core] = 5.0;
        model.initialize_steady_state(&p);
        let temps = model.block_temperatures_c();
        let max_site =
            (0..temps.len()).max_by(|&a, &b| temps[a].total_cmp(&temps[b])).expect("non-empty");
        assert_eq!(max_site, hot_core, "the powered core must be the hottest block");
    }

    #[test]
    fn upper_layer_cores_run_hotter_exp2() {
        // Same power on every core: cores on the layer far from the sink
        // must end up hotter — the 3D asymmetry central to the paper.
        let (stack, mut model) = small_model(Experiment::Exp2);
        let p = core_power_vector(&stack, 3.0);
        model.initialize_steady_state(&p);
        let temps = model.block_temperatures_c();
        let mut layer0 = Vec::new();
        let mut layer1 = Vec::new();
        for c in stack.core_ids() {
            let site = stack.core_block_index(c);
            if stack.core_layer(c) == 0 {
                layer0.push(temps[site]);
            } else {
                layer1.push(temps[site]);
            }
        }
        let avg0: f64 = layer0.iter().sum::<f64>() / layer0.len() as f64;
        let avg1: f64 = layer1.iter().sum::<f64>() / layer1.len() as f64;
        assert!(avg1 > avg0 + 0.1, "upper layer {avg1:.2} vs sink-side layer {avg0:.2}");
    }

    #[test]
    fn four_layers_hotter_than_two() {
        // EXP-3 doubles the stacked power over the same footprint; peak
        // temperature must exceed EXP-1's.
        let (s1, mut m1) = small_model(Experiment::Exp1);
        let (s3, mut m3) = small_model(Experiment::Exp3);
        m1.initialize_steady_state(&core_power_vector(&s1, 3.0));
        m3.initialize_steady_state(&core_power_vector(&s3, 3.0));
        let max1 = m1.block_temperatures_c().into_iter().fold(f64::MIN, f64::max);
        let max3 = m3.block_temperatures_c().into_iter().fold(f64::MIN, f64::max);
        assert!(max3 > max1 + 1.0, "EXP-3 peak {max3:.2} vs EXP-1 peak {max1:.2}");
    }

    #[test]
    fn step_subdivides_large_dt() {
        let (stack, mut model) = small_model(Experiment::Exp1);
        model.set_block_powers(&core_power_vector(&stack, 3.0));
        let coarse = {
            let mut m = model.clone();
            m.step(0.5);
            m.block_temperatures_c()
        };
        let fine = {
            let mut m = model.clone();
            for _ in 0..50 {
                m.step(0.01);
            }
            m.block_temperatures_c()
        };
        for (a, b) in coarse.iter().zip(&fine) {
            assert!((a - b).abs() < 0.05, "coarse {a} vs fine {b}");
        }
    }

    #[test]
    fn temperatures_never_drop_below_ambient() {
        let (stack, mut model) = small_model(Experiment::Exp4);
        model.set_block_powers(&core_power_vector(&stack, 2.0));
        for _ in 0..100 {
            model.step(0.1);
            for t in model.block_temperatures_c() {
                assert!(t >= 45.0 - 1e-6, "temperature {t} below ambient");
            }
        }
    }

    #[test]
    fn reset_uniform_sets_state() {
        let (_, mut model) = small_model(Experiment::Exp1);
        model.reset_uniform(80.0);
        for t in model.block_temperatures_c() {
            assert!((t - 80.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_rejected() {
        let (_, mut model) = small_model(Experiment::Exp1);
        model.step(0.0);
    }

    #[test]
    fn symbolic_analysis_runs_once_across_step_sizes_and_steady() {
        let (stack, mut model) = small_model(Experiment::Exp3);
        let p = core_power_vector(&stack, 2.0);
        model.initialize_steady_state(&p);
        for dt in [0.1, 0.05, 0.07] {
            model.step(dt); // substeps of ~33.3, 25 and 35 ms — three distinct h
        }
        assert_eq!(
            model.factorization_count(),
            4,
            "steady + one numeric factorization per distinct substep size"
        );
        assert_eq!(
            model.symbolic_analysis_count(),
            1,
            "the alpha-independent pattern must be analyzed exactly once"
        );
        // Repeating known step sizes grows neither counter.
        model.step(0.1);
        model.initialize_steady_state(&p);
        assert_eq!(model.factorization_count(), 4);
        assert_eq!(model.symbolic_analysis_count(), 1);
    }

    #[test]
    fn factor_share_computes_once_and_adoption_is_bit_identical() {
        let stack = Experiment::Exp3.stack();
        let cfg = ThermalConfig::paper_default().with_grid(4, 4);
        let p = {
            let mut p = vec![0.0; stack.num_blocks()];
            for c in stack.core_ids() {
                p[stack.core_block_index(c)] = 2.0;
            }
            p
        };
        // Reference: an unshared model.
        let mut lone = ThermalModel::new(&stack, cfg.clone());
        lone.initialize_steady_state(&p);
        lone.step(0.1);
        lone.step(0.05);

        let share = crate::share::FactorShare::new();
        let mut first = ThermalModel::new(&stack, cfg.clone());
        first.set_factor_share(share.clone());
        let mut second = ThermalModel::new(&stack, cfg);
        second.set_factor_share(share.clone());
        for m in [&mut first, &mut second] {
            m.initialize_steady_state(&p);
            m.step(0.1);
            m.step(0.05);
        }

        // One analysis and one factor per key across BOTH models …
        assert_eq!(share.symbolic_analyses(), 1);
        assert_eq!(share.factorizations(), 3, "steady + two distinct substep sizes");
        assert_eq!(share.factors_cached(), 3);
        // … the second model adopted all three.
        assert_eq!(share.hits(), 3);
        // Ensured per-model counters are identical to the unshared ones.
        for m in [&first, &second] {
            assert_eq!(m.factorization_count(), lone.factorization_count());
            assert_eq!(m.symbolic_analysis_count(), lone.symbolic_analysis_count());
        }
        // Adoption changes nothing numerically: bit-identical state.
        let reference = lone.node_temperatures_k();
        for m in [&first, &second] {
            for (a, b) in m.node_temperatures_k().iter().zip(reference) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn parallel_solver_threads_are_bit_identical_to_serial() {
        let stack = Experiment::Exp2.stack();
        let cfg = ThermalConfig::paper_default().with_grid(8, 8);
        let p = {
            let mut p = vec![0.0; stack.num_blocks()];
            for c in stack.core_ids() {
                p[stack.core_block_index(c)] = 3.0;
            }
            p
        };
        let mut serial = ThermalModel::new(&stack, cfg.clone());
        let mut parallel = ThermalModel::new(&stack, cfg);
        parallel.set_solver_threads(4);
        assert_eq!(parallel.solver_threads(), 4);
        for m in [&mut serial, &mut parallel] {
            m.initialize_steady_state(&p);
            for _ in 0..20 {
                m.step(0.1);
            }
        }
        for (a, b) in parallel.node_temperatures_k().iter().zip(serial.node_temperatures_k()) {
            assert_eq!(a.to_bits(), b.to_bits(), "leveled solves must match serial bit-for-bit");
        }
    }

    #[test]
    fn total_power_tracks_assignment() {
        let (stack, mut model) = small_model(Experiment::Exp2);
        let p = core_power_vector(&stack, 1.5);
        model.set_block_powers(&p);
        assert!((model.total_power() - 12.0).abs() < 1e-9);
    }
}
