//! Property tests for the blocked/supernodal numeric phase and the
//! level-set solves against the scalar reference path, on random SPD
//! graph-Laplacian systems.
//!
//! "Parity" here means what the blocked path guarantees: the factor
//! *structure* (permutation, column pointers, row indices) is exactly
//! the scalar phase's, values and pivots agree to rounding (the dense
//! panels sum identical update terms in a different order), and the
//! level-set solve is bit-identical to the serial solve at every
//! thread count.

use proptest::prelude::*;
use therm3d_thermal::sparse::factor::analyze;
use therm3d_thermal::sparse::level::{LevelSchedule, LevelScratch};
use therm3d_thermal::sparse::{CsrMatrix, TripletMatrix};

/// A random SPD system: an arbitrary weighted graph Laplacian with
/// every node weakly grounded (strict diagonal dominance ⇒ SPD for any
/// edge set, including disconnected ones).
fn random_spd(n: usize, edges: &[(usize, usize, f64)], grounds: &[f64]) -> CsrMatrix {
    let mut t = TripletMatrix::new(n);
    for &(a, b, w) in edges {
        let (a, b) = (a % n, b % n);
        if a != b {
            t.add_conductance(a, b, w);
        }
    }
    for (i, &g) in grounds.iter().cycle().take(n).enumerate() {
        t.add_grounded_conductance(i, g);
    }
    t.to_csr()
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let scale = x.abs().max(y.abs()).max(1.0);
        assert!((x - y).abs() <= tol * scale, "{what}[{i}]: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn blocked_factor_matches_scalar_on_random_spd_systems(
        n in 20usize..110,
        edges in prop::collection::vec((0usize..110, 0usize..110, 0.1f64..5.0), 40..320),
        grounds in prop::collection::vec(0.05f64..2.0, 1..8),
        rhs_scale in 0.5f64..4.0,
    ) {
        let a = random_spd(n, &edges, &grounds);
        let symbolic = analyze(&a);
        let plan = symbolic.supernodal_plan(&a);
        let blocked = symbolic.factor_numeric_blocked(&a, &plan).unwrap();
        let scalar = symbolic.factor_numeric(&a).unwrap();

        // Structure is exact (structural parity is what the sweep's
        // determinism guarantees lean on) …
        prop_assert_eq!(blocked.permutation(), scalar.permutation());
        prop_assert_eq!(blocked.nnz_l(), scalar.nnz_l());
        // … and values agree to rounding.
        let b: Vec<f64> = (0..n).map(|i| ((i * 31) % 23) as f64 * rhs_scale - 10.0).collect();
        let xb = blocked.solve(&b);
        let xs = scalar.solve(&b);
        assert_close(&xb, &xs, 1e-9, "x");
        // Both are true factorizations: check the residual of one.
        let r = a.mul(&xb);
        assert_close(&r, &b, 1e-7, "residual");
    }

    #[test]
    fn leveled_solve_is_bitwise_serial_on_random_spd_systems(
        n in 10usize..90,
        edges in prop::collection::vec((0usize..90, 0usize..90, 0.2f64..3.0), 20..200),
        grounds in prop::collection::vec(0.1f64..1.5, 1..6),
        threads in 2usize..9,
    ) {
        let a = random_spd(n, &edges, &grounds);
        let symbolic = analyze(&a);
        let f = symbolic.factor_numeric(&a).unwrap();
        let schedule = LevelSchedule::new(&f);
        let b: Vec<f64> = (0..n).map(|i| ((i * 17) % 11) as f64 * 0.75 - 3.0).collect();
        let serial = f.solve(&b);
        let mut scratch = LevelScratch::new();
        let mut x = vec![0.0; n];
        for t in [1, threads] {
            schedule.solve_into(&f, &b, &mut scratch, &mut x, t);
            let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            let sb: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&xb, &sb, "threads={}", t);
        }
    }
}
