//! Cross-checks between the implicit (pre-factored TR-BDF2) default
//! integrator and the explicit RK4 golden reference, plus the caching
//! and performance contracts the implicit path promises.

use std::time::Instant;

use therm3d_floorplan::{Experiment, Stack3d};
use therm3d_thermal::{Integrator, ThermalConfig, ThermalModel};

/// Trajectory agreement tolerance between the two integrators, °C.
/// Measured worst-case divergence under 5× per-tick power swings is
/// ~0.011 °C on the two-layer stacks and ~0.05 °C on the four-layer
/// ones (three TR-BDF2 substeps per 100 ms tick); 0.1 °C leaves
/// headroom without hiding regressions.
const TRAJ_TOL_C: f64 = 0.1;

fn model(exp: Experiment, grid: usize, integrator: Integrator) -> (Stack3d, ThermalModel) {
    let stack = exp.stack();
    let cfg = ThermalConfig::paper_default().with_grid(grid, grid).with_integrator(integrator);
    let model = ThermalModel::new(&stack, cfg);
    (stack, model)
}

fn core_powers(stack: &Stack3d, watts: f64) -> Vec<f64> {
    let mut p = vec![0.0; stack.num_blocks()];
    for c in stack.core_ids() {
        p[stack.core_block_index(c)] = watts;
    }
    p
}

#[test]
fn implicit_matches_rk4_across_experiments_and_grids() {
    for exp in Experiment::ALL {
        for grid in [4usize, 8] {
            let (stack, mut rk4) = model(exp, grid, Integrator::ExplicitRk4);
            let (_, mut imp) = model(exp, grid, Integrator::ImplicitCn);
            let idle = vec![0.4; stack.num_blocks()];
            rk4.initialize_steady_state(&idle);
            imp.initialize_steady_state(&idle);
            let base = core_powers(&stack, 3.0);
            let mut worst: f64 = 0.0;
            // 3 s of 100 ms ticks with a harsh 5× power square wave —
            // worse than any real workload's per-tick swing.
            for t in 0..30 {
                let scale: f64 = if (t / 5) % 2 == 0 { 1.0 } else { 0.2 };
                let p: Vec<f64> = base.iter().map(|&w| (w * scale).max(0.3)).collect();
                rk4.set_block_powers(&p);
                imp.set_block_powers(&p);
                rk4.step(0.1);
                imp.step(0.1);
                for (a, b) in rk4.block_temperatures_c().iter().zip(imp.block_temperatures_c()) {
                    worst = worst.max((a - b).abs());
                }
            }
            assert!(
                worst < TRAJ_TOL_C,
                "{exp} {grid}x{grid}: integrators diverge by {worst:.4} C (tolerance {TRAJ_TOL_C})"
            );
        }
    }
}

#[test]
fn steady_state_is_a_fixed_point_of_the_implicit_step() {
    for exp in Experiment::ALL {
        let (stack, mut imp) = model(exp, 4, Integrator::ImplicitCn);
        let p = core_powers(&stack, 3.0);
        let steady = imp.initialize_steady_state(&p);
        for _ in 0..10 {
            imp.step(0.1);
        }
        for (i, (now, then)) in imp.block_temperatures_c().iter().zip(&steady).enumerate() {
            assert!(
                (now - then).abs() < 1e-6,
                "{exp} block {i}: steady state drifted from {then:.9} to {now:.9}"
            );
        }
    }
}

#[test]
fn repeated_and_smaller_dt_reuse_cached_factorizations() {
    let (stack, mut imp) = model(Experiment::Exp2, 4, Integrator::ImplicitCn);
    imp.set_block_powers(&core_powers(&stack, 2.0));
    assert_eq!(imp.factorization_count(), 0, "construction must not factor anything");

    imp.step(0.1);
    let after_first = imp.factorization_count();
    assert_eq!(after_first, 1, "first step factors exactly once");
    for _ in 0..20 {
        imp.step(0.1);
    }
    assert_eq!(imp.factorization_count(), after_first, "same dt must reuse the cached factor");

    // A smaller dt needs one new factorization, then both sizes hit.
    imp.step(0.05);
    let after_small = imp.factorization_count();
    assert_eq!(after_small, after_first + 1, "new substep size factors once");
    imp.step(0.1);
    imp.step(0.05);
    imp.step(0.1);
    assert_eq!(
        imp.factorization_count(),
        after_small,
        "alternating previously seen dts must never re-factorize"
    );
    // However many step sizes the driver cycles through, the symbolic
    // analysis (ordering + elimination tree + fill counts) of the
    // α-independent pattern runs exactly once — only numeric phases
    // repeat (ROADMAP follow-up from the implicit-solver PR).
    assert_eq!(imp.symbolic_analysis_count(), 1);
    imp.initialize_steady_state(&core_powers(&stack, 1.0));
    assert_eq!(
        imp.symbolic_analysis_count(),
        1,
        "the steady-state system shares the pattern, hence the analysis"
    );
}

#[test]
fn steady_state_reuses_one_factorization() {
    let (stack, mut imp) = model(Experiment::Exp1, 4, Integrator::ImplicitCn);
    let p = core_powers(&stack, 3.0);
    imp.initialize_steady_state(&p);
    assert_eq!(imp.factorization_count(), 1);
    // Leakage-style fixed-point iteration re-solves, never re-factors.
    for w in [2.0, 4.0, 3.0] {
        imp.initialize_steady_state(&core_powers(&stack, w));
    }
    assert_eq!(imp.factorization_count(), 1, "steady-state factor is cached for the model's life");
}

#[test]
fn rk4_path_never_factorizes() {
    let (stack, mut rk4) = model(Experiment::Exp1, 4, Integrator::ExplicitRk4);
    rk4.set_block_powers(&core_powers(&stack, 3.0));
    for _ in 0..5 {
        rk4.step(0.1);
    }
    assert_eq!(rk4.factorization_count(), 0, "explicit stepping needs no factorization");
    assert_eq!(rk4.integrator(), Integrator::ExplicitRk4);
}

#[test]
fn implicit_tick_is_at_least_10x_faster_than_rk4_on_exp2() {
    // The acceptance-criteria comparison: one 100 ms tick on EXP-2 at
    // the paper-default grid. Warm both models first so the implicit
    // factorization (a one-time cost) is excluded, exactly as in a real
    // sweep where thousands of ticks amortize it.
    let (stack, mut rk4) = model(Experiment::Exp2, 8, Integrator::ExplicitRk4);
    let (_, mut imp) = model(Experiment::Exp2, 8, Integrator::ImplicitCn);
    let p = core_powers(&stack, 3.0);
    rk4.set_block_powers(&p);
    imp.set_block_powers(&p);
    rk4.step(0.1);
    imp.step(0.1);

    let rk4_ticks = 20;
    let start = Instant::now();
    for _ in 0..rk4_ticks {
        rk4.step(0.1);
    }
    let rk4_per_tick = start.elapsed().as_secs_f64() / f64::from(rk4_ticks);

    let imp_ticks = 400;
    let start = Instant::now();
    for _ in 0..imp_ticks {
        imp.step(0.1);
    }
    let imp_per_tick = start.elapsed().as_secs_f64() / f64::from(imp_ticks);

    let speedup = rk4_per_tick / imp_per_tick;
    assert!(
        speedup >= 10.0,
        "implicit must be >=10x faster per tick: rk4 {:.3} ms vs implicit {:.3} ms ({speedup:.1}x)",
        rk4_per_tick * 1e3,
        imp_per_tick * 1e3,
    );
}

#[test]
fn both_integrators_relax_to_the_same_steady_state() {
    for integ in Integrator::ALL {
        let (stack, mut m) = model(Experiment::Exp3, 4, integ);
        let p = core_powers(&stack, 3.0);
        let steady = {
            let mut s = m.clone();
            s.initialize_steady_state(&p)
        };
        m.set_block_powers(&p);
        for _ in 0..600 {
            m.step(0.1);
        }
        let sink_rise_now = m.sink_temperature_c();
        let sink_steady = 45.0 + 0.1 * p.iter().sum::<f64>();
        for (a, b) in m.block_temperatures_c().iter().zip(&steady) {
            let rise_now = a - sink_rise_now;
            let rise_steady = b - sink_steady;
            assert!(
                (rise_now - rise_steady).abs() < 0.5,
                "{integ}: rise {rise_now:.3} vs steady rise {rise_steady:.3}"
            );
        }
    }
}
