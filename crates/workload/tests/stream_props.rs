//! Property tests for the streaming trace path: for *any* trace
//! configuration, lazily draining a [`JobSource`] must yield exactly the
//! jobs that `generate()` materializes — same count, same order, same
//! bits. The stream is a state-machine port of the generator, so this is
//! an equality claim, not an approximation.

use proptest::prelude::*;

use therm3d_workload::{generate_mix, stream_mix, Benchmark, Job, JobSource, TraceConfig};

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::ALL.to_vec())
}

/// Drains a [`JobSource`] to completion into a vector.
fn drain(mut source: impl JobSource) -> Vec<Job> {
    let mut jobs = Vec::new();
    while let Some(job) = source.next_job() {
        jobs.push(job);
    }
    jobs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn stream_yields_exactly_the_materialized_jobs(
        bench in any_benchmark(),
        seed in 0u64..1000,
        n_cores in 1usize..32,
        duration in 2.0f64..45.0,
    ) {
        let cfg = TraceConfig::new(bench, n_cores, duration).with_seed(seed);
        let materialized = cfg.generate();
        let streamed = drain(cfg.stream());
        prop_assert_eq!(
            streamed.as_slice(),
            materialized.jobs(),
            "stream must replay the generator bit for bit"
        );
    }

    #[test]
    fn mix_stream_yields_exactly_the_materialized_mix(
        benchmarks in prop::collection::vec(any_benchmark(), 1..4),
        seed in 0u64..500,
        n_cores in 1usize..24,
        duration in 2.0f64..30.0,
    ) {
        let materialized = generate_mix(&benchmarks, n_cores, duration, seed);
        let streamed = drain(stream_mix(&benchmarks, n_cores, duration, seed));
        prop_assert_eq!(
            streamed.as_slice(),
            materialized.jobs(),
            "mix stream must match the merged materialized trace"
        );
    }
}
