//! The paper's Table I benchmark characterization.
//!
//! The original study profiled real server workloads on an UltraSPARC T1
//! with `mpstat`, `cpustat` and DTrace. Table I summarizes each benchmark
//! by average utilization, L2 instruction/data misses and floating-point
//! instructions per 100 K instructions; those numbers parameterize our
//! synthetic trace generator (see [`crate::gen`]).

use std::fmt;
use std::str::FromStr;

/// One of the eight benchmark workloads of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// SLAMD web server, 20 threads/client (medium utilization).
    WebMed,
    /// SLAMD web server, 40 threads/client (high utilization).
    WebHigh,
    /// MySQL + sysbench, 1 M-row table, 100 threads.
    Database,
    /// Combined web server and database load.
    WebDb,
    /// The gcc compiler (SPEC-like).
    Gcc,
    /// gzip compression/decompression (SPEC-like).
    Gzip,
    /// mplayer decoding 640×272 video (multimedia).
    MPlayer,
    /// mplayer plus web server.
    MPlayerWeb,
}

/// The measured characteristics of a benchmark (one row of Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadStats {
    /// Average utilization over all cores, in `[0, 1]` (Table I reports
    /// percent).
    pub avg_utilization: f64,
    /// L2 instruction misses per 100 K instructions.
    pub l2_imiss_per_100k: f64,
    /// L2 data misses per 100 K instructions.
    pub l2_dmiss_per_100k: f64,
    /// Floating-point instructions per 100 K instructions.
    pub fp_per_100k: f64,
}

impl WorkloadStats {
    /// A normalized memory-traffic intensity in `[0, 1]`, derived from the
    /// combined L2 miss rate. Drives the crossbar's traffic-scaled power.
    ///
    /// Web-high (the heaviest L2 client in Table I at 356 misses/100 K)
    /// maps to 1.0; others scale linearly.
    #[must_use]
    pub fn memory_intensity(&self) -> f64 {
        const MAX_MISSES: f64 = 356.3; // Web-high's I+D total
        ((self.l2_imiss_per_100k + self.l2_dmiss_per_100k) / MAX_MISSES).clamp(0.0, 1.0)
    }
}

impl Benchmark {
    /// All benchmarks in Table I order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::WebMed,
        Benchmark::WebHigh,
        Benchmark::Database,
        Benchmark::WebDb,
        Benchmark::Gcc,
        Benchmark::Gzip,
        Benchmark::MPlayer,
        Benchmark::MPlayerWeb,
    ];

    /// The Table I row for this benchmark.
    #[must_use]
    pub fn stats(self) -> WorkloadStats {
        match self {
            Benchmark::WebMed => WorkloadStats {
                avg_utilization: 0.5312,
                l2_imiss_per_100k: 12.9,
                l2_dmiss_per_100k: 167.7,
                fp_per_100k: 31.2,
            },
            Benchmark::WebHigh => WorkloadStats {
                avg_utilization: 0.9287,
                l2_imiss_per_100k: 67.6,
                l2_dmiss_per_100k: 288.7,
                fp_per_100k: 31.2,
            },
            Benchmark::Database => WorkloadStats {
                avg_utilization: 0.1775,
                l2_imiss_per_100k: 6.5,
                l2_dmiss_per_100k: 102.3,
                fp_per_100k: 5.9,
            },
            Benchmark::WebDb => WorkloadStats {
                avg_utilization: 0.7512,
                l2_imiss_per_100k: 21.5,
                l2_dmiss_per_100k: 115.3,
                fp_per_100k: 24.1,
            },
            Benchmark::Gcc => WorkloadStats {
                avg_utilization: 0.1525,
                l2_imiss_per_100k: 31.7,
                l2_dmiss_per_100k: 96.2,
                fp_per_100k: 18.1,
            },
            Benchmark::Gzip => WorkloadStats {
                avg_utilization: 0.09,
                l2_imiss_per_100k: 2.0,
                l2_dmiss_per_100k: 57.0,
                fp_per_100k: 0.2,
            },
            Benchmark::MPlayer => WorkloadStats {
                avg_utilization: 0.065,
                l2_imiss_per_100k: 9.6,
                l2_dmiss_per_100k: 136.0,
                fp_per_100k: 1.0,
            },
            Benchmark::MPlayerWeb => WorkloadStats {
                avg_utilization: 0.2662,
                l2_imiss_per_100k: 9.1,
                l2_dmiss_per_100k: 66.8,
                fp_per_100k: 29.9,
            },
        }
    }

    /// The benchmark's name as used in Table I.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::WebMed => "Web-med",
            Benchmark::WebHigh => "Web-high",
            Benchmark::Database => "Database",
            Benchmark::WebDb => "Web & DB",
            Benchmark::Gcc => "gcc",
            Benchmark::Gzip => "gzip",
            Benchmark::MPlayer => "MPlayer",
            Benchmark::MPlayerWeb => "MPlayer&Web",
        }
    }

    /// Table I's row number (1-based).
    #[must_use]
    pub fn table_index(self) -> usize {
        Benchmark::ALL.iter().position(|&b| b == self).expect("benchmark in ALL") + 1
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`Benchmark`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError(String);

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark `{}`", self.0)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_lowercase().replace([' ', '-', '_', '&'], "");
        Benchmark::ALL
            .iter()
            .find(|b| b.name().to_ascii_lowercase().replace([' ', '-', '&'], "") == norm)
            .copied()
            .ok_or_else(|| ParseBenchmarkError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values() {
        let s = Benchmark::WebHigh.stats();
        assert!((s.avg_utilization - 0.9287).abs() < 1e-12);
        assert!((s.l2_imiss_per_100k - 67.6).abs() < 1e-12);
        let s = Benchmark::Gzip.stats();
        assert!((s.avg_utilization - 0.09).abs() < 1e-12);
        assert!((s.fp_per_100k - 0.2).abs() < 1e-12);
    }

    #[test]
    fn memory_intensity_bounds_and_ordering() {
        for b in Benchmark::ALL {
            let m = b.stats().memory_intensity();
            assert!((0.0..=1.0).contains(&m), "{b}: {m}");
        }
        assert!((Benchmark::WebHigh.stats().memory_intensity() - 1.0).abs() < 1e-9);
        assert!(
            Benchmark::Gzip.stats().memory_intensity()
                < Benchmark::WebMed.stats().memory_intensity()
        );
    }

    #[test]
    fn table_indices_are_one_through_eight() {
        let idx: Vec<_> = Benchmark::ALL.iter().map(|b| b.table_index()).collect();
        assert_eq!(idx, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn parse_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b, "{b}");
        }
        assert_eq!("web-high".parse::<Benchmark>().unwrap(), Benchmark::WebHigh);
        assert_eq!("Web & DB".parse::<Benchmark>().unwrap(), Benchmark::WebDb);
        assert!("quake3".parse::<Benchmark>().is_err());
    }

    #[test]
    fn utilization_ordering_matches_table() {
        // Web-high > Web&DB > Web-med > MPlayer&Web > DB > gcc > gzip > MPlayer
        let u: Vec<f64> = [
            Benchmark::WebHigh,
            Benchmark::WebDb,
            Benchmark::WebMed,
            Benchmark::MPlayerWeb,
            Benchmark::Database,
            Benchmark::Gcc,
            Benchmark::Gzip,
            Benchmark::MPlayer,
        ]
        .iter()
        .map(|b| b.stats().avg_utilization)
        .collect();
        for w in u.windows(2) {
            assert!(w[0] > w[1]);
        }
    }
}
