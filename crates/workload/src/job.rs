//! Jobs (schedulable threads) and arrival schedules.

use std::fmt;

use crate::benchmark::Benchmark;

/// A unit of schedulable work: one thread burst extracted from (or
/// synthesized to match) the utilization traces.
///
/// `work_s` is CPU time at the default frequency; running at a scaled
/// frequency `f` stretches it to `work_s / f` of wall time. Completion
/// times against arrival times give the performance metric of Section V-A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Unique, monotonically increasing id within a trace.
    pub id: u64,
    /// Arrival time in seconds from trace start.
    pub arrival_s: f64,
    /// CPU demand in seconds at the default V/f setting.
    pub work_s: f64,
    /// Memory intensity in `[0, 1]` (from the benchmark's L2 miss rates).
    pub memory_intensity: f64,
    /// The benchmark this job belongs to.
    pub benchmark: Benchmark,
    /// Identity of the OS thread this burst belongs to. Affinity-based
    /// dispatchers (the Solaris default) send recurring threads back to
    /// the core they last ran on; defaults to `id` (every burst its own
    /// thread) unless set via [`with_thread`](Self::with_thread).
    pub thread_id: u64,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if `arrival_s` is negative, `work_s` is not strictly
    /// positive, or `memory_intensity` is outside `[0, 1]`.
    #[must_use]
    pub fn new(
        id: u64,
        arrival_s: f64,
        work_s: f64,
        memory_intensity: f64,
        benchmark: Benchmark,
    ) -> Self {
        assert!(arrival_s >= 0.0 && arrival_s.is_finite(), "arrival must be non-negative");
        assert!(work_s > 0.0 && work_s.is_finite(), "work must be positive");
        assert!(
            (0.0..=1.0).contains(&memory_intensity),
            "memory intensity must be in [0,1], got {memory_intensity}"
        );
        Self { id, arrival_s, work_s, memory_intensity, benchmark, thread_id: id }
    }

    /// Returns the job tagged as belonging to OS thread `thread_id`.
    #[must_use]
    pub fn with_thread(mut self, thread_id: u64) -> Self {
        self.thread_id = thread_id;
        self
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job#{} [{}] t={:.3}s work={:.3}s",
            self.id, self.benchmark, self.arrival_s, self.work_s
        )
    }
}

/// An arrival-ordered job trace with cursor-based consumption.
///
/// # Examples
///
/// ```
/// use therm3d_workload::{Benchmark, Job, JobTrace};
///
/// let trace = JobTrace::new(vec![
///     Job::new(0, 0.05, 0.4, 0.5, Benchmark::WebMed),
///     Job::new(1, 0.25, 0.2, 0.5, Benchmark::WebMed),
/// ]);
/// let mut cursor = trace.cursor();
/// assert_eq!(cursor.take_until(0.1).len(), 1);
/// assert_eq!(cursor.take_until(0.3).len(), 1);
/// assert!(cursor.take_until(10.0).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    jobs: Vec<Job>,
}

impl JobTrace {
    /// Creates a trace, sorting jobs by arrival time.
    #[must_use]
    pub fn new(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        Self { jobs }
    }

    /// The jobs, arrival-ordered.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if the trace holds no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total CPU demand of the trace in seconds.
    #[must_use]
    pub fn total_work_s(&self) -> f64 {
        self.jobs.iter().map(|j| j.work_s).sum()
    }

    /// Time of the last arrival, or 0 for an empty trace.
    #[must_use]
    pub fn span_s(&self) -> f64 {
        self.jobs.last().map_or(0.0, |j| j.arrival_s)
    }

    /// Average offered utilization per core over `duration_s` for an
    /// `n_cores` system: total work / (duration × cores).
    #[must_use]
    pub fn offered_utilization(&self, n_cores: usize, duration_s: f64) -> f64 {
        if duration_s <= 0.0 || n_cores == 0 {
            return 0.0;
        }
        self.total_work_s() / (duration_s * n_cores as f64)
    }

    /// A cursor for consuming arrivals in simulation-time order.
    #[must_use]
    pub fn cursor(&self) -> JobCursor<'_> {
        JobCursor { trace: self, next: 0 }
    }
}

/// Cursor over a [`JobTrace`], yielding jobs as simulated time advances.
#[derive(Debug, Clone)]
pub struct JobCursor<'a> {
    trace: &'a JobTrace,
    next: usize,
}

impl<'a> JobCursor<'a> {
    /// Returns all jobs with `arrival_s <= now_s` not yet taken.
    pub fn take_until(&mut self, now_s: f64) -> &'a [Job] {
        let start = self.next;
        while self.next < self.trace.jobs.len() && self.trace.jobs[self.next].arrival_s <= now_s {
            self.next += 1;
        }
        &self.trace.jobs[start..self.next]
    }

    /// Jobs remaining beyond the cursor.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.trace.jobs.len() - self.next
    }

    /// The next job in arrival order, or `None` once the trace is
    /// drained. This is the [`JobSource`](crate::source::JobSource) view
    /// of the cursor, letting a materialized trace feed any consumer a
    /// streaming generator can.
    pub fn next_job(&mut self) -> Option<Job> {
        let job = self.trace.jobs.get(self.next).copied();
        if job.is_some() {
            self.next += 1;
        }
        job
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, at: f64) -> Job {
        Job::new(id, at, 0.1, 0.5, Benchmark::Gcc)
    }

    #[test]
    fn trace_sorts_by_arrival() {
        let t = JobTrace::new(vec![job(0, 5.0), job(1, 1.0), job(2, 3.0)]);
        let arrivals: Vec<f64> = t.jobs().iter().map(|j| j.arrival_s).collect();
        assert_eq!(arrivals, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn cursor_consumes_in_order() {
        let t = JobTrace::new(vec![job(0, 0.1), job(1, 0.2), job(2, 0.9)]);
        let mut c = t.cursor();
        assert_eq!(c.take_until(0.2).len(), 2);
        assert_eq!(c.remaining(), 1);
        assert_eq!(c.take_until(0.5).len(), 0);
        assert_eq!(c.take_until(1.0).len(), 1);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn offered_utilization_formula() {
        let t = JobTrace::new(vec![job(0, 0.0), job(1, 1.0)]); // 0.2 s work total
        let u = t.offered_utilization(2, 10.0);
        assert!((u - 0.2 / 20.0).abs() < 1e-12);
        assert_eq!(t.offered_utilization(0, 10.0), 0.0);
    }

    #[test]
    fn totals() {
        let t = JobTrace::new(vec![job(0, 0.5), job(1, 2.0)]);
        assert!((t.total_work_s() - 0.2).abs() < 1e-12);
        assert!((t.span_s() - 2.0).abs() < 1e-12);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "work must be positive")]
    fn zero_work_rejected() {
        let _ = Job::new(0, 0.0, 0.0, 0.5, Benchmark::Gcc);
    }

    #[test]
    #[should_panic(expected = "memory intensity")]
    fn bad_memory_intensity_rejected() {
        let _ = Job::new(0, 0.0, 1.0, 1.5, Benchmark::Gcc);
    }
}
