//! Streaming job sources: lazy, seeded generators that yield
//! arrival-ordered jobs on demand at O(1) memory in the trace duration.
//!
//! [`TraceStream`] is an exact state-machine port of
//! [`TraceConfig::generate`]: it consumes the RNG in the same order and
//! therefore emits *bit-identical* jobs, one per call, without ever
//! holding the trace. [`MixStream`] does the same for
//! [`generate_mix`](crate::gen::generate_mix), moving a single
//! [`ZipfSampler`] between benchmark slots instead of rebuilding the
//! CDF per slot. A materialized [`JobTrace`](crate::job::JobTrace) joins
//! in through its cursor, which implements the same [`JobSource`] trait
//! — so week-long simulations stream while tests and short runs keep
//! materializing, over one consumer API.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::benchmark::Benchmark;
use crate::gen::{hash_benchmark, sample_exp, sample_lognormal, TraceConfig, ZipfSampler};
use crate::job::{Job, JobCursor};

/// A source of arrival-ordered jobs.
///
/// Implementations must yield jobs with non-decreasing `arrival_s`; the
/// engine consumes them through a one-job peek ([`SourceCursor`]) and
/// never looks further ahead, which is what keeps memory O(1) in the
/// simulated duration.
pub trait JobSource {
    /// The next job in arrival order, or `None` once the source is
    /// exhausted (sources stay exhausted: further calls keep returning
    /// `None`).
    fn next_job(&mut self) -> Option<Job>;

    /// Number of jobs remaining, when the source knows it (materialized
    /// traces do; lazy generators return `None`).
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

impl<S: JobSource + ?Sized> JobSource for &mut S {
    fn next_job(&mut self) -> Option<Job> {
        (**self).next_job()
    }

    fn size_hint(&self) -> Option<usize> {
        (**self).size_hint()
    }
}

impl JobSource for JobCursor<'_> {
    fn next_job(&mut self) -> Option<Job> {
        JobCursor::next_job(self)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining())
    }
}

/// One-job lookahead over a [`JobSource`], giving the engine the same
/// "are there arrivals pending / hand me everything due by `now`"
/// queries a [`JobCursor`] answered, without a
/// materialized trace behind it.
#[derive(Debug, Clone)]
pub struct SourceCursor<S> {
    source: S,
    peeked: Option<Job>,
    exhausted: bool,
}

impl<S: JobSource> SourceCursor<S> {
    /// Wraps a source.
    pub fn new(source: S) -> Self {
        Self { source, peeked: None, exhausted: false }
    }

    // lint: region(alloc-free: job-advance)
    fn fill(&mut self) {
        if self.peeked.is_none() && !self.exhausted {
            self.peeked = self.source.next_job();
            if self.peeked.is_none() {
                self.exhausted = true;
            }
        }
    }

    /// Pops the next job if it has arrived by `now_s`; call in a loop to
    /// drain all arrivals due this tick.
    pub fn next_until(&mut self, now_s: f64) -> Option<Job> {
        self.fill();
        match self.peeked {
            Some(job) if job.arrival_s <= now_s => {
                self.peeked = None;
                Some(job)
            }
            _ => None,
        }
    }

    /// `true` while undelivered jobs remain (pulls the lookahead job on
    /// demand; the generator's RNG is independent of simulation state,
    /// so eager pulls cannot perturb the stream).
    pub fn has_pending(&mut self) -> bool {
        self.fill();
        self.peeked.is_some()
    }
    // lint: end-region

    /// Unwraps the cursor back into its source.
    pub fn into_inner(self) -> S {
        self.source
    }
}

/// Lazy equivalent of [`TraceConfig::generate`]: the modulated-Poisson
/// arrival walk carried as stream state, one job materialized per
/// [`next_job`](JobSource::next_job) call.
///
/// # Examples
///
/// ```
/// use therm3d_workload::{Benchmark, JobSource, TraceConfig};
///
/// let cfg = TraceConfig::new(Benchmark::WebMed, 8, 30.0).with_seed(7);
/// let mut stream = cfg.stream();
/// let streamed: Vec<_> = std::iter::from_fn(|| stream.next_job()).collect();
/// assert_eq!(streamed, cfg.generate().jobs());
/// ```
#[derive(Debug, Clone)]
pub struct TraceStream {
    config: TraceConfig,
    rng: StdRng,
    base_rate: f64,
    mu: f64,
    mem: f64,
    threads: ZipfSampler,
    t: f64,
    id: u64,
    phase_high: bool,
    phase_end: f64,
    done: bool,
}

impl TraceStream {
    /// Builds the stream (and its thread sampler) for a configuration.
    #[must_use]
    pub fn new(config: &TraceConfig) -> Self {
        Self::with_sampler(config.clone(), ZipfSampler::new(config.n_threads(), config.zipf_s))
    }

    /// Builds the stream around a caller-provided sampler so consecutive
    /// streams over the same thread population (e.g. [`MixStream`]'s
    /// slots) skip the CDF rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `threads` was built for a different population size.
    #[must_use]
    pub fn with_sampler(config: TraceConfig, threads: ZipfSampler) -> Self {
        assert_eq!(threads.len(), config.n_threads(), "sampler population mismatch");
        let stats = config.benchmark.stats();
        let mut rng = StdRng::seed_from_u64(config.seed ^ hash_benchmark(config.benchmark));
        // Offered load = λ · E[S] = U · N  ⇒  λ = U·N / E[S].
        let base_rate = stats.avg_utilization * config.n_cores as f64 / config.mean_job_s;
        let mu = config.mean_job_s.ln() - config.job_sigma * config.job_sigma / 2.0;
        let mem = stats.memory_intensity();
        let phase_high = rng.gen_bool(0.5);
        let phase_end = sample_exp(&mut rng, 1.0 / config.phase_mean_s);
        Self {
            config,
            rng,
            base_rate,
            mu,
            mem,
            threads,
            t: 0.0,
            id: 0,
            phase_high,
            phase_end,
            done: false,
        }
    }

    /// Recovers the sampler for reuse by a successor stream.
    #[must_use]
    pub fn into_sampler(self) -> ZipfSampler {
        self.threads
    }
}

impl JobSource for TraceStream {
    // lint: region(alloc-free: job-advance)
    fn next_job(&mut self) -> Option<Job> {
        if self.done {
            return None;
        }
        loop {
            let rate = if self.phase_high {
                self.base_rate * (1.0 + self.config.burstiness)
            } else {
                self.base_rate * (1.0 - self.config.burstiness)
            };
            // With a (near-)zero rate, skip straight to the next phase.
            let dt = if rate > 1e-12 { sample_exp(&mut self.rng, rate) } else { f64::INFINITY };
            if self.t + dt > self.phase_end {
                self.t = self.phase_end;
                if self.t >= self.config.duration_s {
                    self.done = true;
                    return None;
                }
                self.phase_high = !self.phase_high;
                self.phase_end = self.t + sample_exp(&mut self.rng, 1.0 / self.config.phase_mean_s);
                continue;
            }
            self.t += dt;
            if self.t >= self.config.duration_s {
                self.done = true;
                return None;
            }
            let work =
                sample_lognormal(&mut self.rng, self.mu, self.config.job_sigma).clamp(0.005, 30.0);
            let mem_jitter = (self.mem + self.rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0);
            let thread = self.threads.sample(&mut self.rng) as u64;
            let job = Job::new(self.id, self.t, work, mem_jitter, self.config.benchmark)
                .with_thread(thread);
            self.id += 1;
            return Some(job);
        }
    }
    // lint: end-region
}

/// Lazy equivalent of [`generate_mix`](crate::gen::generate_mix):
/// benchmarks chained over equal duration slots, jobs re-timed and
/// re-numbered exactly as the materialized path does, with the Zipf
/// sampler handed from slot to slot (every slot shares the same thread
/// population).
#[derive(Debug, Clone)]
pub struct MixStream {
    benchmarks: Vec<Benchmark>,
    n_cores: usize,
    slot_s: f64,
    seed: u64,
    slot: usize,
    current: Option<TraceStream>,
    next_id: u64,
}

impl MixStream {
    /// Builds the stream; parameters mirror
    /// [`generate_mix`](crate::gen::generate_mix).
    ///
    /// # Panics
    ///
    /// Panics if `benchmarks` is empty or the base config is invalid.
    #[must_use]
    pub fn new(benchmarks: &[Benchmark], n_cores: usize, duration_s: f64, seed: u64) -> Self {
        assert!(!benchmarks.is_empty(), "need at least one benchmark");
        let slot_s = duration_s / benchmarks.len() as f64;
        let first = TraceConfig::new(benchmarks[0], n_cores, slot_s).with_seed(seed);
        Self {
            benchmarks: benchmarks.to_vec(),
            n_cores,
            slot_s,
            seed,
            slot: 0,
            current: Some(TraceStream::new(&first)),
            next_id: 0,
        }
    }
}

impl JobSource for MixStream {
    // lint: region(alloc-free: job-advance)
    fn next_job(&mut self) -> Option<Job> {
        loop {
            let stream = self.current.as_mut()?;
            if let Some(j) = stream.next_job() {
                let i = self.slot;
                let job = Job::new(
                    self.next_id,
                    j.arrival_s + i as f64 * self.slot_s,
                    j.work_s,
                    j.memory_intensity,
                    j.benchmark,
                )
                // Keep per-benchmark thread populations disjoint.
                .with_thread(j.thread_id + ((i as u64) << 32));
                self.next_id += 1;
                return Some(job);
            }
            // Slot drained: hand the sampler to the next slot's stream.
            let sampler = self.current.take().map(TraceStream::into_sampler)?;
            self.slot += 1;
            if self.slot >= self.benchmarks.len() {
                return None;
            }
            let cfg = TraceConfig::new(self.benchmarks[self.slot], self.n_cores, self.slot_s)
                .with_seed(self.seed.wrapping_add(self.slot as u64));
            self.current = Some(TraceStream::with_sampler(cfg, sampler));
        }
    }
    // lint: end-region
}

/// A [`MixStream`] over the same parameters as
/// [`generate_mix`](crate::gen::generate_mix), yielding bit-identical
/// jobs without materializing them.
///
/// # Panics
///
/// Panics if `benchmarks` is empty or the base config is invalid.
#[must_use]
pub fn stream_mix(
    benchmarks: &[Benchmark],
    n_cores: usize,
    duration_s: f64,
    seed: u64,
) -> MixStream {
    MixStream::new(benchmarks, n_cores, duration_s, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_mix;

    fn drain(mut s: impl JobSource) -> Vec<Job> {
        std::iter::from_fn(|| s.next_job()).collect()
    }

    #[test]
    fn stream_matches_generate_bit_for_bit() {
        for b in [Benchmark::WebMed, Benchmark::Gzip, Benchmark::Database] {
            for seed in [1u64, 42, 0xDEAD_BEEF] {
                let cfg = TraceConfig::new(b, 8, 45.0).with_seed(seed);
                assert_eq!(drain(cfg.stream()), cfg.generate().jobs(), "{b} seed {seed}");
            }
        }
    }

    #[test]
    fn stream_stays_exhausted() {
        let cfg = TraceConfig::new(Benchmark::Gzip, 2, 5.0);
        let mut s = cfg.stream();
        while s.next_job().is_some() {}
        assert!(s.next_job().is_none());
        assert!(s.next_job().is_none());
    }

    #[test]
    fn mix_stream_matches_generate_mix_bit_for_bit() {
        let benches = [Benchmark::Gzip, Benchmark::WebHigh, Benchmark::Database];
        let streamed = drain(stream_mix(&benches, 8, 60.0, 3));
        assert_eq!(streamed, generate_mix(&benches, 8, 60.0, 3).jobs());
    }

    #[test]
    fn single_benchmark_mix_matches_too() {
        let benches = [Benchmark::WebMed];
        let streamed = drain(stream_mix(&benches, 16, 30.0, 2009));
        assert_eq!(streamed, generate_mix(&benches, 16, 30.0, 2009).jobs());
    }

    #[test]
    fn cursor_is_a_job_source() {
        let trace = TraceConfig::new(Benchmark::WebMed, 4, 10.0).generate();
        let mut cursor = trace.cursor();
        assert_eq!(JobSource::size_hint(&cursor), Some(trace.len()));
        assert_eq!(drain(&mut cursor), trace.jobs());
        assert_eq!(JobSource::size_hint(&cursor), Some(0));
    }

    #[test]
    fn source_cursor_delivers_arrivals_in_tick_batches() {
        let cfg = TraceConfig::new(Benchmark::WebHigh, 8, 12.0).with_seed(4);
        let trace = cfg.generate();
        let mut materialized = trace.cursor();
        let mut streamed = SourceCursor::new(cfg.stream());
        let mut now = 0.0;
        while now < 14.0 {
            let batch = materialized.take_until(now);
            let mut got = 0;
            while let Some(job) = streamed.next_until(now) {
                assert_eq!(job, batch[got]);
                got += 1;
            }
            assert_eq!(got, batch.len(), "batch mismatch at t={now}");
            now += 0.1;
        }
        assert!(!streamed.has_pending());
    }

    #[test]
    fn arrivals_are_non_decreasing() {
        let jobs = drain(stream_mix(&[Benchmark::Gcc, Benchmark::Gzip], 8, 30.0, 7));
        for w in jobs.windows(2) {
            assert!(w[1].arrival_s >= w[0].arrival_s);
        }
    }
}
