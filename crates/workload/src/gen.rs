//! Synthetic trace generation matched to the Table I characteristics.
//!
//! **Substitution note (DESIGN.md §4):** the paper replays half-hour
//! `mpstat`/DTrace traces recorded on real UltraSPARC T1 hardware; those
//! traces are not distributable. This module generates statistically
//! matched job streams instead: a two-state (burst/calm) modulated Poisson
//! arrival process whose offered load equals the benchmark's Table I
//! average utilization, with lognormal service demands and the benchmark's
//! memory intensity. The policies, power model and thermal model consume
//! the same quantities either way — time-varying per-core utilization and
//! memory traffic — so every code path the paper exercises is exercised
//! here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::benchmark::Benchmark;
use crate::job::{Job, JobTrace};

/// Configuration for synthetic trace generation.
///
/// # Examples
///
/// ```
/// use therm3d_workload::{Benchmark, TraceConfig};
///
/// let trace = TraceConfig::new(Benchmark::WebMed, 8, 600.0).with_seed(7).generate();
/// let offered = trace.offered_utilization(8, 600.0);
/// assert!((offered - 0.5312).abs() < 0.12, "offered load tracks Table I: {offered}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// The benchmark whose Table I statistics to match.
    pub benchmark: Benchmark,
    /// Number of cores the load targets (8 for EXP-1/2, 16 for EXP-3/4;
    /// the paper duplicates the 8-core workload for 16-core systems).
    pub n_cores: usize,
    /// Trace duration in seconds (the paper uses 30-minute traces).
    pub duration_s: f64,
    /// RNG seed; identical configurations generate identical traces.
    pub seed: u64,
    /// Mean CPU demand per job in seconds.
    pub mean_job_s: f64,
    /// Lognormal shape parameter for job sizes (0 = deterministic).
    pub job_sigma: f64,
    /// Arrival-rate modulation depth in `[0, 1)`: the burst phase runs at
    /// `(1+b)·λ`, the calm phase at `(1−b)·λ`.
    pub burstiness: f64,
    /// Mean phase duration of the burst/calm alternation, seconds.
    pub phase_mean_s: f64,
    /// Number of persistent OS threads generating the bursts, as a
    /// multiple of the core count (a web server runs 20–40 threads on the
    /// 8-core T1). Affinity dispatchers key on thread identity.
    pub threads_per_core: f64,
    /// Zipf exponent of thread popularity: a few hot threads produce most
    /// bursts, creating the load imbalance real dispatchers exhibit.
    pub zipf_s: f64,
}

impl TraceConfig {
    /// Creates a configuration with the default stochastic shape
    /// (0.5 s mean jobs, σ = 0.8, burstiness 0.6, 10 s phases, seed 42).
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero or `duration_s` is not positive.
    #[must_use]
    pub fn new(benchmark: Benchmark, n_cores: usize, duration_s: f64) -> Self {
        assert!(n_cores > 0, "need at least one core");
        assert!(duration_s > 0.0 && duration_s.is_finite(), "duration must be positive");
        Self {
            benchmark,
            n_cores,
            duration_s,
            seed: 42,
            mean_job_s: 0.5,
            job_sigma: 0.8,
            burstiness: 0.6,
            phase_mean_s: 10.0,
            threads_per_core: 3.0,
            zipf_s: 1.1,
        }
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mean job CPU demand in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `mean_job_s` is not strictly positive.
    #[must_use]
    pub fn with_mean_job(mut self, mean_job_s: f64) -> Self {
        assert!(mean_job_s > 0.0, "mean job size must be positive");
        self.mean_job_s = mean_job_s;
        self
    }

    /// Sets the burstiness (arrival-rate modulation depth) in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `burstiness` is outside `[0, 1)`.
    #[must_use]
    pub fn with_burstiness(mut self, burstiness: f64) -> Self {
        assert!((0.0..1.0).contains(&burstiness), "burstiness must be in [0,1)");
        self.burstiness = burstiness;
        self
    }

    /// The thread-population size the Zipf dispatcher draws from.
    #[must_use]
    pub fn n_threads(&self) -> usize {
        ((self.n_cores as f64 * self.threads_per_core).round() as usize).max(1)
    }

    /// A lazy, arrival-ordered stream of the exact jobs
    /// [`generate`](Self::generate) would materialize — same RNG
    /// consumption order, bit-identical jobs — at O(1) memory in the
    /// trace duration. See [`TraceStream`](crate::source::TraceStream).
    #[must_use]
    pub fn stream(&self) -> crate::source::TraceStream {
        crate::source::TraceStream::new(self)
    }

    /// Generates the job trace.
    #[must_use]
    pub fn generate(&self) -> JobTrace {
        self.generate_with_sampler(&ZipfSampler::new(self.n_threads(), self.zipf_s))
    }

    /// [`generate`](Self::generate) against a caller-provided thread
    /// sampler (which must match [`n_threads`](Self::n_threads) and
    /// `zipf_s`), so batch generators amortize the CDF build across
    /// traces instead of rebuilding it per call.
    ///
    /// # Panics
    ///
    /// Panics if `threads` was built for a different population size.
    #[must_use]
    pub fn generate_with_sampler(&self, threads: &ZipfSampler) -> JobTrace {
        assert_eq!(threads.len(), self.n_threads(), "sampler population mismatch");
        let stats = self.benchmark.stats();
        let mut rng = StdRng::seed_from_u64(self.seed ^ hash_benchmark(self.benchmark));
        // Offered load = λ · E[S] = U · N  ⇒  λ = U·N / E[S].
        let base_rate = stats.avg_utilization * self.n_cores as f64 / self.mean_job_s;
        let mu = self.mean_job_s.ln() - self.job_sigma * self.job_sigma / 2.0;
        let mem = stats.memory_intensity();

        let mut jobs = Vec::new();
        let mut t = 0.0;
        let mut id = 0u64;
        let mut phase_high = rng.gen_bool(0.5);
        let mut phase_end = sample_exp(&mut rng, 1.0 / self.phase_mean_s);
        loop {
            let rate = if phase_high {
                base_rate * (1.0 + self.burstiness)
            } else {
                base_rate * (1.0 - self.burstiness)
            };
            // With a (near-)zero rate, skip straight to the next phase.
            let dt = if rate > 1e-12 { sample_exp(&mut rng, rate) } else { f64::INFINITY };
            if t + dt > phase_end {
                t = phase_end;
                if t >= self.duration_s {
                    break;
                }
                phase_high = !phase_high;
                phase_end = t + sample_exp(&mut rng, 1.0 / self.phase_mean_s);
                continue;
            }
            t += dt;
            if t >= self.duration_s {
                break;
            }
            let work = sample_lognormal(&mut rng, mu, self.job_sigma).clamp(0.005, 30.0);
            let mem_jitter = (mem + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0);
            let thread = threads.sample(&mut rng) as u64;
            jobs.push(Job::new(id, t, work, mem_jitter, self.benchmark).with_thread(thread));
            id += 1;
        }
        JobTrace::new(jobs)
    }
}

/// Generates a trace interleaving several benchmarks with equal shares of
/// the duration (a consolidated-server scenario for the examples).
///
/// # Panics
///
/// Panics if `benchmarks` is empty or the base config is invalid.
#[must_use]
pub fn generate_mix(
    benchmarks: &[Benchmark],
    n_cores: usize,
    duration_s: f64,
    seed: u64,
) -> JobTrace {
    assert!(!benchmarks.is_empty(), "need at least one benchmark");
    let slot = duration_s / benchmarks.len() as f64;
    let mut all = Vec::new();
    let mut next_id = 0u64;
    // Every slot shares the same thread population (n_cores and the Zipf
    // shape are slot-independent), so build the sampler once.
    let first = TraceConfig::new(benchmarks[0], n_cores, slot);
    let threads = ZipfSampler::new(first.n_threads(), first.zipf_s);
    for (i, &b) in benchmarks.iter().enumerate() {
        let sub = TraceConfig::new(b, n_cores, slot).with_seed(seed.wrapping_add(i as u64));
        for j in sub.generate_with_sampler(&threads).jobs() {
            all.push(
                Job::new(
                    next_id,
                    j.arrival_s + i as f64 * slot,
                    j.work_s,
                    j.memory_intensity,
                    j.benchmark,
                )
                // Keep per-benchmark thread populations disjoint.
                .with_thread(j.thread_id + ((i as u64) << 32)),
            );
            next_id += 1;
        }
    }
    JobTrace::new(all)
}

/// Inverse-transform sampler over a Zipf thread-popularity law.
///
/// The CDF is built once and reused across every draw — and, via
/// [`TraceConfig::generate_with_sampler`] or the streaming sources,
/// across whole traces — instead of being rebuilt per `generate` call.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for a Zipf law with exponent `s` over `n`
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one thread");
        Self { cdf: zipf_cdf(n, s) }
    }

    /// The population size the sampler was built for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: the population is non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a thread index in `0..len()`, allocation-free.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        sample_cdf(rng, &self.cdf)
    }
}

pub(crate) fn hash_benchmark(b: Benchmark) -> u64 {
    // Stable per-benchmark stream separation so that the same seed gives
    // independent traces per benchmark.
    0x9e37_79b9_7f4a_7c15u64.wrapping_mul(b.table_index() as u64)
}

/// Cumulative distribution of a Zipf law with exponent `s` over `n`
/// items.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for k in 1..=n {
        acc += 1.0 / (k as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Samples an index from a CDF via inverse transform.
fn sample_cdf(rng: &mut StdRng, cdf: &[f64]) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Exponential variate with rate `lambda` via inverse transform.
pub(crate) fn sample_exp(rng: &mut StdRng, lambda: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / lambda
}

/// Lognormal variate `exp(N(mu, sigma))` via Box–Muller.
pub(crate) fn sample_lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = TraceConfig::new(Benchmark::WebMed, 8, 30.0).with_seed(1).generate();
        let b = TraceConfig::new(Benchmark::WebMed, 8, 30.0).with_seed(1).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceConfig::new(Benchmark::WebMed, 8, 30.0).with_seed(1).generate();
        let b = TraceConfig::new(Benchmark::WebMed, 8, 30.0).with_seed(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn offered_load_matches_table_i() {
        // Long trace so the law of large numbers applies.
        for b in [Benchmark::WebMed, Benchmark::WebHigh, Benchmark::Database, Benchmark::Gzip] {
            let cfg = TraceConfig::new(b, 8, 600.0).with_seed(11);
            let trace = cfg.generate();
            let offered = trace.offered_utilization(8, 600.0);
            let target = b.stats().avg_utilization;
            assert!(
                (offered - target).abs() < 0.12 * target.max(0.1),
                "{b}: offered {offered:.3} vs target {target:.3}"
            );
        }
    }

    #[test]
    fn arrivals_within_duration() {
        let trace = TraceConfig::new(Benchmark::WebHigh, 8, 20.0).generate();
        for j in trace.jobs() {
            assert!(j.arrival_s < 20.0);
            assert!(j.work_s > 0.0);
            assert!((0.0..=1.0).contains(&j.memory_intensity));
        }
    }

    #[test]
    fn memory_intensity_tracks_benchmark() {
        let heavy = TraceConfig::new(Benchmark::WebHigh, 8, 60.0).generate();
        let light = TraceConfig::new(Benchmark::Gzip, 8, 60.0).generate();
        let avg = |t: &JobTrace| {
            t.jobs().iter().map(|j| j.memory_intensity).sum::<f64>() / t.len().max(1) as f64
        };
        assert!(avg(&heavy) > avg(&light) + 0.3);
    }

    #[test]
    fn sixteen_core_trace_scales_load() {
        let t8 = TraceConfig::new(Benchmark::WebMed, 8, 300.0).generate();
        let t16 = TraceConfig::new(Benchmark::WebMed, 16, 300.0).generate();
        let w8 = t8.total_work_s();
        let w16 = t16.total_work_s();
        assert!(w16 > 1.5 * w8, "16-core work {w16} should be ~2x 8-core {w8}");
    }

    #[test]
    fn mix_concatenates_time_slots() {
        let mix = generate_mix(&[Benchmark::Gzip, Benchmark::WebHigh], 8, 40.0, 3);
        let early: Vec<_> =
            mix.jobs().iter().filter(|j| j.arrival_s < 20.0).map(|j| j.benchmark).collect();
        let late: Vec<_> =
            mix.jobs().iter().filter(|j| j.arrival_s >= 20.0).map(|j| j.benchmark).collect();
        assert!(early.iter().all(|&b| b == Benchmark::Gzip));
        assert!(late.iter().all(|&b| b == Benchmark::WebHigh));
        // Ids must be unique.
        let mut ids: Vec<_> = mix.jobs().iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), mix.len());
    }

    #[test]
    fn thread_population_is_bounded_and_skewed() {
        let cfg = TraceConfig::new(Benchmark::WebHigh, 8, 120.0).with_seed(9);
        let trace = cfg.generate();
        let n_threads = (8.0 * cfg.threads_per_core) as u64;
        let mut counts = std::collections::BTreeMap::new();
        for j in trace.jobs() {
            assert!(j.thread_id < n_threads, "thread {} out of range", j.thread_id);
            *counts.entry(j.thread_id).or_insert(0usize) += 1;
        }
        // Zipf skew: the most popular thread produces several times the
        // mean number of bursts.
        let max = counts.values().copied().max().unwrap();
        let mean = trace.len() as f64 / counts.len() as f64;
        assert!(max as f64 > 2.0 * mean, "max {max} vs mean {mean:.1}");
    }

    #[test]
    fn zipf_cdf_is_normalized_and_monotonic() {
        let cdf = zipf_cdf(10, 1.1);
        assert_eq!(cdf.len(), 10);
        assert!((cdf[9] - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(cdf[0] > 0.2, "head item carries Zipf mass");
    }

    #[test]
    fn shared_sampler_matches_per_call_generation() {
        let cfg = TraceConfig::new(Benchmark::Database, 8, 30.0).with_seed(5);
        let threads = ZipfSampler::new(cfg.n_threads(), cfg.zipf_s);
        assert_eq!(cfg.generate_with_sampler(&threads), cfg.generate());
    }

    #[test]
    #[should_panic(expected = "sampler population mismatch")]
    fn wrong_sampler_population_rejected() {
        let cfg = TraceConfig::new(Benchmark::Database, 8, 30.0);
        let _ = cfg.generate_with_sampler(&ZipfSampler::new(3, cfg.zipf_s));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = TraceConfig::new(Benchmark::Gcc, 0, 10.0);
    }

    #[test]
    #[should_panic(expected = "burstiness")]
    fn bad_burstiness_rejected() {
        let _ = TraceConfig::new(Benchmark::Gcc, 8, 10.0).with_burstiness(1.0);
    }
}
