//! Workload characterization and synthetic trace generation for the
//! `therm3d` reproduction of "Dynamic Thermal Management in 3D Multicore
//! Architectures" (Coskun et al., DATE 2009).
//!
//! The crate encodes the paper's Table I benchmark statistics (average
//! utilization, L2 miss rates, FP mix of eight real server/desktop
//! workloads measured on an UltraSPARC T1) and generates statistically
//! matched synthetic job traces: modulated-Poisson arrivals with lognormal
//! CPU demands whose offered load equals the benchmark's measured average
//! utilization.
//!
//! # Quick start
//!
//! ```
//! use therm3d_workload::{Benchmark, TraceConfig};
//!
//! // One minute of Web-med load for an 8-core system.
//! let trace = TraceConfig::new(Benchmark::WebMed, 8, 60.0).generate();
//! println!("{} jobs, {:.1} CPU-seconds", trace.len(), trace.total_work_s());
//! ```

pub mod benchmark;
pub mod gen;
pub mod job;
pub mod source;

pub use benchmark::{Benchmark, ParseBenchmarkError, WorkloadStats};
pub use gen::{generate_mix, TraceConfig, ZipfSampler};
pub use job::{Job, JobCursor, JobTrace};
pub use source::{stream_mix, JobSource, MixStream, SourceCursor, TraceStream};
