//! Command execution for the `therm3d` binary: each subcommand renders
//! its report to a `String` so tests can assert on output without
//! spawning processes.

use std::fmt::Write as _;

use therm3d::{RunResult, SimConfig, Simulator};
use therm3d_floorplan::Experiment;
use therm3d_policies::PolicyKind;
use therm3d_power::{CorePowerInput, PowerModel, PowerParams, VfTable};
use therm3d_reliability::ReliabilityReport;
use therm3d_thermal::{ThermalConfig, ThermalModel};
use therm3d_workload::{generate_mix, Benchmark, JobTrace, TraceConfig};

use crate::args::{Command, SimOptions, SweepFormat, USAGE};

impl SimOptions {
    fn config(&self) -> SimConfig {
        let scenario = therm3d::ScenarioConfig::paper_default()
            .with_stack_order(self.stack_order)
            .with_tsv(self.tsv)
            .with_sensor(self.sensor)
            .with_sensor_seed(therm3d_sweep::derive_sensor_seed(self.seed));
        let mut cfg = SimConfig::paper_default(self.exp).with_scenario(scenario);
        cfg.thermal = cfg.thermal.with_grid(self.grid, self.grid).with_integrator(self.integrator);
        cfg
    }

    fn trace(&self) -> JobTrace {
        match self.benchmark {
            Some(b) => TraceConfig::new(b, self.exp.num_cores(), self.seconds)
                .with_seed(self.seed)
                .generate(),
            None => generate_mix(&Benchmark::ALL, self.exp.num_cores(), self.seconds, self.seed),
        }
    }

    fn run(&self, kind: PolicyKind) -> RunResult {
        // The policy sees the same stack the engine simulates (Adapt3D's
        // thermal indices depend on which layer each core sits on).
        let stack = self.exp.stack_with_order(self.stack_order);
        let policy = kind.build_with_dpm(&stack, 0xACE1, self.dpm);
        let mut sim = Simulator::new(self.config(), policy);
        sim.run(&self.trace(), self.seconds)
    }
}

/// CSV header matching [`csv_row`] (the workspace-wide schema owned by
/// [`therm3d_sweep::report`]).
#[must_use]
pub fn csv_header() -> &'static str {
    therm3d_sweep::csv_header()
}

/// One CSV row for a run result (delegates to the sweep crate's single
/// source of truth for result serialization).
#[must_use]
pub fn csv_row(r: &RunResult, dpm: bool) -> String {
    therm3d_sweep::csv_row(r, dpm)
}

/// Observability sinks a spec-file sweep can opt into; the invariant
/// they all honor is that stdout — the report — stays byte-identical
/// whether or not any of them is active.
#[derive(Debug, Clone, Default)]
struct SweepTelemetryOpts<'a> {
    /// Throttled live progress line on stderr (`--progress`).
    progress: bool,
    /// JSONL cell-lifecycle event stream path (`--trace-out`).
    trace_out: Option<&'a str>,
    /// Metrics-snapshot JSON path (`--metrics-out`).
    metrics_out: Option<&'a str>,
}

impl SweepTelemetryOpts<'_> {
    fn any(&self) -> bool {
        self.progress || self.trace_out.is_some() || self.metrics_out.is_some()
    }
}

/// Loads, expands and executes a sweep-spec file, rendering the report
/// in the requested format. With a cache directory, results are
/// memoized by content-addressed cell key — the rendered report is
/// byte-identical whatever the hit/miss mix. With `cache_stats`, one
/// `cache:` counters line goes to *stderr* (never stdout: the CSV and
/// JSON streams must stay machine-parseable). Telemetry sinks likewise
/// write only to stderr and sidecar files.
///
/// Returns `(report, Option<stats line>)` so tests can assert on the
/// counters without capturing stderr; [`execute`] routes them.
// One flat parameter per CLI flag: grouping them into structs would
// just move the argument list into a builder at every call site.
#[allow(clippy::too_many_arguments)]
fn run_sweep_file(
    path: &str,
    threads: Option<usize>,
    format: SweepFormat,
    cache_dir: Option<&str>,
    cache_stats: bool,
    shard: Option<therm3d_sweep::ShardSpec>,
    telemetry_opts: &SweepTelemetryOpts<'_>,
    streaming: bool,
) -> Result<(String, Option<String>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut spec =
        therm3d_sweep::from_toml(&text).map_err(|e| format!("invalid sweep spec `{path}`: {e}"))?;
    if let Some(threads) = threads {
        spec = spec.with_threads(threads);
    }
    if let Some(shard) = shard {
        spec = spec.with_shard(shard);
    }
    // `--streaming` only ever turns throughput mode *on*: results are
    // bit-identical either way, so there is nothing to turn off.
    if streaming {
        spec = spec.with_streaming(true);
    }
    let mut store = match cache_dir {
        Some(dir) => {
            Some(therm3d_sweep::CacheStore::open(std::path::Path::new(dir)).map_err(String::from)?)
        }
        None => None,
    };
    let telemetry = if telemetry_opts.any() {
        let mut tel = therm3d_sweep::RunTelemetry::new();
        if let Some(out) = telemetry_opts.trace_out {
            tel = tel.with_events(
                therm3d_telemetry::EventSink::to_path(std::path::Path::new(out))
                    .map_err(|e| format!("cannot open `--trace-out {out}`: {e}"))?,
            );
        }
        if telemetry_opts.progress {
            tel = tel.with_progress(therm3d_telemetry::Progress::stderr());
        }
        // Turn on the process-wide registry so the in-engine spans
        // (LDLᵀ factorization, tick loop) land in `--metrics-out` too.
        therm3d_telemetry::global().set_enabled(true);
        Some(tel)
    } else {
        None
    };
    let report = therm3d_sweep::run_with_telemetry(&spec, store.as_mut(), telemetry.as_ref())
        .map_err(|e| format!("sweep failed: {e}"))?;
    let out = {
        // Report rendering is part of the per-run timing story.
        let _span = therm3d_telemetry::Span::enter("report.render_us");
        match format {
            SweepFormat::Table => report.render(),
            SweepFormat::Csv => report.csv(),
            SweepFormat::Json => report.json(),
        }
    };
    if let Some(out_path) = telemetry_opts.metrics_out {
        // The run-local snapshot (deterministic counters + per-cell
        // records) merged with the global one (in-engine span
        // histograms) is the full picture.
        let mut snap = telemetry.as_ref().expect("metrics_out implies telemetry").snapshot();
        snap.merge(&therm3d_telemetry::global().snapshot())
            .map_err(|e| format!("cannot merge engine metrics: {e}"))?;
        std::fs::write(out_path, snap.to_json())
            .map_err(|e| format!("cannot write `--metrics-out {out_path}`: {e}"))?;
    }
    // The counters line carries the shard id (`cache[1/3]: ...`) so N
    // shards logging to one stream stay attributable.
    let stats = match (&store, cache_stats) {
        (Some(store), true) => Some(store.summary_for(spec.shard)),
        _ => None,
    };
    Ok((out, stats))
}

/// Renders the `check` preflight report: spec validity, canonical
/// expansion count, per-axis summary, shard balance and — with a cache
/// directory — how many cells would hit the cache vs. simulate.
/// Nothing is simulated and nothing is written (the cache is only
/// probed), so preflighting a week-long campaign costs milliseconds.
fn check_spec(path: &str, cache_dir: Option<&str>) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let spec =
        therm3d_sweep::from_toml(&text).map_err(|e| format!("invalid sweep spec `{path}`: {e}"))?;
    let cells = therm3d_sweep::expand(&spec);
    let total = cells.len();

    fn axis<T>(items: &[T], label: impl Fn(&T) -> String) -> String {
        items.iter().map(label).collect::<Vec<_>>().join(", ")
    }

    let mut out = String::new();
    let _ = writeln!(out, "sweep '{}': `{path}` is valid", spec.name);
    let _ = writeln!(
        out,
        "  cells: {total} = {} experiment(s) x {} stack order(s) x {} tsv x {} sensor(s) \
         x {} integrator(s) x {} policy(ies) x {} dpm x {} seed(s)",
        spec.experiments.len(),
        spec.stack_orders.len(),
        spec.tsv.len(),
        spec.sensors.len(),
        spec.integrators.len(),
        spec.policies.len(),
        spec.dpm.len(),
        spec.seeds.len(),
    );
    let _ = writeln!(out, "  experiments:  {}", axis(&spec.experiments, |e| e.to_string()));
    let _ = writeln!(out, "  stack orders: {}", axis(&spec.stack_orders, |o| o.to_string()));
    let _ = writeln!(out, "  tsv variants: {}", axis(&spec.tsv, |v| v.to_string()));
    let _ = writeln!(out, "  sensors:      {}", axis(&spec.sensors, |s| s.to_string()));
    let _ = writeln!(out, "  integrators:  {}", axis(&spec.integrators, |i| i.to_string()));
    let _ = writeln!(out, "  policies:     {}", axis(&spec.policies, |p| p.label().to_owned()));
    let _ = writeln!(
        out,
        "  dpm:          {}",
        axis(&spec.dpm, |d| if *d { "on".to_owned() } else { "off".to_owned() })
    );
    let _ = writeln!(out, "  seeds:        {}", axis(&spec.seeds, u64::to_string));
    let _ = writeln!(
        out,
        "  benchmarks:   {} (rotation within each cell, not an axis)",
        axis(&spec.benchmarks, |b| b.name().to_owned())
    );
    let _ = writeln!(
        out,
        "  sim: {} s per cell on a {}x{} grid, policy seed {:#06x}",
        spec.sim_seconds, spec.grid.0, spec.grid.1, spec.policy_seed
    );
    // Memory model: the materialized path holds one JobTrace per
    // distinct (core-count, trace-seed) pair for the whole run, so its
    // footprint grows linearly with sim_seconds; streaming replaces
    // that with O(1) generator state per in-flight cell.
    if spec.streaming {
        let _ = writeln!(out, "  memory model: streaming (trace memory is O(1) in sim_seconds)");
    } else {
        let job_bytes = std::mem::size_of::<therm3d_workload::Job>() as f64;
        let core_counts: std::collections::BTreeSet<usize> =
            spec.experiments.iter().map(|e| e.num_cores()).collect();
        let traces = core_counts.len() * spec.seeds.len();
        let mib = core_counts
            .iter()
            .map(|&cores| spec.estimated_trace_jobs(cores) * job_bytes)
            .sum::<f64>()
            * spec.seeds.len() as f64
            / (1024.0 * 1024.0);
        let _ = writeln!(
            out,
            "  memory model: materialized, ~{mib:.1} MiB of jobs across {traces} trace(s)"
        );
        // A week-long campaign would have blown the old memory model;
        // flag it before the user finds out the hard way.
        const WARN_MIB: f64 = 256.0;
        if mib > WARN_MIB {
            let _ = writeln!(
                out,
                "  warning: materializing ~{mib:.0} MiB of trace jobs; set `streaming = true` \
                 (or pass --streaming to `sweep`) for O(1) trace memory"
            );
        }
    }
    // Cells that agree on the RC network and integrator share one
    // symbolic analysis and one factor set at run time, so the distinct
    // count is the campaign's real solver-setup cost.
    let models = cells
        .iter()
        .map(|cell| therm3d_sweep::model_fingerprint(&spec, cell))
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    let _ = writeln!(
        out,
        "  thermal models: {models} distinct across {total} cell(s) \
         (each analyzed and factored once per run)"
    );
    // What `therm3d serve` would lease out, so a campaign can be sized
    // before any worker connects.
    let lease = therm3d_coord::default_lease_cells(total);
    let _ = writeln!(
        out,
        "  coordinator: {total} cells, lease size {lease} (override with `serve --lease N`)"
    );

    if spec.shard.is_full() {
        let _ = writeln!(out, "  shard: full matrix (split with --shard K/N or `shard-plan`)");
    } else {
        // Round-robin balance: every shard of the split, this one marked.
        let count = spec.shard.count;
        let balance = (0..count)
            .map(|k| {
                let cells = total / count + usize::from(k < total % count);
                if k == spec.shard.index {
                    format!("[{k}:{cells}]")
                } else {
                    format!("{k}:{cells}")
                }
            })
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "  shard {}: {} of {total} cells (balance {balance})",
            spec.shard,
            spec.shard.cell_count(total)
        );
    }

    if let Some(dir) = cache_dir {
        // Probe the store with the same content-addressed keys a run
        // would use; lookups only touch in-memory stats, never the disk.
        let mut store =
            therm3d_sweep::CacheStore::open(std::path::Path::new(dir)).map_err(String::from)?;
        let run_cells = therm3d_sweep::expand_shard(&spec);
        let warm = run_cells
            .iter()
            .filter(|cell| store.lookup(&therm3d_sweep::cell_key(&spec, cell)).is_some())
            .count();
        let cold = run_cells.len() - warm;
        let pct =
            if run_cells.is_empty() { 100.0 } else { 100.0 * warm as f64 / run_cells.len() as f64 };
        let _ = writeln!(
            out,
            "  cache `{dir}`: {warm} warm, {cold} cold of {} cell(s) ({pct:.1}% warm, \
             {} entries in store)",
            run_cells.len(),
            store.len()
        );
    }
    Ok(out)
}

/// Renders the `shard-plan` output: one ready-to-run `therm3d sweep`
/// line per shard plus `#`-commented context and merge hints, so the
/// whole block can be pasted into a shell (or an sbatch template)
/// as-is. With `serve`, prints the serve/work lines of a leased
/// campaign instead of the static `--shard K/N` split.
fn shard_plan(
    path: &str,
    count: usize,
    cache_dir: Option<&str>,
    threads: Option<usize>,
    serve: bool,
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let spec =
        therm3d_sweep::from_toml(&text).map_err(|e| format!("invalid sweep spec `{path}`: {e}"))?;
    let total = therm3d_sweep::expand(&spec).len();
    if count > total {
        return Err(format!(
            "`--count {count}` exceeds the matrix: `{path}` expands to {total} cell{}",
            if total == 1 { "" } else { "s" }
        ));
    }
    let mut out = String::new();
    if serve {
        // One coordinator, N workers, one shared address. Leases do the
        // splitting, so there is no per-worker shard index and the
        // merged CSV needs no `therm3d merge` step.
        const ADDR: &str = "127.0.0.1:7103";
        let lease = therm3d_coord::default_lease_cells(total);
        let _ = writeln!(
            out,
            "# campaign '{}': {total} cells over {count} worker{} (leased, lease size {lease}; \
             any assignment is byte-identical)",
            spec.name,
            if count == 1 { "" } else { "s" }
        );
        let cache_arg = cache_dir.map(|d| format!(" --cache-dir {d}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "therm3d serve {path} --listen {ADDR}{cache_arg} --format csv \
             > {}.csv  # coordinator, {total} cell{}",
            spec.name,
            if total == 1 { "" } else { "s" }
        );
        let threads_arg = threads.map(|n| format!(" --threads {n}")).unwrap_or_default();
        for k in 1..=count {
            let _ = writeln!(out, "therm3d work --connect {ADDR}{threads_arg}  # worker {k}");
        }
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "# sweep '{}': {total} cells over {count} shard{} (round-robin, disjoint)",
        spec.name,
        if count == 1 { "" } else { "s" }
    );
    let threads_arg = threads.map(|n| format!(" --threads {n}")).unwrap_or_default();
    for k in 0..count {
        // Round-robin over the canonical order: shard k takes cells
        // k, k+count, k+2*count, ...
        let cells = total / count + usize::from(k < total % count);
        let cache_arg = cache_dir.map(|d| format!(" --cache-dir {d}-{k}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "therm3d sweep {path} --shard {k}/{count}{threads_arg}{cache_arg} --format csv \
             > {}-shard-{k}.csv  # {cells} cell{}",
            spec.name,
            if cells == 1 { "" } else { "s" }
        );
    }
    let shards: Vec<String> = (0..count).map(|k| format!("{}-shard-{k}.csv", spec.name)).collect();
    let _ = writeln!(out, "# merge: therm3d merge {}.csv {}", spec.name, shards.join(" "));
    if let Some(dir) = cache_dir {
        let dirs: Vec<String> = (0..count).map(|k| format!("{dir}-{k}")).collect();
        let _ = writeln!(
            out,
            "# caches: therm3d cache merge --cache-dir {dir} {} && \
             therm3d cache compact --cache-dir {dir}",
            dirs.join(" ")
        );
    }
    Ok(out)
}

/// Merges shard CSV reports into the canonical CSV and writes it to
/// `out` — byte-identical to what one unsharded run would print.
fn merge_reports(out: &str, inputs: &[String]) -> Result<String, String> {
    let texts: Vec<(String, String)> = inputs
        .iter()
        .map(|path| {
            std::fs::read_to_string(path)
                .map(|text| (path.clone(), text))
                .map_err(|e| format!("cannot read `{path}`: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let borrowed: Vec<(&str, &str)> =
        texts.iter().map(|(name, text)| (name.as_str(), text.as_str())).collect();
    let merged = therm3d_sweep::merge_csv(&borrowed)?;
    let cells = merged.lines().count() - 1;
    std::fs::write(out, &merged).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    Ok(format!("merged {} shard report{} ({cells} cells) -> {out}\n", inputs.len(), {
        if inputs.len() == 1 {
            ""
        } else {
            "s"
        }
    }))
}

fn steady_report(exp: Experiment, grid: usize) -> String {
    let stack = exp.stack();
    let mut model = ThermalModel::new(&stack, ThermalConfig::paper_default().with_grid(grid, grid));
    let power = PowerModel::new(&stack, PowerParams::paper_default(), VfTable::paper_default());
    let busy = vec![CorePowerInput::busy(); stack.num_cores()];
    let mut temps = vec![45.0; stack.num_blocks()];
    for _ in 0..4 {
        let p = power.block_powers(&busy, &temps);
        temps = model.initialize_steady_state(&p);
    }
    let mut out = String::new();
    let _ = writeln!(out, "{exp}: all-cores-busy steady state ({grid}x{grid} grid)");
    for layer in 0..stack.layer_count() {
        let blocks: Vec<(usize, &therm3d_floorplan::BlockSite)> =
            stack.sites().iter().enumerate().filter(|(_, s)| s.layer == layer).collect();
        let peak = blocks.iter().map(|(i, _)| temps[*i]).fold(f64::NEG_INFINITY, f64::max);
        let _ = writeln!(out, "  layer {layer} ({}): peak {peak:.1} °C", stack.layer_name(layer));
        for (i, site) in blocks {
            let _ = writeln!(
                out,
                "    {:<14} {:<9} {:6.1} °C",
                site.global_name,
                site.kind.to_string(),
                temps[i]
            );
        }
    }
    let _ = writeln!(
        out,
        "  spreader {:.1} °C, sink {:.1} °C",
        model.spreader_temperature_c(),
        model.sink_temperature_c()
    );
    out
}

/// Executes a parsed command and returns its report.
///
/// # Errors
///
/// Returns a message (without an `error:` prefix) when a sweep-spec
/// file cannot be read, parsed or validated; the other subcommands are
/// infallible once parsed.
pub fn execute(cmd: &Command) -> Result<String, String> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Run { sim, policy, csv } => {
            let r = sim.run(*policy);
            if *csv {
                let _ = writeln!(out, "{}", csv_header());
                let _ = writeln!(out, "{}", csv_row(&r, sim.dpm));
            } else {
                let _ = writeln!(out, "{r}");
                let _ = writeln!(out, "{}", RunResult::table_header());
                let _ = writeln!(out, "{}", r.table_row());
            }
        }
        Command::Sweep { sim, csv } => {
            if *csv {
                let _ = writeln!(out, "{}", csv_header());
            } else {
                let _ = writeln!(
                    out,
                    "policy sweep on {}{}, {:.0} s, grid {}x{}",
                    sim.exp,
                    if sim.dpm { " +DPM" } else { "" },
                    sim.seconds,
                    sim.grid,
                    sim.grid
                );
                let _ = writeln!(out, "{}", RunResult::table_header());
            }
            let mut baseline: Option<RunResult> = None;
            for kind in PolicyKind::ALL {
                let r = sim.run(kind);
                if *csv {
                    let _ = writeln!(out, "{}", csv_row(&r, sim.dpm));
                } else {
                    let norm = baseline.as_ref().map_or(1.0, |b| r.normalized_performance_vs(b));
                    let _ = writeln!(out, "{}  perf={norm:.3}", r.table_row());
                }
                if baseline.is_none() {
                    baseline = Some(r);
                }
            }
        }
        Command::SweepFile {
            path,
            threads,
            format,
            cache_dir,
            cache_stats,
            shard,
            progress,
            trace_out,
            metrics_out,
            streaming,
        } => {
            let telemetry_opts = SweepTelemetryOpts {
                progress: *progress,
                trace_out: trace_out.as_deref(),
                metrics_out: metrics_out.as_deref(),
            };
            let (report, stats) = run_sweep_file(
                path,
                *threads,
                *format,
                cache_dir.as_deref(),
                *cache_stats,
                *shard,
                &telemetry_opts,
                *streaming,
            )?;
            out.push_str(&report);
            if let Some(stats) = stats {
                eprintln!("{stats}");
            }
        }
        Command::Check { path, cache_dir } => {
            out.push_str(&check_spec(path, cache_dir.as_deref())?);
        }
        Command::ShardPlan { path, count, cache_dir, threads, serve } => {
            out.push_str(&shard_plan(path, *count, cache_dir.as_deref(), *threads, *serve)?);
        }
        Command::Serve {
            path,
            listen,
            lease,
            lease_timeout,
            cache_dir,
            format,
            progress,
            port_file,
        } => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let spec = therm3d_sweep::from_toml(&text)
                .map_err(|e| format!("invalid sweep spec `{path}`: {e}"))?;
            let opts = therm3d_coord::ServeOptions {
                lease_cells: *lease,
                // Sub-millisecond timeouts round up: 0 means "default".
                lease_timeout_ms: lease_timeout
                    .map_or(0, |secs| ((secs * 1000.0).round() as u64).max(1)),
            };
            let server = therm3d_coord::Server::bind(&spec, listen, &opts)?;
            if let Some(file) = port_file {
                // Written only once the socket is bound, so scripts can
                // poll this file to learn an OS-assigned (port 0) address.
                std::fs::write(file, format!("{}\n", server.local_addr()))
                    .map_err(|e| format!("cannot write `--port-file {file}`: {e}"))?;
            }
            let mut store = match cache_dir {
                Some(dir) => Some(
                    therm3d_sweep::CacheStore::open(std::path::Path::new(dir))
                        .map_err(String::from)?,
                ),
                None => None,
            };
            let reporter = progress.then(therm3d_telemetry::Progress::stderr);
            let report = server.run(store.as_mut(), reporter)?;
            out.push_str(&match format {
                SweepFormat::Table => report.render(),
                SweepFormat::Csv => report.csv(),
                SweepFormat::Json => report.json(),
            });
        }
        Command::Work { connect, threads, cache_dir, throttle_ms } => {
            let opts = therm3d_coord::WorkOptions {
                threads: *threads,
                cache_dir: cache_dir.as_ref().map(std::path::PathBuf::from),
                throttle_ms: *throttle_ms,
            };
            let summary = therm3d_coord::work(connect, &opts)?;
            let _ = writeln!(
                out,
                "work: {} cell(s) over {} lease(s) from {connect}",
                summary.cells, summary.leases
            );
        }
        Command::Merge { out: merged_path, inputs } => {
            out.push_str(&merge_reports(merged_path, inputs)?);
        }
        Command::CacheCompact { dir } => {
            let mut store =
                therm3d_sweep::CacheStore::open(std::path::Path::new(dir)).map_err(String::from)?;
            let stats = store.compact().map_err(String::from)?;
            let _ = writeln!(out, "cache compact: {stats} ({})", store.path().display());
        }
        Command::CacheMerge { dir, sources } => {
            // Sources are read-only and must actually hold a store: a
            // mistyped directory must not be silently created/treated
            // as empty (that would drop a shard's entries with exit 0).
            for src in sources {
                let store_file = std::path::Path::new(src).join(therm3d_sweep::cache::STORE_FILE);
                if !store_file.is_file() {
                    return Err(format!(
                        "cache merge source `{src}` has no {} (wrong path?)",
                        therm3d_sweep::cache::STORE_FILE
                    ));
                }
            }
            let mut dest =
                therm3d_sweep::CacheStore::open(std::path::Path::new(dir)).map_err(String::from)?;
            let mut total = therm3d_sweep::MergeStats::default();
            for src in sources {
                let src_store = therm3d_sweep::CacheStore::open(std::path::Path::new(src))
                    .map_err(String::from)?;
                let stats = dest.merge_from(&src_store).map_err(String::from)?;
                let _ = writeln!(out, "cache merge: {stats} from {src}");
                total += stats;
            }
            let _ = writeln!(
                out,
                "cache merge: {total} total, {} entries ({})",
                dest.len(),
                dest.path().display()
            );
        }
        Command::Steady { exp, grid } => out.push_str(&steady_report(*exp, *grid)),
        Command::Trace { benchmark, cores, seconds, seed, csv } => {
            let trace = TraceConfig::new(*benchmark, *cores, *seconds).with_seed(*seed).generate();
            if *csv {
                let _ = writeln!(out, "id,arrival_s,work_s,memory_intensity,thread");
                for j in trace.jobs() {
                    let _ = writeln!(
                        out,
                        "{},{:.3},{:.4},{:.3},{}",
                        j.id, j.arrival_s, j.work_s, j.memory_intensity, j.thread_id
                    );
                }
            } else {
                let _ = writeln!(
                    out,
                    "{benchmark}: {} jobs over {seconds:.0} s, {:.1} CPU-seconds, offered {:.1} % of {cores} cores",
                    trace.len(),
                    trace.total_work_s(),
                    100.0 * trace.offered_utilization(*cores, *seconds)
                );
            }
        }
        Command::Reliability { sim, policy } => {
            let stack = sim.exp.stack();
            let p = policy.build_with_dpm(&stack, 0xACE1, sim.dpm);
            let mut simulator = Simulator::new(sim.config(), p);
            let n = stack.num_cores();
            let mut series: Vec<Vec<f64>> = vec![Vec::new(); n];
            let trace = sim.trace();
            simulator.run_with_observer(&trace, sim.seconds, |s| {
                for (acc, &t) in series.iter_mut().zip(s.core_temps_c) {
                    acc.push(t);
                }
            });
            let _ = writeln!(
                out,
                "per-core reliability, {} on {}{} ({:.0} s):",
                policy.label(),
                sim.exp,
                if sim.dpm { " +DPM" } else { "" },
                sim.seconds
            );
            let _ = writeln!(out, "{}", ReliabilityReport::table_header());
            for (core, s) in series.iter().enumerate() {
                let r = ReliabilityReport::from_series(s, 0.1);
                let _ = writeln!(out, "{}", r.table_row(&format!("core {core}")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn help_prints_usage() {
        let out = execute(&Command::Help).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("therm3d run"));
    }

    #[test]
    fn run_csv_has_header_and_row() {
        let cmd = parse(argv("run --exp exp1 --benchmark gzip -t 5 --grid 4 --csv")).unwrap();
        let out = execute(&cmd).unwrap();
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some(csv_header()));
        let row = lines.next().expect("one data row");
        assert!(row.starts_with("Adapt3D,EXP-1,false,"), "{row}");
        assert_eq!(row.split(',').count(), csv_header().split(',').count());
    }

    #[test]
    fn steady_lists_every_layer() {
        let cmd = parse(argv("steady --exp exp4 --grid 4")).unwrap();
        let out = execute(&cmd).unwrap();
        for layer in 0..4 {
            assert!(out.contains(&format!("layer {layer}")), "{out}");
        }
        assert!(out.contains("sink"));
    }

    #[test]
    fn trace_csv_row_count_matches_summary() {
        let csv =
            execute(&parse(argv("trace --benchmark gcc --cores 4 -t 8 --csv")).unwrap()).unwrap();
        let plain = execute(&parse(argv("trace --benchmark gcc --cores 4 -t 8")).unwrap()).unwrap();
        let rows = csv.lines().count() - 1; // minus header
        let reported: usize = plain
            .split(':')
            .nth(1)
            .and_then(|s| s.trim().split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("summary starts with the job count");
        assert_eq!(rows, reported);
    }

    #[test]
    fn plain_sweep_honors_csv() {
        let cmd = parse(argv("sweep --exp exp1 --benchmark gzip -t 3 --grid 4 --csv")).unwrap();
        let out = execute(&cmd).unwrap();
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some(csv_header()));
        assert_eq!(lines.count(), PolicyKind::ALL.len());
    }

    #[test]
    fn check_preflights_without_simulating() {
        let dir = std::env::temp_dir().join("therm3d_cli_check_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.toml");
        std::fs::write(
            &spec_path,
            "name = \"check-test\"\n\
             experiments = [\"exp1\"]\n\
             policies = [\"Default\", \"Adapt3D\"]\n\
             dpm = [false, true]\n\
             benchmarks = [\"gzip\"]\n\
             sim_seconds = 2.0\n\
             grid = 4\n\
             threads = 1\n",
        )
        .unwrap();
        let spec_path = spec_path.to_str().unwrap().to_owned();
        let cache = dir.join("cache").to_str().unwrap().to_owned();

        // Preflight against an empty cache: everything is cold, and the
        // probe must not create store contents that later count as warm.
        let out = check_spec(&spec_path, Some(&cache)).unwrap();
        assert!(out.contains("`check-test`") || out.contains("'check-test'"), "{out}");
        assert!(out.contains("cells: 4 = 1 experiment(s)"), "{out}");
        assert!(out.contains("policies:     Default, Adapt3D"), "{out}");
        assert!(out.contains("dpm:          off, on"), "{out}");
        assert!(out.contains("full matrix"), "{out}");
        // 2 policies x 2 dpm only differ in control, never in the RC
        // network: one thermal model serves all four cells.
        assert!(out.contains("thermal models: 1 distinct across 4 cell(s)"), "{out}");
        assert!(out.contains("0 warm, 4 cold"), "{out}");

        // Simulate the campaign into the cache, then the same preflight
        // reports everything warm.
        execute(&Command::SweepFile {
            path: spec_path.clone(),
            threads: None,
            format: SweepFormat::Csv,
            cache_dir: Some(cache.clone()),
            cache_stats: false,
            shard: None,
            progress: false,
            trace_out: None,
            metrics_out: None,
            streaming: false,
        })
        .unwrap();
        let out = check_spec(&spec_path, Some(&cache)).unwrap();
        assert!(out.contains("4 warm, 0 cold"), "{out}");
        assert!(out.contains("100.0% warm"), "{out}");

        // A sharded spec reports its share and the full balance.
        let sharded = dir.join("sharded.toml");
        std::fs::write(
            &sharded,
            "name = \"check-test\"\n\
             experiments = [\"exp1\"]\n\
             policies = [\"Default\", \"Adapt3D\"]\n\
             dpm = [false, true]\n\
             benchmarks = [\"gzip\"]\n\
             sim_seconds = 2.0\n\
             grid = 4\n\
             shard = \"1/3\"\n",
        )
        .unwrap();
        let out = check_spec(sharded.to_str().unwrap(), Some(&cache)).unwrap();
        assert!(out.contains("shard 1/3: 1 of 4 cells"), "{out}");
        assert!(out.contains("balance 0:2 [1:1] 2:1"), "{out}");
        assert!(out.contains("1 warm, 0 cold"), "{out}");

        // Errors are reported, not panicked.
        assert!(check_spec("/nonexistent/spec.toml", None).unwrap_err().contains("cannot read"));
        let bad = dir.join("bad.toml");
        std::fs::write(&bad, "name = \"x\"\nsim_seconds = -1.0\n").unwrap();
        assert!(check_spec(bad.to_str().unwrap(), None).unwrap_err().contains("invalid"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_reports_the_memory_model_and_warns_on_huge_traces() {
        let dir = std::env::temp_dir().join("therm3d_cli_check_memory_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let base = "experiments = [\"exp1\"]\n\
             policies = [\"Default\"]\n\
             benchmarks = [\"gzip\"]\n\
             grid = 4\n";

        // A short materialized campaign: model stated, no warning.
        let short = dir.join("short.toml");
        std::fs::write(&short, format!("name = \"short\"\n{base}sim_seconds = 2.0\n")).unwrap();
        let out = check_spec(short.to_str().unwrap(), None).unwrap();
        assert!(out.contains("memory model: materialized"), "{out}");
        assert!(!out.contains("warning:"), "{out}");

        // A week-long multi-seed materialized campaign would blow the
        // old memory model; the preflight says so and names the fix.
        let axes = "seeds = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]\nsim_seconds = 604800.0\n";
        let week = dir.join("week.toml");
        std::fs::write(&week, format!("name = \"week\"\n{base}{axes}")).unwrap();
        let out = check_spec(week.to_str().unwrap(), None).unwrap();
        assert!(out.contains("warning:"), "{out}");
        assert!(out.contains("streaming = true"), "{out}");

        // The same campaign with streaming on is O(1) — no warning.
        let streamed = dir.join("streamed.toml");
        std::fs::write(&streamed, format!("name = \"week\"\n{base}{axes}streaming = true\n"))
            .unwrap();
        let out = check_spec(streamed.to_str().unwrap(), None).unwrap();
        assert!(out.contains("memory model: streaming"), "{out}");
        assert!(!out.contains("warning:"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_file_streaming_flag_is_byte_identical() {
        let spec_path = std::env::temp_dir().join("therm3d_cli_streaming_sweep.toml");
        std::fs::write(
            &spec_path,
            "name = \"cli-streaming\"\n\
             experiments = [\"exp1\"]\n\
             policies = [\"Default\", \"Adapt3D\"]\n\
             benchmarks = [\"gzip\"]\n\
             sim_seconds = 3.0\n\
             grid = 4\n",
        )
        .unwrap();
        let run = |streaming| {
            run_sweep_file(
                spec_path.to_str().unwrap(),
                Some(2),
                SweepFormat::Csv,
                None,
                false,
                None,
                &SweepTelemetryOpts::default(),
                streaming,
            )
            .unwrap()
            .0
        };
        assert_eq!(run(true), run(false), "streaming is an execution detail");
    }

    #[test]
    fn sweep_file_runs_a_tiny_campaign_in_every_format() {
        let path = std::env::temp_dir().join("therm3d_cli_sweep_test.toml");
        std::fs::write(
            &path,
            "name = \"cli-test\"\n\
             experiments = [\"exp1\"]\n\
             policies = [\"Default\", \"Adapt3D\"]\n\
             dpm = [false, true]\n\
             benchmarks = [\"gzip\"]\n\
             sim_seconds = 3.0\n\
             grid = 4\n\
             threads = 2\n",
        )
        .unwrap();
        let path = path.to_str().unwrap().to_owned();

        let table = execute(&Command::SweepFile {
            path: path.clone(),
            threads: None,
            format: SweepFormat::Table,
            cache_dir: None,
            cache_stats: false,
            shard: None,
            progress: false,
            trace_out: None,
            metrics_out: None,
            streaming: false,
        })
        .unwrap();
        assert!(table.contains("sweep 'cli-test': 4 cells"), "{table}");
        assert!(table.contains("== EXP-1 +DPM"), "{table}");

        let csv = execute(&Command::SweepFile {
            path: path.clone(),
            threads: Some(1),
            format: SweepFormat::Csv,
            cache_dir: None,
            cache_stats: false,
            shard: None,
            progress: false,
            trace_out: None,
            metrics_out: None,
            streaming: false,
        })
        .unwrap();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some(
                format!(
                    "cell,trace_seed,integrator,stack_order,tsv,sensor,cell_key,{}",
                    csv_header()
                )
                .as_str()
            )
        );
        assert_eq!(lines.count(), 4);

        let json = execute(&Command::SweepFile {
            path,
            threads: Some(2),
            format: SweepFormat::Json,
            cache_dir: None,
            cache_stats: false,
            shard: None,
            progress: false,
            trace_out: None,
            metrics_out: None,
            streaming: false,
        })
        .unwrap();
        assert!(json.contains("\"name\": \"cli-test\""), "{json}");
        assert_eq!(json.matches("\"cell\":").count(), 4);
    }

    #[test]
    fn sweep_file_cached_rerun_simulates_nothing_and_matches() {
        let spec_path = std::env::temp_dir().join("therm3d_cli_cached_sweep.toml");
        std::fs::write(
            &spec_path,
            "name = \"cli-cache\"\n\
             experiments = [\"exp1\"]\n\
             policies = [\"Default\", \"Adapt3D\"]\n\
             benchmarks = [\"gzip\"]\n\
             sim_seconds = 3.0\n\
             grid = 4\n",
        )
        .unwrap();
        let cache_dir =
            std::env::temp_dir().join(format!("therm3d_cli_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let cached = || {
            run_sweep_file(
                spec_path.to_str().unwrap(),
                Some(2),
                SweepFormat::Csv,
                Some(cache_dir.to_str().unwrap()),
                true,
                None,
                &SweepTelemetryOpts::default(),
                false,
            )
            .unwrap()
        };

        let (cold, cold_stats) = cached();
        assert!(cold_stats.unwrap().starts_with("cache: 0 hits, 2 misses, 2 inserted"));
        let (warm, warm_stats) = cached();
        assert!(warm_stats.unwrap().starts_with("cache: 2 hits, 0 misses, 0 inserted"));

        // The stdout report never carries the stats line and is
        // byte-identical across cold, warm and uncached runs.
        assert_eq!(cold, warm);
        assert!(!cold.contains("cache:"), "{cold}");
        let uncached = execute(&Command::SweepFile {
            path: spec_path.to_str().unwrap().into(),
            threads: Some(1),
            format: SweepFormat::Csv,
            cache_dir: None,
            cache_stats: false,
            shard: None,
            progress: false,
            trace_out: None,
            metrics_out: None,
            streaming: false,
        })
        .unwrap();
        assert_eq!(uncached, warm);
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    #[test]
    fn sweep_file_with_scenario_axes_runs_and_caches() {
        let spec_path = std::env::temp_dir().join("therm3d_cli_scenario_sweep.toml");
        std::fs::write(
            &spec_path,
            "name = \"cli-scenario\"\n\
             experiments = [\"exp1\"]\n\
             stack_orders = [\"cores-far\", \"cores-near\"]\n\
             tsv = [\"paper\", \"dense-1pct\"]\n\
             sensors = [\"ideal\", \"noisy-1c\"]\n\
             policies = [\"Default\"]\n\
             benchmarks = [\"gzip\"]\n\
             sim_seconds = 2.0\n\
             grid = 4\n",
        )
        .unwrap();
        let cache_dir =
            std::env::temp_dir().join(format!("therm3d_cli_scenario_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let run = || {
            run_sweep_file(
                spec_path.to_str().unwrap(),
                Some(2),
                SweepFormat::Csv,
                Some(cache_dir.to_str().unwrap()),
                true,
                None,
                &SweepTelemetryOpts::default(),
                false,
            )
            .unwrap()
        };
        let (cold, cold_stats) = run();
        assert!(cold_stats.unwrap().starts_with("cache: 0 hits, 8 misses, 8 inserted"));
        assert_eq!(cold.lines().count(), 1 + 8, "2x2x2 scenario cells");
        assert!(cold.contains("cores-near") && cold.contains("dense-1pct"), "{cold}");
        // Warm rerun simulates nothing — noisy sensor cells included.
        let (warm, warm_stats) = run();
        assert!(warm_stats.unwrap().starts_with("cache: 8 hits, 0 misses, 0 inserted"));
        assert_eq!(cold, warm);
        // `cache compact` over the fresh store keeps all 8 entries.
        let out =
            execute(&Command::CacheCompact { dir: cache_dir.to_str().unwrap().into() }).unwrap();
        assert!(
            out.starts_with("cache compact: kept 8, dropped 0 shadowed, 0 stale-salt, 0 corrupt"),
            "{out}"
        );
        let (after, after_stats) = run();
        assert!(after_stats.unwrap().starts_with("cache: 8 hits, 0 misses"), "still warm");
        assert_eq!(after, cold);
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    #[test]
    fn sharded_sweep_merge_is_byte_identical_and_merged_cache_serves_warm() {
        use therm3d_sweep::ShardSpec;
        let base = std::env::temp_dir().join(format!("therm3d_cli_shard_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let spec_path = base.join("spec.toml");
        std::fs::write(
            &spec_path,
            "name = \"cli-shard\"\n\
             experiments = [\"exp1\"]\n\
             policies = [\"Default\", \"Adapt3D\"]\n\
             dpm = [false, true]\n\
             benchmarks = [\"gzip\"]\n\
             sim_seconds = 3.0\n\
             grid = 4\n",
        )
        .unwrap();
        let p = |path: &std::path::Path| path.to_str().unwrap().to_owned();

        let (full, _) = run_sweep_file(
            &p(&spec_path),
            Some(2),
            SweepFormat::Csv,
            None,
            false,
            None,
            &SweepTelemetryOpts::default(),
            false,
        )
        .unwrap();

        // Run the campaign as 3 shards, each with its own cache dir and
        // CSV; the stats line is tagged with the shard id.
        let mut shard_paths = Vec::new();
        for k in 0..3 {
            let shard = ShardSpec { index: k, count: 3 };
            let cache = base.join(format!("cache-{k}"));
            let (csv, stats) = run_sweep_file(
                &p(&spec_path),
                Some(1),
                SweepFormat::Csv,
                Some(&p(&cache)),
                true,
                Some(shard),
                &SweepTelemetryOpts::default(),
                false,
            )
            .unwrap();
            assert!(stats.unwrap().starts_with(&format!("cache[{k}/3]: 0 hits")), "shard {k}");
            let out = base.join(format!("shard-{k}.csv"));
            std::fs::write(&out, &csv).unwrap();
            shard_paths.push(p(&out));
        }

        // `therm3d merge` reassembles the canonical CSV byte-identically
        // (shard order must not matter).
        shard_paths.reverse();
        let merged_path = base.join("merged.csv");
        let note =
            execute(&Command::Merge { out: p(&merged_path), inputs: shard_paths.clone() }).unwrap();
        assert!(note.starts_with("merged 3 shard reports (4 cells)"), "{note}");
        assert_eq!(std::fs::read_to_string(&merged_path).unwrap(), full);

        // `therm3d cache merge` unions the shard stores; a warm full run
        // over the merged store simulates nothing.
        let merged_cache = base.join("cache-all");
        let out = execute(&Command::CacheMerge {
            dir: p(&merged_cache),
            sources: (0..3).map(|k| p(&base.join(format!("cache-{k}")))).collect(),
        })
        .unwrap();
        assert!(out.contains("appended 4"), "{out}");
        let (warm, stats) = run_sweep_file(
            &p(&spec_path),
            Some(2),
            SweepFormat::Csv,
            Some(&p(&merged_cache)),
            true,
            None,
            &SweepTelemetryOpts::default(),
            false,
        )
        .unwrap();
        assert!(stats.unwrap().starts_with("cache: 4 hits, 0 misses, 0 inserted"), "fully warm");
        assert_eq!(warm, full);

        // A mistyped source is an error (and is not created on disk) —
        // a silent empty merge would drop a shard's entries with exit 0.
        let typo = base.join("cache-typo");
        let err = execute(&Command::CacheMerge { dir: p(&merged_cache), sources: vec![p(&typo)] })
            .unwrap_err();
        assert!(err.contains("cache-typo") && err.contains("results.tsv"), "{err}");
        assert!(!typo.exists(), "rejected sources must stay untouched");

        // A dropped shard is a named error, not a silently short CSV.
        let err =
            execute(&Command::Merge { out: p(&merged_path), inputs: shard_paths[..2].to_vec() })
                .unwrap_err();
        assert!(err.contains("missing cell"), "{err}");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn sweep_file_telemetry_sidecars_leave_stdout_untouched() {
        let base =
            std::env::temp_dir().join(format!("therm3d_cli_telemetry_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let spec_path = base.join("spec.toml");
        std::fs::write(
            &spec_path,
            "name = \"cli-telemetry\"\n\
             experiments = [\"exp1\"]\n\
             policies = [\"Default\", \"Adapt3D\"]\n\
             dpm = [false, true]\n\
             benchmarks = [\"gzip\"]\n\
             sim_seconds = 2.0\n\
             grid = 4\n\
             threads = 2\n",
        )
        .unwrap();
        let spec = spec_path.to_str().unwrap();

        let (plain, _) = run_sweep_file(
            spec,
            None,
            SweepFormat::Csv,
            None,
            false,
            None,
            &SweepTelemetryOpts::default(),
            false,
        )
        .unwrap();

        let events_path = base.join("events.jsonl");
        let metrics_path = base.join("metrics.json");
        let opts = SweepTelemetryOpts {
            progress: false, // stderr redraws are covered by the telemetry crate's own tests
            trace_out: Some(events_path.to_str().unwrap()),
            metrics_out: Some(metrics_path.to_str().unwrap()),
        };
        let (telemetered, _) =
            run_sweep_file(spec, None, SweepFormat::Csv, None, false, None, &opts, false).unwrap();
        assert_eq!(plain, telemetered, "sidecar sinks must not touch stdout");

        // The event stream covers all 4 cells, two events each.
        let events = std::fs::read_to_string(&events_path).unwrap();
        let docs: Vec<therm3d_telemetry::Json> =
            events.lines().map(|l| therm3d_telemetry::Json::parse(l).unwrap()).collect();
        assert_eq!(docs.len(), 8, "{events}");
        let finishes =
            docs.iter().filter(|d| d.get("ev").unwrap().as_str() == Some("cell_finish")).count();
        assert_eq!(finishes, 4);

        // The metrics snapshot parses, covers every cell and carries
        // the per-phase and solver counters the flags promise.
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        let snap = therm3d_telemetry::MetricsSnapshot::from_json(&metrics).unwrap();
        assert_eq!(snap.counters["sweep.cells_total"], 4);
        assert_eq!(snap.cells.len(), 4);
        for cell in &snap.cells {
            assert!(cell.phases.contains_key("setup") && cell.phases.contains_key("simulate"));
            assert!(cell.counters["factor_numeric"] >= 1);
        }
        assert!(snap.histograms.contains_key("cell.wall_us"), "{metrics}");
        // The global registry's in-engine spans were merged in.
        assert!(snap.histograms.contains_key("thermal.factor_numeric_us"), "{metrics}");
        assert!(snap.histograms.contains_key("engine.tick_us"), "{metrics}");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn shard_plan_prints_runnable_lines_and_merge_hints() {
        let spec_path = std::env::temp_dir().join("therm3d_cli_shard_plan.toml");
        std::fs::write(
            &spec_path,
            "name = \"plan\"\n\
             experiments = [\"exp1\"]\n\
             policies = [\"Default\", \"Adapt3D\"]\n\
             dpm = [false, true]\n\
             benchmarks = [\"gzip\"]\n\
             sim_seconds = 2.0\n\
             grid = 4\n",
        )
        .unwrap();
        let spec = spec_path.to_str().unwrap();
        let out = execute(&Command::ShardPlan {
            path: spec.into(),
            count: 3,
            cache_dir: Some("/tmp/plan-cache".into()),
            threads: Some(2),
            serve: false,
        })
        .unwrap();
        assert!(out.starts_with("# sweep 'plan': 4 cells over 3 shards"), "{out}");

        // Every non-comment line is a `therm3d sweep` invocation our own
        // parser accepts, with balanced round-robin cell counts.
        let mut cells_seen = 0;
        let mut shard_lines = 0;
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            shard_lines += 1;
            let (cmd, annotation) = line.split_once(" > ").expect("redirects to a CSV");
            let argv: Vec<String> = cmd.split_whitespace().skip(1).map(str::to_owned).collect();
            let parsed = crate::args::parse(argv).unwrap();
            assert!(
                matches!(&parsed, Command::SweepFile { path, threads: Some(2), shard: Some(_), .. } if path == spec),
                "{line}: {parsed:?}"
            );
            cells_seen += annotation
                .split_once("# ")
                .and_then(|(_, c)| c.split(' ').next())
                .and_then(|c| c.parse::<usize>().ok())
                .expect("cell-count comment");
        }
        assert_eq!(shard_lines, 3);
        assert_eq!(cells_seen, 4, "shards partition the matrix");
        assert!(out.contains("--cache-dir /tmp/plan-cache-2"), "{out}");
        assert!(out.contains("# merge: therm3d merge plan.csv plan-shard-0.csv"), "{out}");
        assert!(out.contains("cache merge --cache-dir /tmp/plan-cache /tmp/plan-cache-0"), "{out}");

        // A plan with more shards than cells names the problem.
        let err = execute(&Command::ShardPlan {
            path: spec.into(),
            count: 9,
            cache_dir: None,
            threads: None,
            serve: false,
        })
        .unwrap_err();
        assert!(err.contains("expands to 4 cells"), "{err}");
        // Without `--cache-dir` no cache hint is printed.
        let out = execute(&Command::ShardPlan {
            path: spec.into(),
            count: 2,
            cache_dir: None,
            threads: None,
            serve: false,
        })
        .unwrap();
        assert!(!out.contains("cache"), "{out}");
    }

    #[test]
    fn shard_plan_serve_prints_runnable_serve_and_work_lines() {
        let spec_path = std::env::temp_dir().join("therm3d_cli_serve_plan.toml");
        std::fs::write(
            &spec_path,
            "name = \"plan\"\n\
             experiments = [\"exp1\"]\n\
             policies = [\"Default\", \"Adapt3D\"]\n\
             dpm = [false, true]\n\
             benchmarks = [\"gzip\"]\n\
             sim_seconds = 2.0\n\
             grid = 4\n",
        )
        .unwrap();
        let spec = spec_path.to_str().unwrap();
        let out = execute(&Command::ShardPlan {
            path: spec.into(),
            count: 3,
            cache_dir: Some("/tmp/plan-cache".into()),
            threads: Some(2),
            serve: true,
        })
        .unwrap();
        assert!(out.starts_with("# campaign 'plan': 4 cells over 3 workers (leased"), "{out}");

        // Every non-comment line is an invocation our own parser
        // accepts: one coordinator, then `--count` workers.
        let lines: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines.len(), 1 + 3, "{out}");
        let (serve_cmd, _) = lines[0].split_once(" > ").expect("coordinator redirects to a CSV");
        let argv: Vec<String> = serve_cmd.split_whitespace().skip(1).map(str::to_owned).collect();
        let parsed = crate::args::parse(argv).unwrap();
        assert!(
            matches!(&parsed, Command::Serve { path, cache_dir: Some(dir), format: SweepFormat::Csv, .. }
                if path == spec && dir == "/tmp/plan-cache"),
            "{parsed:?}"
        );
        for worker_line in &lines[1..] {
            let cmd = worker_line.split_once("  #").map_or(*worker_line, |(c, _)| c);
            let argv: Vec<String> = cmd.split_whitespace().skip(1).map(str::to_owned).collect();
            let parsed = crate::args::parse(argv).unwrap();
            assert!(
                matches!(&parsed, Command::Work { connect, threads: Some(2), .. }
                    if connect == "127.0.0.1:7103"),
                "{worker_line}: {parsed:?}"
            );
        }
        // Serve and work lines point at the same address, and leases
        // replace shards — no `--shard`, no merge hint.
        assert!(!out.contains("--shard") && !out.contains("# merge"), "{out}");
    }

    #[test]
    fn cache_compact_on_a_missing_dir_creates_an_empty_store() {
        let dir =
            std::env::temp_dir().join(format!("therm3d_cli_compact_fresh_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = execute(&Command::CacheCompact { dir: dir.to_str().unwrap().into() }).unwrap();
        assert!(out.contains("kept 0"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_file_failures_are_errors() {
        let err = execute(&Command::SweepFile {
            path: "/nonexistent/spec.toml".into(),
            threads: None,
            format: SweepFormat::Table,
            cache_dir: None,
            cache_stats: false,
            shard: None,
            progress: false,
            trace_out: None,
            metrics_out: None,
            streaming: false,
        })
        .unwrap_err();
        assert!(err.starts_with("cannot read"), "{err}");

        let bad = std::env::temp_dir().join("therm3d_cli_bad_spec.toml");
        std::fs::write(&bad, "policies = []\n").unwrap();
        let err = execute(&Command::SweepFile {
            path: bad.to_str().unwrap().into(),
            threads: None,
            format: SweepFormat::Table,
            cache_dir: None,
            cache_stats: false,
            shard: None,
            progress: false,
            trace_out: None,
            metrics_out: None,
            streaming: false,
        })
        .unwrap_err();
        assert!(err.starts_with("invalid sweep spec"), "{err}");
    }

    #[test]
    fn reliability_reports_every_core() {
        let cmd = parse(argv("reliability --exp exp1 --benchmark gzip -t 5 --grid 4")).unwrap();
        let out = execute(&cmd).unwrap();
        for core in 0..8 {
            assert!(out.contains(&format!("core {core}")), "{out}");
        }
    }
}
