//! Hand-rolled argument parsing for the `therm3d` binary.

use std::fmt;

use therm3d::SensorProfile;
use therm3d_floorplan::{Experiment, StackOrder};
use therm3d_policies::PolicyKind;
use therm3d_sweep::ShardSpec;
use therm3d_thermal::{Integrator, TsvVariant};
use therm3d_workload::Benchmark;

/// Options shared by the simulation-driving subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// 3D configuration (default EXP-3, the thermally stressed system).
    pub exp: Experiment,
    /// Simulated seconds (default 60).
    pub seconds: f64,
    /// A single Table I benchmark, or `None` for the 8-benchmark rotation.
    pub benchmark: Option<Benchmark>,
    /// Wrap the policy in fixed-timeout DPM.
    pub dpm: bool,
    /// Workload seed.
    pub seed: u64,
    /// Thermal grid resolution per layer (N×N).
    pub grid: usize,
    /// Thermal transient integrator (default: pre-factored implicit).
    pub integrator: Integrator,
    /// Stack orientation of the split configurations (`--stack-order`).
    pub stack_order: StackOrder,
    /// TSV/interlayer variant the RC network is built from (`--tsv`).
    pub tsv: TsvVariant,
    /// Sensor-fidelity profile the policy observes through (`--sensor`).
    pub sensor: SensorProfile,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            exp: Experiment::Exp3,
            seconds: 60.0,
            benchmark: None,
            dpm: false,
            seed: 2009,
            grid: 8,
            integrator: Integrator::default(),
            stack_order: StackOrder::default(),
            tsv: TsvVariant::default(),
            sensor: SensorProfile::default(),
        }
    }
}

/// Output format for sweep-spec reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepFormat {
    /// Paper-style fixed-width text tables.
    #[default]
    Table,
    /// The shared CSV schema (`therm3d_sweep::csv_header`).
    Csv,
    /// Hand-rolled JSON export.
    Json,
}

impl std::str::FromStr for SweepFormat {
    type Err = ParseCliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "table" | "text" => Ok(SweepFormat::Table),
            "csv" => Ok(SweepFormat::Csv),
            "json" => Ok(SweepFormat::Json),
            other => Err(ParseCliError(format!(
                "unknown format `{other}` (expected table, csv or json)"
            ))),
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Simulate one (experiment, policy, workload) cell.
    Run { sim: SimOptions, policy: PolicyKind, csv: bool },
    /// Run all eleven policies on one experiment and tabulate.
    Sweep { sim: SimOptions, csv: bool },
    /// Execute a declarative sweep spec (TOML) on the parallel engine,
    /// optionally memoizing results in a persistent cache directory.
    SweepFile {
        path: String,
        threads: Option<usize>,
        format: SweepFormat,
        /// Result-cache directory (`--cache-dir`); `None` = no cache.
        cache_dir: Option<String>,
        /// Print hit/miss counters to stderr (`--cache-stats`).
        cache_stats: bool,
        /// Run only shard K of N of the matrix (`--shard K/N`);
        /// overrides the spec's `shard` key. `None` keeps the spec's.
        shard: Option<ShardSpec>,
        /// Live progress line on stderr (`--progress`).
        progress: bool,
        /// JSONL cell-lifecycle event stream path (`--trace-out`).
        trace_out: Option<String>,
        /// Metrics-snapshot JSON path (`--metrics-out`).
        metrics_out: Option<String>,
        /// Stream traces instead of materializing them (`--streaming`);
        /// bit-identical results, O(1) memory in `sim_seconds`. Only
        /// ever turns streaming *on* over the spec's `streaming` key.
        streaming: bool,
    },
    /// Validate a sweep spec and print a preflight report — expansion
    /// count, per-axis summary, shard balance and a cache warm/cold
    /// estimate — without simulating anything
    /// (`therm3d check SPEC.toml [--cache-dir DIR]`).
    Check {
        /// Sweep-spec path.
        path: String,
        /// Cache directory to estimate warm/cold cells against.
        cache_dir: Option<String>,
    },
    /// Print ready-to-run command lines splitting a spec over N shards
    /// (`therm3d shard-plan SPEC.toml --count N`), or — with `--serve`
    /// — the serve/work lines of a leased campaign over N workers.
    ShardPlan {
        /// Sweep-spec path (validated before the plan is printed).
        path: String,
        /// Number of shards (or, with `--serve`, workers).
        count: usize,
        /// Per-shard cache directories `DIR-K` in the printed lines
        /// (with `--serve`, the coordinator's single cache directory).
        cache_dir: Option<String>,
        /// `--threads` forwarded to every printed shard command.
        threads: Option<usize>,
        /// Emit `therm3d serve` + N `therm3d work` lines instead of the
        /// static `--shard K/N` split (`--serve`).
        serve: bool,
    },
    /// Coordinate a leased campaign over TCP
    /// (`therm3d serve SPEC.toml --listen ADDR`).
    Serve {
        /// Sweep-spec path; the coordinator owns the canonical expansion.
        path: String,
        /// Listen address, e.g. `127.0.0.1:7103` (port 0 = OS-assigned).
        listen: String,
        /// Cells per lease (`--lease N`); `None` = auto from the
        /// expansion size.
        lease: Option<usize>,
        /// Seconds a lease may go silent before its range is re-issued
        /// (`--lease-timeout SECS`); `None` = 30 s.
        lease_timeout: Option<f64>,
        /// Single canonical result cache fed by all workers' results.
        cache_dir: Option<String>,
        /// Report format for the merged campaign report on stdout.
        format: SweepFormat,
        /// Live progress line on stderr (`--progress`).
        progress: bool,
        /// Write the bound address to this file once listening
        /// (`--port-file FILE`) — how scripts discover a port-0 bind.
        port_file: Option<String>,
    },
    /// Join a leased campaign as a worker
    /// (`therm3d work --connect ADDR`).
    Work {
        /// Coordinator address, e.g. `127.0.0.1:7103`.
        connect: String,
        /// Worker-thread override for leased cells (`--threads N`).
        threads: Option<usize>,
        /// Optional worker-local result cache.
        cache_dir: Option<String>,
        /// Test/ops knob: compute one cell at a time, sleeping this many
        /// milliseconds between cells (`--throttle-ms N`).
        throttle_ms: u64,
    },
    /// Merge shard CSV reports back into the canonical unsharded CSV
    /// (`therm3d merge OUT.csv SHARD.csv ...`).
    Merge {
        /// Output path the merged canonical CSV is written to.
        out: String,
        /// Shard report paths (any order; disjointness/completeness is
        /// verified).
        inputs: Vec<String>,
    },
    /// Union shard cache directories into one store
    /// (`therm3d cache merge --cache-dir OUT SHARD_DIR ...`).
    CacheMerge {
        /// Destination cache directory (created if needed).
        dir: String,
        /// Source cache directories (read-only).
        sources: Vec<String>,
    },
    /// Print the all-cores-busy steady-state profile.
    Steady { exp: Experiment, grid: usize },
    /// Generate and dump a workload trace.
    Trace { benchmark: Benchmark, cores: usize, seconds: f64, seed: u64, csv: bool },
    /// Run one cell and print per-core reliability reports.
    Reliability { sim: SimOptions, policy: PolicyKind },
    /// Rewrite a result cache's `results.tsv`, keeping only the newest
    /// entry per cell key and dropping stale-salt/corrupt lines.
    CacheCompact { dir: String },
    /// Print usage.
    Help,
}

/// Error produced when the command line cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCliError(pub String);

impl fmt::Display for ParseCliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseCliError {}

/// The usage text printed by `therm3d help`.
pub const USAGE: &str = "\
therm3d — 3D multicore dynamic thermal management simulator (DATE 2009 reproduction)

USAGE:
  therm3d run         [--exp E] [--policy P] [--benchmark B] [-t SECS] [--dpm] [--seed N] [--grid N]
                      [--integrator I] [--stack-order O] [--tsv V] [--sensor S] [--csv]
  therm3d sweep       [--exp E] [-t SECS] [--dpm] [--seed N] [--grid N]
                      [--integrator I] [--stack-order O] [--tsv V] [--sensor S] [--csv]
  therm3d sweep       SPEC.toml [--threads N] [--format table|csv|json] [--csv]
                      [--cache-dir DIR] [--no-cache] [--cache-stats] [--shard K/N]
                      [--progress] [--trace-out FILE] [--metrics-out FILE] [--streaming]
  therm3d check       SPEC.toml [--cache-dir DIR]
  therm3d shard-plan  SPEC.toml --count N [--cache-dir DIR] [--threads N] [--serve]
  therm3d serve       SPEC.toml --listen ADDR [--lease N] [--lease-timeout SECS]
                      [--cache-dir DIR] [--format table|csv|json] [--csv]
                      [--progress] [--port-file FILE]
  therm3d work        --connect ADDR [--threads N] [--cache-dir DIR] [--throttle-ms N]
  therm3d merge       OUT.csv SHARD.csv [SHARD.csv ...]
  therm3d steady      [--exp E] [--grid N]
  therm3d trace       [--benchmark B] [--cores N] [-t SECS] [--seed N] [--csv]
  therm3d reliability [--exp E] [--policy P] [-t SECS] [--dpm] [--seed N] [--grid N]
                      [--integrator I] [--stack-order O] [--tsv V] [--sensor S]
  therm3d cache       compact --cache-dir DIR
  therm3d cache       merge --cache-dir OUT_DIR SHARD_DIR [SHARD_DIR ...]
  therm3d help

  E = exp1..exp4   P = figure label (Default, CGate, DVFS_TT, Adapt3D, ...)
  I = implicit-cn (pre-factored implicit transient solver, the default)
      or explicit-rk4 (the stability-bounded golden reference)
  O = cores-far (paper default) or cores-near (logic die on the spreader)
  V = paper, bare, dense-1pct, dense-2pct, epoxy, epoxy-dense-1pct
  S = ideal, noisy-1c, noisy-3c, quantized-1c, noisy-2c-quant-1c, offset-cool-3c
  B = Table I name (web-med, web-high, database, web-db, gcc, gzip, mplayer, mplayer-web)

  With a SPEC.toml, `sweep` expands the spec's experiment x scenario
  (stack_orders x tsv x sensors) x integrator x policy x DPM x seed
  cross-product and executes it on all cores (deterministic for any
  --threads). Keys: name, experiments, stack_orders, tsv, sensors,
  integrators, policies, dpm, benchmarks, seeds, sim_seconds, grid,
  policy_seed, threads.

  `check` is the dry-run preflight for a campaign: it validates the
  spec, prints the canonical expansion count, a per-axis summary, the
  shard balance, and — with --cache-dir — how many cells would hit the
  cache vs. simulate, all without running anything.

  --cache-dir DIR memoizes results by content-addressed cell key:
  re-running a grown spec only simulates the new cells, and the report
  is byte-identical to a cold run. --no-cache ignores --cache-dir;
  --cache-stats prints a `cache:` counters line to stderr.
  `cache compact` rewrites DIR/results.tsv keeping only the newest
  entry per cell key and dropping stale-salt and corrupt lines.

  --shard K/N runs only shard K (zero-based) of an N-way split of the
  matrix — round-robin over the canonical cell order, so shards are
  balanced and disjoint. Each shard's CSV carries a leading `shard`
  provenance column; `therm3d merge` recombines shard CSVs into the
  canonical report (byte-identical to an unsharded run) and `cache
  merge` unions shard cache directories (follow with `cache compact`
  to drop shadowed lines). `shard-plan` prints the N command lines
  (plus merge hints) that execute such a split, one shard per line;
  with --serve it prints the serve/work lines of a leased campaign
  over N workers instead.

  `serve` + `work` run a campaign as a service with work stealing:
  the coordinator owns the canonical expansion and leases cell ranges
  over TCP; workers request leases, simulate through the ordinary
  cached runner, and stream verified results back. A worker that dies
  or goes silent past --lease-timeout has its range re-issued, so the
  campaign always completes, and the merged report/CSV is
  byte-identical to a single-process `therm3d sweep` of the same spec
  for any number of workers. --port-file writes the bound address
  (useful with port 0) once the coordinator is listening.

  Observability (stderr/sidecar only; stdout stays byte-identical):
  --progress redraws a throttled cells/s + hit-rate + ETA line on
  stderr; --trace-out FILE streams one JSON object per cell lifecycle
  event (cell_start, cache_hit, cell_finish, cell_panic) to FILE;
  --metrics-out FILE writes the final metrics snapshot (per-phase
  timing histograms, cache hit/miss and factorization counters, one
  record per cell) as pretty-printed JSON to FILE.

  --streaming (or `streaming = true` in the spec) runs every cell in
  throughput mode: jobs stream from the generator straight into the
  engine, so peak memory is independent of sim_seconds. Results, cell
  keys and report bytes are identical to the materialized path — the
  two share one cache.";

struct Tokens {
    items: Vec<String>,
    pos: usize,
}

impl Tokens {
    fn next_value(&mut self, key: &str) -> Result<String, ParseCliError> {
        self.pos += 1;
        self.items
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseCliError(format!("missing value for `{key}`")))
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, raw: &str) -> Result<T, ParseCliError>
where
    T::Err: fmt::Display,
{
    raw.parse().map_err(|e| ParseCliError(format!("invalid `{key}` value `{raw}`: {e}")))
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// Returns [`ParseCliError`] on an unknown subcommand, unknown flag,
/// missing value or unparsable value.
pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Command, ParseCliError> {
    // Normalize --key=value into --key value.
    let mut items = Vec::new();
    for a in argv {
        if let Some((k, v)) = a.split_once('=') {
            if k.starts_with("--") {
                items.push(k.to_owned());
                items.push(v.to_owned());
                continue;
            }
        }
        items.push(a);
    }
    let Some(sub) = items.first().cloned() else {
        return Ok(Command::Help);
    };
    // `cache` takes a verb: `therm3d cache compact --cache-dir DIR` or
    // `therm3d cache merge --cache-dir OUT_DIR SHARD_DIR ...`.
    let mut cache_verb: Option<&'static str> = None;
    if sub == "cache" {
        match items.get(1).map(String::as_str) {
            Some("compact") => {
                cache_verb = Some("compact");
                items.remove(1);
            }
            Some("merge") => {
                cache_verb = Some("merge");
                items.remove(1);
            }
            Some(other) => {
                return Err(ParseCliError(format!(
                    "unknown cache verb `{other}` (expected `compact` or `merge`)"
                )));
            }
            None => {
                return Err(ParseCliError(
                    "`cache` needs a verb: `therm3d cache compact --cache-dir DIR` or \
                     `therm3d cache merge --cache-dir OUT_DIR SHARD_DIR ...`"
                        .into(),
                ));
            }
        }
    }
    // `merge` and `cache merge` take positional paths anywhere among
    // their flags; pull them out so the flag loop below sees only flags.
    let mut positionals: Vec<String> = Vec::new();
    if sub == "merge" || cache_verb == Some("merge") {
        let mut i = 1;
        while i < items.len() {
            if items[i].starts_with('-') {
                i += if items[i] == "--cache-dir" { 2 } else { 1 };
            } else {
                positionals.push(items.remove(i));
            }
        }
    }
    // `sweep`, `shard-plan`, `check` and `serve` take an optional
    // positional spec file anywhere among their flags; skip over tokens
    // that are values of value-taking flags.
    let mut spec_path: Option<String> = None;
    if sub == "sweep" || sub == "shard-plan" || sub == "check" || sub == "serve" {
        let takes_value = |flag: &str| {
            matches!(
                flag,
                "--exp"
                    | "--policy"
                    | "--benchmark"
                    | "-t"
                    | "--seconds"
                    | "--seed"
                    | "--grid"
                    | "--integrator"
                    | "--stack-order"
                    | "--tsv"
                    | "--sensor"
                    | "--cores"
                    | "--threads"
                    | "--format"
                    | "--cache-dir"
                    | "--shard"
                    | "--count"
                    | "--trace-out"
                    | "--metrics-out"
                    | "--listen"
                    | "--connect"
                    | "--lease"
                    | "--lease-timeout"
                    | "--throttle-ms"
                    | "--port-file"
            )
        };
        let mut i = 1;
        while i < items.len() {
            let token = &items[i];
            if token.starts_with('-') {
                i += if takes_value(token) { 2 } else { 1 };
            } else {
                spec_path = Some(items.remove(i));
                break;
            }
        }
    }
    let mut t = Tokens { items, pos: 0 };

    let mut sim = SimOptions::default();
    let mut policy = PolicyKind::Adapt3d;
    let mut csv = false;
    let mut cores = 8usize;
    let mut benchmark = Benchmark::Gcc;
    let mut threads: Option<usize> = None;
    let mut format: Option<SweepFormat> = None;
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;
    let mut cache_stats = false;
    let mut shard: Option<ShardSpec> = None;
    let mut count: Option<usize> = None;
    let mut progress = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut streaming = false;
    let mut listen: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut lease: Option<usize> = None;
    let mut lease_timeout: Option<f64> = None;
    let mut throttle_ms: Option<u64> = None;
    let mut port_file: Option<String> = None;
    let mut serve_plan = false;
    let mut sim_flags: Vec<String> = Vec::new();

    while t.pos + 1 < t.items.len() {
        t.pos += 1;
        let key = t.items[t.pos].clone();
        // Flags that configure an ad-hoc simulation; a spec file owns
        // these settings, so the two must not be mixed silently.
        if matches!(
            key.as_str(),
            "--exp"
                | "--policy"
                | "--benchmark"
                | "-t"
                | "--seconds"
                | "--seed"
                | "--grid"
                | "--integrator"
                | "--stack-order"
                | "--tsv"
                | "--sensor"
                | "--cores"
                | "--dpm"
        ) {
            sim_flags.push(key.clone());
        }
        match key.as_str() {
            "--exp" => sim.exp = parse_num("--exp", &t.next_value("--exp")?)?,
            "--policy" => policy = parse_num("--policy", &t.next_value("--policy")?)?,
            "--benchmark" => {
                let b: Benchmark = parse_num("--benchmark", &t.next_value("--benchmark")?)?;
                sim.benchmark = Some(b);
                benchmark = b;
            }
            "-t" | "--seconds" => sim.seconds = parse_num(&key, &t.next_value(&key)?)?,
            "--seed" => sim.seed = parse_num("--seed", &t.next_value("--seed")?)?,
            "--grid" => sim.grid = parse_num("--grid", &t.next_value("--grid")?)?,
            "--integrator" => {
                sim.integrator = parse_num("--integrator", &t.next_value("--integrator")?)?;
            }
            "--stack-order" => {
                sim.stack_order = parse_num("--stack-order", &t.next_value("--stack-order")?)?;
            }
            "--tsv" => sim.tsv = parse_num("--tsv", &t.next_value("--tsv")?)?,
            "--sensor" => sim.sensor = parse_num("--sensor", &t.next_value("--sensor")?)?,
            "--cores" => cores = parse_num("--cores", &t.next_value("--cores")?)?,
            "--threads" => threads = Some(parse_num("--threads", &t.next_value("--threads")?)?),
            "--format" => format = Some(parse_num("--format", &t.next_value("--format")?)?),
            "--cache-dir" => cache_dir = Some(t.next_value("--cache-dir")?),
            "--no-cache" => no_cache = true,
            "--cache-stats" => cache_stats = true,
            // ShardSpec::from_str validates the range, so `3/3` and
            // `0/0` die here at parse time with the valid range named.
            "--shard" => shard = Some(parse_num("--shard", &t.next_value("--shard")?)?),
            "--count" => count = Some(parse_num("--count", &t.next_value("--count")?)?),
            "--progress" => progress = true,
            "--trace-out" => trace_out = Some(t.next_value("--trace-out")?),
            "--metrics-out" => metrics_out = Some(t.next_value("--metrics-out")?),
            "--streaming" => streaming = true,
            "--listen" => listen = Some(t.next_value("--listen")?),
            "--connect" => connect = Some(t.next_value("--connect")?),
            "--lease" => lease = Some(parse_num("--lease", &t.next_value("--lease")?)?),
            "--lease-timeout" => {
                lease_timeout =
                    Some(parse_num("--lease-timeout", &t.next_value("--lease-timeout")?)?);
            }
            "--throttle-ms" => {
                throttle_ms = Some(parse_num("--throttle-ms", &t.next_value("--throttle-ms")?)?);
            }
            "--port-file" => port_file = Some(t.next_value("--port-file")?),
            "--serve" => serve_plan = true,
            "--dpm" => sim.dpm = true,
            "--csv" => csv = true,
            other => return Err(ParseCliError(format!("unknown flag `{other}`"))),
        }
    }
    if sim.seconds <= 0.0 {
        return Err(ParseCliError("`--seconds` must be positive".into()));
    }
    if sim.grid == 0 {
        return Err(ParseCliError("`--grid` must be at least 1".into()));
    }
    let spec_sweep = sub == "sweep" && spec_path.is_some();
    let shard_plan = sub == "shard-plan";
    let serve_cmd = sub == "serve";
    let work_cmd = sub == "work";
    // Only a spec-file sweep consumes these; reject them anywhere else
    // rather than dropping them silently. `shard-plan` forwards
    // `--threads` into the lines it prints; `serve` renders a report
    // (`--format`) and `work` runs leased cells (`--threads`).
    if (threads.is_some() && !(spec_sweep || shard_plan || work_cmd))
        || (format.is_some() && !(spec_sweep || serve_cmd))
    {
        return Err(ParseCliError(
            "`--threads` and `--format` only apply to `sweep SPEC.toml` \
             (`shard-plan` and `work` also take `--threads`; `serve` also takes `--format`)"
                .into(),
        ));
    }
    if (progress && !(spec_sweep || serve_cmd))
        || ((trace_out.is_some() || metrics_out.is_some()) && !spec_sweep)
    {
        return Err(ParseCliError(
            "`--progress`, `--trace-out` and `--metrics-out` only apply to `sweep SPEC.toml` \
             (`serve` also takes `--progress`)"
                .into(),
        ));
    }
    if streaming && !spec_sweep {
        return Err(ParseCliError("`--streaming` only applies to `sweep SPEC.toml`".into()));
    }
    if count.is_some() && !shard_plan {
        return Err(ParseCliError("`--count` only applies to `shard-plan SPEC.toml`".into()));
    }
    if serve_plan && !shard_plan {
        return Err(ParseCliError("`--serve` only applies to `shard-plan SPEC.toml`".into()));
    }
    if (listen.is_some() || lease.is_some() || lease_timeout.is_some() || port_file.is_some())
        && !serve_cmd
    {
        return Err(ParseCliError(
            "`--listen`, `--lease`, `--lease-timeout` and `--port-file` only apply to \
             `serve SPEC.toml`"
                .into(),
        ));
    }
    if (connect.is_some() || throttle_ms.is_some()) && !work_cmd {
        return Err(ParseCliError("`--connect` and `--throttle-ms` only apply to `work`".into()));
    }
    if (cache_dir.is_some()
        && !(spec_sweep || shard_plan || serve_cmd || work_cmd || sub == "cache" || sub == "check"))
        || ((no_cache || cache_stats) && !spec_sweep)
    {
        return Err(ParseCliError(
            "`--cache-dir` only applies to `sweep SPEC.toml`, `shard-plan`, `check`, `serve`, \
             `work`, `cache compact` and `cache merge`; `--no-cache` and `--cache-stats` only \
             apply to `sweep SPEC.toml`"
                .into(),
        ));
    }
    // `--no-cache` wins over `--cache-dir` (handy for forcing a
    // re-simulation without editing a shell alias), but stats over a
    // disabled cache would always read 0/0 — reject the combination.
    if no_cache {
        cache_dir = None;
    }
    if cache_stats && cache_dir.is_none() {
        return Err(ParseCliError(if no_cache {
            "`--cache-stats` is meaningless with `--no-cache`".into()
        } else {
            "`--cache-stats` requires `--cache-dir DIR`".into()
        }));
    }
    if shard.is_some() && !spec_sweep {
        return Err(ParseCliError("`--shard` only applies to `sweep SPEC.toml`".into()));
    }
    if format.is_some() && csv && spec_path.is_some() {
        return Err(ParseCliError(
            "`--csv` is shorthand for `--format csv`; pass one or the other, not both".into(),
        ));
    }

    match sub.as_str() {
        "run" => Ok(Command::Run { sim, policy, csv }),
        "sweep" => match spec_path {
            Some(path) => {
                if !sim_flags.is_empty() {
                    return Err(ParseCliError(format!(
                        "{} cannot be combined with a spec file: set {} in `{path}` instead \
                         (a spec-file sweep only takes --threads, --format and --csv)",
                        sim_flags.join(", "),
                        if sim_flags.len() == 1 { "it" } else { "them" },
                    )));
                }
                Ok(Command::SweepFile {
                    path,
                    threads,
                    // `--csv` is shorthand for `--format csv`.
                    format: format.unwrap_or(if csv {
                        SweepFormat::Csv
                    } else {
                        SweepFormat::Table
                    }),
                    cache_dir,
                    cache_stats,
                    shard,
                    progress,
                    trace_out,
                    metrics_out,
                    streaming,
                })
            }
            None => Ok(Command::Sweep { sim, csv }),
        },
        "check" => {
            let Some(path) = spec_path else {
                return Err(ParseCliError(
                    "`check` needs a spec file: `therm3d check SPEC.toml [--cache-dir DIR]`".into(),
                ));
            };
            if !sim_flags.is_empty() || csv {
                return Err(ParseCliError(format!(
                    "`check` only takes `--cache-dir DIR`; set the matrix in `{path}` instead"
                )));
            }
            Ok(Command::Check { path, cache_dir })
        }
        "shard-plan" => {
            let Some(path) = spec_path else {
                return Err(ParseCliError(
                    "`shard-plan` needs a spec file: `therm3d shard-plan SPEC.toml --count N`"
                        .into(),
                ));
            };
            if !sim_flags.is_empty() || csv {
                return Err(ParseCliError(format!(
                    "`shard-plan` only takes `--count N`, `--cache-dir DIR`, `--threads N` and \
                     `--serve`; set the matrix in `{path}` instead"
                )));
            }
            let Some(count) = count else {
                return Err(ParseCliError("`shard-plan` requires `--count N`".into()));
            };
            if count == 0 {
                return Err(ParseCliError("`--count` must be at least 1".into()));
            }
            Ok(Command::ShardPlan { path, count, cache_dir, threads, serve: serve_plan })
        }
        "serve" => {
            let Some(path) = spec_path else {
                return Err(ParseCliError(
                    "`serve` needs a spec file: `therm3d serve SPEC.toml --listen ADDR`".into(),
                ));
            };
            if !sim_flags.is_empty() {
                return Err(ParseCliError(format!(
                    "`serve` does not take simulation flags; set the matrix in `{path}` instead"
                )));
            }
            let Some(listen) = listen else {
                return Err(ParseCliError(
                    "`serve` requires `--listen ADDR` (use port 0 for an OS-assigned port)".into(),
                ));
            };
            if lease == Some(0) {
                return Err(ParseCliError("`--lease` must be at least 1 cell".into()));
            }
            if lease_timeout.is_some_and(|t| t <= 0.0) {
                return Err(ParseCliError("`--lease-timeout` must be positive".into()));
            }
            Ok(Command::Serve {
                path,
                listen,
                lease,
                lease_timeout,
                cache_dir,
                // `--csv` is shorthand for `--format csv`, as on sweep.
                format: format.unwrap_or(if csv { SweepFormat::Csv } else { SweepFormat::Table }),
                progress,
                port_file,
            })
        }
        "work" => {
            if !sim_flags.is_empty() || csv {
                return Err(ParseCliError(
                    "`work` only takes `--connect ADDR`, `--threads N`, `--cache-dir DIR` and \
                     `--throttle-ms N` — the coordinator's spec owns everything else"
                        .into(),
                ));
            }
            let Some(connect) = connect else {
                return Err(ParseCliError("`work` requires `--connect ADDR`".into()));
            };
            Ok(Command::Work { connect, threads, cache_dir, throttle_ms: throttle_ms.unwrap_or(0) })
        }
        "steady" | "trace" => {
            // These subcommands cannot honor the scenario flags; reject
            // them instead of silently profiling the paper default.
            let dropped: Vec<&String> = sim_flags
                .iter()
                .filter(|f| matches!(f.as_str(), "--stack-order" | "--tsv" | "--sensor"))
                .collect();
            if let Some(flag) = dropped.first() {
                return Err(ParseCliError(format!(
                    "`{flag}` only applies to simulation subcommands (run, sweep, reliability); \
                     `{sub}` would silently ignore it"
                )));
            }
            if sub == "steady" {
                Ok(Command::Steady { exp: sim.exp, grid: sim.grid })
            } else {
                Ok(Command::Trace { benchmark, cores, seconds: sim.seconds, seed: sim.seed, csv })
            }
        }
        "reliability" => Ok(Command::Reliability { sim, policy }),
        "merge" => {
            if !sim_flags.is_empty() || csv {
                return Err(ParseCliError(
                    "`merge` only takes paths: `therm3d merge OUT.csv SHARD.csv ...`".into(),
                ));
            }
            let mut paths = positionals;
            if paths.len() < 2 {
                return Err(ParseCliError(
                    "`merge` needs an output and at least one shard report: \
                     `therm3d merge OUT.csv SHARD.csv ...`"
                        .into(),
                ));
            }
            let out = paths.remove(0);
            Ok(Command::Merge { out, inputs: paths })
        }
        "cache" => {
            let verb = cache_verb.unwrap_or("compact");
            if !sim_flags.is_empty() || csv {
                return Err(ParseCliError(format!(
                    "`cache {verb}` only takes `--cache-dir DIR`{}",
                    if verb == "merge" { " and source directories" } else { "" }
                )));
            }
            let Some(dir) = cache_dir else {
                return Err(ParseCliError(format!("`cache {verb}` requires `--cache-dir DIR`")));
            };
            match verb {
                "merge" => {
                    if positionals.is_empty() {
                        return Err(ParseCliError(
                            "`cache merge` needs at least one source directory: \
                             `therm3d cache merge --cache-dir OUT_DIR SHARD_DIR ...`"
                                .into(),
                        ));
                    }
                    Ok(Command::CacheMerge { dir, sources: positionals })
                }
                _ => Ok(Command::CacheCompact { dir }),
            }
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseCliError(format!("unknown subcommand `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn empty_argv_is_help() {
        assert_eq!(parse(argv("")), Ok(Command::Help));
        assert_eq!(parse(argv("help")), Ok(Command::Help));
        assert_eq!(parse(argv("--help")), Ok(Command::Help));
    }

    #[test]
    fn run_with_defaults() {
        let cmd = parse(argv("run")).unwrap();
        assert_eq!(
            cmd,
            Command::Run { sim: SimOptions::default(), policy: PolicyKind::Adapt3d, csv: false }
        );
    }

    #[test]
    fn run_with_everything() {
        let cmd = parse(argv(
            "run --exp exp4 --policy DVFS_TT --benchmark web-high -t 30 --dpm --seed 7 --grid 4 --csv",
        ))
        .unwrap();
        match cmd {
            Command::Run { sim, policy, csv } => {
                assert_eq!(sim.exp, Experiment::Exp4);
                assert_eq!(policy, PolicyKind::DvfsTt);
                assert_eq!(sim.benchmark, Some(Benchmark::WebHigh));
                assert_eq!(sim.seconds, 30.0);
                assert!(sim.dpm);
                assert_eq!(sim.seed, 7);
                assert_eq!(sim.grid, 4);
                assert!(csv);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn integrator_flag_parses_and_defaults() {
        assert_eq!(
            parse(argv("run")).map(|c| match c {
                Command::Run { sim, .. } => sim.integrator,
                other => panic!("wrong command: {other:?}"),
            }),
            Ok(Integrator::ImplicitCn)
        );
        let cmd = parse(argv("run --integrator explicit-rk4")).unwrap();
        assert!(matches!(
            cmd,
            Command::Run { sim: SimOptions { integrator: Integrator::ExplicitRk4, .. }, .. }
        ));
        // Short aliases work, garbage is rejected with the flag named.
        let cmd = parse(argv("sweep --integrator rk4")).unwrap();
        assert!(matches!(
            cmd,
            Command::Sweep { sim: SimOptions { integrator: Integrator::ExplicitRk4, .. }, .. }
        ));
        assert!(parse(argv("run --integrator euler")).unwrap_err().0.contains("--integrator"));
        // A spec file owns the integrator axis; the ad-hoc flag must not
        // silently apply to it.
        let err = parse(argv("sweep s.toml --integrator rk4")).unwrap_err().0;
        assert!(err.contains("--integrator") && err.contains("s.toml"), "{err}");
    }

    #[test]
    fn scenario_flags_parse_and_default() {
        let cmd = parse(argv("run")).unwrap();
        match cmd {
            Command::Run { sim, .. } => {
                assert_eq!(sim.stack_order, StackOrder::CoresFarFromSink);
                assert_eq!(sim.tsv, TsvVariant::Paper);
                assert_eq!(sim.sensor, SensorProfile::Ideal);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cmd = parse(argv(
            "run --exp exp1 --stack-order cores-near --tsv dense-1pct --sensor noisy-1c",
        ))
        .unwrap();
        match cmd {
            Command::Run { sim, .. } => {
                assert_eq!(sim.stack_order, StackOrder::CoresNearSink);
                assert_eq!(sim.tsv, TsvVariant::Dense1Pct);
                assert_eq!(sim.sensor, SensorProfile::Noisy1C);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Garbage names the flag; a spec file owns the scenario axes.
        assert!(parse(argv("run --tsv liquid")).unwrap_err().0.contains("--tsv"));
        assert!(parse(argv("run --sensor psychic")).unwrap_err().0.contains("--sensor"));
        let err = parse(argv("sweep s.toml --stack-order cores-near")).unwrap_err().0;
        assert!(err.contains("--stack-order") && err.contains("s.toml"), "{err}");
        // Subcommands that cannot honor a scenario reject the flags
        // instead of silently profiling the paper default.
        for line in ["steady --exp exp1 --tsv epoxy", "trace --sensor noisy-1c"] {
            let err = parse(argv(line)).unwrap_err().0;
            assert!(err.contains("silently ignore"), "{line}: {err}");
        }
    }

    #[test]
    fn shard_flag_parses_and_is_validated_at_parse_time() {
        let cmd = parse(argv("sweep s.toml --shard 1/3")).unwrap();
        assert!(
            matches!(cmd, Command::SweepFile { shard: Some(ShardSpec { index: 1, count: 3 }), .. }),
            "{cmd:?}"
        );
        // Without the flag the spec's own `shard` key stays in charge.
        let cmd = parse(argv("sweep s.toml")).unwrap();
        assert!(matches!(cmd, Command::SweepFile { shard: None, .. }), "{cmd:?}");
        // index == count and 0/0 die at parse time, naming the valid
        // range — never an empty report.
        let err = parse(argv("sweep s.toml --shard 3/3")).unwrap_err().0;
        assert!(err.contains("--shard") && err.contains("0/3..=2/3"), "{err}");
        let err = parse(argv("sweep s.toml --shard 0/0")).unwrap_err().0;
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(argv("sweep s.toml --shard whole")).unwrap_err().0;
        assert!(err.contains("K/N"), "{err}");
        // The flag only means something on a spec-file sweep.
        for line in ["run --shard 0/2", "sweep --shard 0/2", "trace --shard 1/2"] {
            let err = parse(argv(line)).unwrap_err().0;
            assert!(err.contains("sweep SPEC.toml"), "{line}: {err}");
        }
        // The positional scan must not mistake the shard value for the
        // spec path.
        let cmd = parse(argv("sweep --shard 2/4 s.toml")).unwrap();
        assert!(
            matches!(&cmd, Command::SweepFile { path, shard: Some(ShardSpec { index: 2, count: 4 }), .. } if path == "s.toml"),
            "{cmd:?}"
        );
    }

    #[test]
    fn merge_parses_out_and_inputs() {
        assert_eq!(
            parse(argv("merge out.csv a.csv b.csv c.csv")).unwrap(),
            Command::Merge {
                out: "out.csv".into(),
                inputs: vec!["a.csv".into(), "b.csv".into(), "c.csv".into()]
            }
        );
        // One input is the N=1 pass-through; zero inputs is an error.
        assert!(parse(argv("merge out.csv a.csv")).is_ok());
        assert!(parse(argv("merge out.csv")).unwrap_err().0.contains("at least one"), "need input");
        assert!(parse(argv("merge")).unwrap_err().0.contains("at least one"));
        // Stray flags are rejected, not dropped.
        assert!(parse(argv("merge out.csv a.csv --csv")).is_err());
        assert!(parse(argv("merge out.csv a.csv --exp exp1")).is_err());
    }

    #[test]
    fn cache_merge_parses_dir_and_sources() {
        assert_eq!(
            parse(argv("cache merge --cache-dir /tmp/out /tmp/s0 /tmp/s1")).unwrap(),
            Command::CacheMerge {
                dir: "/tmp/out".into(),
                sources: vec!["/tmp/s0".into(), "/tmp/s1".into()]
            }
        );
        // Sources may precede the flag (the scan skips the flag value).
        assert_eq!(
            parse(argv("cache merge /tmp/s0 --cache-dir /tmp/out /tmp/s1")).unwrap(),
            Command::CacheMerge {
                dir: "/tmp/out".into(),
                sources: vec!["/tmp/s0".into(), "/tmp/s1".into()]
            }
        );
        let err = parse(argv("cache merge --cache-dir /tmp/out")).unwrap_err().0;
        assert!(err.contains("source"), "{err}");
        let err = parse(argv("cache merge /tmp/s0")).unwrap_err().0;
        assert!(err.contains("--cache-dir"), "{err}");
        assert!(parse(argv("cache merge --cache-dir /tmp/out /tmp/s0 --csv")).is_err());
    }

    #[test]
    fn cache_compact_parses_and_requires_a_dir() {
        assert_eq!(
            parse(argv("cache compact --cache-dir /tmp/c")).unwrap(),
            Command::CacheCompact { dir: "/tmp/c".into() }
        );
        assert!(parse(argv("cache compact")).unwrap_err().0.contains("--cache-dir"));
        assert!(parse(argv("cache")).unwrap_err().0.contains("verb"));
        assert!(parse(argv("cache evict --cache-dir /tmp/c")).unwrap_err().0.contains("evict"));
        // Unrelated flags are rejected, not dropped.
        assert!(parse(argv("cache compact --cache-dir /tmp/c --exp exp1")).is_err());
        assert!(parse(argv("cache compact --cache-dir /tmp/c --csv")).is_err());
    }

    #[test]
    fn key_equals_value_form() {
        let cmd = parse(argv("sweep --exp=exp2 --seconds=15")).unwrap();
        match cmd {
            Command::Sweep { sim, csv } => {
                assert_eq!(sim.exp, Experiment::Exp2);
                assert_eq!(sim.seconds, 15.0);
                assert!(!csv);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn trace_options() {
        let cmd = parse(argv("trace --benchmark gzip --cores 16 -t 10 --csv")).unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                benchmark: Benchmark::Gzip,
                cores: 16,
                seconds: 10.0,
                seed: 2009,
                csv: true
            }
        );
    }

    #[test]
    fn sweep_without_spec_keeps_the_policy_tabulation() {
        let cmd = parse(argv("sweep --exp exp2 -t 15")).unwrap();
        assert!(matches!(cmd, Command::Sweep { .. }), "{cmd:?}");
        // `--csv` is honored (not dropped) on the flag form too.
        let cmd = parse(argv("sweep --exp exp2 -t 15 --csv")).unwrap();
        assert!(matches!(cmd, Command::Sweep { csv: true, .. }), "{cmd:?}");
    }

    #[test]
    fn sweep_with_spec_file() {
        let cmd = parse(argv("sweep campaign.toml --threads 4 --format json")).unwrap();
        assert_eq!(
            cmd,
            Command::SweepFile {
                path: "campaign.toml".into(),
                threads: Some(4),
                format: SweepFormat::Json,
                cache_dir: None,
                cache_stats: false,
                shard: None,
                progress: false,
                trace_out: None,
                metrics_out: None,
                streaming: false
            }
        );
    }

    #[test]
    fn sweep_spec_file_can_follow_flags() {
        // The positional is found anywhere, not only at position one —
        // and flag values ("4", "json") are not mistaken for it.
        let cmd = parse(argv("sweep --threads 4 --format json campaign.toml")).unwrap();
        assert_eq!(
            cmd,
            Command::SweepFile {
                path: "campaign.toml".into(),
                threads: Some(4),
                format: SweepFormat::Json,
                cache_dir: None,
                cache_stats: false,
                shard: None,
                progress: false,
                trace_out: None,
                metrics_out: None,
                streaming: false
            }
        );
        let cmd = parse(argv("sweep --threads 2 campaign.toml --csv")).unwrap();
        assert_eq!(
            cmd,
            Command::SweepFile {
                path: "campaign.toml".into(),
                threads: Some(2),
                format: SweepFormat::Csv,
                cache_dir: None,
                cache_stats: false,
                shard: None,
                progress: false,
                trace_out: None,
                metrics_out: None,
                streaming: false
            }
        );
    }

    #[test]
    fn sweep_spec_defaults_and_csv_shorthand() {
        let cmd = parse(argv("sweep campaign.toml")).unwrap();
        assert_eq!(
            cmd,
            Command::SweepFile {
                path: "campaign.toml".into(),
                threads: None,
                format: SweepFormat::Table,
                cache_dir: None,
                cache_stats: false,
                shard: None,
                progress: false,
                trace_out: None,
                metrics_out: None,
                streaming: false
            }
        );
        let cmd = parse(argv("sweep campaign.toml --csv")).unwrap();
        assert_eq!(
            cmd,
            Command::SweepFile {
                path: "campaign.toml".into(),
                threads: None,
                format: SweepFormat::Csv,
                cache_dir: None,
                cache_stats: false,
                shard: None,
                progress: false,
                trace_out: None,
                metrics_out: None,
                streaming: false
            }
        );
    }

    #[test]
    fn sweep_format_errors_are_descriptive() {
        assert!(parse(argv("sweep s.toml --format yaml")).unwrap_err().0.contains("yaml"));
        assert!(parse(argv("sweep s.toml --threads x")).unwrap_err().0.contains("--threads"));
    }

    #[test]
    fn sweep_only_flags_are_rejected_elsewhere() {
        // `--threads`/`--format` are only consumed by a spec-file sweep;
        // anywhere else they would be silently dropped.
        for line in ["run --format json", "sweep --threads 8", "trace --format csv"] {
            let err = parse(argv(line)).unwrap_err().0;
            assert!(err.contains("sweep SPEC.toml"), "{line}: {err}");
        }
    }

    #[test]
    fn cache_flags_parse_on_spec_file_sweeps() {
        let cmd = parse(argv("sweep s.toml --cache-dir /tmp/c --cache-stats")).unwrap();
        match cmd {
            Command::SweepFile { cache_dir, cache_stats, .. } => {
                assert_eq!(cache_dir.as_deref(), Some("/tmp/c"));
                assert!(cache_stats);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // The positional scan must not mistake the directory for the spec.
        let cmd = parse(argv("sweep --cache-dir cachedir s.toml")).unwrap();
        assert!(matches!(&cmd, Command::SweepFile { path, .. } if path == "s.toml"), "{cmd:?}");
    }

    #[test]
    fn no_cache_overrides_cache_dir() {
        let cmd = parse(argv("sweep s.toml --cache-dir /tmp/c --no-cache")).unwrap();
        assert!(matches!(&cmd, Command::SweepFile { cache_dir: None, .. }), "{cmd:?}");
    }

    #[test]
    fn cache_flag_misuse_is_rejected() {
        // Cache flags outside `sweep SPEC.toml` would be silently dropped.
        for line in ["run --cache-dir /tmp/c", "sweep --no-cache", "trace --cache-stats"] {
            let err = parse(argv(line)).unwrap_err().0;
            assert!(err.contains("sweep SPEC.toml"), "{line}: {err}");
        }
        // Stats over a disabled or absent cache always read zero.
        let err = parse(argv("sweep s.toml --cache-stats")).unwrap_err().0;
        assert!(err.contains("--cache-dir"), "{err}");
        let err =
            parse(argv("sweep s.toml --cache-dir /tmp/c --no-cache --cache-stats")).unwrap_err().0;
        assert!(err.contains("--no-cache"), "{err}");
    }

    #[test]
    fn conflicting_format_and_csv_are_rejected() {
        let err = parse(argv("sweep s.toml --format json --csv")).unwrap_err().0;
        assert!(err.contains("shorthand"), "{err}");
        // Each alone is fine.
        assert!(parse(argv("sweep s.toml --format json")).is_ok());
        assert!(parse(argv("sweep s.toml --csv")).is_ok());
    }

    #[test]
    fn sweep_spec_rejects_sim_flags_instead_of_dropping_them() {
        // `-t`/`--grid`/... configure ad-hoc runs; silently ignoring
        // them next to a spec file would run something else entirely.
        let err = parse(argv("sweep s.toml -t 60 --grid 4")).unwrap_err().0;
        assert!(err.contains("-t") && err.contains("--grid") && err.contains("s.toml"), "{err}");
        // The allowed companions still parse.
        assert!(parse(argv("sweep s.toml --threads 2 --format csv")).is_ok());
    }

    #[test]
    fn telemetry_flags_parse_on_spec_file_sweeps() {
        let cmd = parse(argv(
            "sweep s.toml --progress --trace-out events.jsonl --metrics-out metrics.json",
        ))
        .unwrap();
        match cmd {
            Command::SweepFile { progress, trace_out, metrics_out, .. } => {
                assert!(progress);
                assert_eq!(trace_out.as_deref(), Some("events.jsonl"));
                assert_eq!(metrics_out.as_deref(), Some("metrics.json"));
            }
            other => panic!("wrong command: {other:?}"),
        }
        // The positional scan must not mistake a sink path for the spec.
        let cmd = parse(argv("sweep --trace-out ev.jsonl s.toml")).unwrap();
        assert!(matches!(&cmd, Command::SweepFile { path, .. } if path == "s.toml"), "{cmd:?}");
        // Off by default.
        let cmd = parse(argv("sweep s.toml")).unwrap();
        assert!(
            matches!(
                cmd,
                Command::SweepFile { progress: false, trace_out: None, metrics_out: None, .. }
            ),
            "{cmd:?}"
        );
        // Anywhere else the flags would be silently dropped.
        for line in ["run --progress", "sweep --trace-out x.jsonl", "trace --metrics-out m.json"] {
            let err = parse(argv(line)).unwrap_err().0;
            assert!(err.contains("sweep SPEC.toml"), "{line}: {err}");
        }
    }

    #[test]
    fn streaming_flag_parses_on_spec_file_sweeps() {
        let cmd = parse(argv("sweep s.toml --streaming")).unwrap();
        assert!(matches!(cmd, Command::SweepFile { streaming: true, .. }), "{cmd:?}");
        // Off by default — the spec's own `streaming` key stays in charge.
        let cmd = parse(argv("sweep s.toml")).unwrap();
        assert!(matches!(cmd, Command::SweepFile { streaming: false, .. }), "{cmd:?}");
        // Anywhere else the flag would be silently dropped.
        for line in ["run --streaming", "sweep --streaming", "check s.toml --streaming"] {
            let err = parse(argv(line)).unwrap_err().0;
            assert!(err.contains("sweep SPEC.toml"), "{line}: {err}");
        }
    }

    #[test]
    fn shard_plan_parses_and_validates() {
        assert_eq!(
            parse(argv("shard-plan s.toml --count 4")).unwrap(),
            Command::ShardPlan {
                path: "s.toml".into(),
                count: 4,
                cache_dir: None,
                threads: None,
                serve: false
            }
        );
        // Forwarded flags ride along; the positional may follow them.
        assert_eq!(
            parse(argv("shard-plan --count 3 --cache-dir /tmp/c --threads 2 s.toml")).unwrap(),
            Command::ShardPlan {
                path: "s.toml".into(),
                count: 3,
                cache_dir: Some("/tmp/c".into()),
                threads: Some(2),
                serve: false
            }
        );
        // `--serve` switches the plan to serve/work lines.
        assert_eq!(
            parse(argv("shard-plan s.toml --count 3 --serve")).unwrap(),
            Command::ShardPlan {
                path: "s.toml".into(),
                count: 3,
                cache_dir: None,
                threads: None,
                serve: true
            }
        );
        // ... and means nothing elsewhere.
        assert!(parse(argv("sweep s.toml --serve")).unwrap_err().0.contains("shard-plan"));
        // Missing pieces and misuse are named, not silently defaulted.
        assert!(parse(argv("shard-plan s.toml")).unwrap_err().0.contains("--count"));
        assert!(parse(argv("shard-plan --count 4")).unwrap_err().0.contains("spec file"));
        assert!(parse(argv("shard-plan s.toml --count 0")).unwrap_err().0.contains("at least 1"));
        let err = parse(argv("shard-plan s.toml --count 4 --csv")).unwrap_err().0;
        assert!(err.contains("only takes"), "{err}");
        let err = parse(argv("shard-plan s.toml --count 4 --exp exp1")).unwrap_err().0;
        assert!(err.contains("s.toml"), "{err}");
        // `--count` means nothing elsewhere.
        assert!(parse(argv("sweep s.toml --count 4")).unwrap_err().0.contains("shard-plan"));
    }

    #[test]
    fn check_parses_and_validates() {
        assert_eq!(
            parse(argv("check s.toml")).unwrap(),
            Command::Check { path: "s.toml".into(), cache_dir: None }
        );
        // The positional may follow the flags.
        assert_eq!(
            parse(argv("check --cache-dir /tmp/c s.toml")).unwrap(),
            Command::Check { path: "s.toml".into(), cache_dir: Some("/tmp/c".into()) }
        );
        assert!(parse(argv("check")).unwrap_err().0.contains("spec file"));
        let err = parse(argv("check s.toml --exp exp1")).unwrap_err().0;
        assert!(err.contains("s.toml"), "{err}");
        let err = parse(argv("check s.toml --csv")).unwrap_err().0;
        assert!(err.contains("only takes"), "{err}");
        // Run-only flags stay rejected here.
        assert!(parse(argv("check s.toml --threads 2")).unwrap_err().0.contains("--threads"));
        assert!(parse(argv("check s.toml --shard 0/2")).unwrap_err().0.contains("--shard"));
    }

    #[test]
    fn serve_parses_and_validates() {
        assert_eq!(
            parse(argv("serve s.toml --listen 127.0.0.1:0")).unwrap(),
            Command::Serve {
                path: "s.toml".into(),
                listen: "127.0.0.1:0".into(),
                lease: None,
                lease_timeout: None,
                cache_dir: None,
                format: SweepFormat::Table,
                progress: false,
                port_file: None,
            }
        );
        // Everything at once; the positional may follow the flags, and
        // `--csv` is the usual shorthand.
        assert_eq!(
            parse(argv(
                "serve --listen 0.0.0.0:7103 --lease 4 --lease-timeout 2.5 --cache-dir /tmp/c \
                 --csv --progress --port-file /tmp/port s.toml"
            ))
            .unwrap(),
            Command::Serve {
                path: "s.toml".into(),
                listen: "0.0.0.0:7103".into(),
                lease: Some(4),
                lease_timeout: Some(2.5),
                cache_dir: Some("/tmp/c".into()),
                format: SweepFormat::Csv,
                progress: true,
                port_file: Some("/tmp/port".into()),
            }
        );
        // Missing pieces and misuse are named, not silently defaulted.
        assert!(parse(argv("serve s.toml")).unwrap_err().0.contains("--listen"));
        assert!(parse(argv("serve --listen :0")).unwrap_err().0.contains("spec file"));
        assert!(parse(argv("serve s.toml --listen :0 --lease 0")).unwrap_err().0.contains("lease"));
        let err = parse(argv("serve s.toml --listen :0 --lease-timeout 0")).unwrap_err().0;
        assert!(err.contains("positive"), "{err}");
        let err = parse(argv("serve s.toml --listen :0 --exp exp1")).unwrap_err().0;
        assert!(err.contains("s.toml"), "{err}");
        let err = parse(argv("serve s.toml --listen :0 --format json --csv")).unwrap_err().0;
        assert!(err.contains("shorthand"), "{err}");
        // Serve-only flags mean nothing elsewhere.
        for line in ["run --listen :0", "sweep s.toml --port-file p", "check s.toml --lease 2"] {
            let err = parse(argv(line)).unwrap_err().0;
            assert!(err.contains("serve SPEC.toml"), "{line}: {err}");
        }
    }

    #[test]
    fn work_parses_and_validates() {
        assert_eq!(
            parse(argv("work --connect 127.0.0.1:7103")).unwrap(),
            Command::Work {
                connect: "127.0.0.1:7103".into(),
                threads: None,
                cache_dir: None,
                throttle_ms: 0
            }
        );
        assert_eq!(
            parse(argv(
                "work --connect host:7103 --threads 2 --cache-dir /tmp/w --throttle-ms 250"
            ))
            .unwrap(),
            Command::Work {
                connect: "host:7103".into(),
                threads: Some(2),
                cache_dir: Some("/tmp/w".into()),
                throttle_ms: 250
            }
        );
        assert!(parse(argv("work")).unwrap_err().0.contains("--connect"));
        let err = parse(argv("work --connect host:1 --csv")).unwrap_err().0;
        assert!(err.contains("coordinator"), "{err}");
        // Work-only flags mean nothing elsewhere.
        for line in ["run --connect host:1", "sweep s.toml --throttle-ms 9"] {
            let err = parse(argv(line)).unwrap_err().0;
            assert!(err.contains("`work`"), "{line}: {err}");
        }
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(argv("frobnicate")).unwrap_err().0.contains("unknown subcommand"));
        assert!(parse(argv("run --policy nope")).unwrap_err().0.contains("--policy"));
        assert!(parse(argv("run --exp")).unwrap_err().0.contains("missing value"));
        assert!(parse(argv("run --wat 3")).unwrap_err().0.contains("unknown flag"));
        assert!(parse(argv("run -t 0")).unwrap_err().0.contains("positive"));
        assert!(parse(argv("run --grid 0")).unwrap_err().0.contains("at least 1"));
    }

    #[test]
    fn policy_labels_parse_like_figures() {
        for kind in PolicyKind::ALL {
            let cmd = parse(vec!["run".into(), "--policy".into(), kind.label().into()]).unwrap();
            match cmd {
                Command::Run { policy, .. } => assert_eq!(policy, kind),
                other => panic!("wrong command: {other:?}"),
            }
        }
    }
}
