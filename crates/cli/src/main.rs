//! `therm3d` — command-line driver for the DATE 2009 3D-DTM
//! reproduction. See `therm3d help` or [`therm3d_cli::args::USAGE`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match therm3d_cli::parse(argv) {
        Ok(cmd) => {
            print!("{}", therm3d_cli::execute(&cmd));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `therm3d help` for usage");
            ExitCode::FAILURE
        }
    }
}
