//! `therm3d` — command-line driver for the DATE 2009 3D-DTM
//! reproduction. See `therm3d help` or [`therm3d_cli::args::USAGE`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match therm3d_cli::parse(argv) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `therm3d help` for usage");
            return ExitCode::FAILURE;
        }
    };
    match therm3d_cli::execute(&cmd) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
