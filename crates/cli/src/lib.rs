//! Library half of the `therm3d` command-line driver: argument parsing
//! and command execution, separated from `main` so the test suite can
//! exercise them without spawning processes.
//!
//! The parser is hand-rolled (the offline dependency set has no argument
//! parsing crate); it supports `--flag`, `--key value`, `--key=value`
//! and short `-t`.

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseCliError, SimOptions, SweepFormat};
pub use commands::execute;
