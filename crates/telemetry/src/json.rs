//! A minimal JSON value type with a writer and a recursive-descent
//! parser.
//!
//! The workspace is offline (no serde); every crate that emits JSON
//! hand-rolls it. Telemetry additionally needs to *read* JSON back —
//! [`crate::MetricsSnapshot`] round-trips through files — so this
//! module centralizes both directions. Numbers are kept as their
//! source text ([`Json::Num`] holds the literal), which preserves full
//! `u64` precision that an `f64`-only model would corrupt above 2^53.

use std::fmt::Write as _;

/// A parsed or to-be-written JSON value.
///
/// Objects preserve insertion order (serialization stays deterministic
/// when the builder iterates a `BTreeMap`).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number as literal text, e.g. `"42"` or `"1.5e-3"`.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An exact unsigned integer.
    #[must_use]
    pub fn u64(v: u64) -> Self {
        Json::Num(v.to_string())
    }

    /// A float via Rust's shortest round-trip formatting. Non-finite
    /// values have no JSON spelling and become `null`.
    #[must_use]
    pub fn f64(v: f64) -> Self {
        if v.is_finite() {
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Single-line rendering (JSONL event lines).
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented rendering (metrics files a human will open).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns a byte-offset–annotated message on malformed input.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("malformed number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("malformed number at byte {start}"))?;
        Ok(Json::Num(text.to_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut raw = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(raw)
                        .map_err(|_| "invalid UTF-8 in string".to_owned());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => raw.push(b'"'),
                        b'\\' => raw.push(b'\\'),
                        b'/' => raw.push(b'/'),
                        b'n' => raw.push(b'\n'),
                        b'r' => raw.push(b'\r'),
                        b't' => raw.push(b'\t'),
                        b'b' => raw.push(0x08),
                        b'f' => raw.push(0x0c),
                        b'u' => {
                            let c = self.unicode_escape()?;
                            let mut buf = [0u8; 4];
                            raw.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(b) => {
                    raw.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    /// The four hex digits after `\u`, combining UTF-16 surrogate
    /// pairs when the first unit is a high surrogate.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            if !self.eat_literal("\\u") {
                return Err("lone high surrogate".to_owned());
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err("invalid low surrogate".to_owned());
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| "invalid surrogate pair".to_owned())
        } else {
            char::from_u32(hi).ok_or_else(|| format!("invalid \\u{hi:04x}"))
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or("truncated \\u escape")?;
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "truncated \\u escape".to_owned())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_owned())?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_compact_text() {
        let doc = Json::Obj(vec![
            ("n".to_owned(), Json::Null),
            ("b".to_owned(), Json::Bool(true)),
            ("i".to_owned(), Json::u64(u64::MAX)),
            ("f".to_owned(), Json::f64(-1.5e-3)),
            ("s".to_owned(), Json::Str("a\"b\\c\nd\u{1}e".to_owned())),
            ("a".to_owned(), Json::Arr(vec![Json::u64(1), Json::Obj(vec![])])),
        ]);
        let text = doc.compact();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Pretty output parses back to the same tree.
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn u64_precision_survives() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        // An f64 model would have rounded this.
        assert_eq!(v, Json::u64(u64::MAX));
    }

    #[test]
    fn escapes_and_surrogate_pairs_parse() {
        let v = Json::parse(r#""é€😀\t""#).unwrap();
        assert_eq!(v.as_str(), Some("é€😀\t"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83dx""#).is_err());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "[1,", "{\"a\":}", "01x", "\"abc", "nul", "1 2", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::f64(f64::NAN), Json::Null);
        assert_eq!(Json::f64(f64::INFINITY), Json::Null);
        assert_eq!(Json::f64(2.0), Json::Num("2.0".to_owned()));
    }
}
