//! Monotonic-clock span timing.
//!
//! `Span::enter("factor_numeric")` starts a scope timer; dropping the
//! span records the elapsed microseconds into a histogram of the same
//! name. Spans nest naturally (each is an independent value) and cost
//! one relaxed atomic load when the target registry is disabled — no
//! clock read, no allocation — which is what lets them live inside the
//! engine's allocation-free tick loop.

use std::sync::Arc;
use std::time::Instant;

use crate::metrics::Histogram;
use crate::registry::{global, Registry};

/// An RAII scope timer; see the module docs.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    start: Option<Instant>,
    hist: Option<Arc<Histogram>>,
}

impl Span {
    /// A span recording into the [`global()`] registry — for
    /// instrumentation points (thermal factorization, engine ticks)
    /// that cannot thread a registry handle through their call chain.
    /// Inert while the global registry is disabled.
    pub fn enter(name: &str) -> Self {
        Self::enter_in(global(), name)
    }

    /// A span recording into `registry`, inert when it is disabled.
    pub fn enter_in(registry: &Registry, name: &str) -> Self {
        if !registry.enabled() {
            return Self { start: None, hist: None };
        }
        Self { start: Some(Instant::now()), hist: Some(registry.histogram_us(name)) }
    }

    /// Elapsed microseconds so far (0 for an inert span).
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.start.map_or(0, elapsed_us)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(start), Some(hist)) = (self.start, self.hist.take()) {
            hist.record(elapsed_us(start));
        }
    }
}

/// Microseconds since `start`, saturating (a 584-millennium span would
/// otherwise overflow).
#[must_use]
pub fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_spans_record_and_nest() {
        let r = Registry::new(true);
        {
            let _outer = Span::enter_in(&r, "outer");
            let inner = Span::enter_in(&r, "inner");
            assert!(inner.start.is_some());
            drop(inner);
            let again = Span::enter_in(&r, "inner");
            drop(again);
        }
        let snap = r.snapshot();
        assert_eq!(snap.histograms["outer"].count, 1);
        assert_eq!(snap.histograms["inner"].count, 2);
    }

    #[test]
    fn disabled_spans_do_nothing() {
        let r = Registry::new(false);
        let span = Span::enter_in(&r, "noop");
        assert!(span.start.is_none() && span.hist.is_none());
        assert_eq!(span.elapsed_us(), 0);
        drop(span);
        assert!(r.snapshot().histograms.is_empty());
    }
}
