//! Atomic metric primitives: counters, gauges and fixed-bucket
//! histograms.
//!
//! All updates are relaxed atomics — metrics never synchronize the
//! threads they observe. Histograms bucket *microsecond* durations by
//! default ([`DEFAULT_US_EDGES`]), and every histogram carries its own
//! edge vector so two [`HistogramSnapshot`]s merge exactly when (and
//! only when) their edges agree — the property the sharded-campaign
//! merger relies on.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic `f64` gauge (stored as bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Replaces the gauge value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default bucket upper bounds for microsecond-scale durations: a
/// 1-2-5 decade ladder from 1 µs to 10 s. One fixed ladder everywhere
/// means snapshots from any process merge without rebinning.
pub const DEFAULT_US_EDGES: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

/// A fixed-bucket histogram over `u64` samples (conventionally µs).
///
/// Bucket `i` counts samples `v <= edges[i]` (and `> edges[i-1]`); one
/// extra overflow bucket past the last edge catches the rest. `min` is
/// `u64::MAX` while the histogram is empty.
#[derive(Debug)]
pub struct Histogram {
    edges: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram with the given strictly increasing bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    #[must_use]
    pub fn with_edges(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one bucket edge");
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "histogram edges must strictly increase");
        let buckets = (0..=edges.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            edges: edges.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// A histogram over the default microsecond ladder.
    #[must_use]
    pub fn new_us() -> Self {
        Self::with_edges(DEFAULT_US_EDGES)
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        // First edge >= value; everything past the last edge overflows
        // into the trailing bucket.
        let i = self.edges.partition_point(|&e| e < value);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram's state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: self.edges.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`], mergeable and serializable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (strictly increasing).
    pub edges: Vec<u64>,
    /// Per-bucket counts; `edges.len() + 1` entries, last = overflow.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    /// `u64::MAX` when `count == 0`.
    pub min: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot over `edges` (for building merges from zero).
    #[must_use]
    pub fn empty(edges: &[u64]) -> Self {
        Self {
            edges: edges.to_vec(),
            buckets: vec![0; edges.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Folds `other` into `self`. Both must share identical edges —
    /// fixed buckets merge by addition, anything else would silently
    /// rebin.
    ///
    /// # Errors
    ///
    /// Returns a message when the edge vectors differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), String> {
        if self.edges != other.edges {
            return Err(format!(
                "histogram edge mismatch: {} vs {} buckets",
                self.edges.len(),
                other.edges.len()
            ));
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Mean sample value, 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-3.25);
        assert_eq!(g.get(), -3.25);
    }

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let h = Histogram::with_edges(&[10, 20, 50]);
        // v <= 10 → bucket 0 (including 0 and the edge itself).
        h.record(0);
        h.record(10);
        // 10 < v <= 20 → bucket 1.
        h.record(11);
        h.record(20);
        // 20 < v <= 50 → bucket 2.
        h.record(50);
        // v > 50 → overflow bucket.
        h.record(51);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 2, 1, 2]);
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn empty_histogram_has_sentinel_min() {
        let s = Histogram::new_us().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, u64::MAX);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.buckets.len(), DEFAULT_US_EDGES.len() + 1);
    }

    #[test]
    fn merge_adds_matching_buckets_and_rejects_mismatched_edges() {
        let a = Histogram::with_edges(&[10, 20]);
        a.record(5);
        a.record(15);
        let b = Histogram::with_edges(&[10, 20]);
        b.record(15);
        b.record(99);
        let mut m = a.snapshot();
        m.merge(&b.snapshot()).unwrap();
        assert_eq!(m.buckets, vec![1, 2, 1]);
        assert_eq!(m.count, 4);
        assert_eq!(m.sum, 5 + 15 + 15 + 99);
        assert_eq!((m.min, m.max), (5, 99));

        let other = Histogram::with_edges(&[10, 30]).snapshot();
        assert!(m.merge(&other).is_err());
        let fewer = Histogram::with_edges(&[10]).snapshot();
        assert!(m.merge(&fewer).is_err());
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn unsorted_edges_are_rejected() {
        let _ = Histogram::with_edges(&[10, 10]);
    }
}
